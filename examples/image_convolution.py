#!/usr/bin/env python3
"""Image convolution: generate fixed-point + SIMD C and validate it.

Runs WLO-SLP on the paper's 3x3 convolution benchmark, emits both the
scalar fixed-point C and the SIMD macro-API C the source-to-source
back-end produces (paper Section IV), and validates the chosen
specification by *measuring* its output noise with the bit-accurate
interpreter against the float reference — showing the analytical model
told the truth.

Run:  python examples/image_convolution.py
"""

import numpy as np

from repro.accuracy import SimulationAccuracyEvaluator
from repro.codegen import emit_fixed_point_c, emit_simd_c
from repro.flows import AnalysisContext, run_wlo_slp
from repro.kernels import conv2d
from repro.targets import get_target


def main() -> None:
    constraint_db = -40.0
    program = conv2d(height=34, width=34)
    target = get_target("vex-4")
    context = AnalysisContext.build(program)

    result = run_wlo_slp(program, target, constraint_db, context)
    print(result.summary())
    assert result.spec is not None and result.groups is not None

    print("\nAnalytical output noise: "
          f"{result.noise_db:.1f} dB (constraint {constraint_db:g} dB)")
    simulator = SimulationAccuracyEvaluator(program, n_stimuli=3)
    measured = simulator.noise_db(result.spec)
    print(f"Measured (bit-accurate simulation): {measured:.1f} dB")
    if measured > constraint_db:
        raise SystemExit("constraint violated — this should never happen")
    print("Constraint satisfied by measurement, not just by the model.")

    print("\n=== Scalar fixed-point C (excerpt) " + "=" * 28)
    scalar_c = emit_fixed_point_c(program, result.spec)
    print("\n".join(scalar_c.splitlines()[:34]))
    print("    ...")

    print("\n=== SIMD macro-API C (excerpt) " + "=" * 32)
    simd_c = emit_simd_c(program, result.spec, result.groups)
    body_start = simd_c.index("void kernel_simd")
    print("\n".join(simd_c[body_start:].splitlines()[:30]))
    print("    ...")

    blurred = _apply(program, result)
    print(f"\nFixed-point blur of a test image: output range "
          f"[{blurred.min():.3f}, {blurred.max():.3f}]")


def _apply(program, result) -> np.ndarray:
    """Run the optimized fixed-point code on a synthetic image."""
    from repro.fixedpoint import run_fixed_point

    rng = np.random.default_rng(11)
    gradient = np.linspace(-0.8, 0.8, 34)
    image = np.clip(
        gradient[None, :] + 0.1 * rng.standard_normal((34, 34)), -1.0, 1.0
    )
    return run_fixed_point(program, result.spec, {"img": image})["out"]


if __name__ == "__main__":
    main()
