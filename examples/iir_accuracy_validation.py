#!/usr/bin/env python3
"""Validating the analytical accuracy model on a recursive filter.

The flows call the closed-form noise evaluator thousands of times; its
credibility is everything.  This example sweeps uniform word lengths
on the paper's 10th-order IIR and prints analytical vs. bit-accurate
measured output noise side by side — they should track within ~2 dB
even through the feedback loop.

Run:  python examples/iir_accuracy_validation.py
"""

from repro.accuracy import SimulationAccuracyEvaluator
from repro.flows import AnalysisContext
from repro.kernels import iir
from repro.report import TextTable


def main() -> None:
    program = iir(n_samples=512)
    context = AnalysisContext.build(program)
    simulator = SimulationAccuracyEvaluator(program, n_stimuli=3, discard=64)

    table = TextTable(
        headers=("word_length", "analytical_db", "measured_db", "difference"),
        title="IIR-10: analytical noise model vs bit-accurate simulation",
    )
    spec = context.fresh_spec()
    for wl in (32, 24, 20, 16, 12, 10):
        token = spec.save()
        for root in context.slotmap.roots:
            spec.set_wl(root, wl)
        analytical = context.model.noise_db(spec)
        measured = simulator.noise_db(spec)
        table.add_row(
            wl, round(analytical, 2), round(measured, 2),
            round(analytical - measured, 2),
        )
        spec.revert(token)

    print(table.render())
    print(
        "\nThe flows trust the analytical column; the measured column is "
        "the ground truth it is validated against (see tests/)."
    )


if __name__ == "__main__":
    main()
