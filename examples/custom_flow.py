#!/usr/bin/env python3
"""Declaring a custom flow variant (and a custom WLO engine) by name.

The flow registry makes a new compilation scenario a *declaration*,
not a new orchestration function.  This example:

1. registers ``my-slp-only`` — the joint flow with every refinement
   feature off — as a one-line declaration;
2. registers a custom WLO engine (``tabu-long``, a patient Tabu
   search) and uses it from the stock ``wlo-first`` flow by name;
3. assembles a fully hand-rolled pipeline from the pass library, for
   when even the factories are too opinionated;
4. compares all of them on one kernel, sharing a per-pass cache so the
   expensive analysis prefix runs exactly once.

Everything registered here is immediately usable from the CLI of this
process too (``repro run --flow my-slp-only``); see ``repro flows``.

Run:  python examples/custom_flow.py
"""

from repro.kernels import fir
from repro.pipeline import (
    ANALYSIS_PASS_NAMES,
    PassCache,
    declare_decoupled_flow,
    declare_joint_flow,
    execute_flow,
    get_flow,
    run_flow,
)
from repro.targets import get_target
from repro.wlo import TabuConfig, register_wlo_engine, tabu_wlo


def main() -> None:
    # 1. A new joint-flow variant is one declaration.
    declare_joint_flow(
        "my-slp-only",
        "joint SLP extraction with no SCALOPTIM / harmonization / "
        "accuracy-conflict pruning",
        harmonize=False, scaloptim=False, accuracy_conflicts=False,
    )

    # 2. A custom WLO engine: the paper's Tabu search, more patient.
    def tabu_long(program, spec, model, target, constraint_db):
        config = TabuConfig(max_iterations=400, patience=120)
        return tabu_wlo(program, spec, model, target, constraint_db, config)

    register_wlo_engine("tabu-long", tabu_long)
    declare_decoupled_flow(
        "wlo-first-long", "decoupled baseline with the patient Tabu",
        wlo="tabu-long",
    )

    program = fir(n_samples=256, n_taps=32)
    target = get_target("xentium")
    cache = PassCache()  # shared: analysis passes run once, total

    print(f"kernel {program.name}, target {target.name}, -30 dB budget\n")
    header = f"{'flow':<18} {'cycles':>8} {'groups':>7} {'noise':>9}"
    print(header)
    print("-" * len(header))
    for name in ("wlo-slp", "my-slp-only", "wlo-first-long"):
        result = run_flow(
            name, program, target, -30.0, cache=cache
        )
        if hasattr(result, "simd"):  # decoupled flows return scalar+SIMD
            result = result.simd
        print(
            f"{name:<18} {result.total_cycles:>8} {result.n_groups:>7} "
            f"{result.noise_db:>8.1f}dB"
        )

    for pass_name in ANALYSIS_PASS_NAMES:
        assert cache.executions(pass_name) == 1, "analysis prefix re-ran!"
    print(
        f"\nanalysis passes ran once for {cache.hits.get('range-analysis', 0) + 1}"
        f" flows (per-pass cache: {len(cache)} entries)"
    )

    # 3. The declared structure is inspectable — the sweep cache keys
    #    cells on exactly these pass signatures.
    print("\nmy-slp-only =", " -> ".join(get_flow("my-slp-only").pass_names()))

    # 4. Timings come with every run.
    _, state = execute_flow("my-slp-only", program, target, -30.0, cache=cache)
    print("\nper-pass timings of the last run:")
    print(state.timing_report())


if __name__ == "__main__":
    main()
