#!/usr/bin/env python3
"""Sweeping a custom numeric format (half precision, ``binary(8,10)``).

The formats registry (:mod:`repro.formats`) makes the numeric format a
first-class axis next to flows, WLO engines and backends.  This
example:

1. resolves the parameterized ``binary(8,10)`` family member — a
   16-bit float with float32's exponent range (bfloat16 trades the
   opposite way: same width, 8 exponent / 7 mantissa bits);
2. measures its correctly-rounded output noise on the FIR kernel
   against the arbitrary-precision ``bigfloat`` oracle, next to
   float32 and bfloat16;
3. runs a ``--format``-style sweep cell on ``fir:vex-1`` through the
   standard engine, exactly what
   ``repro sweep --format 'binary(8,10)' --only fir:vex-1`` does.

Run:  python examples/custom_format.py
"""

from repro.accuracy import FormatAccuracyEvaluator
from repro.experiments import ExperimentRunner
from repro.flows import AnalysisContext
from repro.formats import get_format
from repro.kernels import fir


def main() -> None:
    # 1. binary(E,M) members resolve on demand — no registration step.
    half = get_format("binary(8,10)")
    print(f"{half.name}: {half.description}")
    print(f"  {half.bits} bits total "
          f"({half.exp_bits} exponent + {half.man_bits} mantissa + sign)")

    # 2. Rounding noise vs the bigfloat oracle, per format.  The
    #    analysis twin keeps the simulations fast.
    program = fir(n_taps=16, n_samples=96)
    context = AnalysisContext.build(program)
    print("\nFIR output noise vs the 200-bit oracle:")
    for name in ("float32", "bfloat16", "binary(8,10)"):
        evaluator = FormatAccuracyEvaluator(
            context.analysis_program, name, n_stimuli=2
        )
        print(f"  {name:>12}: {evaluator.noise_db():8.2f} dB")

    # 3. The same format as a sweep axis: format cells skip WLO (there
    #    are no word lengths to optimize) and report the format's own
    #    rounding noise with float-flow cycles.
    runner = ExperimentRunner(
        n_samples=96, analysis_samples=96,
        image_size=18, analysis_image_size=18,
    )
    cell = runner.cell("fir", "vex-1", -25.0, format="binary(8,10)")
    print(f"\nfir:vex-1 @ -25 dB under binary(8,10): "
          f"{cell.wlo_slp_cycles} cycles, "
          f"{cell.wlo_slp_noise_db:.2f} dB noise")


if __name__ == "__main__":
    main()
