#!/usr/bin/env python3
"""FIR accuracy/performance trade-off study (a Fig. 4 panel, live).

Sweeps the accuracy constraint for the paper's 64-tap FIR on a chosen
target and compares three codes: the scalar fixed-point baseline, the
decoupled WLO-First SIMD version, and the joint WLO-SLP SIMD version.
Renders the speedup curves as an ASCII plot — the same panel the full
benchmark harness regenerates for every (kernel, target) pair.

Run:  python examples/fir_filter_study.py [target]
"""

import sys

from repro.flows import AnalysisContext, run_wlo_first, run_wlo_slp, speedup
from repro.kernels import fir
from repro.report import TextTable, line_plot
from repro.targets import get_target


def main(target_name: str = "vex-1") -> None:
    target = get_target(target_name)
    print(f"Target: {target.describe()}")

    program = fir(n_samples=2048)
    twin = fir(n_samples=160)  # analysis twin: same ops, shorter loops
    context = AnalysisContext.build(program, twin)

    grid = (-5.0, -15.0, -25.0, -35.0, -45.0, -55.0, -65.0)
    table = TextTable(
        headers=("constraint_db", "scalar", "wlo_first_simd", "wlo_slp",
                 "wf_speedup", "slp_speedup", "slp_noise_db"),
        title=f"FIR-64 on {target.name}: accuracy vs performance",
    )
    wf_series = []
    slp_series = []
    for constraint in grid:
        wlo_first = run_wlo_first(program, target, constraint, context)
        wlo_slp = run_wlo_slp(program, target, constraint, context)
        wf_speedup = speedup(wlo_first.scalar, wlo_first.simd)
        slp_speedup = speedup(wlo_first.scalar, wlo_slp)
        table.add_row(
            constraint,
            wlo_first.scalar.total_cycles,
            wlo_first.simd.total_cycles,
            wlo_slp.total_cycles,
            round(wf_speedup, 3),
            round(slp_speedup, 3),
            round(wlo_slp.noise_db or 0.0, 1),
        )
        wf_series.append((constraint, wf_speedup))
        slp_series.append((constraint, slp_speedup))

    print()
    print(table.render())
    print()
    print(line_plot(
        {"WLO-FIRST": wf_series, "WLO-SLP": slp_series},
        title=f"SIMD speedup over scalar fixed-point — FIR on {target.name}",
        y_label="speedup",
        x_label="accuracy constraint (dB)",
    ))


if __name__ == "__main__":
    main(*sys.argv[1:2])
