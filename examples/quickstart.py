#!/usr/bin/env python3
"""Quickstart: joint word-length optimization + SLP on a dot product.

Builds a small unrolled dot-product kernel, resolves the paper's
WLO-SLP flow by name through the flow registry, runs it against the
XENTIUM model at a -30 dB output-noise budget, and shows everything
the flow produced: the fixed-point specification, the SIMD groups, the
cycle count, generated C — and a bit-accurate simulation check of the
optimized spec through the vectorized ``batch`` evaluation backend
(bit-identical to the ``scalar`` reference and one to two orders of
magnitude faster on the benchmark kernels — see ``sim_backend_micro``
in benchmarks/results/BENCH_sweep.json for the numbers measured on
this machine; ``repro flows`` lists the backends, and every
simulation-backed CLI command accepts ``--sim-backend``).

Run:  python examples/quickstart.py
"""

from repro.accuracy import SimulationAccuracyEvaluator
from repro.codegen import emit_fixed_point_c
from repro.flows import speedup
from repro.kernels import dot_product
from repro.pipeline import available_flows, run_flow
from repro.targets import get_target


def main() -> None:
    program = dot_product(length=64, unroll=4)
    print("=== Kernel IR " + "=" * 50)
    print(program)

    target = get_target("xentium")
    print(f"\n=== Target: {target.describe()}")
    print(f"\nRegistered flows: {', '.join(available_flows())}")

    result = run_flow("wlo-slp", program, target, -30.0)

    print(f"\n=== WLO-SLP result: {result.summary()}")
    print("\nFixed-point specification (per tie group):")
    assert result.spec is not None
    print(result.spec.describe())

    print("\nSIMD groups:")
    assert result.groups is not None
    for block_name, groups in result.groups.items():
        for group in groups:
            print(
                f"  {block_name}: {group.kind.value} x{group.size} lanes "
                f"{list(group.lanes)} @ {group.wl}-bit"
            )

    # Validate the optimized spec by bit-accurate simulation.  The
    # "batch" backend (the default) evaluates all stimuli as array
    # lanes in one pass — bit-identical to "scalar", much faster.
    simulator = SimulationAccuracyEvaluator(
        program, n_stimuli=8, backend="batch"
    )
    print(
        f"\nMeasured output noise {simulator.noise_db(result.spec):.1f} dB "
        f"(analytical model: {result.noise_db:.1f} dB, "
        f"budget -30 dB, batch backend over 8 stimuli)"
    )

    float_result = run_flow("float", program, target)
    print(
        f"\nCycles: float {float_result.total_cycles} -> fixed+SIMD "
        f"{result.total_cycles} "
        f"({speedup(float_result, result):.1f}x, soft-float eliminated)"
    )

    print("\n=== Generated fixed-point C (excerpt) " + "=" * 25)
    source = emit_fixed_point_c(program, result.spec)
    print("\n".join(source.splitlines()[:40]))
    print("    ... (truncated)")


if __name__ == "__main__":
    main()
