#!/usr/bin/env python3
"""Cost/noise Pareto frontier of one kernel, from a single WLO search.

A constraint sweep asks the same cost-vs-noise question once per grid
point.  `repro.wlo.pareto` instead walks the *whole* frontier of one
(kernel, target) pair in a single descending pass — all-maximum word
lengths down to all-minimum — and projecting any constraint onto the
recorded front is then O(points) per cell, feasible by construction.

This example walks the FIR frontier on a chosen target, renders it as
an ASCII plot, and projects it onto a constraint grid 4x denser than
the paper's — the dense Fig.-4-style artifact the frontier makes cheap.
The sweep-engine equivalent is `repro sweep --pareto`.

Run:  python examples/pareto_frontier.py [target]
"""

import sys

from repro.flows import AnalysisContext
from repro.kernels import fir
from repro.report import TextTable, line_plot
from repro.targets import get_target
from repro.wlo import pareto_frontier


def main(target_name: str = "vex-1") -> None:
    target = get_target(target_name)
    print(f"Target: {target.describe()}")

    program = fir(n_samples=2048)
    twin = fir(n_samples=160)  # analysis twin: same ops, shorter loops
    context = AnalysisContext.build(program, twin)

    frontier = pareto_frontier(
        context.program, context.fresh_spec(), context.model, target
    )
    print(
        f"One search: {frontier.moves} moves, {frontier.evaluations} "
        f"evaluations, {len(frontier.points)} non-dominated points"
    )

    table = TextTable(
        headers=("noise_db", "relative_cost", "distinct_wls"),
        title=f"FIR-64 cost/noise frontier on {target.name}",
    )
    curve = []
    for point in frontier.points:
        table.add_row(
            round(point.noise_db, 2),
            round(point.cost, 4),
            len(set(point.wls.values())),
        )
        curve.append((point.noise_db, point.cost))
    print()
    print(table.render())
    print()
    print(line_plot(
        {"FRONTIER": curve},
        title=f"WL-relative cost vs quantization noise — FIR on {target.name}",
        y_label="relative cost",
        x_label="noise (dB)",
    ))

    # Projection: every cell of a dense grid (4x the paper's constraint
    # resolution) answered from the one recorded front — the cheapest
    # point whose noise still satisfies the constraint.
    grid = [-2.5 * k for k in range(2, 27)]  # -5 .. -65 dB
    projected = TextTable(
        headers=("constraint_db", "projected_cost", "achieved_noise_db"),
        title=f"Dense-grid projection ({len(grid)} constraints, zero searches)",
    )
    for constraint in grid:
        point = frontier.project(constraint)
        assert point.noise_db <= constraint
        projected.add_row(
            constraint, round(point.cost, 4), round(point.noise_db, 2)
        )
    print()
    print(projected.render())


if __name__ == "__main__":
    main(*sys.argv[1:2])
