#!/usr/bin/env python3
"""Defining and optimizing for a custom processor model.

Shows the target-model API: a hypothetical dual-issue DSP with a
48-bit datapath supporting 3x16 and 6x8 SIMD, no barrel shifter, and
slow soft-float.  The flows adapt automatically — eq. (1) picks group
word lengths against the 48-bit datapath, so triples become legal.

Run:  python examples/custom_target.py
"""

from repro.flows import AnalysisContext, run_float, run_wlo_slp, speedup
from repro.kernels import fir
from repro.targets import TargetModel, register_target, get_target


def budget_dsp() -> TargetModel:
    """A deliberately odd core to exercise the model's generality."""
    return TargetModel(
        name="budget-dsp",
        issue_width=2,
        scalar_wl=48,
        simd_widths=(16, 8),
        units={"alu": 2, "mul": 1, "mem": 1, "sfu": 1},
        latencies={"alu": 1, "mul": 3, "mem": 2},
        has_hw_float=False,
        softfloat_cycles={"fadd": 55, "fsub": 58, "fmul": 40},
        barrel_shifter=False,  # shifts cost |amount| cycles
        branch_penalty=2,
    )


def main() -> None:
    register_target("budget-dsp", budget_dsp)
    target = get_target("budget-dsp")
    print(f"Custom target: {target.describe()}")
    print(f"  eq.(1): pair lane width   = {target.group_wl(2)} bits")
    print(f"  eq.(1): triple lane width = {target.group_wl(3)} bits")
    print(f"  eq.(1): quad lane width   = {target.group_wl(4)} bits")
    print(f"  largest group             = {target.max_group_size} lanes")

    program = fir(n_samples=512)
    context = AnalysisContext.build(program)
    float_result = run_float(program, target)

    for constraint in (-20.0, -50.0):
        result = run_wlo_slp(program, target, constraint, context)
        print(
            f"\n@ {constraint:g} dB: {result.total_cycles} cycles, "
            f"{result.n_groups} groups, noise {result.noise_db:.1f} dB, "
            f"{speedup(float_result, result):.1f}x over soft-float"
        )
        assert result.groups is not None
        sizes = sorted(
            group.size
            for groups in result.groups.values()
            for group in groups
        )
        print(f"  group sizes: {sizes}")


if __name__ == "__main__":
    main()
