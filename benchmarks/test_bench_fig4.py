"""Fig. 4 regeneration bench — SIMD speedups vs accuracy constraint.

For each benchmark kernel, regenerates the paper's Fig. 4 panels (all
four targets) as ASCII plots plus a flat table, persists them under
``benchmarks/results/``, and benchmarks one uncached WLO-SLP flow run
as the timed payload.
"""

from __future__ import annotations

import pytest

from conftest import persist
from repro.experiments import (
    PAPER_CONSTRAINT_GRID,
    PAPER_TARGETS,
    fig4_table,
    render_fig4,
)
from repro.flows import run_wlo_slp
from repro.targets import get_target

KERNELS = ("fir", "iir", "conv")


@pytest.mark.parametrize("kernel", KERNELS)
def test_fig4_panel_rows(runner, benchmark, results_dir, kernel):
    """Regenerate the Fig. 4 panels of one kernel."""
    context = runner.context(kernel)
    target = get_target("xentium")
    benchmark.pedantic(
        lambda: run_wlo_slp(context.program, target, -25.0, context),
        rounds=1, iterations=1,
    )
    text = render_fig4(runner, (kernel,), PAPER_TARGETS, PAPER_CONSTRAINT_GRID)
    persist(results_dir, f"fig4_{kernel}", text)

    cells = [
        cell
        for target_name in PAPER_TARGETS
        for cell in runner.sweep(kernel, target_name, PAPER_CONSTRAINT_GRID)
    ]
    assert all(cell.scalar_cycles > 0 for cell in cells)
    # Paper shape: on average the joint flow at least matches WLO-First.
    mean_slp = sum(c.wlo_slp_speedup for c in cells) / len(cells)
    mean_wf = sum(c.wlo_first_speedup for c in cells) / len(cells)
    assert mean_slp >= mean_wf - 0.02


def test_fig4_combined_table(runner, benchmark, results_dir):
    """Persist the full Fig. 4 table (all kernels x targets)."""
    table = benchmark.pedantic(
        fig4_table, args=(runner, KERNELS, PAPER_TARGETS, PAPER_CONSTRAINT_GRID),
        rounds=1, iterations=1,
    )
    persist(results_dir, "fig4_table", table.render())
    table.to_csv(results_dir / "fig4.csv")
    table.to_json(results_dir / "fig4.json")
    assert len(table.rows) == len(KERNELS) * len(PAPER_TARGETS) * len(
        PAPER_CONSTRAINT_GRID
    )


def test_fig4_vex_ilp_contrast(runner, results_dir, benchmark):
    """Paper claim: VEX-1 gains exceed VEX-4 gains (ILP absorbs SIMD)."""
    benchmark.pedantic(
        lambda: runner.sweep("fir", "vex-1", PAPER_CONSTRAINT_GRID),
        rounds=1, iterations=1,
    )
    vex1 = runner.sweep("fir", "vex-1", PAPER_CONSTRAINT_GRID)
    vex4 = runner.sweep("fir", "vex-4", PAPER_CONSTRAINT_GRID)
    best1 = max(c.wlo_slp_speedup for c in vex1)
    best4 = max(c.wlo_slp_speedup for c in vex4)
    assert best1 >= best4 - 1e-9, (
        f"expected VEX-1 best speedup ({best1:.2f}) >= VEX-4 ({best4:.2f})"
    )
