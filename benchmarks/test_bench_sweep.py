"""Engine micro-benchmarks: parallel fan-out, dispatch, per-pass reuse.

Three benchmarks, all recorded (merged by name) into
``benchmarks/results/BENCH_sweep.json`` so future PRs have a perf
trajectory for the engine:

* ``sweep_serial_vs_parallel`` — the same reduced-size plan through a
  serial and a process-pool executor, asserting bit-identical cells.
* ``sweep_dispatch`` — the same plan through the ``process`` (one pool
  task per cell) and ``chunked`` (kernel-major chunks + worker-side
  shared-cache stores) execution backends, asserting bit-identical
  cells and guarding chunked-dispatch overhead against the per-cell
  baseline.
* ``pass_reuse`` — one kernel through the ``wlo-slp`` pipeline at two
  constraints against a fresh :class:`~repro.pipeline.PassCache`; the
  second constraint must resolve the whole analysis prefix (range
  analysis, adjoint gains, accuracy model) from cache with **zero**
  re-executions, which is what makes constraint sweeps cheap.
* ``wlo_continuation`` — the same fir:vex-1 paper-grid sweep cold and
  with ``--continuation``-style warm starts, guarding the warm-start
  speedup floor and the continuation quality contract (every warm cell
  feasible at cost ≤ its cold counterpart).
"""

from __future__ import annotations

import os
import platform
import time

from repro.experiments import KernelConfig, SweepCache, SweepExecutor, SweepPlan
from repro.experiments.engine import PAPER_CONSTRAINT_GRID
from repro.pipeline import ANALYSIS_PASS_NAMES, PassCache, run_flow
from repro.pipeline.cache import global_pass_cache
from repro.targets import get_target
from repro.wlo import clear_continuations

from conftest import record_bench as _record

#: Chunked dispatch amortizes pickling/IPC, so it must never cost more
#: than this factor over per-cell process dispatch on the same plan.
CHUNK_OVERHEAD_LIMIT = 2.5

#: Warm-start continuation must make the fir:vex-1 paper-grid sweep at
#: least this much faster than the cold baseline (PR-8 acceptance bar).
WARM_SPEEDUP_FLOOR = 1.5

BENCH_CONFIG = KernelConfig(
    n_samples=256, analysis_samples=96, image_size=24, analysis_image_size=18
)
BENCH_GRID = (-15.0, -25.0, -45.0, -65.0)
BENCH_KERNELS = ("fir", "iir")
BENCH_TARGETS = ("xentium", "vex-1")
# Always exercise the pool (≥2 workers) so the bit-identical check
# covers the parallel path even on single-core runners.
BENCH_JOBS = max(2, min(4, os.cpu_count() or 1))


def test_bench_sweep_serial_vs_parallel(results_dir):
    plan = SweepPlan.build(BENCH_CONFIG, BENCH_KERNELS, BENCH_TARGETS, BENCH_GRID)

    started = time.perf_counter()
    serial_cells, serial_stats = SweepExecutor(BENCH_CONFIG, jobs=1).run(plan)
    serial_seconds = time.perf_counter() - started
    assert serial_stats.computed == len(plan)

    started = time.perf_counter()
    parallel_cells, parallel_stats = SweepExecutor(
        BENCH_CONFIG, jobs=BENCH_JOBS
    ).run(plan)
    parallel_seconds = time.perf_counter() - started
    assert parallel_stats.computed == len(plan)

    # The acceptance bar: fan-out must not change a single number.
    assert parallel_cells == serial_cells

    _record("sweep_serial_vs_parallel", {
        "n_cells": len(plan),
        "kernels": list(BENCH_KERNELS),
        "targets": list(BENCH_TARGETS),
        "grid_db": list(BENCH_GRID),
        "jobs": BENCH_JOBS,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "parallel_speedup": round(serial_seconds / parallel_seconds, 2),
    })


def test_bench_sweep_dispatch(results_dir, tmp_path):
    """Chunked dispatch: bit-identical and within the overhead budget.

    Both backends run with a (private, cold) disk cache so the
    comparison includes each one's real store path — parent-side for
    ``process``, worker-side for ``chunked``.
    """
    plan = SweepPlan.build(BENCH_CONFIG, BENCH_KERNELS, BENCH_TARGETS, BENCH_GRID)

    started = time.perf_counter()
    process_cells, process_stats = SweepExecutor(
        BENCH_CONFIG, jobs=BENCH_JOBS, backend="process",
        cache=SweepCache(tmp_path / "process"),
    ).run(plan)
    process_seconds = time.perf_counter() - started
    assert process_stats.computed == len(plan)

    started = time.perf_counter()
    chunked_cells, chunked_stats = SweepExecutor(
        BENCH_CONFIG, jobs=BENCH_JOBS, backend="chunked",
        cache=SweepCache(tmp_path / "chunked"),
    ).run(plan)
    chunked_seconds = time.perf_counter() - started
    assert chunked_stats.computed == len(plan)

    # The acceptance bars: dispatch strategy must not change a single
    # number, every cell must hit the disk worker-side, and the chunk
    # amortization must not regress into an overhead.
    assert chunked_cells == process_cells
    assert len(SweepCache(tmp_path / "chunked")) == len(plan)
    overhead = chunked_seconds / process_seconds
    assert overhead <= CHUNK_OVERHEAD_LIMIT

    _record("sweep_dispatch", {
        "n_cells": len(plan),
        "jobs": BENCH_JOBS,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "process_seconds": round(process_seconds, 3),
        "chunked_seconds": round(chunked_seconds, 3),
        "chunked_over_process": round(overhead, 2),
        "overhead_limit": CHUNK_OVERHEAD_LIMIT,
    })


def test_bench_pass_reuse(results_dir):
    """A warm analysis cache must skip every analysis pass."""
    build, build_twin = BENCH_CONFIG.builders()["fir"]
    program, twin = build(), build_twin()
    target = get_target("xentium")
    cache = PassCache()

    started = time.perf_counter()
    cold = run_flow(
        "wlo-slp", program, target, BENCH_GRID[0],
        analysis_program=twin, cache=cache,
    )
    cold_seconds = time.perf_counter() - started
    for name in ANALYSIS_PASS_NAMES:
        assert cache.executions(name) == 1

    started = time.perf_counter()
    warm = run_flow(
        "wlo-slp", program, target, BENCH_GRID[1],
        analysis_program=twin, cache=cache,
    )
    warm_seconds = time.perf_counter() - started

    # The acceptance bar: zero re-executions of any analysis pass on
    # the second constraint — all three resolve from the pass cache.
    for name in ANALYSIS_PASS_NAMES:
        assert cache.executions(name) == 1
        assert cache.hits[name] == 1
    assert cold.total_cycles > 0 and warm.total_cycles > 0

    _record("pass_reuse", {
        "kernel": "fir",
        "target": "xentium",
        "constraints_db": [BENCH_GRID[0], BENCH_GRID[1]],
        "analysis_passes": list(ANALYSIS_PASS_NAMES),
        "python": platform.python_version(),
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "warm_speedup": round(cold_seconds / warm_seconds, 2),
    })


def test_bench_wlo_continuation(results_dir):
    """Warm-start continuation: ≥ WARM_SPEEDUP_FLOOR on fir:vex-1.

    Both modes run serially against an empty process-global pass cache
    and an empty continuation store, so each sweep pays its own
    analysis prefix and lowerings and the two wall times differ only
    in WLO search effort.  Best-of-two per mode keeps the CI guard
    robust against scheduler noise; the quality contract (feasible,
    cost ≤ cold, per cell) is asserted on the measured cells.
    """

    def sweep(continuation: str) -> tuple[float, dict]:
        best = float("inf")
        cells = None
        for _ in range(2):
            global_pass_cache().clear()
            clear_continuations()
            plan = SweepPlan.build(
                BENCH_CONFIG, ("fir",), ("vex-1",), PAPER_CONSTRAINT_GRID,
                continuation=continuation,
            )
            started = time.perf_counter()
            cells, stats = SweepExecutor(BENCH_CONFIG, jobs=1).run(plan)
            best = min(best, time.perf_counter() - started)
            assert stats.computed == len(plan)
        return best, cells

    cold_seconds, cold_cells = sweep("")
    warm_seconds, warm_cells = sweep("warm")
    global_pass_cache().clear()
    clear_continuations()

    # The quality contract: every warm cell is feasible and no more
    # expensive than its cold counterpart; cells after the strictest
    # actually continued from a neighbor.
    warm_started = 0
    for request, warm_cell in warm_cells.items():
        cold_cell = cold_cells[type(request)(
            request.kernel, request.target, request.constraint_db,
            request.wlo, request.flow, request.sim_backend, "",
        )]
        assert warm_cell.wlo_first_noise_db <= request.constraint_db
        assert warm_cell.wlo_slp_noise_db <= request.constraint_db
        assert warm_cell.wlo_first_simd_cycles <= cold_cell.wlo_first_simd_cycles
        assert warm_cell.wlo_slp_cycles <= cold_cell.wlo_slp_cycles
        warm_started += bool(warm_cell.warm_start)
    assert warm_started >= len(warm_cells) - 1

    # The acceptance bar: warm-start continuation pays off.
    speedup = cold_seconds / warm_seconds
    assert speedup >= WARM_SPEEDUP_FLOOR

    cold_evals = sum(c.wlo_evaluations for c in cold_cells.values())
    warm_evals = sum(c.wlo_evaluations for c in warm_cells.values())
    _record("wlo_continuation", {
        "kernel": "fir",
        "target": "vex-1",
        "grid_db": list(PAPER_CONSTRAINT_GRID),
        "python": platform.python_version(),
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "warm_speedup": round(speedup, 2),
        "speedup_floor": WARM_SPEEDUP_FLOOR,
        "cold_evaluations": cold_evals,
        "warm_evaluations": warm_evals,
        "warm_cells": warm_started,
    })
