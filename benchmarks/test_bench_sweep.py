"""Micro-benchmark: serial vs parallel sweep engine wall-time.

Runs the same reduced-size plan twice through fresh executors — once
in-process (``jobs=1``), once over a process pool — verifies the
results are bit-identical, and records both timings to
``benchmarks/results/BENCH_sweep.json`` so future PRs have a perf
trajectory for the engine.

The serial pass runs first and warms the process-global analysis
contexts; on fork-based platforms the pool workers inherit them, so
the comparison isolates exactly the cell-evaluation fan-out (the part
the engine parallelizes), not kernel analysis.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro.experiments import KernelConfig, SweepExecutor, SweepPlan

from conftest import RESULTS_DIR

BENCH_CONFIG = KernelConfig(
    n_samples=256, analysis_samples=96, image_size=24, analysis_image_size=18
)
BENCH_GRID = (-15.0, -25.0, -45.0, -65.0)
BENCH_KERNELS = ("fir", "iir")
BENCH_TARGETS = ("xentium", "vex-1")
# Always exercise the pool (≥2 workers) so the bit-identical check
# covers the parallel path even on single-core runners.
BENCH_JOBS = max(2, min(4, os.cpu_count() or 1))


def test_bench_sweep_serial_vs_parallel(results_dir):
    plan = SweepPlan.build(BENCH_CONFIG, BENCH_KERNELS, BENCH_TARGETS, BENCH_GRID)

    started = time.perf_counter()
    serial_cells, serial_stats = SweepExecutor(BENCH_CONFIG, jobs=1).run(plan)
    serial_seconds = time.perf_counter() - started
    assert serial_stats.computed == len(plan)

    started = time.perf_counter()
    parallel_cells, parallel_stats = SweepExecutor(
        BENCH_CONFIG, jobs=BENCH_JOBS
    ).run(plan)
    parallel_seconds = time.perf_counter() - started
    assert parallel_stats.computed == len(plan)

    # The acceptance bar: fan-out must not change a single number.
    assert parallel_cells == serial_cells

    record = {
        "benchmark": "sweep_serial_vs_parallel",
        "n_cells": len(plan),
        "kernels": list(BENCH_KERNELS),
        "targets": list(BENCH_TARGETS),
        "grid_db": list(BENCH_GRID),
        "jobs": BENCH_JOBS,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "parallel_speedup": round(serial_seconds / parallel_seconds, 2),
    }
    path = RESULTS_DIR / "BENCH_sweep.json"
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n{json.dumps(record, indent=2)}\n[written to {path}]")
