"""Model-validation and quantization-mode benches.

These regenerate the supporting experiments of EXPERIMENTS.md: the
analytical-vs-measured noise table (the credibility certificate of
every other result) and the truncation-vs-rounding ablation (D).
"""

from __future__ import annotations

from conftest import persist
from repro.experiments import ablation_quant_mode, validation_table


def test_model_validation_table(runner, benchmark, results_dir):
    """Analytical EVALACC vs bit-accurate simulation, all kernels."""
    table = benchmark.pedantic(
        validation_table, args=(runner,), kwargs={"kernels": ("fir",)},
        rounds=1, iterations=1,
    )
    full = validation_table(runner)
    persist(results_dir, "model_validation", full.render())
    full.to_csv(results_dir / "model_validation.csv")
    # The model must track measurement inside its validity region.
    for kernel, wl, _a, _m, diff, _tier in full.rows:
        if kernel == "iir":
            assert abs(diff) < 4.0
        elif wl >= 12:
            assert abs(diff) < 2.0


def test_quant_mode_ablation(runner, benchmark, results_dir):
    """Truncation (paper) vs rounding: bias gates narrow lanes."""
    table = benchmark.pedantic(
        ablation_quant_mode, args=(runner,),
        kwargs={"grid": (-10.0, -25.0)}, rounds=1, iterations=1,
    )
    persist(results_dir, "ablation_quant_mode", table.render())
    table.to_csv(results_dir / "ablation_quant_mode.csv")
    by_key = {(row[0], row[1]): row for row in table.rows}
    # At -25 dB rounding retains the 4-lane groups truncation loses.
    assert by_key[(-25.0, "round")][4] >= by_key[(-25.0, "truncate")][4]
    # And never at the price of the constraint.
    for row in table.rows:
        assert row[5] <= row[0] + 0.51
