"""Ablation benches — what each design choice of the flow buys.

* A/B/B2: SCALOPTIM (Fig. 1b), the accuracy-conflict class (Fig. 1c)
  and boundary harmonization, toggled off one at a time on WLO-SLP.
* C: the Tabu engine of WLO-First vs greedy max-1 / min+1.
"""

from __future__ import annotations

import pytest

from conftest import persist
from repro.experiments import (
    ablation_wlo_engines,
    ablation_wlo_slp_features,
)
from repro.flows import run_wlo_slp
from repro.targets import get_target

CASES = (("fir", "xentium"), ("iir", "vex-1"), ("conv", "vex-4"))


@pytest.mark.parametrize("kernel,target", CASES)
def test_ablation_features(runner, benchmark, results_dir, kernel, target):
    """WLO-SLP with Fig. 1b / Fig. 1c features toggled off."""
    context = runner.context(kernel)
    benchmark.pedantic(
        lambda: run_wlo_slp(
            context.program, get_target(target), -45.0, context,
            scaloptim=False,
        ),
        rounds=1, iterations=1,
    )
    table = ablation_wlo_slp_features(runner, kernel, target)
    persist(results_dir, f"ablation_features_{kernel}_{target}", table.render())
    table.to_csv(results_dir / f"ablation_features_{kernel}_{target}.csv")
    variants = {row[1] for row in table.rows}
    assert variants == {"full", "no-scaloptim", "no-acc-conflicts",
                        "no-harmonize"}
    # The full configuration is never slower than dropping harmonization.
    by_key = {(row[0], row[1]): row[2] for row in table.rows}
    for constraint in {row[0] for row in table.rows}:
        assert by_key[(constraint, "full")] <= by_key[
            (constraint, "no-harmonize")
        ]


def test_ablation_engines(runner, benchmark, results_dir):
    """Tabu vs greedy word-length engines inside WLO-First."""
    table = ablation_wlo_engines(runner, "fir", "xentium")
    benchmark.pedantic(
        lambda: ablation_wlo_engines(runner, "fir", "st240",
                                     grid=(-35.0,)),
        rounds=1, iterations=1,
    )
    persist(results_dir, "ablation_engines", table.render())
    table.to_csv(results_dir / "ablation_engines.csv")
    engines = {row[1] for row in table.rows}
    assert engines == {"tabu", "max-1", "min+1"}
    # Every engine satisfies the constraint it was given.
    for constraint, _engine, _scalar, _simd, noise_db in table.rows:
        assert noise_db <= constraint + 0.51  # rounding slack
