"""Table I regeneration bench — FIR SIMD cycle counts.

Regenerates the paper's Table I (cycle counts of the SIMD versions of
WLO-First and WLO-SLP for FIR on XENTIUM / ST240 / VEX-4 across the
-5..-65 dB grid) and asserts the property the paper highlights:
WLO-SLP's counts grow monotonically as the constraint tightens, while
WLO-First's may jump around.
"""

from __future__ import annotations

from conftest import persist
from repro.experiments import (
    PAPER_CONSTRAINT_GRID,
    TABLE1_TARGETS,
    table1,
)
from repro.flows import run_wlo_first
from repro.targets import get_target


def test_table1_rows(runner, benchmark, results_dir):
    """Regenerate Table I and persist text + CSV + JSON."""
    context = runner.context("fir")
    target = get_target("st240")
    benchmark.pedantic(
        lambda: run_wlo_first(context.program, target, -35.0, context),
        rounds=1, iterations=1,
    )
    table = table1(runner)
    persist(results_dir, "table1", table.render())
    table.to_csv(results_dir / "table1.csv")
    table.to_json(results_dir / "table1.json")
    assert len(table.rows) == 2 * len(TABLE1_TARGETS)


def test_table1_wlo_slp_monotone(runner, benchmark):
    """WLO-SLP cycles never decrease as the constraint tightens."""
    benchmark.pedantic(
        lambda: runner.sweep("fir", "xentium", PAPER_CONSTRAINT_GRID),
        rounds=1, iterations=1,
    )
    for target in TABLE1_TARGETS:
        cells = runner.sweep("fir", target, PAPER_CONSTRAINT_GRID)
        counts = [c.wlo_slp_cycles for c in cells]
        assert counts == sorted(counts), (
            f"{target}: WLO-SLP cycles not monotone over the grid: {counts}"
        )


def test_table1_magnitudes(runner, benchmark):
    """Cycle counts land in the paper's order of magnitude (1e5-1e6)."""
    benchmark.pedantic(
        lambda: runner.cell("fir", "st240", -25.0), rounds=1, iterations=1,
    )
    for target in TABLE1_TARGETS:
        for cell in runner.sweep("fir", target, PAPER_CONSTRAINT_GRID):
            assert 10_000 < cell.wlo_slp_cycles < 10_000_000
            assert 10_000 < cell.wlo_first_simd_cycles < 10_000_000
