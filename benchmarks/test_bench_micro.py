"""Micro-benchmarks of the substrates.

These time the hot primitives the flows are built on — useful both as
regression guards and to show where the engineering effort went (the
vectorized ``EVALACC`` is the load-bearing one: Fig. 1c's conflict
detection calls it O(candidates^2) times).
"""

from __future__ import annotations

import platform
import time

import numpy as np
import pytest

from repro.fixedpoint import FixedPointInterpreter
from repro.ir import Interpreter, build_dependence_graph, get_backend
from repro.codegen import lower_scalar_program, lower_simd_program
from repro.scheduler import schedule_block
from repro.slp import extract_candidates, initial_items
from repro.targets import get_target
from repro.wlo import tabu_wlo


def test_evalacc_speed(runner, benchmark):
    """Analytical noise evaluation (the paper's EVALACC)."""
    context = runner.context("fir")
    spec = context.fresh_spec()
    power = benchmark(context.model.noise_power, spec)
    assert power > 0.0


def test_float_interpreter_speed(runner, benchmark):
    """Reference interpreter throughput on the FIR analysis twin."""
    context = runner.context("fir")
    program = context.analysis_program
    rng = np.random.default_rng(0)
    inputs = {
        decl.name: rng.uniform(*decl.value_range, size=decl.shape)
        for decl in program.input_arrays()
    }
    interpreter = Interpreter(program)
    outputs = benchmark(interpreter.run, inputs)
    assert "y" in outputs


def test_fxp_interpreter_speed(runner, benchmark):
    """Bit-accurate fixed-point interpreter throughput."""
    context = runner.context("fir")
    program = context.analysis_program
    spec = context.fresh_spec()
    rng = np.random.default_rng(0)
    inputs = {
        decl.name: rng.uniform(*decl.value_range, size=decl.shape)
        for decl in program.input_arrays()
    }
    interpreter = FixedPointInterpreter(program, spec)
    outputs = benchmark(interpreter.run, inputs)
    assert "y" in outputs


def test_bench_sim_backend_throughput(runner, results_dir):
    """Scalar vs batch simulation throughput (recorded per PR).

    Runs the FIR analysis twin — the program every simulation-backed
    validation executes — over one stimulus set through both backends,
    float and fixed point.  The acceptance bar: the batch backend is
    bit-identical and at least 5x faster on both executions.

    Deliberately free of the pytest-benchmark fixture so CI can
    smoke-run it with a bare pytest install.
    """
    from conftest import record_bench

    context = runner.context("fir")
    program = context.analysis_program
    spec = context.fresh_spec()
    rng = np.random.default_rng(0)
    stimuli = [
        {
            decl.name: rng.uniform(*decl.value_range, size=decl.shape)
            for decl in program.input_arrays()
        }
        for _ in range(8)
    ]
    scalar = get_backend("scalar")
    batch = get_backend("batch")
    batch.run_float(program, stimuli[:1])  # warm the vectorization plan

    started = time.perf_counter()
    scalar_float = scalar.run_float(program, stimuli)
    scalar_float_seconds = time.perf_counter() - started
    started = time.perf_counter()
    scalar_fixed = scalar.run_fixed(program, spec, stimuli)
    scalar_fixed_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batch_float = batch.run_float(program, stimuli)
    batch_float_seconds = time.perf_counter() - started
    started = time.perf_counter()
    batch_fixed = batch.run_fixed(program, spec, stimuli)
    batch_fixed_seconds = time.perf_counter() - started

    # Bar 1: not a single bit may differ.
    for ref, got in zip(scalar_float + scalar_fixed,
                        batch_float + batch_fixed):
        for name in ref:
            assert np.array_equal(ref[name], got[name])

    float_speedup = scalar_float_seconds / batch_float_seconds
    fixed_speedup = scalar_fixed_seconds / batch_fixed_seconds
    record_bench("sim_backend_micro", {
        "kernel": "fir",
        "n_samples": program.arrays["y"].shape[0],
        "n_stimuli": len(stimuli),
        "python": platform.python_version(),
        "scalar_float_seconds": round(scalar_float_seconds, 4),
        "batch_float_seconds": round(batch_float_seconds, 4),
        "scalar_fixed_seconds": round(scalar_fixed_seconds, 4),
        "batch_fixed_seconds": round(batch_fixed_seconds, 4),
        "float_speedup": round(float_speedup, 1),
        "fixed_speedup": round(fixed_speedup, 1),
    })
    # Bar 2: the batch backend must pay for itself — >= 5x on both.
    assert float_speedup >= 5.0
    assert fixed_speedup >= 5.0


def test_bench_fxp_native_micro(runner, results_dir):
    """Native int64 tier vs object tier (recorded per PR).

    Same batch interpreter, same vector plan, same stimuli — the only
    difference is the lane dtype the width proof licenses.  The
    acceptance bar: the proof engages on the FIR analysis twin, the
    int64 tier is bit-identical to the object tier, and it is at
    least 3x faster.

    Deliberately free of the pytest-benchmark fixture so CI can
    smoke-run it with a bare pytest install.
    """
    from conftest import record_bench

    context = runner.context("fir")
    program = context.program  # paper-sized, so lane work dominates
    spec = context.fresh_spec()
    rng = np.random.default_rng(0)
    stimuli = [
        {
            decl.name: rng.uniform(*decl.value_range, size=decl.shape)
            for decl in program.input_arrays()
        }
        for _ in range(8)
    ]
    batch = get_backend("batch")
    assert batch.fixed_tier(program, spec) == "batch[int64]"
    batch.run_fixed(program, spec, stimuli[:1])  # warm the plan caches

    started = time.perf_counter()
    native = batch.run_fixed(program, spec, stimuli)
    native_seconds = time.perf_counter() - started
    started = time.perf_counter()
    exact = batch.run_fixed(program, spec, stimuli, force_object=True)
    object_seconds = time.perf_counter() - started

    # Bar 1: the tiers are indistinguishable — not a single bit.
    for ref, got in zip(exact, native):
        for name in ref:
            assert np.array_equal(ref[name], got[name])

    speedup = object_seconds / native_seconds
    record_bench("fxp_native_micro", {
        "kernel": "fir",
        "n_samples": program.arrays["y"].shape[0],
        "n_stimuli": len(stimuli),
        "python": platform.python_version(),
        "tier": batch.fixed_tier(program, spec),
        "object_seconds": round(object_seconds, 4),
        "native_seconds": round(native_seconds, 4),
        "native_speedup": round(speedup, 1),
    })
    # Bar 2: the proof must pay for itself — >= 3x over object lanes.
    assert speedup >= 3.0


def test_scheduler_speed(runner, benchmark):
    """List scheduling of the scalar FIR body."""
    context = runner.context("fir")
    target = get_target("xentium")
    lowered = lower_scalar_program(context.program, context.fresh_spec(), target)
    schedule = benchmark(schedule_block, lowered["body"], target)
    assert schedule.length > 0


def test_candidate_extraction_speed(runner, benchmark):
    """Structural SLP candidate enumeration on the CONV body."""
    context = runner.context("conv")
    block = context.program.blocks["body"]
    deps = build_dependence_graph(block)
    items = initial_items(block)
    target = get_target("vex-4")
    candidates = benchmark(
        extract_candidates, context.program, items, deps, target
    )
    assert len(candidates) > 10


@pytest.mark.parametrize("target_name", ["xentium", "vex-4"])
def test_tabu_wlo_speed(runner, benchmark, target_name):
    """Full Tabu WLO run (the WLO-First engine)."""
    context = runner.context("fir")
    target = get_target(target_name)

    def run():
        spec = context.fresh_spec(max_wl=target.max_wl)
        return tabu_wlo(
            context.program, spec, context.model, target, -35.0
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.best_cost > 0


def test_simd_lowering_speed(runner, benchmark):
    """SIMD lowering of an optimized FIR (pack/shift insertion)."""
    from repro.flows import run_wlo_slp

    context = runner.context("fir")
    target = get_target("vex-4")
    flow = run_wlo_slp(context.program, target, -25.0, context)
    lowered = benchmark(
        lower_simd_program, context.program, flow.spec, target, flow.groups
    )
    assert "body" in lowered
