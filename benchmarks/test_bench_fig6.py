"""Fig. 6 regeneration bench — WLO-SLP speedup over floating point.

XENTIUM (no FPU, soft-float emulation): the paper reports 15-45x.
ST240 (hardware float): the paper reports up to ~1.4x, from SIMD alone.
The bench regenerates both series for all three kernels and asserts
those bands.
"""

from __future__ import annotations

from conftest import persist
from repro.experiments import (
    FIG6_TARGETS,
    PAPER_CONSTRAINT_GRID,
    fig6_table,
    render_fig6,
)
from repro.flows import run_float
from repro.targets import get_target


def test_fig6_series(runner, benchmark, results_dir):
    """Regenerate Fig. 6 and persist text + CSV + JSON."""
    context = runner.context("fir")
    benchmark.pedantic(
        lambda: run_float(context.program, get_target("xentium")),
        rounds=1, iterations=1,
    )
    text = render_fig6(runner)
    persist(results_dir, "fig6", text)
    table = fig6_table(runner)
    table.to_csv(results_dir / "fig6.csv")
    table.to_json(results_dir / "fig6.json")
    assert len(table.rows) == len(FIG6_TARGETS) * 3 * len(PAPER_CONSTRAINT_GRID)


def test_fig6_xentium_band(runner, benchmark):
    """Soft-float elimination lands in the paper's tens-of-x band."""
    benchmark.pedantic(
        lambda: runner.float_cycles("fir", "xentium"), rounds=1, iterations=1,
    )
    for kernel in ("fir", "iir", "conv"):
        for cell in runner.sweep(kernel, "xentium", PAPER_CONSTRAINT_GRID):
            assert 5.0 < cell.float_speedup < 100.0, (
                f"{kernel}@{cell.constraint_db}: {cell.float_speedup:.1f}x"
            )


def test_fig6_st240_band(runner, benchmark):
    """With hardware float the gain is small (SIMD only), near 1x."""
    benchmark.pedantic(
        lambda: runner.float_cycles("fir", "st240"), rounds=1, iterations=1,
    )
    for kernel in ("fir", "iir", "conv"):
        for cell in runner.sweep(kernel, "st240", PAPER_CONSTRAINT_GRID):
            assert 0.5 < cell.float_speedup < 3.0, (
                f"{kernel}@{cell.constraint_db}: {cell.float_speedup:.1f}x"
            )
