"""Shared fixtures for the benchmark harness.

One :class:`~repro.experiments.ExperimentRunner` per session: every
bench shares the per-kernel analysis contexts and memoized sweep
cells, so the full harness regenerates all of the paper's tables and
figures in a few minutes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import ExperimentRunner

RESULTS_DIR = Path(__file__).parent / "results"


def record_bench(name: str, record: dict) -> None:
    """Merge one named benchmark record into BENCH_sweep.json.

    Shared by every bench module that contributes to the per-PR perf
    trajectory; records merge by name so re-running one bench never
    clobbers the others.
    """
    path = RESULTS_DIR / "BENCH_sweep.json"
    try:
        existing = json.loads(path.read_text())
    except (OSError, ValueError):
        existing = {}
    if not isinstance(existing, dict) or "benchmark" in existing:
        existing = {}  # pre-PR-2 single-record format: start over
    existing[name] = record
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    print(f"\n{json.dumps(record, indent=2)}\n[merged into {path}]")


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide experiment runner (paper-sized kernels)."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting text/CSV/JSON renderings of the results."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def persist(results_dir: Path, stem: str, text: str) -> None:
    """Write a text artifact and echo it for ``pytest -s`` runs."""
    path = results_dir / f"{stem}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
