"""Shared fixtures for the benchmark harness.

One :class:`~repro.experiments.ExperimentRunner` per session: every
bench shares the per-kernel analysis contexts and memoized sweep
cells, so the full harness regenerates all of the paper's tables and
figures in a few minutes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentRunner

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide experiment runner (paper-sized kernels)."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting text/CSV/JSON renderings of the results."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def persist(results_dir: Path, stem: str, text: str) -> None:
    """Write a text artifact and echo it for ``pytest -s`` runs."""
    path = results_dir / f"{stem}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
