"""Target model tests."""

import pytest

from repro.errors import TargetError
from repro.targets import (
    TargetModel,
    available_targets,
    get_target,
    register_target,
    vex,
)


class TestRegistry:
    def test_paper_targets_available(self):
        names = available_targets()
        for name in ("xentium", "st240", "vex-1", "vex-4"):
            assert name in names

    def test_case_insensitive(self):
        assert get_target("XENTIUM").name == "xentium"

    def test_unknown_raises(self):
        with pytest.raises(TargetError, match="unknown target"):
            get_target("pentium")

    def test_register_custom(self):
        register_target(
            "test-custom",
            lambda: TargetModel(name="test-custom", issue_width=2),
        )
        assert get_target("test-custom").issue_width == 2

    def test_fresh_instances(self):
        assert get_target("xentium") is not get_target("xentium")


class TestEquationOne:
    """Paper eq. (1): m * Nelem <= SIMD size."""

    def test_xentium_pairs_only(self):
        xentium = get_target("xentium")
        assert xentium.group_wl(2) == 16
        assert xentium.group_wl(4) is None
        assert xentium.max_group_size == 2

    def test_vex_supports_quads(self):
        model = vex(4)
        assert model.group_wl(2) == 16
        assert model.group_wl(3) == 8
        assert model.group_wl(4) == 8
        assert model.group_wl(5) is None
        assert model.max_group_size == 4

    def test_lanes_for_wl(self):
        model = vex(1)
        assert model.lanes_for_wl(16) == 2
        assert model.lanes_for_wl(8) == 4
        assert model.lanes_for_wl(32) == 1
        assert model.lanes_for_wl(24) == 1

    def test_supported_wls(self):
        assert get_target("xentium").supported_wls == (32, 16)
        assert vex(4).supported_wls == (32, 16, 8)


class TestPaperProperties:
    def test_xentium_has_no_fpu(self):
        assert not get_target("xentium").has_hw_float

    def test_st240_has_fpu(self):
        assert get_target("st240").has_hw_float

    def test_vex_issue_widths(self):
        assert vex(1).issue_width == 1
        assert vex(4).issue_width == 4

    def test_loop_overhead_shrinks_with_width(self):
        assert vex(1).loop_overhead_cycles() > vex(4).loop_overhead_cycles()


class TestValidation:
    def test_bad_issue_width(self):
        with pytest.raises(TargetError):
            TargetModel(name="bad", issue_width=0)
        with pytest.raises(TargetError):
            vex(0)

    def test_bad_simd_width(self):
        with pytest.raises(TargetError, match="subdivide"):
            TargetModel(name="bad", issue_width=2, simd_widths=(24,))
        with pytest.raises(TargetError, match="subdivide"):
            TargetModel(name="bad", issue_width=2, simd_widths=(32,))

    def test_missing_units(self):
        with pytest.raises(TargetError, match="at least one"):
            TargetModel(name="bad", issue_width=2, units={"alu": 1, "mul": 1})

    def test_missing_latency(self):
        model = TargetModel(name="m", issue_width=2)
        with pytest.raises(TargetError, match="no latency"):
            model.latency("teleport")

    def test_missing_softfloat_cost(self):
        model = TargetModel(name="m", issue_width=2)
        with pytest.raises(TargetError, match="no soft-float"):
            model.softfloat_latency("fdiv")


class TestCosts:
    def test_pack_unpack_costs(self):
        model = get_target("xentium")
        assert model.pack_ops(2) == 1
        assert model.pack_ops(4) == 3
        assert model.unpack_ops(2) == 1
        assert model.pack_ops(1) == 0

    def test_describe(self):
        text = get_target("xentium").describe()
        assert "12-issue" in text and "2x16" in text and "soft float" in text
