"""List scheduler tests, including hypothesis random-DAG properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulerError
from repro.scheduler import MachineBlock, program_cycles, schedule_block
from repro.targets import TargetModel, get_target


def _target(issue=2, alu=1, mul=1, mem=1):
    return TargetModel(
        name="t", issue_width=issue,
        units={"alu": alu, "mul": mul, "mem": mem, "sfu": 1},
        latencies={"alu": 1, "mul": 3, "mem": 2},
    )


@st.composite
def random_blocks(draw):
    """Random DAGs of machine ops with emission-order dependences."""
    n = draw(st.integers(1, 24))
    block = MachineBlock("rand")
    units = ["alu", "mul", "mem"]
    for mid in range(n):
        preds = ()
        if mid:
            preds = tuple(sorted(draw(
                st.sets(st.integers(0, mid - 1), max_size=3)
            )))
        unit = draw(st.sampled_from(units))
        latency = {"alu": 1, "mul": 3, "mem": 2}[unit]
        block.add(f"op{mid}", unit, latency, preds=preds)
    return block


class TestBasicScheduling:
    def test_empty_block(self):
        schedule = schedule_block(MachineBlock("empty"), _target())
        assert schedule.length == 0

    def test_single_op(self):
        block = MachineBlock("one")
        block.add("mul", "mul", 3)
        schedule = schedule_block(block, _target())
        assert schedule.length == 3

    def test_dependent_chain_is_serial(self):
        block = MachineBlock("chain")
        a = block.add("a", "alu", 1)
        b = block.add("b", "alu", 1, preds=(a,))
        block.add("c", "alu", 1, preds=(b,))
        schedule = schedule_block(block, _target(issue=4, alu=4))
        assert schedule.length == 3

    def test_independent_ops_pack_into_width(self):
        block = MachineBlock("par")
        for _ in range(8):
            block.add("a", "alu", 1)
        wide = schedule_block(block, _target(issue=8, alu=8))
        narrow = schedule_block(block, _target(issue=2, alu=2))
        assert wide.length == 1
        assert narrow.length == 4

    def test_unit_contention(self):
        """Four muls on one pipelined mul unit issue back to back."""
        block = MachineBlock("muls")
        for _ in range(4):
            block.add("mul", "mul", 3)
        schedule = schedule_block(block, _target(issue=4, mul=1))
        assert schedule.length == 3 + 3  # last issues at cycle 3

    def test_non_pipelined_unit_serializes(self):
        target = TargetModel(
            name="t", issue_width=4,
            units={"alu": 1, "mul": 1, "mem": 1, "sfu": 1},
            latencies={"alu": 1, "mul": 3, "mem": 2},
            softfloat_cycles={"fadd": 10},
        )
        block = MachineBlock("soft")
        for _ in range(3):
            block.add("fadd", "sfu", 10)
        schedule = schedule_block(block, target)
        assert schedule.length == 30  # busy for full latency each

    def test_forward_reference_rejected(self):
        from repro.scheduler import MachineOp

        block = MachineBlock("bad")
        block.ops.append(MachineOp(0, "a", "alu", 1, preds=(1,)))
        block.ops.append(MachineOp(1, "b", "alu", 1))
        with pytest.raises(SchedulerError, match="later"):
            schedule_block(block, _target())

    def test_missing_unit_rejected(self):
        block = MachineBlock("nounit")
        block.add("weird", "dsp56k", 1)
        with pytest.raises(SchedulerError, match="no 'dsp56k' unit"):
            schedule_block(block, _target())


class TestScheduleProperties:
    @given(random_blocks())
    @settings(max_examples=60, deadline=None)
    def test_dependences_respected(self, block):
        target = _target(issue=2)
        schedule = schedule_block(block, target)
        for op in block.ops:
            for pred in op.preds:
                pred_op = block.ops[pred]
                assert (
                    schedule.issue_cycle[pred] + pred_op.latency
                    <= schedule.issue_cycle[op.mid]
                )

    @given(random_blocks())
    @settings(max_examples=60, deadline=None)
    def test_resources_respected(self, block):
        target = _target(issue=2)
        schedule = schedule_block(block, target)
        by_cycle: dict[int, list] = {}
        for op in block.ops:
            by_cycle.setdefault(schedule.issue_cycle[op.mid], []).append(op)
        for ops in by_cycle.values():
            assert len(ops) <= target.issue_width
            for unit, count in target.units.items():
                used = sum(1 for op in ops if op.unit == unit)
                assert used <= count

    @given(random_blocks())
    @settings(max_examples=60, deadline=None)
    def test_length_lower_bounds(self, block):
        """Schedule length >= critical path and >= work/width."""
        target = _target(issue=2)
        schedule = schedule_block(block, target)
        critical = {op.mid: op.latency for op in block.ops}
        for op in block.ops:
            for pred in op.preds:
                critical[op.mid] = max(
                    critical[op.mid],
                    critical[pred] + op.latency,
                )
        assert schedule.length >= max(critical.values())
        assert schedule.length >= -(-len(block.ops) // target.issue_width)

    @given(random_blocks())
    @settings(max_examples=30, deadline=None)
    def test_every_op_scheduled_once(self, block):
        schedule = schedule_block(block, _target())
        assert all(c >= 0 for c in schedule.issue_cycle)
        assert schedule.n_ops == len(block.ops)


class TestProgramCycles:
    def test_loop_multiplication(self, tiny_program):
        target = get_target("xentium")
        from repro.codegen import lower_scalar_program
        from repro.fixedpoint import FixedPointSpec, SlotMap

        spec = FixedPointSpec(SlotMap(tiny_program))
        lowered = lower_scalar_program(tiny_program, spec, target)
        report = program_cycles(tiny_program, lowered, target)
        body = report.block_cycles("body")
        init = report.block_cycles("init")
        fin = report.block_cycles("fin")
        overhead = target.loop_overhead_cycles()
        assert report.total_cycles == init + 8 * (body + overhead) + fin

    def test_missing_block_rejected(self, tiny_program):
        with pytest.raises(SchedulerError, match="not lowered"):
            program_cycles(tiny_program, {}, get_target("xentium"))

    def test_report_summary(self, tiny_program):
        from repro.codegen import lower_scalar_program
        from repro.fixedpoint import FixedPointSpec, SlotMap

        target = get_target("xentium")
        spec = FixedPointSpec(SlotMap(tiny_program))
        lowered = lower_scalar_program(tiny_program, spec, target)
        report = program_cycles(tiny_program, lowered, target)
        text = report.summary()
        assert "tiny" in text and "cycles" in text
