"""Warm-start continuation and Pareto-front WLO tests.

These pin the continuation *quality contract* (see
``repro.wlo.continuation``): a warm-started search must stay feasible
and must never cost more than the same engine's cold result.  The
numbers are empirical pins on the shipped kernels, not mathematical
guarantees — a regression here means a seed-adoption path broke.
"""

import pytest

from repro.errors import WLOError
from repro.experiments import ExperimentRunner
from repro.experiments.engine import CellRequest, cell_pipeline_signature
from repro.targets import get_target
from repro.wlo import (
    JointWarmStart,
    apply_warm_start,
    clear_continuations,
    max_minus_one,
    min_plus_one,
    pareto_frontier,
    register_wlo_engine,
    tabu_wlo,
    wl_relative_cost,
    wlo_slp_optimize,
)
from repro.wlo.continuation import (
    lookup_continuation,
    lookup_frontier,
    record_continuation,
    record_frontier,
)

TARGET = "xentium"


def _assignment(context, spec):
    return {root: spec.wl(root) for root in context.slotmap.roots}


def _solve_cold(context, target, constraint):
    """Tabu-solve one constraint cold; (assignment, cost)."""
    spec = context.fresh_spec()
    result = tabu_wlo(context.program, spec, context.model, target, constraint)
    return _assignment(context, spec), result.best_cost


class TestApplyWarmStart:
    def test_full_supported_assignment_is_applied(self, fir_context):
        target = get_target(TARGET)
        seed, _ = _solve_cold(fir_context, target, -45.0)
        spec = fir_context.fresh_spec()
        assert apply_warm_start(spec, seed, sorted(target.supported_wls))
        assert _assignment(fir_context, spec) == seed

    def test_none_is_rejected(self, fir_context):
        spec = fir_context.fresh_spec()
        assert not apply_warm_start(spec, None, (16, 32))

    def test_partial_assignment_is_rejected_wholesale(self, fir_context):
        target = get_target(TARGET)
        seed, _ = _solve_cold(fir_context, target, -45.0)
        missing = dict(seed)
        missing.pop(next(iter(missing)))
        spec = fir_context.fresh_spec()
        before = spec.wl_vector().copy()
        assert not apply_warm_start(
            spec, missing, sorted(target.supported_wls)
        )
        assert (spec.wl_vector() == before).all()

    def test_unsupported_width_is_rejected_wholesale(self, fir_context):
        target = get_target(TARGET)
        seed, _ = _solve_cold(fir_context, target, -45.0)
        bad = dict(seed)
        bad[next(iter(bad))] = 13  # not a native width anywhere
        spec = fir_context.fresh_spec()
        before = spec.wl_vector().copy()
        assert not apply_warm_start(spec, bad, sorted(target.supported_wls))
        assert (spec.wl_vector() == before).all()


class TestContinuationStore:
    def test_lookup_returns_nearest_not_looser(self):
        clear_continuations()
        record_continuation("k", -45.0, "strict")
        record_continuation("k", -25.0, "loose")
        # Asking at -30: only -45 is at least as strict.
        assert lookup_continuation("k", -30.0) == "strict"
        # Asking at -20: -25 is the nearest stricter entry.
        assert lookup_continuation("k", -20.0) == "loose"
        # Asking at -60: nothing is strict enough -> cold.
        assert lookup_continuation("k", -60.0) is None
        clear_continuations()

    def test_exact_constraint_is_replaced_not_duplicated(self):
        clear_continuations()
        record_continuation("k", -25.0, "first")
        record_continuation("k", -25.0, "second")
        assert lookup_continuation("k", -25.0) == "second"
        clear_continuations()

    def test_keys_are_independent(self):
        clear_continuations()
        record_continuation("a", -45.0, "a-payload")
        assert lookup_continuation("b", -15.0) is None
        clear_continuations()

    def test_clear_drops_solutions_and_frontiers(self):
        record_continuation("k", -45.0, "payload")
        record_frontier("k", "frontier")
        clear_continuations()
        assert lookup_continuation("k", -15.0) is None
        assert lookup_frontier("k") is None


class TestTabuWarmStart:
    def test_warm_run_is_deterministic(self, fir_context):
        """One (program, constraint, seed) triple -> one trajectory."""
        target = get_target(TARGET)
        seed, _ = _solve_cold(fir_context, target, -45.0)
        spec_a = fir_context.fresh_spec()
        spec_b = fir_context.fresh_spec()
        result_a = tabu_wlo(
            fir_context.program, spec_a, fir_context.model, target, -25.0,
            warm_start=seed,
        )
        result_b = tabu_wlo(
            fir_context.program, spec_b, fir_context.model, target, -25.0,
            warm_start=seed,
        )
        assert result_a.warm_start and result_b.warm_start
        assert (spec_a.wl_vector() == spec_b.wl_vector()).all()
        assert result_a.iterations == result_b.iterations
        assert result_a.evaluations == result_b.evaluations
        assert result_a.best_cost == result_b.best_cost

    @pytest.mark.parametrize("constraint", [-15.0, -25.0, -35.0])
    def test_warm_matches_cold_quality(self, fir_context, constraint):
        target = get_target(TARGET)
        seed, _ = _solve_cold(fir_context, target, -45.0)
        _, cold_cost = _solve_cold(fir_context, target, constraint)
        spec = fir_context.fresh_spec()
        result = tabu_wlo(
            fir_context.program, spec, fir_context.model, target,
            constraint, warm_start=seed,
        )
        assert result.warm_start
        assert not fir_context.model.violates(spec, constraint)
        assert result.best_cost <= cold_cost

    def test_infeasible_seed_falls_back_to_cold(self, fir_context):
        """A looser neighbor's solution violates a stricter constraint:
        the search must reject it and reproduce the cold result.

        The constraint pair matters: the small FIR sits at -70.7 dB
        already at uniform 16 bit, so only a sub--71 dB cell can see an
        infeasible seed at all.
        """
        target = get_target(TARGET)
        seed, _ = _solve_cold(fir_context, target, -15.0)
        cold_spec = fir_context.fresh_spec()
        cold = tabu_wlo(
            fir_context.program, cold_spec, fir_context.model, target, -90.0
        )
        warm_spec = fir_context.fresh_spec()
        warm = tabu_wlo(
            fir_context.program, warm_spec, fir_context.model, target, -90.0,
            warm_start=seed,
        )
        assert not warm.warm_start
        assert warm.best_cost == cold.best_cost
        assert (warm_spec.wl_vector() == cold_spec.wl_vector()).all()

    def test_infeasible_constraint_still_raises(self, fir_context):
        target = get_target(TARGET)
        seed, _ = _solve_cold(fir_context, target, -45.0)
        spec = fir_context.fresh_spec()
        with pytest.raises(WLOError, match="infeasible"):
            tabu_wlo(
                fir_context.program, spec, fir_context.model, target, -400.0,
                warm_start=seed,
            )


class TestGreedyWarmStart:
    @pytest.mark.parametrize(
        "context_name", ["fir_context", "iir_context", "conv_context"]
    )
    def test_max_minus_one_parity_on_every_kernel(self, request, context_name):
        """Warm max-1 is feasible and no costlier than cold, on every
        shipped kernel."""
        context = request.getfixturevalue(context_name)
        target = get_target(TARGET)
        seed_spec = context.fresh_spec()
        max_minus_one(
            context.program, seed_spec, context.model, target, -45.0
        )
        seed = _assignment(context, seed_spec)

        cold_spec = context.fresh_spec()
        cold = max_minus_one(
            context.program, cold_spec, context.model, target, -25.0
        )
        warm_spec = context.fresh_spec()
        warm = max_minus_one(
            context.program, warm_spec, context.model, target, -25.0,
            warm_start=seed,
        )
        assert warm.warm_start
        assert not context.model.violates(warm_spec, -25.0)
        assert warm.cost <= cold.cost
        # The seed starts next to the endpoint: warm must not do more
        # narrowing work than the full cold descent.
        assert warm.moves <= cold.moves

    def test_min_plus_one_continues_from_infeasible_seed(self, fir_context):
        """An infeasible seed lies on min+1's own widening path, so the
        warm result is bit-identical to cold.

        The seed must actually be partway up the width ladder: a -80 dB
        solution is a strict prefix of the -90 dB cold trajectory (the
        small FIR is below -71 dB at the all-minimum start, so looser
        pairs never leave that start and would test nothing).
        """
        target = get_target(TARGET)
        seed_spec = fir_context.fresh_spec()
        min_plus_one(
            fir_context.program, seed_spec, fir_context.model, target, -80.0
        )
        seed = _assignment(fir_context, seed_spec)
        assert fir_context.model.violates(seed_spec, -90.0)

        cold_spec = fir_context.fresh_spec()
        cold = min_plus_one(
            fir_context.program, cold_spec, fir_context.model, target, -90.0
        )
        warm_spec = fir_context.fresh_spec()
        warm = min_plus_one(
            fir_context.program, warm_spec, fir_context.model, target, -90.0,
            warm_start=seed,
        )
        assert warm.warm_start
        assert warm.cost == cold.cost
        assert (warm_spec.wl_vector() == cold_spec.wl_vector()).all()
        assert warm.moves < cold.moves

    def test_min_plus_one_feasible_seed_falls_back_to_cold(self, fir_context):
        """A feasible seed would strand a widening search above the
        cold cost; min+1 must ignore it."""
        target = get_target(TARGET)
        seed_spec = fir_context.fresh_spec()
        min_plus_one(
            fir_context.program, seed_spec, fir_context.model, target, -80.0
        )
        seed = _assignment(fir_context, seed_spec)
        assert not fir_context.model.violates(seed_spec, -15.0)

        cold_spec = fir_context.fresh_spec()
        cold = min_plus_one(
            fir_context.program, cold_spec, fir_context.model, target, -15.0
        )
        warm_spec = fir_context.fresh_spec()
        warm = min_plus_one(
            fir_context.program, warm_spec, fir_context.model, target, -15.0,
            warm_start=seed,
        )
        assert not warm.warm_start
        assert warm.cost == cold.cost
        assert (warm_spec.wl_vector() == cold_spec.wl_vector()).all()


class TestJointWarmStart:
    def test_warm_joint_matches_cold_quality(self, fir_context):
        target = get_target(TARGET)
        seed_spec = fir_context.fresh_spec()
        seed_outcome = wlo_slp_optimize(
            fir_context.program, seed_spec, fir_context.model, target, -45.0
        )
        assert seed_outcome.selection.accuracy_rejections == 0
        assert seed_outcome.selection.accuracy_conflicts == 0
        seed = JointWarmStart(
            wls=_assignment(fir_context, seed_spec),
            groups=seed_outcome.groups,
            partition_safe=True,
        )

        cold_spec = fir_context.fresh_spec()
        wlo_slp_optimize(
            fir_context.program, cold_spec, fir_context.model, target, -25.0
        )
        cold_cost = wl_relative_cost(fir_context.program, cold_spec, target)

        warm_spec = fir_context.fresh_spec()
        warm_outcome = wlo_slp_optimize(
            fir_context.program, warm_spec, fir_context.model, target, -25.0,
            warm_start=seed,
        )
        assert warm_outcome.warm_start
        assert not fir_context.model.violates(warm_spec, -25.0)
        warm_cost = wl_relative_cost(fir_context.program, warm_spec, target)
        assert warm_cost <= cold_cost
        # The adopted partition pre-merges the seed's groups, so the
        # warm run keeps at least as much SIMD grouping.
        assert warm_outcome.n_groups >= seed_outcome.n_groups

    def test_unsafe_partition_is_ignored(self, fir_context):
        """A seed whose partition was shaped by accuracy checks at the
        stricter constraint must not be adopted (cost contract)."""
        target = get_target(TARGET)
        seed_spec = fir_context.fresh_spec()
        seed_outcome = wlo_slp_optimize(
            fir_context.program, seed_spec, fir_context.model, target, -45.0
        )
        seed = JointWarmStart(
            wls=_assignment(fir_context, seed_spec),
            groups=seed_outcome.groups,
            partition_safe=False,
        )
        cold_spec = fir_context.fresh_spec()
        cold = wlo_slp_optimize(
            fir_context.program, cold_spec, fir_context.model, target, -25.0
        )
        warm_spec = fir_context.fresh_spec()
        warm = wlo_slp_optimize(
            fir_context.program, warm_spec, fir_context.model, target, -25.0,
            warm_start=seed,
        )
        assert not warm.warm_start
        assert (warm_spec.wl_vector() == cold_spec.wl_vector()).all()
        assert warm.n_groups == cold.n_groups

    def test_unusable_seed_runs_cold(self, fir_context):
        target = get_target(TARGET)
        seed = JointWarmStart(wls={0: 13}, groups={}, partition_safe=True)
        cold_spec = fir_context.fresh_spec()
        cold = wlo_slp_optimize(
            fir_context.program, cold_spec, fir_context.model, target, -25.0
        )
        warm_spec = fir_context.fresh_spec()
        warm = wlo_slp_optimize(
            fir_context.program, warm_spec, fir_context.model, target, -25.0,
            warm_start=seed,
        )
        assert not warm.warm_start
        assert (warm_spec.wl_vector() == cold_spec.wl_vector()).all()
        assert warm.n_groups == cold.n_groups


class TestParetoFrontier:
    GRID = (-15.0, -25.0, -35.0, -45.0)

    def test_frontier_is_strictly_monotone(self, fir_context):
        target = get_target(TARGET)
        frontier = pareto_frontier(
            fir_context.program, fir_context.fresh_spec(), fir_context.model,
            target,
        )
        assert len(frontier.points) >= 2
        for before, after in zip(frontier.points, frontier.points[1:]):
            assert after.cost < before.cost
            assert after.noise_db > before.noise_db

    def test_projection_is_feasible_on_the_grid(self, fir_context):
        target = get_target(TARGET)
        frontier = pareto_frontier(
            fir_context.program, fir_context.fresh_spec(), fir_context.model,
            target,
        )
        spec = fir_context.fresh_spec()
        for constraint in self.GRID:
            point = frontier.project(constraint)
            assert point.noise_db <= constraint
            assert apply_warm_start(
                spec, point.wls, sorted(target.supported_wls)
            )
            assert not fir_context.model.violates(spec, constraint)

    def test_projection_picks_the_cheapest_feasible_point(self, fir_context):
        target = get_target(TARGET)
        frontier = pareto_frontier(
            fir_context.program, fir_context.fresh_spec(), fir_context.model,
            target,
        )
        for constraint in self.GRID:
            point = frontier.project(constraint)
            feasible = [
                p for p in frontier.points if p.noise_db <= constraint
            ]
            assert point.cost == min(p.cost for p in feasible)

    def test_infeasible_projection_raises(self, fir_context):
        target = get_target(TARGET)
        frontier = pareto_frontier(
            fir_context.program, fir_context.fresh_spec(), fir_context.model,
            target,
        )
        with pytest.raises(WLOError, match="infeasible"):
            frontier.project(-400.0)

    def test_walk_is_deterministic(self, fir_context):
        target = get_target(TARGET)
        first = pareto_frontier(
            fir_context.program, fir_context.fresh_spec(), fir_context.model,
            target,
        )
        second = pareto_frontier(
            fir_context.program, fir_context.fresh_spec(), fir_context.model,
            target,
        )
        assert first.points == second.points
        assert first.moves == second.moves
        assert first.evaluations == second.evaluations


# ----------------------------------------------------------------------
# Sweep integration: the continuation store, the pipeline passes and
# the experiment engine working together.

GRID = (-15.0, -45.0)
SMALL = dict(
    n_samples=96, analysis_samples=96, image_size=18, analysis_image_size=18,
)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(**SMALL)


class TestSweepContinuation:
    def test_warm_sweep_keeps_the_quality_contract(self, runner):
        clear_continuations()
        cold = runner.sweep("fir", TARGET, GRID)
        warm = runner.sweep("fir", TARGET, GRID, continuation="warm")
        assert [c.constraint_db for c in warm] == list(GRID)
        for cold_cell, warm_cell in zip(cold, warm):
            assert warm_cell.wlo_slp_noise_db <= warm_cell.constraint_db
            assert warm_cell.wlo_first_noise_db <= warm_cell.constraint_db
            assert warm_cell.wlo_slp_cycles <= cold_cell.wlo_slp_cycles
            assert (
                warm_cell.wlo_first_simd_cycles
                <= cold_cell.wlo_first_simd_cycles
            )
        # Strictest-first execution: the loose cell continues from the
        # strict one's solution and says so.
        loose = next(c for c in warm if c.constraint_db == -15.0)
        assert loose.warm_start
        assert loose.wlo_iterations > 0

    def test_warm_and_cold_cells_never_alias(self, runner):
        cold_cell = runner.cell("fir", TARGET, -15.0)
        warm_cell = runner.cell("fir", TARGET, -15.0, continuation="warm")
        assert cold_cell is not warm_cell
        assert not cold_cell.warm_start

    def test_continuation_splits_the_pipeline_signature(self):
        cold = cell_pipeline_signature(CellRequest("fir", TARGET, -15.0))
        warm = cell_pipeline_signature(
            CellRequest("fir", TARGET, -15.0, continuation="warm")
        )
        pareto = cell_pipeline_signature(
            CellRequest("fir", TARGET, -15.0, continuation="pareto")
        )
        assert cold != warm
        assert cold != pareto
        assert warm != pareto

    def test_pareto_sweep_is_feasible_and_memoized(self, runner):
        clear_continuations()
        cells = runner.sweep("fir", TARGET, GRID, continuation="pareto")
        for cell in cells:
            assert cell.wlo_slp_noise_db <= cell.constraint_db
            assert cell.wlo_first_noise_db <= cell.constraint_db
        # Every cell after the panel's first reuses the memoized
        # frontier (grid runs strictest-first, so -15 comes second).
        loose = next(c for c in cells if c.constraint_db == -15.0)
        assert loose.warm_start

    def test_cold_cells_report_search_effort(self, runner):
        cell = runner.cell("fir", TARGET, -15.0)
        assert cell.wlo_iterations > 0
        assert cell.wlo_evaluations > 0
        assert not cell.warm_start

    def test_engine_without_warm_start_keyword_runs_cold(self, runner):
        """The pass only forwards seeds to engines that declare the
        keyword; a plain engine must keep working under --continuation."""
        from repro.pipeline.passes import _engine_accepts_warm_start

        def plain(program, spec, model, target, constraint_db):
            return max_minus_one(program, spec, model, target, constraint_db)

        assert _engine_accepts_warm_start(tabu_wlo)
        assert _engine_accepts_warm_start(max_minus_one)
        assert not _engine_accepts_warm_start(plain)

        register_wlo_engine("plain-cold", plain, overwrite=True)
        clear_continuations()
        cells = runner.sweep(
            "fir", TARGET, GRID, wlo="plain-cold", continuation="warm"
        )
        for cell in cells:
            assert cell.wlo_first_noise_db <= cell.constraint_db
