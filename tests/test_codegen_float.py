"""Float lowering tests: hardware FPU vs soft-float emulation."""

from repro.codegen import lower_float_block, lower_float_program
from repro.scheduler import program_cycles, schedule_block
from repro.targets import get_target


class TestSoftFloat:
    def test_fp_ops_on_sfu(self, small_fir):
        target = get_target("xentium")
        machine = lower_float_block(
            small_fir, small_fir.blocks["body"], target
        )
        histogram = machine.op_histogram()
        assert histogram["fmul"] == 4
        assert histogram["fadd"] == 4
        sfu_ops = [op for op in machine.ops if op.unit == "sfu"]
        assert len(sfu_ops) == 8
        assert all(op.latency >= 20 for op in sfu_ops)

    def test_sfu_serializes(self, small_fir):
        target = get_target("xentium")
        machine = lower_float_block(
            small_fir, small_fir.blocks["body"], target
        )
        schedule = schedule_block(machine, target)
        min_serial = sum(
            op.latency for op in machine.ops if op.unit == "sfu"
        )
        assert schedule.length >= min_serial

    def test_no_requant_shifts(self, small_fir):
        target = get_target("xentium")
        machine = lower_float_block(
            small_fir, small_fir.blocks["body"], target
        )
        names = set(machine.op_histogram())
        assert "shr" not in names and "shl" not in names


class TestHardwareFloat:
    def test_fp_ops_pipelined(self, small_fir):
        target = get_target("st240")
        machine = lower_float_block(
            small_fir, small_fir.blocks["body"], target
        )
        fp_ops = [op for op in machine.ops if op.name.startswith("f")]
        assert all(op.unit == "mul" for op in fp_ops)
        assert all(op.latency == 3 for op in fp_ops)

    def test_hw_float_orders_of_magnitude_faster(self, small_fir):
        xentium = get_target("xentium")
        st240 = get_target("st240")
        soft = program_cycles(
            small_fir, lower_float_program(small_fir, xentium), xentium
        )
        hard = program_cycles(
            small_fir, lower_float_program(small_fir, st240), st240
        )
        assert soft.total_cycles > 5 * hard.total_cycles


class TestMemoryOps:
    def test_loads_and_stores_lowered(self, small_fir):
        target = get_target("st240")
        machine = lower_float_block(
            small_fir, small_fir.blocks["body"], target
        )
        histogram = machine.op_histogram()
        assert histogram["ld"] == 8

    def test_whole_program(self, small_iir):
        target = get_target("xentium")
        lowered = lower_float_program(small_iir, target)
        assert set(lowered) == set(small_iir.blocks)
        report = program_cycles(small_iir, lowered, target)
        assert report.total_cycles > 0
