"""The numeric-format axis: registry, exact RNE quantization, the
arbitrary-precision bigfloat oracle, and format sweep cells.

Three contracts pinned here:

* **Exactness** — :class:`~repro.formats.FloatFormat` rounding is true
  IEEE RNE: bit-identical to numpy's float32/float16 casts on their
  shared formats, idempotent, subnormal- and overflow-correct.
* **Oracle soundness** (golden) — on every shipped kernel the float64
  reference agrees with the 200-bit ``bigfloat`` oracle to far below
  any noise level the experiments report, and fixed-point execution
  under the oracle backend stays bit-identical to the scalar
  reference.
* **No aliasing** — format cells key caches separately from
  fixed-point cells on every layer (request, pipeline signature, disk
  cache), while the default spelling stays byte-identical to the
  pre-format scheme.
"""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.accuracy import FormatAccuracyEvaluator
from repro.accuracy.metrics import measured_noise_power
from repro.api import SweepRequest
from repro.errors import FormatError
from repro.experiments import (
    CellRequest,
    ExperimentRunner,
    KernelConfig,
    SweepCache,
    cell_pipeline_signature,
)
from repro.formats import (
    BigFloat,
    FloatFormat,
    available_formats,
    big_to_float,
    canonical_format,
    ensure_quantization_format,
    get_format,
    register_format,
)
from repro.ir import get_backend
from repro.kernels import conv2d, dot_product, fir, iir, sad, scale_offset
from repro.utils import power_to_db

SMALL = dict(
    n_samples=96, analysis_samples=96, image_size=18, analysis_image_size=18
)

#: Small instances of every registered kernel (mirrors
#: tests/test_backend.py's catalog).
KERNEL_BUILDERS = {
    "fir": lambda: fir(n_samples=40, n_taps=16),
    "iir": lambda: iir(n_samples=48, order=4),
    "conv": lambda: conv2d(height=11, width=12),
    "dot": lambda: dot_product(length=32),
    "sad": lambda: sad(length=32),
    "scale_offset": lambda: scale_offset(length=32),
}


def _stimuli(program, seed, count=2):
    rng = np.random.default_rng(seed)
    return [
        {
            decl.name: rng.uniform(*decl.value_range, size=decl.shape)
            for decl in program.input_arrays()
        }
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# Exact RNE quantization.


class TestFloatFormatRounding:
    def _probe_values(self):
        rng = np.random.default_rng(7)
        values = list(rng.uniform(-4.0, 4.0, size=64))
        values += list(rng.normal(0.0, 1e-40, size=16))  # subnormal zone
        values += list(rng.normal(0.0, 1e38, size=16))  # overflow zone
        values += [0.0, -0.0, 1.0, -1.0, 2.0**-149, 2.0**-150, 1e39, -1e39]
        return np.array(values, dtype=np.float64)

    def test_float32_matches_numpy_cast_bit_for_bit(self):
        spec = get_format("float32")
        values = self._probe_values()
        ours = spec.quantize_array(values)
        with np.errstate(over="ignore"):  # the overflow-to-inf probes
            numpy_cast = values.astype(np.float32).astype(np.float64)
        assert np.array_equal(ours, numpy_cast)
        assert np.array_equal(np.signbit(ours), np.signbit(numpy_cast))

    def test_half_precision_matches_numpy_float16(self):
        # IEEE half is the binary(5,10) family member; numpy's float16
        # cast is the independent reference implementation.
        spec = get_format("binary(5,10)")
        values = np.array(
            list(np.random.default_rng(11).uniform(-70000, 70000, 64))
            + [2.0**-25, 2.0**-26, 65504.0, 65520.0, -65520.0, 1e-8],
            dtype=np.float64,
        )
        ours = spec.quantize_array(values)
        with np.errstate(over="ignore"):  # the overflow-to-inf probes
            numpy_cast = values.astype(np.float16).astype(np.float64)
        assert np.array_equal(ours, numpy_cast)

    @pytest.mark.parametrize("name", ["bfloat16", "binary(8,10)", "float32"])
    def test_rounding_is_idempotent(self, name):
        spec = get_format(name)
        once = spec.quantize_array(self._probe_values())
        finite = once[np.isfinite(once)]
        assert np.array_equal(spec.quantize_array(finite), finite)

    def test_signed_zero_and_infinities_preserved(self):
        spec = get_format("bfloat16")
        assert math.copysign(1.0, spec.round_value(-0.0)) == -1.0
        assert spec.round_value(math.inf) == math.inf
        assert spec.round_value(-math.inf) == -math.inf

    def test_overflow_rounds_to_infinity(self):
        bf16 = get_format("bfloat16")
        # bfloat16 max finite is 2**127 * (2 - 2**-7) ~= 3.39e38.
        assert bf16.round_value(1e39) == math.inf
        assert bf16.round_value(-1e39) == -math.inf
        assert bf16.round_value(3.38e38) != math.inf

    def test_tiny_values_round_onto_subnormal_grid(self):
        f32 = get_format("float32")
        ulp = 2.0**-149  # smallest float32 subnormal
        assert f32.round_value(ulp) == ulp
        assert f32.round_value(ulp * 0.25) == 0.0
        # Ties round to even: 1.5 ulp -> 2 ulp, 0.5 ulp -> 0.
        assert f32.round_value(ulp * 1.5) == 2 * ulp
        assert f32.round_value(ulp * 0.5) == 0.0

    def test_float64_is_the_identity(self):
        f64 = get_format("float64")
        values = self._probe_values()
        assert np.array_equal(f64.quantize_array(values), values)

    def test_shapes_survive_quantization(self):
        spec = get_format("float32")
        grid = np.random.default_rng(3).uniform(-1, 1, size=(4, 5))
        assert spec.quantize_array(grid).shape == (4, 5)

    def test_width_bounds_enforced(self):
        with pytest.raises(FormatError, match="exponent width"):
            FloatFormat("toowide", 12, 10)
        with pytest.raises(FormatError, match="mantissa width"):
            FloatFormat("toolong", 8, 53)


# ----------------------------------------------------------------------
# The oracle value type.


class TestBigFloat:
    def test_float64_round_trips_exactly(self):
        for value in (0.1, -1.0 / 3.0, 2.0**-1060, 1.794e308, -0.0, 42.5):
            assert big_to_float(BigFloat.from_float(value)) == value

    def test_arithmetic_beats_float64(self):
        # 1 + 2**-80 cancels to exactly 2**-80 at 200-bit precision;
        # float64 would return 0.
        one = BigFloat.from_float(1.0)
        tiny = BigFloat.from_float(2.0**-80)
        assert float((one + tiny) - one) == 2.0**-80
        assert (1.0 + 2.0**-80) - 1.0 == 0.0  # the float64 failure mode

    def test_multiplication_is_exact_within_precision(self):
        x = BigFloat.from_float(1.5)
        assert float(x * x) == 2.25
        assert float(-x) == -1.5
        assert float(abs(-x)) == 1.5

    def test_mixed_type_comparisons(self):
        two = BigFloat.from_float(2.0)
        assert two == 2.0 and two == 2
        assert two > 1.75 and two < 3
        assert 1.75 < two  # reflected
        assert hash(two) == hash(BigFloat.from_float(2.0))

    def test_precision_rounding_is_rne(self):
        # 2**201 + 1 needs 202 bits; at prec=200 the tail rounds away.
        rounded = BigFloat((1 << 201) + 1, 0)
        assert rounded == BigFloat(1, 201)

    def test_non_finite_rejected(self):
        with pytest.raises(FormatError, match="non-finite"):
            BigFloat.from_float(math.inf)

    def test_overflowing_conversion_saturates_to_inf(self):
        assert big_to_float(BigFloat(1, 2000)) == math.inf
        assert big_to_float(BigFloat(-1, 2000)) == -math.inf


# ----------------------------------------------------------------------
# Registry dialect and aliasing.


class TestFormatRegistry:
    def test_unknown_format_error_is_the_standard_dialect(self):
        with pytest.raises(FormatError) as excinfo:
            get_format("floot32")
        assert str(excinfo.value) == (
            "unknown format 'floot32'; available: bfloat16, bigfloat, "
            "binary(E,M), fixed, float32, float64"
        )

    def test_lookup_is_case_insensitive(self):
        assert get_format("Float32") is get_format("float32")
        assert get_format("") is get_format("fixed")

    def test_binary_family_is_memoized(self):
        assert get_format("binary(8, 10)") is get_format("BINARY(8,10)")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(FormatError, match="already registered"):
            register_format(FloatFormat("float32", 8, 23))

    def test_oracle_is_not_sweepable(self):
        with pytest.raises(FormatError, match="not a.*sweepable"):
            ensure_quantization_format("bigfloat")
        assert ensure_quantization_format("float32").name == "float32"

    def test_listing_is_sorted(self):
        names = available_formats()
        assert names == sorted(names)
        assert {"fixed", "float32", "bfloat16", "bigfloat"} <= set(names)

    def test_canonical_spelling(self):
        assert canonical_format("") == ""
        assert canonical_format("Fixed") == ""
        assert canonical_format("Binary( 8 , 10 )") == "binary(8,10)"
        assert canonical_format("FLOAT32") == "float32"

    def test_fixed_spellings_never_split_cells(self):
        default = CellRequest("fir", "vex-1", -25.0, "tabu", "wlo-slp")
        spelled = CellRequest(
            "fir", "vex-1", -25.0, "tabu", "wlo-slp", format="fixed"
        )
        assert default == spelled
        assert default.format == ""


# ----------------------------------------------------------------------
# Oracle soundness (golden).


class TestOracleSoundness:
    #: The float64 reference's rounding noise vs the oracle must sit
    #: far below any constraint the experiments sweep (the loosest is
    #: -2.5 dB, the strictest -70 dB).
    REFERENCE_NOISE_CEILING_DB = -180.0

    @pytest.mark.parametrize("kernel", sorted(KERNEL_BUILDERS))
    def test_float64_reference_agrees_with_oracle(self, kernel):
        program = KERNEL_BUILDERS[kernel]()
        stimuli = _stimuli(program, 2017)
        float64 = get_backend("batch").run_float(program, stimuli)
        oracle = get_backend("bigfloat").run_float(program, stimuli)
        power = sum(
            measured_noise_power(exact, rounded)
            for exact, rounded in zip(oracle, float64)
        ) / len(stimuli)
        noise_db = power_to_db(power)
        assert noise_db < self.REFERENCE_NOISE_CEILING_DB, (kernel, noise_db)

    def test_oracle_fixed_point_is_bit_identical_to_scalar(self):
        # Fixed-point execution is exact integer arithmetic — the
        # oracle backend must not change a single bit of it.
        from repro.fixedpoint import (
            FixedPointSpec,
            SlotMap,
            analyze_ranges,
            assign_iwls,
        )

        program = KERNEL_BUILDERS["fir"]()
        slotmap = SlotMap(program)
        spec = FixedPointSpec(slotmap, max_wl=32)
        assign_iwls(spec, analyze_ranges(program, slotmap))
        for position, root in enumerate(slotmap.roots):
            spec.set_wl(root, (12, 16, 20, 24)[position % 4])
        stimuli = _stimuli(program, 5)
        reference = get_backend("scalar").run_fixed(program, spec, stimuli)
        measured = get_backend("bigfloat").run_fixed(program, spec, stimuli)
        for ref, got in zip(reference, measured):
            for name in ref:
                assert np.array_equal(ref[name], got[name]), name

    def test_oracle_tier_label(self):
        program = KERNEL_BUILDERS["dot"]()
        from repro.fixedpoint import FixedPointSpec, SlotMap

        spec = FixedPointSpec(SlotMap(program), max_wl=32)
        assert get_backend("bigfloat").fixed_tier(program, spec) \
            == "bigfloat[object]"

    def test_format_noise_ordering_is_physical(self):
        # More mantissa bits -> less noise, on the same kernel and
        # stimuli; float64's "noise" is the reference rounding floor.
        program = KERNEL_BUILDERS["fir"]()
        noise = {
            name: FormatAccuracyEvaluator(program, name, n_stimuli=2).noise_db()
            for name in ("float64", "float32", "bfloat16")
        }
        assert noise["float64"] < self.REFERENCE_NOISE_CEILING_DB
        assert noise["float64"] < noise["float32"] < noise["bfloat16"]
        assert noise["bfloat16"] < -20.0  # still a usable format


# ----------------------------------------------------------------------
# Cache separation.


class TestFormatCacheKeys:
    def _requests(self):
        base = CellRequest("fir", "vex-1", -25.0, "tabu", "wlo-slp")
        return base, [
            CellRequest("fir", "vex-1", -25.0, "tabu", "wlo-slp",
                        format=name)
            for name in ("float32", "bfloat16", "binary(8,10)")
        ]

    def test_pipeline_signatures_never_alias(self):
        import json

        base, formatted = self._requests()
        signatures = {
            json.dumps(cell_pipeline_signature(request), sort_keys=True)
            for request in [base] + formatted
        }
        assert len(signatures) == 1 + len(formatted)

    def test_disk_cache_keys_never_alias(self, tmp_path):
        cache = SweepCache(tmp_path)
        config = KernelConfig(**SMALL)
        base, formatted = self._requests()
        keys = {cache.key(config, request) for request in [base] + formatted}
        assert len(keys) == 1 + len(formatted)
        # ... while the canonical spelling maps to the same key.
        spelled = CellRequest("fir", "vex-1", -25.0, "tabu", "wlo-slp",
                              format="Float32")
        assert cache.key(config, spelled) == cache.key(config, formatted[0])


# ----------------------------------------------------------------------
# End-to-end format sweeps (small instances).


class TestFormatSweepCells:
    def test_float32_cell_through_the_runner(self):
        runner = ExperimentRunner(**SMALL)
        cell = runner.cell("fir", "vex-1", -25.0, format="float32")
        fixed = runner.cell("fir", "vex-1", -25.0)
        # Format cells skip WLO: cycles are the float flow's, the
        # speedup columns are 1.0 by construction, and the noise is
        # the format's own rounding noise vs the oracle.
        assert cell.scalar_cycles == cell.wlo_slp_cycles == cell.float_cycles
        assert cell.wlo_slp_speedup == 1.0
        assert cell.wlo_first_groups == cell.wlo_slp_groups == 0
        assert cell.wlo_slp_noise_db == cell.wlo_first_noise_db
        assert cell.wlo_slp_noise_db < -100.0  # float32 on fir
        assert cell != fixed

    def test_format_cells_never_go_infeasible(self):
        runner = ExperimentRunner(**SMALL)
        # -400 dB is infeasible for fixed point (see test_api) but a
        # format cell has no word lengths to search: it reports the
        # format's noise at any constraint.
        cell = runner.cell("fir", "vex-1", -400.0, format="float32")
        assert cell.constraint_db == -400.0

    def test_float32_sweep_through_the_api(self):
        request = SweepRequest(
            kernels=("fir",), targets=("vex-1",), grid=(-15.0, -25.0),
            format="float32", no_cache=True,
        ).validate()
        runner = ExperimentRunner.from_request(request, **SMALL)
        report = runner.submit(request)
        report.ensure_complete()
        assert report.counts["computed"] >= 1
        for outcome in report.outcomes:
            assert report.cell_request(outcome).format == "float32"
            cell = report.cell(outcome)
            assert cell is not None and cell.wlo_slp_speedup == 1.0

    def test_bfloat16_sweep_through_the_service(self):
        from repro.serve import SweepService

        service = SweepService(config=SMALL)
        job = service.submit_payload({
            "kernels": ["fir"], "targets": ["vex-1"], "grid": [-15.0],
            "format": "bfloat16", "no_cache": True,
        })
        deadline = time.monotonic() + 120.0
        while True:
            poll = service.outcomes_since(job.id)
            if poll["status"] in ("done", "error"):
                break
            assert time.monotonic() < deadline, "job did not finish"
            time.sleep(0.05)
        assert poll["status"] == "done", poll["error"]
        (outcome,) = poll["outcomes"]
        assert outcome["request"]["format"] == "bfloat16"

    def test_unknown_format_fails_request_validation(self):
        with pytest.raises(FormatError, match="unknown format"):
            SweepRequest(format="posit16").validate()
