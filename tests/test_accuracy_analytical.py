"""The central validation: analytical EVALACC vs bit-accurate truth."""

import numpy as np
import pytest

from repro.accuracy import (
    SimulationAccuracyEvaluator,
    build_accuracy_model,
    enumerate_sites,
    quant_noise_moments,
)
from repro.accuracy.sites import SiteKind
from repro.fixedpoint import QuantMode, SlotMap


def _uniform(context, wl):
    spec = context.fresh_spec()
    for root in context.slotmap.roots:
        spec.set_wl(root, wl)
    return spec


class TestAnalyticalVsSimulated:
    """The flows trust the model; these tests are why they may."""

    @pytest.mark.parametrize("wl", [24, 16, 12, 10])
    def test_fir_tracks_simulation(self, fir_context, wl):
        spec = _uniform(fir_context, wl)
        analytical = fir_context.model.noise_db(spec)
        simulated = SimulationAccuracyEvaluator(
            fir_context.program, n_stimuli=3
        ).noise_db(spec)
        assert analytical == pytest.approx(simulated, abs=1.5)

    @pytest.mark.parametrize("wl", [24, 20, 16])
    def test_iir_tracks_simulation(self, iir_context, wl):
        spec = _uniform(iir_context, wl)
        analytical = iir_context.model.noise_db(spec)
        simulated = SimulationAccuracyEvaluator(
            iir_context.program, n_stimuli=3, discard=64
        ).noise_db(spec)
        assert analytical == pytest.approx(simulated, abs=3.0)

    @pytest.mark.parametrize("wl", [24, 16, 10])
    def test_conv_tracks_simulation(self, conv_context, wl):
        spec = _uniform(conv_context, wl)
        analytical = conv_context.model.noise_db(spec)
        simulated = SimulationAccuracyEvaluator(
            conv_context.program, n_stimuli=3
        ).noise_db(spec)
        assert analytical == pytest.approx(simulated, abs=1.5)

    def test_mixed_spec_tracks_simulation(self, fir_context):
        """Non-uniform specs (the ones WLO produces) must track too."""
        spec = _uniform(fir_context, 32)
        rng = np.random.default_rng(9)
        for root in fir_context.slotmap.roots:
            spec.set_wl(root, int(rng.choice([12, 16, 24, 32])))
        analytical = fir_context.model.noise_db(spec)
        simulated = SimulationAccuracyEvaluator(
            fir_context.program, n_stimuli=3
        ).noise_db(spec)
        assert analytical == pytest.approx(simulated, abs=2.0)


class TestModelProperties:
    def test_monotone_in_wl(self, fir_context):
        """More bits never hurt."""
        powers = [
            fir_context.model.noise_power(_uniform(fir_context, wl))
            for wl in (8, 12, 16, 20, 24, 28, 32)
        ]
        assert powers == sorted(powers, reverse=True)

    def test_edge_narrowing_adds_noise(self, fir_context):
        from repro.ir import OpKind

        spec = _uniform(fir_context, 32)
        base = fir_context.model.noise_power(spec)
        for op in fir_context.program.all_ops():
            if op.kind is OpKind.MUL:
                spec.set_edge_wl(op.opid, 0, 16)
                spec.set_edge_wl(op.opid, 1, 16)
        assert fir_context.model.noise_power(spec) > base

    def test_rounding_mode_shrinks_bias(self, small_fir):
        trunc = build_accuracy_model(
            small_fir, quant_mode=QuantMode.TRUNCATE
        )
        rnd = build_accuracy_model(small_fir, quant_mode=QuantMode.ROUND)
        slotmap = trunc.slotmap
        from repro.fixedpoint import FixedPointSpec, analyze_ranges, assign_iwls

        spec = FixedPointSpec(slotmap)
        assign_iwls(spec, analyze_ranges(small_fir, slotmap))
        for root in slotmap.roots:
            spec.set_wl(root, 12)
        assert rnd.noise_power(spec) < trunc.noise_power(spec)

    def test_violates_is_threshold(self, fir_context):
        spec = _uniform(fir_context, 16)
        level = fir_context.model.noise_db(spec)
        assert fir_context.model.violates(spec, level - 1.0)
        assert not fir_context.model.violates(spec, level + 1.0)

    def test_coeff_error_term_contributes(self, fir_context):
        from repro.accuracy import AccuracyModel

        with_coeff = fir_context.model
        without = AccuracyModel(
            fir_context.program, fir_context.slotmap, with_coeff.gains,
            include_coeff_error=False,
        )
        spec = _uniform(fir_context, 10)
        assert with_coeff.noise_power(spec) > without.noise_power(spec)

    def test_breakdown_sums_to_variance_part(self, fir_context):
        spec = _uniform(fir_context, 16)
        contributions = fir_context.model.breakdown(spec)
        assert contributions, "expected active sites at 16 bits"
        assert all(value >= 0 for _name, value in contributions)
        # breakdown is sorted descending
        values = [v for _n, v in contributions]
        assert values == sorted(values, reverse=True)

    def test_eval_count_increments(self, fir_context):
        spec = _uniform(fir_context, 16)
        before = fir_context.model.eval_count
        fir_context.model.noise_power(spec)
        assert fir_context.model.eval_count == before + 1


class TestSites:
    def test_fir_site_inventory(self, small_fir):
        slotmap = SlotMap(small_fir)
        sites = enumerate_sites(small_fir, slotmap)
        kinds = {}
        for site in sites:
            kinds[site.kind] = kinds.get(site.kind, 0) + 1
        n_muls = sum(
            1 for o in small_fir.all_ops() if o.kind.value == "mul"
        )
        assert kinds[SiteKind.MUL_OUT] == n_muls
        assert kinds[SiteKind.MUL_EDGE] == 2 * n_muls
        assert kinds[SiteKind.INPUT] == 1  # one input array

    def test_tied_edges_have_no_align_site(self, tiny_program):
        """acc = acc + v: the acc operand is format-tied to the add."""
        slotmap = SlotMap(tiny_program)
        sites = enumerate_sites(tiny_program, slotmap)
        from repro.ir import OpKind

        add = next(o for o in tiny_program.all_ops() if o.kind is OpKind.ADD)
        readvar_pos = [
            pos for pos, producer in enumerate(add.operands)
            if tiny_program.op(producer).kind is OpKind.READVAR
        ]
        align_positions = {
            site.pos for site in sites
            if site.kind is SiteKind.ALIGN and site.opid == add.opid
        }
        for pos in readvar_pos:
            assert pos not in align_positions


class TestMoments:
    def test_truncation_moments_match_empirical(self, rng):
        f_from, f_to = 20, 8
        mean, var = quant_noise_moments(f_from, f_to, QuantMode.TRUNCATE)
        samples = rng.integers(-(2 ** 30), 2 ** 30, size=20000)
        errors = ((samples >> (f_from - f_to)) * 2.0 ** -f_to
                  - samples * 2.0 ** -f_from)
        assert errors.mean() == pytest.approx(mean, rel=0.05)
        assert errors.var() == pytest.approx(var, rel=0.05)

    def test_rounding_moments_match_empirical(self, rng):
        f_from, f_to = 20, 8
        mean, var = quant_noise_moments(f_from, f_to, QuantMode.ROUND)
        samples = rng.integers(-(2 ** 30), 2 ** 30, size=20000)
        shift = f_from - f_to
        rounded = (samples + (1 << (shift - 1))) >> shift
        errors = rounded * 2.0 ** -f_to - samples * 2.0 ** -f_from
        assert errors.mean() == pytest.approx(mean, abs=var ** 0.5 / 50)
        assert errors.var() == pytest.approx(var, rel=0.05)

    def test_no_discard_no_noise(self):
        assert quant_noise_moments(8, 8, QuantMode.TRUNCATE) == (0.0, 0.0)
        assert quant_noise_moments(8, 16, QuantMode.TRUNCATE) == (0.0, 0.0)
