"""Benefit estimator tests: the ordering the selector relies on."""

import pytest

from repro.ir import OpKind, build_dependence_graph
from repro.slp import (
    BenefitEstimator,
    extract_candidates,
    initial_items,
)
from repro.slp.extraction import DEFAULT_MIN_BENEFIT
from repro.targets import get_target


@pytest.fixture()
def fir_setup(small_fir):
    block = small_fir.blocks["body"]
    deps = build_dependence_graph(block)
    items = initial_items(block)
    candidates = extract_candidates(
        small_fir, items, deps, get_target("xentium")
    )
    estimator = BenefitEstimator(small_fir, block)
    return small_fir, block, items, candidates, estimator


def _by_lanes(candidates, program, kind):
    return [c for c in candidates if c.kind is kind]


class TestOrdering:
    def test_contiguous_load_pairs_beat_strided(self, fir_setup):
        program, block, items, candidates, estimator = fir_setup
        loads = _by_lanes(candidates, program, OpKind.LOAD)
        scored = {
            c.lanes: estimator.benefit(c, candidates, items) for c in loads
        }
        from repro.slp import memory_lane_stride

        contiguous = [s for c, s in
                      ((c, scored[c.lanes]) for c in loads)
                      if memory_lane_stride(program, c.lanes) == 1]
        strided = [s for c, s in
                   ((c, scored[c.lanes]) for c in loads)
                   if memory_lane_stride(program, c.lanes)
                   not in (1, -1)]
        assert contiguous and strided
        assert min(contiguous) > max(strided)

    def test_chained_muls_beat_unchained(self, fir_setup):
        """Adjacent-lane muls (fed by one vector load, feeding one
        accumulator add pair) must outrank gather-fed mul pairings."""
        program, block, items, candidates, estimator = fir_setup
        muls = [o.opid for o in block.ops if o.kind is OpKind.MUL]
        chained = next(
            c for c in candidates
            if c.lanes == (muls[0], muls[1])
        )
        unchained = next(
            c for c in candidates
            if c.lanes == (muls[0], muls[3])
        )
        assert estimator.benefit(chained, candidates, items) > \
            estimator.benefit(unchained, candidates, items)

    def test_accumulator_adds_profit(self, fir_setup):
        """The vacc += vmul pattern: add pairs score above threshold."""
        program, block, items, candidates, estimator = fir_setup
        adds = _by_lanes(candidates, program, OpKind.ADD)
        assert adds
        adjacent = [
            c for c in adds
            if abs(c.left[0] - c.right[0]) == 6  # neighbouring unroll lanes
        ]
        for candidate in adjacent[:2]:
            assert estimator.benefit(candidate, candidates, items) \
                >= DEFAULT_MIN_BENEFIT


class TestThresholdCalibration:
    """Facts DEFAULT_MIN_BENEFIT relies on (see extraction.py)."""

    def test_isolated_gather_pair_below_threshold(self):
        """Strided loads with scalar-only consumers never pay off."""
        from repro.ir import ProgramBuilder, loop_index

        b = ProgramBuilder("gather")
        x = b.input_array("x", (32,), value_range=(-1.0, 1.0))
        y = b.output_array("y", (16,))
        i = loop_index("i")
        with b.loop("i", 8):
            with b.block("body"):
                even = b.load(x, i * 4)
                odd = b.load(x, i * 4 + 2)
                b.store(y, i * 2, b.mul(even, b.const(0.5)))
                b.store(y, i * 2 + 1, b.mul(odd, b.const(0.25)))
        program = b.build()
        block = program.blocks["body"]
        deps = build_dependence_graph(block)
        items = initial_items(block)
        candidates = extract_candidates(
            program, items, deps, get_target("xentium")
        )
        estimator = BenefitEstimator(program, block)
        from repro.slp import memory_lane_stride

        gathers = [
            c for c in candidates
            if c.kind is OpKind.LOAD
            and memory_lane_stride(program, c.lanes) not in (1, -1)
        ]
        assert gathers
        # Without the chain widening along (the muls here have unequal
        # constants only in value, they can still pair) the gather
        # alone must not clear the bar.
        isolated = [
            estimator.benefit(c, [c], items) for c in gathers
        ]
        assert all(score < DEFAULT_MIN_BENEFIT for score in isolated)

    def test_vector_load_pair_above_threshold(self, fir_setup):
        program, block, items, candidates, estimator = fir_setup
        from repro.slp import memory_lane_stride

        vector_loads = [
            c for c in candidates
            if c.kind is OpKind.LOAD
            and memory_lane_stride(program, c.lanes) == 1
        ]
        assert vector_loads
        for candidate in vector_loads:
            assert estimator.benefit(candidate, candidates, items) \
                >= DEFAULT_MIN_BENEFIT


class TestInvariantOperands:
    def test_conv_kernel_splat_is_cheap(self, small_conv):
        """ker loads are loop-invariant: mul pairs using them pay no
        per-iteration pack cost."""
        block = small_conv.blocks["body"]
        deps = build_dependence_graph(block)
        items = initial_items(block)
        target = get_target("xentium")
        candidates = extract_candidates(small_conv, items, deps, target)
        estimator = BenefitEstimator(small_conv, block)
        muls = [c for c in candidates if c.kind is OpKind.MUL]
        assert muls
        best = max(
            estimator.benefit(c, candidates, items) for c in muls
        )
        assert best >= DEFAULT_MIN_BENEFIT


class TestHalfReuseBreaking:
    def test_widening_past_consumers_is_penalized(self, small_fir):
        """A quad whose halves feed existing pair consumers scores
        below a quad whose consumers can widen along with it."""
        block = small_fir.blocks["body"]
        deps = build_dependence_graph(block)
        from repro.targets import vex

        target = vex(4)
        loads = [o.opid for o in block.ops
                 if o.kind is OpKind.LOAD and o.array == "x"]
        muls = [o.opid for o in block.ops if o.kind is OpKind.MUL]
        # State A: mul pairs exist as items -> widening loads breaks them.
        items_with_mul_pairs = [
            (loads[0], loads[1]), (loads[2], loads[3]),
            (muls[0], muls[1]), (muls[2], muls[3]),
        ]
        cands_a = extract_candidates(
            small_fir, items_with_mul_pairs, deps, target
        )
        estimator = BenefitEstimator(small_fir, block)
        quad_a = next(c for c in cands_a if c.kind is OpKind.LOAD)
        score_breaking = estimator.benefit(quad_a, cands_a, items_with_mul_pairs)
        # State B: matching mul quad candidate exists too.
        items_b = [
            (loads[0], loads[1]), (loads[2], loads[3]),
            (muls[0], muls[1]), (muls[2], muls[3]),
        ]
        cands_b = cands_a  # same candidate pool contains the mul quad
        mul_quad = next(c for c in cands_b if c.kind is OpKind.MUL)
        assert mul_quad.size == 4
        score_chained = estimator.benefit(quad_a, cands_b, items_b)
        # With the mul quad in the pool the load quad gains a vector
        # consumer; without one it pays the broken-half penalty.
        assert score_chained >= score_breaking
