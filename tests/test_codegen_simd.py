"""SIMD lowering tests: where pack/unpack and scaling costs appear."""

from repro.codegen import (
    collect_vector_vars,
    lower_simd_block,
    lower_simd_program,
)
from repro.fixedpoint import FixedPointSpec, SlotMap
from repro.ir import OpKind
from repro.slp import GroupSet, SIMDGroup
from repro.targets import get_target


def _spec(program, wl=16):
    spec = FixedPointSpec(SlotMap(program))
    for root in spec.slotmap.roots:
        spec.set_wl(root, wl)
    return spec


def _fir_groups(program):
    """The canonical FIR grouping: loads, muls, adds paired by lane."""
    block = program.blocks["body"]
    by_kind = {}
    for op in block.ops:
        by_kind.setdefault((op.kind, op.array), []).append(op.opid)
    groups = GroupSet("body")
    gid = 0
    for key, ops in by_kind.items():
        kind = key[0]
        if kind not in (OpKind.LOAD, OpKind.MUL, OpKind.ADD):
            continue
        for i in range(0, len(ops) - 1, 2):
            groups.add(SIMDGroup(gid, "body", kind, (ops[i], ops[i + 1]), 16))
            gid += 1
    return groups


class TestVectorVars:
    def test_fir_accumulators_detected(self, small_fir):
        groups = {"body": _fir_groups(small_fir)}
        vector_vars = collect_vector_vars(small_fir, groups)
        assert set(vector_vars) == {"acc0", "acc1", "acc2", "acc3"}
        var_set, lane = vector_vars["acc1"]
        assert lane == 1

    def test_no_groups_no_vector_vars(self, small_fir):
        assert collect_vector_vars(small_fir, {}) == {}


class TestFirBodyLowering:
    def test_fully_grouped_body(self, small_fir):
        """Pairs everywhere: 2 vld per lane pair, vmul + requant, vadd;
        the accumulator vector is loop-carried (no pack/unpack)."""
        spec = _spec(small_fir)
        groups = _fir_groups(small_fir)
        vector_vars = collect_vector_vars(small_fir, {"body": groups})
        machine = lower_simd_block(
            small_fir, small_fir.blocks["body"], spec,
            get_target("xentium"), groups, vector_vars,
        )
        histogram = machine.op_histogram()
        assert histogram["vld"] == 4  # 2 x-pairs + 2 h-pairs
        assert histogram["vmul"] == 2
        assert histogram["vadd"] == 2
        assert histogram["vshr"] == 2  # uniform product requant
        assert "pack" not in histogram
        assert "unpk" not in histogram
        assert "ext" not in histogram

    def test_init_block_packs_accumulators(self, small_fir):
        spec = _spec(small_fir)
        groups = _fir_groups(small_fir)
        vector_vars = collect_vector_vars(small_fir, {"body": groups})
        machine = lower_simd_block(
            small_fir, small_fir.blocks["init"], spec,
            get_target("xentium"), GroupSet("init"), vector_vars,
        )
        histogram = machine.op_histogram()
        # Two acc vectors formed from scalar zeros: one pack each.
        assert histogram.get("pack", 0) == 2

    def test_reduce_block_extracts_lanes(self, small_fir):
        spec = _spec(small_fir)
        groups = _fir_groups(small_fir)
        vector_vars = collect_vector_vars(small_fir, {"body": groups})
        machine = lower_simd_block(
            small_fir, small_fir.blocks["reduce"], spec,
            get_target("xentium"), GroupSet("reduce"), vector_vars,
        )
        histogram = machine.op_histogram()
        assert histogram.get("ext", 0) == 4  # four lanes read scalar


class TestScalingShifts:
    def test_uniform_shift_is_single_vshift(self, small_fir):
        spec = _spec(small_fir)
        # Shift both mul lanes by the same extra amount.
        groups = _fir_groups(small_fir)
        mul_groups = [g for g in groups if g.kind is OpKind.MUL]
        for group in mul_groups:
            for opid in group.lanes:
                spec.set_fwl(opid, spec.fwl(opid) - 2)
        vector_vars = collect_vector_vars(small_fir, {"body": groups})
        machine = lower_simd_block(
            small_fir, small_fir.blocks["body"], spec,
            get_target("xentium"), groups, vector_vars,
        )
        histogram = machine.op_histogram()
        assert "unpk" not in histogram  # still uniform per group

    def test_nonuniform_shift_forces_unpack(self, small_fir):
        """Fig. 2's right side: different per-lane scalings at a reuse
        edge cost unpack + scalar shifts + repack."""
        spec = _spec(small_fir)
        groups = _fir_groups(small_fir)
        mul_groups = [g for g in groups if g.kind is OpKind.MUL]
        lane0 = mul_groups[0].lanes[0]
        spec.set_fwl(lane0, spec.fwl(lane0) - 3)  # only one lane moves
        vector_vars = collect_vector_vars(small_fir, {"body": groups})
        machine = lower_simd_block(
            small_fir, small_fir.blocks["body"], spec,
            get_target("xentium"), groups, vector_vars,
        )
        histogram = machine.op_histogram()
        assert histogram.get("unpk", 0) >= 1
        assert histogram.get("pack", 0) >= 1


class TestMemoryGroups:
    def test_contiguous_store_group_is_vst(self):
        from repro.ir import ProgramBuilder, loop_index

        b = ProgramBuilder("stores")
        x = b.input_array("x", (16,), value_range=(-1.0, 1.0))
        y = b.output_array("y", (16,))
        i = loop_index("i")
        with b.loop("i", 8):
            with b.block("body"):
                v0 = b.load(x, i * 2)
                v1 = b.load(x, i * 2 + 1)
                b.store(y, i * 2, v0)
                b.store(y, i * 2 + 1, v1)
        program = b.build()
        block = program.blocks["body"]
        loads = tuple(o.opid for o in block.ops if o.kind is OpKind.LOAD)
        stores = tuple(o.opid for o in block.ops if o.kind is OpKind.STORE)
        groups = GroupSet("body")
        groups.add(SIMDGroup(0, "body", OpKind.LOAD, loads, 16))
        groups.add(SIMDGroup(1, "body", OpKind.STORE, stores, 16))
        machine = lower_simd_block(
            program, block, _spec(program), get_target("xentium"),
            groups, {},
        )
        histogram = machine.op_histogram()
        assert histogram == {"vld": 1, "vst": 1}

    def test_strided_loads_become_gather(self, small_conv):
        spec = _spec(small_conv)
        block = small_conv.blocks["body"]
        img_loads = [
            o.opid for o in block.ops
            if o.kind is OpKind.LOAD and o.array == "img"
        ]
        groups = GroupSet("body")
        # Column pair: stride = image width (not contiguous).
        groups.add(SIMDGroup(0, "body", OpKind.LOAD,
                             (img_loads[0], img_loads[3]), 16))
        machine = lower_simd_block(
            small_conv, block, spec, get_target("xentium"), groups, {},
        )
        histogram = machine.op_histogram()
        assert histogram.get("pack", 0) >= 1  # gathered

    def test_invariant_vector_load_is_free(self, small_conv):
        spec = _spec(small_conv)
        block = small_conv.blocks["body"]
        ker_loads = [
            o.opid for o in block.ops
            if o.kind is OpKind.LOAD and o.array == "ker"
        ]
        groups = GroupSet("body")
        groups.add(SIMDGroup(0, "body", OpKind.LOAD,
                             (ker_loads[0], ker_loads[1]), 16))
        machine = lower_simd_block(
            small_conv, block, spec, get_target("xentium"), groups, {},
        )
        names = {op.name for op in machine.ops}
        assert "vld" not in names  # hoisted out of the loop


class TestSemanticCostEquivalence:
    def test_simd_program_has_fewer_dynamic_ops(self, small_fir):
        """Grouping must reduce total work on the hot path."""
        from repro.codegen import lower_scalar_program
        from repro.scheduler import program_cycles

        spec = _spec(small_fir)
        target = get_target("vex-1")
        scalar = program_cycles(
            small_fir, lower_scalar_program(small_fir, spec, target), target
        )
        groups = {"body": _fir_groups(small_fir)}
        simd = program_cycles(
            small_fir, lower_simd_program(small_fir, spec, target, groups),
            target,
        )
        assert simd.dynamic_ops < scalar.dynamic_ops
        assert simd.total_cycles < scalar.total_cycles
