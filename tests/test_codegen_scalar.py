"""Scalar lowering tests: exactly the shifts the formats imply."""

from repro.codegen import lower_scalar_block, lower_scalar_program
from repro.fixedpoint import FixedPointSpec, SlotMap
from repro.ir import OpKind
from repro.targets import get_target


def _uniform_spec(program, wl, iwl=None):
    spec = FixedPointSpec(SlotMap(program))
    for root in spec.slotmap.roots:
        spec.set_wl(root, wl)
        if iwl is not None:
            spec.set_iwl(root, iwl)
    return spec


class TestInstructionSelection:
    def test_fir_body_uniform_formats(self, small_fir):
        """Uniform 32-bit everywhere: loads, muls (with requant — the
        product has 2x the fraction bits), accumulator adds, no align
        shifts (formats match)."""
        spec = _uniform_spec(small_fir, 32)
        target = get_target("xentium")
        machine = lower_scalar_block(
            small_fir, small_fir.blocks["body"], spec, target
        )
        histogram = machine.op_histogram()
        assert histogram["ld"] == 8
        assert histogram["mul"] == 4
        assert histogram["add"] == 4
        assert histogram["shr"] == 4  # one requant per multiply
        assert "shl" not in histogram

    def test_alignment_shift_appears_on_mismatch(self, small_fir):
        spec = _uniform_spec(small_fir, 32)
        target = get_target("xentium")
        mul = next(
            o for o in small_fir.blocks["body"].ops if o.kind is OpKind.MUL
        )
        spec.set_fwl(mul.opid, spec.fwl(mul.opid) - 4)  # product coarser
        machine = lower_scalar_block(
            small_fir, small_fir.blocks["body"], spec, target
        )
        histogram = machine.op_histogram()
        # The coarser product must be upshifted into the accumulator.
        assert histogram.get("shl", 0) >= 1

    def test_var_ops_are_free(self, tiny_program):
        spec = _uniform_spec(tiny_program, 32)
        machine = lower_scalar_block(
            tiny_program, tiny_program.blocks["body"], spec,
            get_target("xentium"),
        )
        names = set(machine.op_histogram())
        assert names == {"ld", "add"}

    def test_const_is_free(self, tiny_program):
        spec = _uniform_spec(tiny_program, 32)
        machine = lower_scalar_block(
            tiny_program, tiny_program.blocks["init"], spec,
            get_target("xentium"),
        )
        assert len(machine.ops) == 0  # const + writevar both free

    def test_store_requant(self, tiny_program):
        spec = _uniform_spec(tiny_program, 32)
        spec.set_fwl(spec.slotmap.slot_of_symbol("y"), 15)
        machine = lower_scalar_block(
            tiny_program, tiny_program.blocks["fin"], spec,
            get_target("xentium"),
        )
        histogram = machine.op_histogram()
        assert histogram == {"shr": 1, "st": 1}

    def test_licm_removes_invariant_loads(self, small_conv):
        spec = _uniform_spec(small_conv, 32)
        machine = lower_scalar_block(
            small_conv, small_conv.blocks["body"], spec,
            get_target("xentium"),
        )
        # 9 image loads stay; 9 kernel loads are hoisted.
        assert machine.op_histogram()["ld"] == 9


class TestDependences:
    def test_memory_ordering_preserved(self, small_iir):
        """IIR's feedback: y loads must follow the y store ordering
        edges when lowered (same-array may-alias)."""
        spec = _uniform_spec(small_iir, 32)
        target = get_target("xentium")
        lowered = lower_scalar_program(small_iir, spec, target)
        # Sanity: every block scheduled without error and store exists.
        from repro.scheduler import schedule_block

        for machine in lowered.values():
            schedule_block(machine, target)

    def test_operand_edges_in_preds(self, small_fir):
        spec = _uniform_spec(small_fir, 32)
        machine = lower_scalar_block(
            small_fir, small_fir.blocks["body"], spec, get_target("xentium")
        )
        muls = [op for op in machine.ops if op.name == "mul"]
        loads = {op.mid for op in machine.ops if op.name == "ld"}
        for mul in muls:
            assert set(mul.preds) <= loads


class TestShiftLatency:
    def test_barrel_shifter_constant_time(self, small_fir):
        from repro.targets import TargetModel

        barrel = TargetModel(name="b", issue_width=2, barrel_shifter=True)
        serial = TargetModel(name="s", issue_width=2, barrel_shifter=False)
        assert barrel.shift_latency(14) == 1
        assert serial.shift_latency(14) == 14
        assert serial.shift_latency(1) == 1
