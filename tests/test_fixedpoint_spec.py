"""Slot map and fixed-point specification tests."""

import pytest

from repro.errors import FixedPointError
from repro.fixedpoint import NO_NARROW, FixedPointSpec, SlotMap
from repro.ir import OpKind


class TestSlotMap:
    def test_slot_numbering(self, tiny_program):
        slotmap = SlotMap(tiny_program)
        assert slotmap.n_ops == tiny_program.n_ops
        assert slotmap.n_slots == tiny_program.n_ops + 3  # x, y, acc

    def test_load_tied_to_array(self, tiny_program):
        slotmap = SlotMap(tiny_program)
        load = next(o for o in tiny_program.all_ops() if o.kind is OpKind.LOAD)
        assert slotmap.root_of(load.opid) == slotmap.root_of(
            slotmap.slot_of_symbol("x")
        )

    def test_store_tied_to_array(self, tiny_program):
        slotmap = SlotMap(tiny_program)
        store = next(
            o for o in tiny_program.all_ops()
            if o.kind is OpKind.STORE and o.array == "y"
        )
        assert slotmap.root_of(store.opid) == slotmap.root_of(
            slotmap.slot_of_symbol("y")
        )

    def test_accumulator_chain_tied(self, tiny_program):
        """READVAR, WRITEVAR, the written value's producer and the var
        itself must share one format (a register cannot re-format)."""
        slotmap = SlotMap(tiny_program)
        acc_root = slotmap.root_of(slotmap.slot_of_symbol("acc"))
        for op in tiny_program.all_ops():
            if op.kind in (OpKind.READVAR, OpKind.WRITEVAR):
                assert slotmap.root_of(op.opid) == acc_root
            if op.kind is OpKind.WRITEVAR:
                assert slotmap.root_of(op.operands[0]) == acc_root

    def test_unknown_symbol(self, tiny_program):
        slotmap = SlotMap(tiny_program)
        with pytest.raises(FixedPointError):
            slotmap.slot_of_symbol("ghost")

    def test_describe(self, tiny_program):
        slotmap = SlotMap(tiny_program)
        assert "sym:x" in slotmap.describe(slotmap.slot_of_symbol("x"))
        assert "op%0" in slotmap.describe(0)

    def test_fir_mul_untied(self, small_fir):
        """Multiplies have their own formats (nothing ties them)."""
        slotmap = SlotMap(small_fir)
        muls = [o for o in small_fir.all_ops() if o.kind is OpKind.MUL]
        roots = {slotmap.root_of(m.opid) for m in muls}
        assert len(roots) == len(muls)


class TestSpecBasics:
    def test_defaults(self, tiny_program):
        spec = FixedPointSpec(SlotMap(tiny_program), max_wl=32)
        assert spec.wl(0) == 32
        assert spec.iwl(0) == 1
        assert spec.fwl(0) == 31
        assert spec.edge_wl(0, 0) == NO_NARROW

    def test_tied_write_visible_through_members(self, tiny_program):
        slotmap = SlotMap(tiny_program)
        spec = FixedPointSpec(slotmap)
        load = next(o for o in tiny_program.all_ops() if o.kind is OpKind.LOAD)
        spec.set_wl(load.opid, 16)
        assert spec.wl(slotmap.slot_of_symbol("x")) == 16

    def test_set_fwl_moves_binary_point(self, tiny_program):
        spec = FixedPointSpec(SlotMap(tiny_program))
        spec.set_iwl(0, 4)
        spec.set_fwl(0, 20)
        assert spec.wl(0) == 32 and spec.iwl(0) == 12 and spec.fwl(0) == 20

    def test_bad_wl_rejected(self, tiny_program):
        spec = FixedPointSpec(SlotMap(tiny_program))
        with pytest.raises(FixedPointError):
            spec.set_wl(0, 0)

    def test_qformat_accessor(self, tiny_program):
        spec = FixedPointSpec(SlotMap(tiny_program))
        spec.set_wl(0, 16)
        spec.set_iwl(0, 2)
        assert str(spec.qformat(0)) == "<2,14>"


class TestJournal:
    def test_revert_restores_everything(self, tiny_program):
        spec = FixedPointSpec(SlotMap(tiny_program))
        token = spec.save()
        spec.set_wl(0, 16)
        spec.set_iwl(2, 5)
        spec.set_edge_wl(1, 0, 16)
        spec.revert(token)
        assert spec.wl(0) == 32
        assert spec.iwl(2) == 1
        assert spec.edge_wl(1, 0) == NO_NARROW

    def test_nested_checkpoints(self, tiny_program):
        spec = FixedPointSpec(SlotMap(tiny_program))
        outer = spec.save()
        spec.set_wl(0, 24)
        inner = spec.save()
        spec.set_wl(0, 16)
        spec.revert(inner)
        assert spec.wl(0) == 24
        spec.revert(outer)
        assert spec.wl(0) == 32

    def test_noop_writes_not_journaled(self, tiny_program):
        spec = FixedPointSpec(SlotMap(tiny_program))
        token = spec.save()
        spec.set_wl(0, 32)  # same value
        assert spec.save() == token

    def test_bad_token(self, tiny_program):
        spec = FixedPointSpec(SlotMap(tiny_program))
        with pytest.raises(FixedPointError):
            spec.revert(999)


class TestVectorViews:
    def test_fwl_vector_resolves_roots(self, tiny_program):
        slotmap = SlotMap(tiny_program)
        spec = FixedPointSpec(slotmap)
        load = next(o for o in tiny_program.all_ops() if o.kind is OpKind.LOAD)
        spec.set_wl(load.opid, 16)
        spec.set_iwl(load.opid, 2)
        fwl = spec.fwl_vector()
        assert fwl[load.opid] == 14
        assert fwl[slotmap.slot_of_symbol("x")] == 14

    def test_vector_shapes(self, tiny_program):
        slotmap = SlotMap(tiny_program)
        spec = FixedPointSpec(slotmap)
        assert spec.fwl_vector().shape == (slotmap.n_slots,)
        assert spec.edge_wl_matrix().shape == (slotmap.n_ops, 2)


class TestConsumptionFwl:
    def test_default_is_producer_format(self, small_fir):
        slotmap = SlotMap(small_fir)
        spec = FixedPointSpec(slotmap)
        mul = next(o for o in small_fir.all_ops() if o.kind is OpKind.MUL)
        assert spec.consumption_fwl(mul.opid, 0) == spec.fwl(mul.operands[0])

    def test_narrowed_edge(self, small_fir):
        slotmap = SlotMap(small_fir)
        spec = FixedPointSpec(slotmap)
        mul = next(o for o in small_fir.all_ops() if o.kind is OpKind.MUL)
        producer = mul.operands[0]
        spec.set_iwl(producer, 1)
        spec.set_edge_wl(mul.opid, 0, 16)
        assert spec.consumption_fwl(mul.opid, 0) == 15  # 16 - iwl 1

    def test_edge_never_widens(self, small_fir):
        slotmap = SlotMap(small_fir)
        spec = FixedPointSpec(slotmap)
        mul = next(o for o in small_fir.all_ops() if o.kind is OpKind.MUL)
        producer = mul.operands[0]
        spec.set_wl(producer, 8)
        spec.set_iwl(producer, 1)
        spec.set_edge_wl(mul.opid, 0, 16)
        assert spec.consumption_fwl(mul.opid, 0) == spec.fwl(producer)


class TestClone:
    def test_clone_is_independent(self, tiny_program):
        spec = FixedPointSpec(SlotMap(tiny_program))
        twin = spec.clone()
        spec.set_wl(0, 16)
        assert twin.wl(0) == 32


class TestJournalProperties:
    """Hypothesis: any mutation sequence reverts to the checkpoint."""

    def test_random_sequences_revert(self, tiny_program):
        from hypothesis import given, settings, strategies as st
        from repro.fixedpoint import FixedPointSpec, SlotMap

        slotmap = SlotMap(tiny_program)

        mutations = st.lists(
            st.tuples(
                st.sampled_from(["wl", "iwl", "fwl", "edge"]),
                st.integers(0, slotmap.n_slots - 1),
                st.integers(1, 32),
            ),
            max_size=24,
        )

        @given(mutations)
        @settings(max_examples=50, deadline=None)
        def run(seq):
            spec = FixedPointSpec(slotmap)
            baseline = (
                spec.wl_vector().copy(),
                spec.iwl_vector().copy(),
                spec.edge_wl_matrix().copy(),
            )
            token = spec.save()
            for kind, slot, value in seq:
                if kind == "wl":
                    spec.set_wl(slot, value)
                elif kind == "iwl":
                    spec.set_iwl(slot, value)
                elif kind == "fwl":
                    if value < spec.wl(slot):
                        spec.set_fwl(slot, value)
                else:
                    spec.set_edge_wl(slot % slotmap.n_ops, value % 2,
                                     value)
            spec.revert(token)
            assert (spec.wl_vector() == baseline[0]).all()
            assert (spec.iwl_vector() == baseline[1]).all()
            assert (spec.edge_wl_matrix() == baseline[2]).all()

        run()
