"""Shared fixtures: small kernels and session-cached analysis contexts.

Tests use reduced problem sizes (the algorithms are size-independent);
contexts are session-scoped because gain extraction is the expensive
step and every accuracy/flow test needs one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flows import AnalysisContext
from repro.ir import ProgramBuilder, loop_index
from repro.kernels import conv2d, fir, iir


@pytest.fixture(scope="session")
def small_fir():
    """16-tap FIR over 64 samples (same shape as the paper's, smaller)."""
    return fir(n_samples=64, n_taps=16)


@pytest.fixture(scope="session")
def small_iir():
    """4th-order IIR over 256 samples."""
    return iir(n_samples=256, order=4)


@pytest.fixture(scope="session")
def small_conv():
    """3x3 convolution over a 18x18 image."""
    return conv2d(height=18, width=18)


@pytest.fixture(scope="session")
def fir_context(small_fir) -> AnalysisContext:
    return AnalysisContext.build(small_fir)


@pytest.fixture(scope="session")
def iir_context(small_iir) -> AnalysisContext:
    return AnalysisContext.build(small_iir)


@pytest.fixture(scope="session")
def conv_context(small_conv) -> AnalysisContext:
    return AnalysisContext.build(small_conv)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def build_tiny_accumulate(n: int = 8) -> "ProgramBuilder":
    """A minimal accumulate kernel used by several unit tests."""
    builder = ProgramBuilder("tiny")
    x = builder.input_array("x", (n,), value_range=(-1.0, 1.0))
    y = builder.output_array("y", (1,))
    acc = builder.scalar("acc")
    with builder.block("init"):
        builder.setvar(acc, builder.const(0.0))
    with builder.loop("i", n):
        with builder.block("body"):
            v = builder.load(x, loop_index("i"))
            builder.setvar(acc, builder.add(builder.getvar(acc), v))
    with builder.block("fin"):
        builder.store(y, 0, builder.getvar(acc))
    return builder.build()


@pytest.fixture()
def tiny_program():
    return build_tiny_accumulate()
