"""Kernel-builder tests: structure, padding, parameter validation."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import OpKind
from repro.kernels import (
    conv2d,
    default_conv_kernel,
    default_fir_coefficients,
    default_iir_coefficients,
    dot_product,
    fir,
    iir,
    kernel_by_name,
    sad,
    scale_offset,
)


class TestFirStructure:
    def test_block_inventory(self):
        program = fir(n_samples=32, n_taps=16)
        assert set(program.blocks) == {"init", "body", "reduce"}
        body = program.blocks["body"]
        assert body.loop_vars == ("n", "k")
        assert body.executions == 32 * 4  # 16 taps / unroll 4

    def test_unroll_shapes_body(self):
        for unroll in (2, 4, 8):
            program = fir(n_samples=16, n_taps=16, unroll=unroll)
            body = program.blocks["body"]
            muls = [o for o in body.ops if o.kind is OpKind.MUL]
            assert len(muls) == unroll
            assert len(program.variables) == unroll

    def test_bad_unroll(self):
        with pytest.raises(IRError, match="divisible"):
            fir(n_samples=16, n_taps=10, unroll=4)

    def test_bad_coefficient_count(self):
        with pytest.raises(IRError, match="coefficients"):
            fir(n_samples=16, n_taps=8, coefficients=np.ones(4))

    def test_default_coefficients_unit_dc(self):
        taps = default_fir_coefficients(64)
        assert taps.sum() == pytest.approx(1.0, abs=1e-6)

    def test_array_extents(self):
        program = fir(n_samples=100, n_taps=32)
        assert program.arrays["x"].shape == (131,)
        assert program.arrays["y"].shape == (100,)


class TestIirStructure:
    def test_padding_to_unroll_multiple(self):
        program = iir(n_samples=32, order=10, unroll=4)
        assert program.arrays["bc"].shape == (12,)   # 11 padded to 12
        assert program.arrays["nac"].shape == (12,)  # 10 padded to 12
        assert program.arrays["bc"].values[11] == 0.0
        assert program.arrays["nac"].values[10] == 0.0

    def test_feedback_coefficients_negated(self):
        program = iir(n_samples=16, order=4)
        _b, a = default_iir_coefficients(4)
        np.testing.assert_allclose(
            program.arrays["nac"].values[:4], -a[1:], atol=1e-12
        )

    def test_unnormalized_filter_rejected(self):
        b, a = default_iir_coefficients(2)
        with pytest.raises(IRError, match="normalized"):
            iir(n_samples=8, order=2, coefficients=(b, a * 2))

    def test_wrong_order_rejected(self):
        b, a = default_iir_coefficients(2)
        with pytest.raises(IRError, match="order-4"):
            iir(n_samples=8, order=4, coefficients=(b, a))

    def test_stability_of_default(self):
        _b, a = default_iir_coefficients(10)
        roots = np.roots(a)
        assert np.all(np.abs(roots) < 1.0)

    def test_two_tap_loops(self):
        program = iir(n_samples=16, order=10)
        assert set(program.blocks) == {"init", "btaps", "ataps", "reduce"}


class TestConvStructure:
    def test_fully_unrolled_body(self):
        program = conv2d(10, 12)
        body = program.blocks["body"]
        muls = [o for o in body.ops if o.kind is OpKind.MUL]
        assert len(muls) == 9
        assert body.executions == 8 * 10

    def test_kernel_normalized(self):
        assert default_conv_kernel().sum() == pytest.approx(1.0)

    def test_bad_kernel_shape(self):
        with pytest.raises(IRError, match="3x3"):
            conv2d(kernel=np.ones((2, 2)))

    def test_too_small_image(self):
        with pytest.raises(IRError, match="at least"):
            conv2d(height=2, width=10)


class TestAuxiliaryKernels:
    def test_dot_bad_length(self):
        with pytest.raises(IRError, match="divisible"):
            dot_product(length=10, unroll=4)

    def test_sad_has_abs_and_sub(self):
        program = sad(length=16)
        kinds = {o.kind for o in program.all_ops()}
        assert OpKind.ABS in kinds and OpKind.SUB in kinds

    def test_scale_offset_two_outputs_per_iter(self):
        program = scale_offset(length=16)
        stores = [o for o in program.blocks["body"].ops
                  if o.kind is OpKind.STORE]
        assert len(stores) == 2

    def test_factory(self):
        assert kernel_by_name("dot").name == "dot"
        with pytest.raises(IRError, match="unknown kernel"):
            kernel_by_name("fft")


class TestKernelsAreOptimizable:
    """Smoke: every kernel passes the full WLO-SLP flow."""

    @pytest.mark.parametrize("build", [
        lambda: dot_product(32),
        lambda: sad(32),
        lambda: scale_offset(32),
    ])
    def test_flow_runs(self, build):
        from repro.flows import AnalysisContext, run_wlo_slp
        from repro.targets import get_target

        program = build()
        context = AnalysisContext.build(program)
        result = run_wlo_slp(program, get_target("vex-4"), -25.0, context)
        assert result.total_cycles > 0
        assert not context.model.violates(result.spec, -25.0)
