"""Interpreter tests: numpy ground truth, tracing, error handling."""

import numpy as np
import pytest
import scipy.signal

from repro.errors import InterpreterError
from repro.ir import ExecutionTrace, Interpreter, run_program
from repro.kernels import conv2d, dot_product, fir, iir, sad


class TestKernelSemantics:
    """The paper's kernels must compute what scipy says they compute."""

    def test_fir_matches_correlate(self, rng):
        n, taps = 48, 16
        program = fir(n_samples=n, n_taps=taps)
        x = rng.uniform(-1, 1, n + taps - 1)
        h = program.arrays["h"].values
        got = run_program(program, {"x": x})["y"]
        want = np.correlate(x, h, mode="valid")
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_iir_matches_lfilter_steady_state(self, rng):
        """Initial conditions differ from lfilter's (the kernel starts
        with zero *output* history), but the difference decays with the
        filter's poles — the steady-state tails must agree."""
        n, order = 192, 4
        program = iir(n_samples=n, order=order)
        shape = program.arrays["x"].shape
        x = rng.uniform(-1, 1, shape)
        got = run_program(program, {"x": x})["y"]
        from repro.kernels.iir import default_iir_coefficients

        b, a = default_iir_coefficients(order)
        x_guard = shape[0] - n - order
        y_guard = program.arrays["y"].shape[0] - n - order
        want = scipy.signal.lfilter(b, a, x)
        skip = 96  # transient from differing initial conditions
        np.testing.assert_allclose(
            got[order + y_guard + skip:],
            want[order + x_guard + skip:],
            atol=1e-8,
        )

    def test_iir_matches_manual_recurrence(self, rng):
        """Exact check of the kernel's semantics, transient included."""
        n, order = 48, 4
        program = iir(n_samples=n, order=order)
        x = rng.uniform(-1, 1, program.arrays["x"].shape)
        got = run_program(program, {"x": x})["y"]
        from repro.kernels.iir import default_iir_coefficients

        b, a = default_iir_coefficients(order)
        x_guard = program.arrays["x"].shape[0] - n - order
        y_guard = program.arrays["y"].shape[0] - n - order
        want = np.zeros(program.arrays["y"].shape)
        for i in range(n):
            s = i + order + y_guard
            m = i + order + x_guard
            acc = sum(b[k] * x[m - k] for k in range(order + 1))
            acc -= sum(a[j] * want[s - j] for j in range(1, order + 1))
            want[s] = acc
        np.testing.assert_allclose(got, want, atol=1e-10)

    def test_conv2d_matches_correlate2d(self, rng):
        program = conv2d(height=12, width=14)
        img = rng.uniform(-1, 1, (12, 14))
        ker = program.arrays["ker"].values
        got = run_program(program, {"img": img})["out"]
        want = scipy.signal.correlate2d(img, ker, mode="valid")
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_dot_product(self, rng):
        program = dot_product(length=32)
        a = rng.uniform(-1, 1, 32)
        b = rng.uniform(-1, 1, 32)
        got = run_program(program, {"a": a, "b": b})["out"][0]
        assert got == pytest.approx(float(a @ b))

    def test_sad(self, rng):
        program = sad(length=32)
        a = rng.uniform(-1, 1, 32)
        b = rng.uniform(-1, 1, 32)
        got = run_program(program, {"ref": a, "cur": b})["out"][0]
        assert got == pytest.approx(float(np.abs(a - b).sum()))


class TestErrors:
    def test_missing_input(self, tiny_program):
        with pytest.raises(InterpreterError, match="missing input"):
            run_program(tiny_program, {})

    def test_wrong_shape(self, tiny_program):
        with pytest.raises(InterpreterError, match="shape"):
            run_program(tiny_program, {"x": np.zeros(3)})


class TestRangeObserver:
    def test_observes_every_op(self, tiny_program, rng):
        seen = set()
        interp = Interpreter(tiny_program)
        interp.run(
            {"x": rng.uniform(-1, 1, 8)},
            range_observer=lambda opid, value: seen.add(opid),
        )
        assert seen == {op.opid for op in tiny_program.all_ops()}


class TestTrace:
    def test_instance_counts(self, tiny_program, rng):
        trace = ExecutionTrace()
        Interpreter(tiny_program).run({"x": rng.uniform(-1, 1, 8)}, trace=trace)
        # init(2) + 8 * body(4 ops) + fin(2) + pseudo sources.
        executed = sum(1 for s in trace.static if 0 <= s < tiny_program.n_ops)
        assert executed == 2 + 8 * 4 + 2

    def test_output_instances_are_output_stores(self, tiny_program, rng):
        trace = ExecutionTrace()
        Interpreter(tiny_program).run({"x": rng.uniform(-1, 1, 8)}, trace=trace)
        assert len(trace.output_instances) == 1
        static = trace.static[trace.output_instances[0]]
        assert tiny_program.op(static).array == "y"

    def test_input_cells_get_pseudo_sources(self, tiny_program, rng):
        trace = ExecutionTrace()
        Interpreter(tiny_program).run({"x": rng.uniform(-1, 1, 8)}, trace=trace)
        cells = {key for key in trace.cell_sources if key[0] == "x"}
        assert len(cells) == 8

    def test_operand_links_are_backward(self, tiny_program, rng):
        trace = ExecutionTrace()
        Interpreter(tiny_program).run({"x": rng.uniform(-1, 1, 8)}, trace=trace)
        for inst, operands in enumerate(trace.operands):
            for producer in operands:
                assert producer < inst

    def test_partials_match_operands(self, tiny_program, rng):
        trace = ExecutionTrace()
        Interpreter(tiny_program).run({"x": rng.uniform(-1, 1, 8)}, trace=trace)
        for operands, partials in zip(trace.operands, trace.partials):
            assert len(operands) == len(partials)


class TestDeterminism:
    def test_same_input_same_output(self, rng):
        program = fir(n_samples=16, n_taps=8)
        x = rng.uniform(-1, 1, 23)
        first = run_program(program, {"x": x})["y"]
        second = run_program(program, {"x": x})["y"]
        np.testing.assert_array_equal(first, second)
