"""Bit-accurate fixed-point interpreter tests."""

import numpy as np
import pytest

from repro.errors import InterpreterError
from repro.fixedpoint import (
    FixedPointInterpreter,
    FxpConfig,
    OverflowMode,
    QuantMode,
    run_fixed_point,
)
from repro.ir import run_program


def _spec_at(context, wl):
    spec = context.fresh_spec()
    for root in context.slotmap.roots:
        spec.set_wl(root, wl)
    return spec


class TestErrorScaling:
    def test_error_shrinks_with_wl(self, fir_context, rng):
        """Each extra 4 bits of word length buys roughly 24 dB."""
        program = fir_context.program
        x = rng.uniform(-1, 1, program.arrays["x"].shape)
        reference = run_program(program, {"x": x})["y"]
        errors = []
        for wl in (12, 16, 20, 24):
            out = run_fixed_point(program, _spec_at(fir_context, wl), {"x": x})
            errors.append(np.abs(out["y"] - reference).max())
        for coarse, fine in zip(errors, errors[1:]):
            assert fine < coarse / 4.0  # at least 12 dB per 4 bits

    def test_wide_spec_is_nearly_exact(self, fir_context, rng):
        program = fir_context.program
        x = rng.uniform(-1, 1, program.arrays["x"].shape)
        reference = run_program(program, {"x": x})["y"]
        out = run_fixed_point(program, _spec_at(fir_context, 32), {"x": x})
        np.testing.assert_allclose(out["y"], reference, atol=1e-7)


class TestQuantModes:
    def test_rounding_beats_truncation_on_bias(self, fir_context, rng):
        program = fir_context.program
        x = rng.uniform(-1, 1, program.arrays["x"].shape)
        reference = run_program(program, {"x": x})["y"]
        spec = _spec_at(fir_context, 12)
        trunc = run_fixed_point(
            program, spec, {"x": x}, FxpConfig(quant_mode=QuantMode.TRUNCATE)
        )["y"]
        rnd = run_fixed_point(
            program, spec, {"x": x}, FxpConfig(quant_mode=QuantMode.ROUND)
        )["y"]
        # Truncation builds a systematic negative bias over the taps.
        assert abs(np.mean(trunc - reference)) > 4 * abs(np.mean(rnd - reference))


class TestOverflow:
    def _overflow_program(self):
        from repro.ir import ProgramBuilder

        b = ProgramBuilder("ovf")
        x = b.input_array("x", (1,), value_range=(-1.0, 1.0))
        y = b.output_array("y", (1,))
        with b.block("blk"):
            v = b.load(x, 0)
            b.store(y, 0, b.add(v, v))  # up to 2.0: overflows iwl=1
        return b.build()

    def test_saturation_clamps(self):
        from repro.fixedpoint import FixedPointSpec, SlotMap

        program = self._overflow_program()
        spec = FixedPointSpec(SlotMap(program), max_wl=16)  # iwl=1 everywhere
        out = run_fixed_point(
            program, spec, {"x": np.array([0.9])},
            FxpConfig(overflow=OverflowMode.SATURATE),
        )
        assert out["y"][0] == pytest.approx(1.0, abs=1e-3)  # clamped < 1.8

    def test_wrap_wraps(self):
        from repro.fixedpoint import FixedPointSpec, SlotMap

        program = self._overflow_program()
        spec = FixedPointSpec(SlotMap(program), max_wl=16)
        out = run_fixed_point(
            program, spec, {"x": np.array([0.9])},
            FxpConfig(overflow=OverflowMode.WRAP),
        )
        assert out["y"][0] < 0  # 1.8 wrapped into [-1, 1)


class TestEdgeNarrowing:
    def test_edge_wl_changes_result(self, fir_context, rng):
        program = fir_context.program
        x = rng.uniform(-1, 1, program.arrays["x"].shape)
        spec = _spec_at(fir_context, 32)
        base = run_fixed_point(program, spec, {"x": x})["y"]
        from repro.ir import OpKind

        for op in program.all_ops():
            if op.kind is OpKind.MUL:
                spec.set_edge_wl(op.opid, 0, 8)
                spec.set_edge_wl(op.opid, 1, 8)
        narrowed = run_fixed_point(program, spec, {"x": x})["y"]
        assert np.abs(narrowed - base).max() > 1e-4  # lanes lost precision
        assert np.abs(narrowed - base).max() < 0.2   # but stayed sane


class TestValidation:
    def test_missing_input(self, fir_context):
        interpreter = FixedPointInterpreter(
            fir_context.program, fir_context.fresh_spec()
        )
        with pytest.raises(InterpreterError, match="missing"):
            interpreter.run({})

    def test_foreign_spec_rejected(self, fir_context, small_conv):
        from repro.fixedpoint import FixedPointSpec, SlotMap

        foreign = FixedPointSpec(SlotMap(small_conv))
        with pytest.raises(InterpreterError, match="different program"):
            FixedPointInterpreter(fir_context.program, foreign)

    def test_twin_spec_accepted(self, fir_context):
        """Specs built on a structurally identical twin are usable."""
        from repro.fixedpoint import FixedPointSpec, SlotMap
        from repro.kernels import fir

        twin = fir(n_samples=64, n_taps=16)
        twin_spec = FixedPointSpec(SlotMap(twin))
        FixedPointInterpreter(fir_context.program, twin_spec)  # no raise


class TestDeterminismAndState:
    def test_runs_do_not_leak_state(self, iir_context, rng):
        program = iir_context.program
        spec = _spec_at(iir_context, 16)
        x = rng.uniform(-1, 1, program.arrays["x"].shape)
        interpreter = FixedPointInterpreter(program, spec)
        first = interpreter.run({"x": x})["y"]
        second = interpreter.run({"x": x})["y"]
        np.testing.assert_array_equal(first, second)
