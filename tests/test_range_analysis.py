"""Dynamic-range analysis tests: interval vs simulation vs truth."""

import numpy as np
import pytest

from repro.errors import RangeAnalysisError
from repro.fixedpoint import (
    SlotMap,
    analyze_ranges,
    interval_ranges,
    simulation_ranges,
)
from repro.ir import Interpreter, OpKind


def _observed_extremes(program, slotmap, n_draws=12, seed=7):
    """Ground truth: min/max per root slot over many random runs."""
    rng = np.random.default_rng(seed)
    observed = {}

    def observe(opid, value):
        root = slotmap.root_of(opid)
        lo, hi = observed.get(root, (value, value))
        observed[root] = (min(lo, value), max(hi, value))

    interp = Interpreter(program)
    for _ in range(n_draws):
        inputs = {
            decl.name: rng.uniform(*decl.value_range, size=decl.shape)
            for decl in program.input_arrays()
        }
        interp.run(inputs, range_observer=observe)
    return observed


class TestIntervalAnalysis:
    def test_fir_converges(self, small_fir):
        result = interval_ranges(small_fir)
        assert result.method == "interval"

    def test_fir_bounds_are_sound(self, small_fir):
        slotmap = SlotMap(small_fir)
        result = interval_ranges(small_fir, slotmap)
        for root, (lo, hi) in _observed_extremes(small_fir, slotmap).items():
            interval = result.ranges[root]
            assert interval.lo <= lo + 1e-9 and hi - 1e-9 <= interval.hi

    def test_fir_accumulator_bound_is_l1_norm(self, small_fir):
        """Concrete coefficient enumeration gives the tight L1 bound,
        not the trip*max blow-up."""
        slotmap = SlotMap(small_fir)
        result = interval_ranges(small_fir, slotmap)
        h = small_fir.arrays["h"].values
        l1 = np.abs(h).sum()
        acc = result.range_of(slotmap.slot_of_symbol("acc0"))
        assert acc.magnitude <= l1 + 1e-9

    def test_conv_converges(self, small_conv):
        result = interval_ranges(small_conv)
        slotmap = result.slotmap
        out = result.range_of(slotmap.slot_of_symbol("out"))
        ker = small_conv.arrays["ker"].values
        assert out.magnitude <= np.abs(ker).sum() + 1e-9

    def test_iir_diverges(self, small_iir):
        with pytest.raises(RangeAnalysisError, match="converge"):
            interval_ranges(small_iir)


class TestSimulationAnalysis:
    def test_covers_declared_input_range(self, small_fir):
        result = simulation_ranges(small_fir)
        x_slot = result.slotmap.slot_of_symbol("x")
        interval = result.range_of(x_slot)
        assert interval.lo <= -1.0 and interval.hi >= 1.0

    def test_margin_widens(self, small_fir):
        tight = simulation_ranges(small_fir, margin=0.0)
        wide = simulation_ranges(small_fir, margin=0.5)
        for root, interval in tight.ranges.items():
            assert wide.ranges[root].encloses(interval)

    def test_iir_ranges_bounded(self, small_iir):
        result = simulation_ranges(small_iir)
        y = result.range_of(result.slotmap.slot_of_symbol("y"))
        assert y.magnitude < 100.0  # the filter is stable

    def test_deterministic_given_seed(self, small_fir):
        a = simulation_ranges(small_fir, seed=3)
        b = simulation_ranges(small_fir, seed=3)
        assert a.ranges == b.ranges


class TestAutoDispatch:
    def test_feedforward_uses_interval(self, small_fir):
        assert analyze_ranges(small_fir).method == "interval"

    def test_recursive_falls_back_to_simulation(self, small_iir):
        assert analyze_ranges(small_iir).method == "simulation"

    def test_explicit_methods(self, small_fir):
        assert analyze_ranges(small_fir, method="simulation").method == "simulation"
        assert analyze_ranges(small_fir, method="interval").method == "interval"

    def test_unknown_method(self, small_fir):
        with pytest.raises(RangeAnalysisError, match="unknown"):
            analyze_ranges(small_fir, method="psychic")


class TestRangeResult:
    def test_range_of_resolves_ties(self, small_fir):
        result = analyze_ranges(small_fir)
        load = next(o for o in small_fir.all_ops() if o.kind is OpKind.LOAD)
        by_op = result.range_of(load.opid)
        by_symbol = result.range_of(
            result.slotmap.slot_of_symbol(load.array)
        )
        assert by_op == by_symbol

    def test_missing_range_raises(self, small_fir):
        result = analyze_ranges(small_fir)
        result.ranges.clear()
        with pytest.raises(RangeAnalysisError, match="no range"):
            result.range_of(0)
