"""Work-queue backend tests.

The scheduler core is exercised deterministically with an explicit
fake clock (no processes, no sleeps): lease reclaim from dead/stalled
workers, failed-cell retry with exponential backoff and exhaustion,
first-result-wins dedup, cache-first completion.  The backend
integration tests then run real worker processes, including the chaos
hook that hard-kills a worker on its first lease — the "a killed
worker loses no completed cells and the sweep finishes" guarantee.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    CellRequest,
    KernelConfig,
    SweepCache,
    SweepExecutor,
    SweepPlan,
    WorkQueueBackend,
    WorkQueueScheduler,
)
from repro.experiments.backends import CellResult

SMALL = dict(
    n_samples=96, analysis_samples=96, image_size=18, analysis_image_size=18
)

R1 = CellRequest("fir", "xentium", -15.0)
R2 = CellRequest("fir", "xentium", -45.0)


@pytest.fixture(scope="module")
def config() -> KernelConfig:
    return KernelConfig(**SMALL)


@pytest.fixture(scope="module")
def reference_cells(config):
    executor = SweepExecutor(config, jobs=1)
    plan = SweepPlan(config, [R1, R2])
    cells, stats = executor.run(plan)
    assert stats.computed == 2
    return cells


def _done(request, cell=None, error=None):
    return CellResult(request, cell, error=error)


class TestSchedulerCore:
    def test_assign_complete_finish(self):
        scheduler = WorkQueueScheduler([R1, R2])
        a = scheduler.next_assignment("w0", now=0.0)
        b = scheduler.next_assignment("w1", now=0.0)
        assert {a.request, b.request} == {R1, R2}
        assert scheduler.next_assignment("w2", now=0.0) is None  # all leased
        assert scheduler.complete(a.ticket, _done(a.request)) is not None
        assert not scheduler.finished
        assert scheduler.complete(b.ticket, _done(b.request)) is not None
        assert scheduler.finished
        assert [r.request for r in scheduler.outcomes()] == [R1, R2]

    def test_duplicate_result_is_dropped(self):
        scheduler = WorkQueueScheduler([R1])
        a = scheduler.next_assignment("w0", now=0.0)
        assert scheduler.complete(a.ticket, _done(R1)) is not None
        assert scheduler.complete(a.ticket, _done(R1)) is None  # dup
        assert scheduler.counts()["done"] == 1

    def test_lease_reclaim_after_dead_worker(self):
        """A worker that stops heartbeating loses its lease at the
        deadline; the cell goes back in the queue and the next ready
        worker gets it."""
        scheduler = WorkQueueScheduler([R1], lease_timeout=10.0)
        a = scheduler.next_assignment("w0", now=0.0)
        assert scheduler.reclaim(now=5.0) == []  # deadline not reached
        assert scheduler.next_assignment("w1", now=5.0) is None  # still leased
        assert scheduler.reclaim(now=10.0) == []  # requeued, not exhausted
        b = scheduler.next_assignment("w1", now=10.0)
        assert b is not None and b.request == R1 and b.ticket != a.ticket
        assert scheduler.complete(b.ticket, _done(R1)) is not None
        assert scheduler.finished

    def test_heartbeat_extends_the_lease(self):
        scheduler = WorkQueueScheduler([R1], lease_timeout=10.0)
        scheduler.next_assignment("w0", now=0.0)
        scheduler.heartbeat("w0", now=8.0)  # deadline now 18.0
        assert scheduler.reclaim(now=12.0) == []
        assert scheduler.counts()["leased"] == 1

    def test_release_worker_requeues_immediately(self):
        scheduler = WorkQueueScheduler([R1], lease_timeout=1000.0)
        scheduler.next_assignment("w0", now=0.0)
        assert scheduler.release_worker("w0", now=0.1) == []
        b = scheduler.next_assignment("w1", now=0.2)
        assert b is not None and b.request == R1

    def test_retry_backoff_is_exponential(self):
        scheduler = WorkQueueScheduler([R1], retry_backoff=1.0, max_attempts=3)
        a = scheduler.next_assignment("w0", now=0.0)
        assert scheduler.fail(a.ticket, "Boom: 1", now=0.0) is None
        # First retry gated by backoff * 2**0 = 1s.
        assert scheduler.next_assignment("w0", now=0.5) is None
        b = scheduler.next_assignment("w0", now=1.0)
        assert b is not None
        assert scheduler.fail(b.ticket, "Boom: 2", now=1.0) is None
        # Second retry gated by backoff * 2**1 = 2s.
        assert scheduler.next_assignment("w0", now=2.5) is None
        assert scheduler.next_assignment("w0", now=3.0) is not None

    def test_backoff_exhaustion_becomes_failed_outcome(self):
        """Satellite edge case: after max_attempts the last error is
        final, keeps the `TypeName: message` prefix, and records the
        attempt count."""
        scheduler = WorkQueueScheduler([R1, R2], retry_backoff=0.0,
                                       max_attempts=2)
        terminal = None
        for now in (0.0, 1.0):
            a = scheduler.next_assignment("w0", now=now)
            terminal = scheduler.fail(
                a.ticket, "WLOError: constraint is infeasible", now=now
            )
        assert terminal is not None
        assert terminal.cell is None
        assert terminal.error.startswith("WLOError: constraint is infeasible")
        assert "(after 2 attempts)" in terminal.error
        # The sibling cell is untouched and still schedulable.
        b = scheduler.next_assignment("w0", now=2.0)
        assert b is not None and b.request == R2
        assert scheduler.complete(b.ticket, _done(R2)) is not None
        assert scheduler.finished
        assert [r.error is not None for r in scheduler.outcomes()] == [
            True, False
        ]

    def test_reclaim_exhaustion_fails_terminally(self):
        scheduler = WorkQueueScheduler([R1], max_attempts=1, lease_timeout=5.0)
        scheduler.next_assignment("w0", now=0.0)
        (terminal,) = scheduler.reclaim(now=5.0)
        assert terminal.cell is None
        assert "lease expired" in terminal.error
        assert "(after 1 attempts)" in terminal.error
        assert scheduler.finished

    def test_stale_fail_is_ignored_after_reclaim(self):
        """A stalled (not dead) worker may deliver a failure for a
        lease that was already reclaimed and re-assigned — only the
        current lease may fail the cell."""
        scheduler = WorkQueueScheduler([R1], lease_timeout=5.0)
        a = scheduler.next_assignment("w0", now=0.0)
        scheduler.reclaim(now=5.0)
        b = scheduler.next_assignment("w1", now=5.0)
        assert scheduler.fail(a.ticket, "Boom: stale", now=6.0) is None
        assert scheduler.counts()["leased"] == 1  # w1's lease unharmed
        assert scheduler.complete(b.ticket, _done(R1)) is not None

    def test_stale_success_wins_if_cell_still_open(self):
        """First result wins even off a reclaimed lease — completed
        work is never discarded."""
        scheduler = WorkQueueScheduler([R1], lease_timeout=5.0)
        a = scheduler.next_assignment("w0", now=0.0)
        scheduler.reclaim(now=5.0)
        b = scheduler.next_assignment("w1", now=5.0)
        assert scheduler.complete(a.ticket, _done(R1)) is not None  # stale ok
        assert scheduler.finished
        assert scheduler.complete(b.ticket, _done(R1)) is None  # later dup

    def test_mark_done_skips_assignment(self):
        """Cache-first completion: a cell marked done from the cache is
        never handed to a worker."""
        scheduler = WorkQueueScheduler([R1, R2])
        assert scheduler.mark_done(
            R1, CellResult(R1, None, source="cache", stored=True)
        ) is not None
        a = scheduler.next_assignment("w0", now=0.0)
        assert a.request == R2
        assert scheduler.next_assignment("w1", now=0.0) is None

    def test_abort_pending_fails_everything_open(self):
        scheduler = WorkQueueScheduler([R1, R2])
        a = scheduler.next_assignment("w0", now=0.0)
        scheduler.complete(a.ticket, _done(a.request))
        failures = scheduler.abort_pending("all workers died")
        assert len(failures) == 1
        assert failures[0].error == "all workers died"
        assert scheduler.finished

    def test_rejects_nonpositive_max_attempts(self):
        from repro.errors import ExecutionBackendError

        with pytest.raises(ExecutionBackendError, match="max_attempts"):
            WorkQueueScheduler([R1], max_attempts=0)


class TestWorkQueueBackend:
    def test_bit_identical_to_serial(self, config, reference_cells):
        backend = WorkQueueBackend()
        results = {
            r.request: r
            for r in backend.evaluate(config, [R1, R2], jobs=2, cache=None)
        }
        assert {req: r.cell for req, r in results.items()} == reference_cells

    def test_cache_first_assignment_skips_persisted_cells(
        self, config, reference_cells, tmp_path
    ):
        """Satellite edge case: a cell another host already persisted
        completes from the cache at assignment time and is never
        dispatched; the other cell computes and persists worker-side."""
        cache = SweepCache(tmp_path)
        cache.store(config, R1, reference_cells[R1])
        backend = WorkQueueBackend()
        results = {
            r.request: r
            for r in backend.evaluate(config, [R1, R2], jobs=2, cache=cache)
        }
        assert results[R1].source == "cache" and results[R1].stored
        assert results[R2].source == "computed" and results[R2].stored
        assert results[R2].cell == reference_cells[R2]
        assert len(cache) == 2  # worker persisted the computed cell

    def test_killed_worker_loses_no_cells_and_sweep_finishes(
        self, config, reference_cells, tmp_path
    ):
        """The acceptance scenario: one worker is hard-killed on its
        first lease (``os._exit``, no result, no goodbye).  The
        coordinator reclaims the lease, respawns, and every cell still
        resolves bit-identically; nothing already completed is lost."""
        cache = SweepCache(tmp_path)
        backend = WorkQueueBackend()
        backend.chaos = "kill-first-lease"
        backend.lease_timeout = 30.0
        results = {
            r.request: r
            for r in backend.evaluate(config, [R1, R2], jobs=2, cache=cache)
        }
        assert set(results) == {R1, R2}
        assert all(r.error is None for r in results.values())
        assert {req: r.cell for req, r in results.items()} == reference_cells
        assert len(cache) == 2  # both persisted despite the kill

    def test_infeasible_cell_fails_after_retries_others_survive(
        self, config, reference_cells
    ):
        faulty = CellRequest("fir", "xentium", -400.0)
        backend = WorkQueueBackend()
        backend.retry_backoff = 0.01
        results = {
            r.request: r
            for r in backend.evaluate(
                config, [R1, faulty], jobs=2, cache=None
            )
        }
        assert results[R1].cell == reference_cells[R1]
        error = results[faulty].error
        assert error.startswith("WLOError") and "infeasible" in error
        assert f"(after {backend.max_attempts} attempts)" in error

    def test_empty_miss_list_is_a_noop(self, config):
        assert list(WorkQueueBackend().evaluate(config, [], jobs=2)) == []
