"""C back-end tests: bit-exactness against the Python interpreter.

The scalar emitter is compiled with the system C compiler (when one
exists) and its output mantissas compared bit-for-bit with the
fixed-point interpreter — the strongest cross-validation in the suite.
"""

import shutil
import subprocess

import numpy as np
import pytest

from repro.codegen import emit_fixed_point_c, emit_simd_c
from repro.fixedpoint import FxpConfig, OverflowMode, QuantMode, run_fixed_point
from repro.flows import run_wlo_slp
from repro.targets import get_target

HAVE_CC = shutil.which("cc") is not None

requires_cc = pytest.mark.skipif(not HAVE_CC, reason="no C compiler")


def _compile_and_run(source: str, tmp_path) -> np.ndarray:
    c_file = tmp_path / "kernel.c"
    binary = tmp_path / "kernel"
    c_file.write_text(source)
    subprocess.run(
        ["cc", "-O2", "-o", str(binary), str(c_file)],
        check=True, capture_output=True,
    )
    out = subprocess.run(
        [str(binary)], check=True, capture_output=True, text=True
    )
    return np.array([int(line) for line in out.stdout.split()])


def _mantissas(values: np.ndarray, fwl: int) -> np.ndarray:
    return np.round(np.asarray(values) * 2.0 ** fwl).astype(np.int64)


@requires_cc
class TestBitExactness:
    @pytest.mark.parametrize("wl", [32, 16, 12])
    def test_fir_scalar_c_matches_interpreter(
        self, fir_context, rng, tmp_path, wl
    ):
        program = fir_context.program
        spec = fir_context.fresh_spec()
        for root in fir_context.slotmap.roots:
            spec.set_wl(root, wl)
        x = rng.uniform(-1, 1, program.arrays["x"].shape)
        source = emit_fixed_point_c(program, spec, inputs={"x": x})
        c_out = _compile_and_run(source, tmp_path)
        py_out = run_fixed_point(program, spec, {"x": x})["y"]
        fwl = spec.fwl(fir_context.slotmap.slot_of_symbol("y"))
        np.testing.assert_array_equal(c_out, _mantissas(py_out, fwl))

    def test_iir_scalar_c_matches_interpreter(
        self, iir_context, rng, tmp_path
    ):
        program = iir_context.program
        spec = iir_context.fresh_spec()
        for root in iir_context.slotmap.roots:
            spec.set_wl(root, 16)
        x = rng.uniform(-1, 1, program.arrays["x"].shape)
        source = emit_fixed_point_c(program, spec, inputs={"x": x})
        c_out = _compile_and_run(source, tmp_path)
        py_out = run_fixed_point(program, spec, {"x": x})["y"]
        fwl = spec.fwl(iir_context.slotmap.slot_of_symbol("y"))
        np.testing.assert_array_equal(c_out, _mantissas(py_out, fwl))

    def test_conv_scalar_c_matches_interpreter(
        self, conv_context, rng, tmp_path
    ):
        program = conv_context.program
        spec = conv_context.fresh_spec()
        for root in conv_context.slotmap.roots:
            spec.set_wl(root, 16)
        img = rng.uniform(-1, 1, program.arrays["img"].shape)
        source = emit_fixed_point_c(program, spec, inputs={"img": img})
        c_out = _compile_and_run(source, tmp_path)
        py_out = run_fixed_point(program, spec, {"img": img})["out"]
        fwl = spec.fwl(conv_context.slotmap.slot_of_symbol("out"))
        np.testing.assert_array_equal(
            c_out, _mantissas(py_out.ravel(), fwl)
        )

    def test_rounding_mode_matches(self, fir_context, rng, tmp_path):
        program = fir_context.program
        spec = fir_context.fresh_spec()
        for root in fir_context.slotmap.roots:
            spec.set_wl(root, 14)
        config = FxpConfig(quant_mode=QuantMode.ROUND)
        x = rng.uniform(-1, 1, program.arrays["x"].shape)
        source = emit_fixed_point_c(program, spec, config, inputs={"x": x})
        c_out = _compile_and_run(source, tmp_path)
        py_out = run_fixed_point(program, spec, {"x": x}, config)["y"]
        fwl = spec.fwl(fir_context.slotmap.slot_of_symbol("y"))
        np.testing.assert_array_equal(c_out, _mantissas(py_out, fwl))

    def test_wrap_mode_matches(self, fir_context, rng, tmp_path):
        program = fir_context.program
        spec = fir_context.fresh_spec()
        for root in fir_context.slotmap.roots:
            spec.set_wl(root, 16)
        config = FxpConfig(overflow=OverflowMode.WRAP)
        x = rng.uniform(-1, 1, program.arrays["x"].shape)
        source = emit_fixed_point_c(program, spec, config, inputs={"x": x})
        c_out = _compile_and_run(source, tmp_path)
        py_out = run_fixed_point(program, spec, {"x": x}, config)["y"]
        fwl = spec.fwl(fir_context.slotmap.slot_of_symbol("y"))
        np.testing.assert_array_equal(c_out, _mantissas(py_out, fwl))


class TestStructural:
    def test_scalar_source_shape(self, fir_context):
        source = emit_fixed_point_c(
            fir_context.program, fir_context.fresh_spec()
        )
        assert "void kernel(void)" in source
        assert "static const int32_t h[" in source  # coeff initializer
        assert "requant(" in source
        assert "main" not in source  # no stimulus embedded

    def test_simd_source_uses_macro_api(self, fir_context):
        result = run_wlo_slp(
            fir_context.program, get_target("xentium"), -15.0, fir_context
        )
        source = emit_simd_c(
            fir_context.program, result.spec, result.groups
        )
        assert "V2MUL(" in source
        assert "V2ADD(" in source
        assert "V2LOAD(" in source
        assert "#define V2ADD" in source  # portable fallback present

    def test_simd_group_count_matches(self, fir_context):
        result = run_wlo_slp(
            fir_context.program, get_target("xentium"), -15.0, fir_context
        )
        source = emit_simd_c(
            fir_context.program, result.spec, result.groups
        )
        assert source.count("/* group g") == result.n_groups

    @requires_cc
    def test_simd_source_compiles(self, fir_context, tmp_path):
        result = run_wlo_slp(
            fir_context.program, get_target("xentium"), -15.0, fir_context
        )
        source = emit_simd_c(
            fir_context.program, result.spec, result.groups
        )
        c_file = tmp_path / "simd.c"
        c_file.write_text(source + "\nint main(void) { kernel_simd(); return 0; }\n")
        subprocess.run(
            ["cc", "-O2", "-o", str(tmp_path / "simd"), str(c_file)],
            check=True, capture_output=True,
        )
