"""IR printer tests."""

from repro.ir import OpKind, format_block, format_op, format_program


class TestFormatOp:
    def test_infix_arith(self, small_fir):
        mul = next(o for o in small_fir.all_ops() if o.kind is OpKind.MUL)
        text = format_op(mul)
        assert "*" in text and f"%{mul.opid} =" in text

    def test_load_subscript(self, small_fir):
        load = next(o for o in small_fir.all_ops() if o.kind is OpKind.LOAD)
        assert f"{load.array}[" in format_op(load)

    def test_store_lhs(self, small_fir):
        store = small_fir.output_store_ops()[0]
        assert format_op(store).startswith("y[")

    def test_var_ops(self, tiny_program):
        read = next(
            o for o in tiny_program.all_ops() if o.kind is OpKind.READVAR
        )
        write = next(
            o for o in tiny_program.all_ops() if o.kind is OpKind.WRITEVAR
        )
        assert "$acc" in format_op(read)
        assert format_op(write).startswith("$acc =")

    def test_label_suffix(self, small_fir):
        labelled = next(o for o in small_fir.all_ops() if o.label)
        assert f"; {labelled.label}" in format_op(labelled)

    def test_minmax_function_style(self):
        from repro.ir import ProgramBuilder

        b = ProgramBuilder("m")
        x = b.input_array("x", (2,), value_range=(-1, 1))
        y = b.output_array("y", (1,))
        with b.block("blk"):
            v = b.min_(b.load(x, 0), b.load(x, 1))
            b.store(y, 0, b.abs_(v))
        program = b.build()
        text = format_block(program.blocks["blk"])
        assert "min(" in text and "abs(" in text


class TestFormatProgram:
    def test_full_dump(self, small_fir):
        text = format_program(small_fir)
        assert "program fir16:" in text
        assert "array x[79] : input" in text
        assert "for n in 0..63:" in text
        assert "for k in 0..3:" in text
        assert "block body:" in text

    def test_str_dunder(self, tiny_program):
        assert str(tiny_program) == format_program(tiny_program)

    def test_indentation_tracks_nesting(self, small_fir):
        lines = format_program(small_fir).splitlines()
        body_header = next(l for l in lines if "block body" in l)
        init_header = next(l for l in lines if "block init" in l)
        indent = lambda s: len(s) - len(s.lstrip())
        assert indent(body_header) > indent(init_header)
