"""Extraction driver tests: selection loop, widening, decoupled mode."""

import pytest

from repro.errors import SLPError
from repro.fixedpoint import FixedPointSpec, SlotMap
from repro.ir import OpKind
from repro.slp import (
    Candidate,
    GroupSet,
    SelectionStats,
    build_group_set,
    extract_groups_decoupled,
    merge_items,
)
from repro.targets import get_target, vex


def _uniform_spec(program, wl):
    spec = FixedPointSpec(SlotMap(program))
    for root in spec.slotmap.roots:
        spec.set_wl(root, wl)
    return spec


class TestMergeItems:
    def test_merge_replaces_parts(self):
        items = [(1,), (2,), (3,), (4,)]
        selected = [Candidate((1,), (2,), OpKind.MUL, 16)]
        merged = merge_items(items, selected)
        assert (1, 2) in merged
        assert (3,) in merged and (4,) in merged
        assert (1,) not in merged

    def test_conflicting_selection_rejected(self):
        items = [(1,), (2,), (3,)]
        selected = [
            Candidate((1,), (2,), OpKind.MUL, 16),
            Candidate((2,), (3,), OpKind.MUL, 16),
        ]
        with pytest.raises(SLPError, match="conflict-free"):
            merge_items(items, selected)


class TestBuildGroupSet:
    def test_singletons_excluded(self, small_fir):
        spec = _uniform_spec(small_fir, 16)
        groups = build_group_set(
            small_fir.blocks["body"], [(7, 13), (5,)], small_fir, spec
        )
        assert len(groups) == 1
        assert groups.groups[0].wl == 16

    def test_group_lookup(self, small_fir):
        spec = _uniform_spec(small_fir, 16)
        groups = build_group_set(
            small_fir.blocks["body"], [(7, 13)], small_fir, spec
        )
        group, lane = groups.group_of(13)
        assert lane == 1
        assert groups.group_of(999) is None
        assert groups.producer_group((7, 13)) is group
        assert groups.producer_group((13, 7)) is None


class TestDecoupledExtraction:
    def test_uniform_16bit_groups_everything(self, small_fir):
        spec = _uniform_spec(small_fir, 16)
        stats = SelectionStats()
        groups = extract_groups_decoupled(
            small_fir, small_fir.blocks["body"], spec,
            get_target("xentium"), stats,
        )
        grouped_kinds = {g.kind for g in groups}
        assert OpKind.MUL in grouped_kinds
        assert OpKind.LOAD in grouped_kinds
        assert stats.candidates_selected == len(groups)

    def test_32bit_spec_groups_nothing(self, small_fir):
        spec = _uniform_spec(small_fir, 32)
        groups = extract_groups_decoupled(
            small_fir, small_fir.blocks["body"], spec, get_target("xentium")
        )
        assert len(groups) == 0  # 32-bit lanes don't fit 2x16

    def test_mixed_wl_blocks_groups(self, small_fir):
        """The paper's core failure mode: WLO-assigned mixed word
        lengths prevent grouping."""
        spec = _uniform_spec(small_fir, 16)
        muls = [o for o in small_fir.all_ops() if o.kind is OpKind.MUL]
        spec.set_wl(muls[0].opid, 32)  # one wide mul
        groups = extract_groups_decoupled(
            small_fir, small_fir.blocks["body"], spec, get_target("xentium")
        )
        assert groups.group_of(muls[0].opid) is None

    def test_wide_mul_operand_blocks_group(self, small_fir):
        """A 16-bit multiply fed by a 32-bit producer cannot join a
        2x16 vector multiply (no narrowing after the fact)."""
        spec = _uniform_spec(small_fir, 16)
        spec.set_wl(spec.slotmap.slot_of_symbol("x"), 32)
        groups = extract_groups_decoupled(
            small_fir, small_fir.blocks["body"], spec, get_target("xentium")
        )
        assert all(g.kind is not OpKind.MUL for g in groups)

    def test_widening_on_vex(self, small_fir):
        """8-bit specs widen to 4-lane groups on VEX (4x8 support)."""
        spec = _uniform_spec(small_fir, 8)
        groups = extract_groups_decoupled(
            small_fir, small_fir.blocks["body"], spec, vex(4)
        )
        sizes = {g.size for g in groups}
        assert 4 in sizes

    def test_no_widening_on_xentium(self, small_fir):
        spec = _uniform_spec(small_fir, 16)
        groups = extract_groups_decoupled(
            small_fir, small_fir.blocks["body"], spec, get_target("xentium")
        )
        assert {g.size for g in groups} <= {2}


class TestGroupSetInvariants:
    def test_each_op_in_one_group(self, small_fir):
        spec = _uniform_spec(small_fir, 16)
        groups = extract_groups_decoupled(
            small_fir, small_fir.blocks["body"], spec, get_target("xentium")
        )
        seen = set()
        for group in groups:
            for opid in group.lanes:
                assert opid not in seen
                seen.add(opid)

    def test_duplicate_add_rejected(self, small_fir):
        spec = _uniform_spec(small_fir, 16)
        groups = GroupSet("body")
        from repro.slp import SIMDGroup

        groups.add(SIMDGroup(0, "body", OpKind.MUL, (7, 13), 16))
        with pytest.raises(SLPError, match="already"):
            groups.add(SIMDGroup(1, "body", OpKind.MUL, (13, 19), 16))

    def test_wrong_block_rejected(self):
        from repro.slp import SIMDGroup

        groups = GroupSet("body")
        with pytest.raises(SLPError, match="belongs"):
            groups.add(SIMDGroup(0, "other", OpKind.MUL, (1, 2), 16))
