"""Boundary word-length harmonization tests (repro.wlo.boundary)."""

from repro.ir import OpKind
from repro.slp import GroupSet, SIMDGroup, set_group_wl
from repro.targets import get_target, vex
from repro.wlo.boundary import harmonize_boundary_wls


def _narrow_mul_groups(context, wl=16):
    """Spec with the FIR mul pairs narrowed, everything else wide."""
    program = context.program
    spec = context.fresh_spec()
    muls = [
        o.opid for o in program.blocks["body"].ops if o.kind is OpKind.MUL
    ]
    groups = GroupSet("body")
    groups.add(SIMDGroup(0, "body", OpKind.MUL, (muls[0], muls[1]), wl))
    groups.add(SIMDGroup(1, "body", OpKind.MUL, (muls[2], muls[3]), wl))
    for group in groups:
        set_group_wl(spec, program, group.lanes, wl)
    return spec, groups, muls


class TestScalarMoves:
    def test_adjacent_consumers_narrow(self, fir_context):
        spec, groups, muls = _narrow_mul_groups(fir_context)
        program = fir_context.program
        adds = [
            o for o in program.blocks["body"].ops if o.kind is OpKind.ADD
        ]
        grouped = {opid for group in groups for opid in group.lanes}
        before = [spec.wl(a.opid) for a in adds]
        assert set(before) == {32}
        moves = harmonize_boundary_wls(
            program, spec, fir_context.model, get_target("xentium"),
            -15.0, grouped,
        )
        assert moves > 0
        after = [spec.wl(a.opid) for a in adds]
        assert all(wl <= 16 for wl in after)

    def test_never_violates_satisfied_constraint(self, fir_context):
        """Starting from a feasible spec, the pass keeps it feasible."""
        spec, groups, _muls = _narrow_mul_groups(fir_context)
        grouped = {opid for group in groups for opid in group.lanes}
        start_level = fir_context.model.noise_db(spec)
        for slack in (20.0, 5.0, 1.0):
            token = spec.save()
            constraint = start_level + slack
            harmonize_boundary_wls(
                fir_context.program, spec, fir_context.model,
                get_target("xentium"), constraint, grouped,
            )
            assert not fir_context.model.violates(spec, constraint)
            spec.revert(token)

    def test_tight_budget_still_feasible(self, fir_context):
        """With almost no slack, whatever moves are accepted must be
        (nearly) noise-free — feasibility is preserved regardless."""
        spec, groups, _muls = _narrow_mul_groups(fir_context)
        grouped = {opid for group in groups for opid in group.lanes}
        level = fir_context.model.noise_db(spec)
        harmonize_boundary_wls(
            fir_context.program, spec, fir_context.model,
            get_target("xentium"), level + 0.05, grouped,
        )
        assert not fir_context.model.violates(spec, level + 0.05)

    def test_no_narrower_neighbours_is_noop(self, fir_context):
        spec = fir_context.fresh_spec()  # everything at 32
        moves = harmonize_boundary_wls(
            fir_context.program, spec, fir_context.model,
            get_target("xentium"), -10.0, set(),
        )
        assert moves == 0
        assert all(
            spec.wl(root) == 32 for root in fir_context.slotmap.roots
        )

    def test_grouped_ops_untouched_by_scalar_pass(self, fir_context):
        spec, groups, muls = _narrow_mul_groups(fir_context)
        grouped = {opid for group in groups for opid in group.lanes}
        harmonize_boundary_wls(
            fir_context.program, spec, fir_context.model,
            get_target("xentium"), -10.0, grouped,
        )
        for opid in grouped:
            assert spec.wl(opid) == 16  # eq. (1) result preserved


class TestGroupMoves:
    def test_wide_pair_narrows_to_adjacent_quad(self, conv_context):
        """A 16-bit pair consuming an 8-bit quad narrows to 8."""
        from repro.wlo import wlo_slp_optimize

        spec = conv_context.fresh_spec()
        outcome = wlo_slp_optimize(
            conv_context.program, spec, conv_context.model, vex(4), -10.0,
        )
        sizes_wls = {
            (group.size, group.wl)
            for groups in outcome.groups.values()
            for group in groups
        }
        quads = {wl for size, wl in sizes_wls if size == 4}
        pairs = {wl for size, wl in sizes_wls if size == 2}
        if quads and pairs:
            # Harmonization pulled consuming pairs down to the quad wl.
            assert min(pairs) <= max(quads) * 2

    def test_group_moves_keep_simd_legality(self, conv_context):
        from repro.wlo import wlo_slp_optimize

        target = vex(4)
        spec = conv_context.fresh_spec()
        outcome = wlo_slp_optimize(
            conv_context.program, spec, conv_context.model, target, -10.0,
        )
        for groups in outcome.groups.values():
            for group in groups:
                assert group.wl in target.simd_widths
                assert group.wl * group.size <= target.scalar_wl
