"""Property and unit tests for integer quantization primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FixedPointError, OverflowPolicyError
from repro.fixedpoint import (
    OverflowMode,
    QFormat,
    QuantMode,
    apply_overflow,
    float_to_mantissa,
    mantissa_to_float,
    quantize_value,
    requantize,
    saturate,
    wrap,
)

mantissas = st.integers(-(2 ** 40), 2 ** 40)
fracs = st.integers(-8, 40)


class TestRequantize:
    @given(mantissas, fracs, fracs)
    def test_widening_is_exact(self, m, f_from, extra):
        f_to = f_from + abs(extra)
        widened = requantize(m, f_from, f_to, QuantMode.TRUNCATE)
        assert mantissa_to_float(widened, f_to) == mantissa_to_float(m, f_from)

    @given(mantissas, fracs, st.integers(1, 20))
    def test_truncation_error_bounds(self, m, f_to, drop):
        f_from = f_to + drop
        out = requantize(m, f_from, f_to, QuantMode.TRUNCATE)
        error = mantissa_to_float(out, f_to) - mantissa_to_float(m, f_from)
        q = 2.0 ** -f_to
        assert -q < error <= 0.0  # truncation rounds toward -inf

    @given(mantissas, fracs, st.integers(1, 20))
    def test_rounding_error_bounds(self, m, f_to, drop):
        f_from = f_to + drop
        out = requantize(m, f_from, f_to, QuantMode.ROUND)
        error = mantissa_to_float(out, f_to) - mantissa_to_float(m, f_from)
        q = 2.0 ** -f_to
        assert -q / 2 <= error <= q / 2

    def test_truncation_floors_negative(self):
        # -1 with 1 fractional bit -> -0.5; truncating to 0 bits gives -1.
        assert requantize(-1, 1, 0, QuantMode.TRUNCATE) == -1
        assert requantize(-1, 1, 0, QuantMode.ROUND) == 0  # round half up


class TestWrapSaturate:
    @given(mantissas, st.integers(1, 32))
    def test_wrap_is_in_range(self, m, wl):
        out = wrap(m, wl)
        assert -(1 << (wl - 1)) <= out < (1 << (wl - 1))

    @given(mantissas, st.integers(1, 32))
    def test_wrap_preserves_low_bits(self, m, wl):
        assert (wrap(m, wl) - m) % (1 << wl) == 0

    @given(mantissas, st.integers(1, 32))
    def test_saturate_is_clamp(self, m, wl):
        out = saturate(m, wl)
        lo, hi = -(1 << (wl - 1)), (1 << (wl - 1)) - 1
        assert out == max(lo, min(hi, m))

    @given(st.integers(-100, 100), st.integers(8, 32))
    def test_fits_are_identity_in_range(self, m, wl):
        assert wrap(m, wl) == m
        assert saturate(m, wl) == m

    def test_bad_wl(self):
        with pytest.raises(FixedPointError):
            wrap(0, 0)
        with pytest.raises(FixedPointError):
            saturate(0, -1)


class TestApplyOverflow:
    def test_error_mode_raises(self):
        with pytest.raises(OverflowPolicyError):
            apply_overflow(1 << 20, 8, OverflowMode.ERROR)

    def test_error_mode_passes_in_range(self):
        assert apply_overflow(100, 8, OverflowMode.ERROR) == 100

    def test_modes_agree_in_range(self):
        for mode in OverflowMode:
            assert apply_overflow(-5, 8, mode) == -5


class TestFloatConversion:
    @given(st.floats(-4.0, 4.0), st.integers(0, 30))
    def test_truncate_round_trip_error(self, value, fwl):
        m = float_to_mantissa(value, fwl, QuantMode.TRUNCATE)
        back = mantissa_to_float(m, fwl)
        q = 2.0 ** -fwl
        assert value - q - 1e-12 <= back <= value + 1e-12

    @given(st.floats(-4.0, 4.0), st.integers(0, 30))
    def test_round_round_trip_error(self, value, fwl):
        back = quantize_value(value, fwl, QuantMode.ROUND)
        q = 2.0 ** -fwl
        assert abs(back - value) <= q / 2 + 1e-12

    def test_exact_values_preserved(self):
        assert quantize_value(0.5, 4, QuantMode.TRUNCATE) == 0.5
        assert quantize_value(-0.75, 2, QuantMode.TRUNCATE) == -0.75


class TestQFormat:
    def test_wl_sum(self):
        fmt = QFormat(2, 14)
        assert fmt.wl == 16
        assert fmt.quantum == 2.0 ** -14

    def test_value_range(self):
        fmt = QFormat(1, 15)  # Q1.15
        assert fmt.min_value == -1.0
        assert fmt.max_value == pytest.approx(1.0 - 2.0 ** -15)
        assert fmt.contains_value(0.999)
        assert not fmt.contains_value(1.0)

    def test_negative_fwl_allowed(self):
        fmt = QFormat(10, -2)
        assert fmt.wl == 8
        assert fmt.quantum == 4.0

    def test_nonpositive_wl_rejected(self):
        with pytest.raises(FixedPointError):
            QFormat(2, -2)

    def test_with_wl_keeps_iwl(self):
        narrowed = QFormat(3, 29).with_wl(16)
        assert narrowed.iwl == 3 and narrowed.wl == 16

    def test_with_fwl_keeps_wl(self):
        moved = QFormat(3, 13).with_fwl(10)
        assert moved.wl == 16 and moved.iwl == 6

    @given(st.integers(1, 16), st.integers(0, 24))
    def test_mantissa_bounds_match_value_bounds(self, iwl, fwl):
        fmt = QFormat(iwl, fwl)
        assert mantissa_to_float(fmt.max_mantissa, fwl) == fmt.max_value
        assert mantissa_to_float(fmt.min_mantissa, fwl) == fmt.min_value

    def test_ordering(self):
        assert QFormat(1, 7) < QFormat(1, 15)
        assert str(QFormat(2, 14)) == "<2,14>"
