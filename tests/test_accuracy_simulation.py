"""Simulation-based accuracy evaluator tests."""

import numpy as np
import pytest

from repro.accuracy import (
    SimulationAccuracyEvaluator,
    measured_noise_power,
    noise_power_db,
    sqnr_db,
)


class TestEvaluator:
    def test_noise_decreases_with_wl(self, fir_context):
        evaluator = SimulationAccuracyEvaluator(
            fir_context.program, n_stimuli=2
        )
        levels = []
        for wl in (10, 16, 24):
            spec = fir_context.fresh_spec()
            for root in fir_context.slotmap.roots:
                spec.set_wl(root, wl)
            levels.append(evaluator.noise_db(spec))
        assert levels == sorted(levels, reverse=True)

    def test_references_cached_once(self, fir_context):
        evaluator = SimulationAccuracyEvaluator(
            fir_context.program, n_stimuli=3
        )
        assert len(evaluator.references) == 3
        assert len(evaluator.stimuli) == 3

    def test_violates(self, fir_context):
        evaluator = SimulationAccuracyEvaluator(
            fir_context.program, n_stimuli=2
        )
        spec = fir_context.fresh_spec()
        for root in fir_context.slotmap.roots:
            spec.set_wl(root, 12)
        level = evaluator.noise_db(spec)
        assert evaluator.violates(spec, level - 1.0)
        assert not evaluator.violates(spec, level + 1.0)

    def test_discard_drops_transients(self, iir_context):
        spec = iir_context.fresh_spec()
        for root in iir_context.slotmap.roots:
            spec.set_wl(root, 16)
        with_transient = SimulationAccuracyEvaluator(
            iir_context.program, n_stimuli=2, discard=0
        ).noise_power(spec)
        steady = SimulationAccuracyEvaluator(
            iir_context.program, n_stimuli=2, discard=64
        ).noise_power(spec)
        assert steady > 0.0 and with_transient > 0.0


class TestMetrics:
    def test_measured_noise_power(self):
        ref = {"y": np.array([1.0, 2.0, 3.0])}
        got = {"y": np.array([1.0, 2.0, 4.0])}
        assert measured_noise_power(ref, got) == pytest.approx(1.0 / 3.0)

    def test_discard_parameter(self):
        ref = {"y": np.array([9.0, 1.0, 1.0])}
        got = {"y": np.array([0.0, 1.0, 1.0])}
        assert measured_noise_power(ref, got, discard=1) == 0.0

    def test_noise_power_db_floor(self):
        ref = {"y": np.zeros(4)}
        assert noise_power_db(ref, ref) == -400.0

    def test_sqnr_infinite_for_exact(self):
        ref = {"y": np.ones(4)}
        assert sqnr_db(ref, ref) == float("inf")

    def test_sqnr_known_value(self):
        ref = {"y": np.ones(100)}
        noisy = {"y": np.ones(100) + 0.01}
        assert sqnr_db(ref, noisy) == pytest.approx(40.0, abs=0.1)

    def test_empty_outputs(self):
        assert measured_noise_power({}, {}) == 0.0
