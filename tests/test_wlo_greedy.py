"""Greedy WLO baseline tests."""

import pytest

from repro.errors import WLOError
from repro.targets import get_target
from repro.wlo import max_minus_one, min_plus_one, tabu_wlo, wl_relative_cost


class TestMaxMinusOne:
    def test_feasible_result(self, fir_context):
        target = get_target("xentium")
        for constraint in (-15.0, -60.0):
            spec = fir_context.fresh_spec()
            result = max_minus_one(
                fir_context.program, spec, fir_context.model, target,
                constraint,
            )
            assert not fir_context.model.violates(spec, constraint)
            assert result.moves >= 0

    def test_improves_cost_when_possible(self, fir_context):
        target = get_target("xentium")
        spec = fir_context.fresh_spec()
        start = wl_relative_cost(fir_context.program, spec, target)
        result = max_minus_one(
            fir_context.program, spec, fir_context.model, target, -15.0
        )
        assert result.cost < start

    def test_infeasible_raises(self, fir_context):
        spec = fir_context.fresh_spec()
        with pytest.raises(WLOError, match="infeasible"):
            max_minus_one(
                fir_context.program, spec, fir_context.model,
                get_target("xentium"), -400.0,
            )


class TestMinPlusOne:
    def test_reaches_feasibility(self, fir_context):
        target = get_target("xentium")
        spec = fir_context.fresh_spec()
        min_plus_one(
            fir_context.program, spec, fir_context.model, target, -45.0
        )
        assert not fir_context.model.violates(spec, -45.0)

    def test_loose_constraint_stays_minimal(self, fir_context):
        """If the all-minimum spec already satisfies A, no widening."""
        target = get_target("xentium")
        spec = fir_context.fresh_spec()
        result = min_plus_one(
            fir_context.program, spec, fir_context.model, target, 20.0
        )
        assert result.moves == 0
        assert all(
            spec.wl(root) == min(target.supported_wls)
            for root in fir_context.slotmap.roots
        )

    def test_infeasible_raises(self, fir_context):
        spec = fir_context.fresh_spec()
        with pytest.raises(WLOError):
            min_plus_one(
                fir_context.program, spec, fir_context.model,
                get_target("xentium"), -400.0,
            )


class TestEngineComparison:
    def test_tabu_at_least_matches_greedy(self, fir_context):
        """Tabu explores more: it should never lose to max-1 by much."""
        target = get_target("xentium")
        spec_greedy = fir_context.fresh_spec()
        greedy = max_minus_one(
            fir_context.program, spec_greedy, fir_context.model, target, -45.0
        )
        spec_tabu = fir_context.fresh_spec()
        tabu = tabu_wlo(
            fir_context.program, spec_tabu, fir_context.model, target, -45.0
        )
        assert tabu.best_cost <= greedy.cost * 1.05
