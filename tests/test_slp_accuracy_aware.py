"""Accuracy-aware SLP (paper Fig. 1c) behavioural tests."""

import pytest

from repro.ir import OpKind, build_dependence_graph
from repro.slp import (
    BenefitEstimator,
    initial_items,
    set_group_wl,
    slp_round_accuracy_aware,
)
from repro.slp.extraction import SelectionStats
from repro.targets import get_target


@pytest.fixture()
def fir_round(fir_context):
    program = fir_context.program
    block = program.blocks["body"]
    return (
        program,
        block,
        build_dependence_graph(block),
        BenefitEstimator(program, block),
    )


class TestSetGroupWl:
    def test_sets_lanes_and_edges(self, fir_context):
        program = fir_context.program
        spec = fir_context.fresh_spec()
        muls = [o.opid for o in program.all_ops() if o.kind is OpKind.MUL][:2]
        set_group_wl(spec, program, tuple(muls), 16)
        for opid in muls:
            assert spec.wl(opid) == 16
            assert spec.edge_wl(opid, 0) == 16
            assert spec.edge_wl(opid, 1) == 16

    def test_load_groups_narrow_the_array(self, fir_context):
        program = fir_context.program
        spec = fir_context.fresh_spec()
        loads = [
            o.opid for o in program.blocks["body"].ops
            if o.kind is OpKind.LOAD and o.array == "x"
        ][:2]
        set_group_wl(spec, program, tuple(loads), 16)
        assert spec.wl(spec.slotmap.slot_of_symbol("x")) == 16


class TestValidityFiltering:
    def test_loose_constraint_keeps_candidates(self, fir_round, fir_context):
        program, block, deps, estimator = fir_round
        spec = fir_context.fresh_spec()
        stats = SelectionStats()
        selected = slp_round_accuracy_aware(
            program, block, initial_items(block), deps,
            get_target("xentium"), spec, fir_context.model, -10.0,
            estimator, stats,
        )
        assert selected
        assert stats.accuracy_rejections == 0

    def test_impossible_constraint_rejects_all(self, fir_round, fir_context):
        program, block, deps, estimator = fir_round
        spec = fir_context.fresh_spec()
        stats = SelectionStats()
        selected = slp_round_accuracy_aware(
            program, block, initial_items(block), deps,
            get_target("xentium"), spec, fir_context.model, -120.0,
            estimator, stats,
        )
        assert selected == []
        assert stats.accuracy_rejections == stats.candidates_seen
        # Nothing selected means nothing narrowed.
        assert all(
            spec.wl(root) == 32 for root in fir_context.slotmap.roots
        )

    def test_rejection_reverts_spec(self, fir_round, fir_context):
        program, block, deps, estimator = fir_round
        spec = fir_context.fresh_spec()
        before = spec.fwl_vector().copy()
        slp_round_accuracy_aware(
            program, block, initial_items(block), deps,
            get_target("xentium"), spec, fir_context.model, -120.0,
            estimator,
        )
        assert (spec.fwl_vector() == before).all()


class TestAccuracyConflicts:
    def test_borderline_constraint_creates_conflicts(self, fir_context):
        """Pick a constraint between the 1-group and all-group noise
        levels: single candidates pass validity but some pairs cannot
        coexist — the Fig. 1c conflict class."""
        program = fir_context.program
        block = program.blocks["body"]
        deps = build_dependence_graph(block)
        estimator = BenefitEstimator(program, block)
        model = fir_context.model

        # Noise with exactly one mul pair narrowed:
        spec = fir_context.fresh_spec()
        muls = [o.opid for o in block.ops if o.kind is OpKind.MUL]
        set_group_wl(spec, program, (muls[0], muls[1]), 16)
        one_group_db = model.noise_db(spec)
        spec = fir_context.fresh_spec()
        set_group_wl(spec, program, (muls[0], muls[1]), 16)
        set_group_wl(spec, program, (muls[2], muls[3]), 16)
        two_groups_db = model.noise_db(spec)
        assert two_groups_db > one_group_db
        constraint = (one_group_db + two_groups_db) / 2.0

        spec = fir_context.fresh_spec()
        stats = SelectionStats()
        selected = slp_round_accuracy_aware(
            program, block, initial_items(block), deps,
            get_target("xentium"), spec, model, constraint,
            estimator, stats,
        )
        assert stats.accuracy_conflicts > 0
        assert not model.violates(spec, constraint)
        # Something was still selected (one of the conflicting pair).
        assert selected

    def test_disabling_conflicts_changes_outcome(self, fir_context):
        program = fir_context.program
        block = program.blocks["body"]
        deps = build_dependence_graph(block)
        estimator = BenefitEstimator(program, block)
        spec = fir_context.fresh_spec()
        stats = SelectionStats()
        slp_round_accuracy_aware(
            program, block, initial_items(block), deps,
            get_target("xentium"), spec, fir_context.model, -62.0,
            estimator, stats, accuracy_conflicts=False,
        )
        assert stats.accuracy_conflicts == 0


class TestSelectionMutatesSpec:
    def test_selected_groups_are_narrowed(self, fir_round, fir_context):
        program, block, deps, estimator = fir_round
        spec = fir_context.fresh_spec()
        selected = slp_round_accuracy_aware(
            program, block, initial_items(block), deps,
            get_target("xentium"), spec, fir_context.model, -10.0,
            estimator,
        )
        for candidate in selected:
            for opid in candidate.lanes:
                assert spec.wl(opid) == candidate.wl == 16
