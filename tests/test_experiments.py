"""Experiment harness tests on reduced problem sizes."""

import pytest

from repro.experiments import (
    ExperimentRunner,
    ablation_wlo_engines,
    ablation_wlo_slp_features,
    fig4_panel,
    fig4_table,
    fig6_series,
    fig6_table,
    render_fig4,
    render_fig6,
    table1,
)

GRID = (-15.0, -45.0)


@pytest.fixture(scope="module")
def runner():
    """A small runner: same kernels, reduced sizes, fast cells."""
    return ExperimentRunner(
        n_samples=96, analysis_samples=96,
        image_size=18, analysis_image_size=18,
    )


class TestRunner:
    def test_cells_are_cached(self, runner):
        first = runner.cell("fir", "xentium", -15.0)
        second = runner.cell("fir", "xentium", -15.0)
        assert first is second

    def test_cell_fields(self, runner):
        cell = runner.cell("fir", "xentium", -15.0)
        assert cell.scalar_cycles > 0
        assert cell.wlo_slp_speedup > 0
        assert cell.float_speedup > 1.0
        assert cell.wlo_slp_noise_db <= -15.0

    def test_unknown_kernel(self, runner):
        from repro.errors import FlowError

        with pytest.raises(FlowError, match="unknown kernel"):
            runner.context("matmul")

    def test_sweep_order(self, runner):
        cells = runner.sweep("fir", "xentium", GRID)
        assert [c.constraint_db for c in cells] == list(GRID)


class TestFig4:
    def test_panel_series(self, runner):
        series = fig4_panel(runner, "fir", "xentium", GRID)
        assert set(series) == {"WLO-FIRST", "WLO-SLP"}
        assert len(series["WLO-SLP"]) == len(GRID)

    def test_table_shape(self, runner):
        table = fig4_table(runner, ("fir",), ("xentium", "vex-1"), GRID)
        assert len(table.rows) == 2 * len(GRID)

    def test_render_contains_panels(self, runner):
        text = render_fig4(runner, ("fir",), ("xentium",), GRID)
        assert "FIR on xentium" in text
        assert "WLO-SLP" in text


class TestTable1:
    def test_rows_per_target(self, runner):
        table = table1(runner, targets=("xentium",), grid=GRID)
        assert len(table.rows) == 2
        flows = {row[1] for row in table.rows}
        assert flows == {"WLO-First", "WLO-SLP"}

    def test_cycles_are_integers(self, runner):
        table = table1(runner, targets=("xentium",), grid=GRID)
        for row in table.rows:
            for cell in row[2:]:
                assert isinstance(cell, int) and cell > 0


class TestFig6:
    def test_series_per_kernel(self, runner):
        series = fig6_series(runner, "xentium", ("fir",), GRID)
        assert set(series) == {"FIR"}
        for _x, y in series["FIR"]:
            assert y > 1.0  # soft float is always slower

    def test_table_shape(self, runner):
        table = fig6_table(runner, ("st240",), ("fir",), GRID)
        assert len(table.rows) == len(GRID)

    def test_render(self, runner):
        text = render_fig6(runner, ("xentium",), ("fir",), GRID)
        assert "xentium" in text and "speedup" in text


class TestAblations:
    def test_feature_ablation_table(self, runner):
        table = ablation_wlo_slp_features(
            runner, "fir", "xentium", grid=(-15.0,)
        )
        variants = {row[1] for row in table.rows}
        assert len(variants) == 4
        # All variants satisfy the constraint.
        for row in table.rows:
            assert row[4] <= -15.0 + 0.51

    def test_engine_ablation_table(self, runner):
        table = ablation_wlo_engines(runner, "fir", "xentium", grid=(-15.0,))
        assert {row[1] for row in table.rows} == {"tabu", "max-1", "min+1"}


class TestPaperShapes:
    """Shape checks on the reduced sizes (fast proxies of the full
    claims asserted by the benchmark harness)."""

    def test_wlo_slp_monotone_cycles(self, runner):
        grid = (-10.0, -30.0, -50.0, -70.0)
        cells = runner.sweep("fir", "xentium", grid)
        counts = [c.wlo_slp_cycles for c in cells]
        assert counts == sorted(counts)

    def test_speedups_converge_at_strict_constraints(self, runner):
        strict = runner.cell("fir", "xentium", -85.0)
        assert strict.wlo_slp_speedup == pytest.approx(1.0, abs=0.15)

    def test_float_speedup_bands(self, runner):
        xentium = runner.cell("fir", "xentium", -25.0)
        st240 = runner.cell("fir", "st240", -25.0)
        assert xentium.float_speedup > 5.0
        assert 0.5 < st240.float_speedup < 3.0


class TestValidationExperiments:
    def test_validation_table_tracks_truth(self, runner):
        from repro.experiments import validation_table

        table = validation_table(runner, kernels=("fir",), n_stimuli=2)
        assert len(table.rows) == 6
        for _kernel, wl, _a, _m, diff, tier in table.rows:
            if wl >= 12:
                assert abs(diff) < 2.0
            assert tier in ("batch[int64]", "batch[object]")

    def test_quant_mode_ablation_shapes(self, runner):
        from repro.experiments import ablation_quant_mode

        table = ablation_quant_mode(runner, grid=(-10.0,))
        modes = {row[1] for row in table.rows}
        assert modes == {"truncate", "round"}
        for row in table.rows:
            assert row[5] <= row[0] + 0.51  # constraint met
