"""Adjoint gain extraction vs finite differences (ground truth)."""

import numpy as np
import pytest

from repro.accuracy import extract_gains
from repro.errors import AccuracyError
from repro.fixedpoint import SlotMap
from repro.ir import OpKind, ProgramBuilder


def _linear_chain():
    """y[0] = (x[0]*c0 + x[1]*c1) with hand-computable gains."""
    b = ProgramBuilder("chain")
    x = b.input_array("x", (2,), value_range=(-1.0, 1.0))
    h = b.coeff_array("h", [0.5, -0.25])
    y = b.output_array("y", (1,))
    with b.block("blk"):
        t0 = b.mul(b.load(x, 0), b.load(h, 0))
        t1 = b.mul(b.load(x, 1), b.load(h, 1))
        b.store(y, 0, b.add(t0, t1))
    return b.build()


class TestLinearChainGains:
    def test_mul_node_gains_are_unity(self):
        program = _linear_chain()
        gains = extract_gains(program, SlotMap(program))
        muls = [o.opid for o in program.all_ops() if o.kind is OpKind.MUL]
        for opid in muls:
            assert gains.node_k2[opid] == pytest.approx(1.0)
            assert gains.node_k1[opid] == pytest.approx(1.0)

    def test_input_gain_is_sum_of_squared_coeffs(self):
        program = _linear_chain()
        gains = extract_gains(program, SlotMap(program))
        assert gains.input_k2["x"] == pytest.approx(0.5 ** 2 + 0.25 ** 2)
        assert gains.input_k1["x"] == pytest.approx(0.5 - 0.25)

    def test_add_edge_gains(self):
        program = _linear_chain()
        gains = extract_gains(program, SlotMap(program))
        add = next(o for o in program.all_ops() if o.kind is OpKind.ADD)
        assert gains.edge_k2[(add.opid, 0)] == pytest.approx(1.0)
        assert gains.edge_k2[(add.opid, 1)] == pytest.approx(1.0)

    def test_store_gain_is_unity(self):
        program = _linear_chain()
        gains = extract_gains(program, SlotMap(program))
        store = program.output_store_ops()[0]
        assert gains.node_k2[store.opid] == pytest.approx(1.0)

    def test_coeff_sensitivities(self):
        """dy/dc_i = x_i: the covariance diagonal is E[x_i^2]."""
        program = _linear_chain()
        gains = extract_gains(program, SlotMap(program))
        labels = [e.label for e in gains.coeff_entries]
        assert "h[0]" in labels and "h[1]" in labels
        diag = np.diag(gains.coeff_cov)
        assert np.all(diag >= 0.0)
        assert np.all(diag <= 1.0)  # |x| <= 1


class TestFiniteDifferenceAgreement:
    def test_fir_node_gains(self, small_fir, rng):
        """Each FIR multiply fires taps/unroll = 4 times per output,
        every firing reaching the output with gain exactly 1: the
        incoherent energy K2 and the coherent sum K1 are both 4."""
        slotmap = SlotMap(small_fir)
        gains = extract_gains(small_fir, slotmap, n_ref_outputs=1, seed=5)
        muls = [o.opid for o in small_fir.all_ops() if o.kind is OpKind.MUL]
        for opid in muls:
            assert gains.node_k1[opid] == pytest.approx(4.0)
            assert gains.node_k2[opid] == pytest.approx(4.0)

    def test_iir_gains_decay_but_accumulate(self, small_iir):
        """Feedback makes K2 exceed the single-path gain of 1."""
        slotmap = SlotMap(small_iir)
        gains = extract_gains(small_iir, slotmap, n_ref_outputs=2)
        store = small_iir.output_store_ops()[0]
        assert gains.node_k2[store.opid] > 1.0  # re-circulated noise
        assert gains.node_k2[store.opid] < 1000.0  # but stable


class TestInputReuseCoherence:
    def test_reused_cell_gains_add_coherently(self):
        """A cell read twice with gains g1, g2 has K2 = (g1+g2)^2."""
        b = ProgramBuilder("reuse")
        x = b.input_array("x", (1,), value_range=(-1.0, 1.0))
        h = b.coeff_array("h", [0.5, 0.25])
        y = b.output_array("y", (1,))
        with b.block("blk"):
            t0 = b.mul(b.load(x, 0), b.load(h, 0))
            t1 = b.mul(b.load(x, 0), b.load(h, 1))
            b.store(y, 0, b.add(t0, t1))
        program = b.build()
        gains = extract_gains(program, SlotMap(program))
        assert gains.input_k2["x"] == pytest.approx((0.5 + 0.25) ** 2)


class TestErrors:
    def test_no_outputs_raises(self):
        b = ProgramBuilder("sink")
        x = b.input_array("x", (1,), value_range=(-1.0, 1.0))
        v = b.scalar("v")
        with b.block("blk"):
            b.setvar(v, b.load(x, 0))
        program = b.build()
        with pytest.raises(AccuracyError, match="no output"):
            extract_gains(program, SlotMap(program))
