"""Dependence analysis tests."""

from repro.ir import (
    OpKind,
    ProgramBuilder,
    build_dependence_graph,
    may_alias,
)
from repro.ir.deps import is_loop_invariant_load


def _two_phase_program():
    """store x[0]; load x[0]; load x[1]; store y[0] — known dep shape."""
    b = ProgramBuilder("p")
    x = b.state_array("x", (2,))
    y = b.output_array("y", (1,))
    with b.block("blk"):
        c = b.const(0.5)
        b.store(x, 0, c)                 # op1
        first = b.load(x, 0)             # op2: RAW on store
        second = b.load(x, 1)            # op3: disjoint
        b.store(y, 0, b.add(first, second))
    return b.build()


class TestMayAlias:
    def test_same_cell(self):
        program = _two_phase_program()
        ops = program.blocks["blk"].ops
        store_x0 = ops[1]
        load_x0 = ops[2]
        load_x1 = ops[3]
        assert may_alias(store_x0, load_x0)
        assert not may_alias(store_x0, load_x1)

    def test_different_arrays_never_alias(self):
        program = _two_phase_program()
        ops = program.blocks["blk"].ops
        assert not may_alias(ops[1], ops[5])  # x store vs y store


class TestDependenceGraph:
    def test_raw_memory_edge(self):
        program = _two_phase_program()
        deps = build_dependence_graph(program.blocks["blk"])
        assert deps.depends(2, 1)        # load x[0] after store x[0]
        assert not deps.depends(3, 1)    # load x[1] independent

    def test_independence_symmetric(self):
        program = _two_phase_program()
        deps = build_dependence_graph(program.blocks["blk"])
        assert deps.independent(2, 3)
        assert deps.independent(3, 2)
        assert not deps.independent(1, 2)

    def test_scalar_var_ordering(self, tiny_program):
        body = tiny_program.blocks["body"]
        deps = build_dependence_graph(body)
        opids = [op.opid for op in body.ops]
        read = next(o for o in body.ops if o.kind is OpKind.READVAR)
        write = next(o for o in body.ops if o.kind is OpKind.WRITEVAR)
        assert deps.depends(write.opid, read.opid)
        assert opids  # sanity

    def test_transitive_closure(self, tiny_program):
        body = tiny_program.blocks["body"]
        deps = build_dependence_graph(body)
        load = next(o for o in body.ops if o.kind is OpKind.LOAD)
        write = next(o for o in body.ops if o.kind is OpKind.WRITEVAR)
        assert deps.depends(write.opid, load.opid)  # via the add

    def test_topological_order_respects_deps(self, small_fir):
        for block in small_fir.blocks.values():
            deps = build_dependence_graph(block)
            order = deps.topological_order()
            position = {opid: i for i, opid in enumerate(order)}
            for src, dst in deps.graph.edges:
                assert position[src] < position[dst]


class TestLoopInvariantLoads:
    def test_conv_kernel_loads_invariant(self, small_conv):
        body = small_conv.blocks["body"]
        ker_loads = [o for o in body.ops
                     if o.kind is OpKind.LOAD and o.array == "ker"]
        img_loads = [o for o in body.ops
                     if o.kind is OpKind.LOAD and o.array == "img"]
        assert ker_loads and img_loads
        assert all(is_loop_invariant_load(small_conv, o) for o in ker_loads)
        assert not any(is_loop_invariant_load(small_conv, o) for o in img_loads)

    def test_fir_coeff_loads_not_invariant(self, small_fir):
        """FIR's h[4k+j] varies with the tap loop: not hoistable."""
        body = small_fir.blocks["body"]
        h_loads = [o for o in body.ops
                   if o.kind is OpKind.LOAD and o.array == "h"]
        assert h_loads
        assert not any(is_loop_invariant_load(small_fir, o) for o in h_loads)

    def test_non_load_is_not_invariant(self, small_fir):
        body = small_fir.blocks["body"]
        mul = next(o for o in body.ops if o.kind is OpKind.MUL)
        assert not is_loop_invariant_load(small_fir, mul)


class TestCycleSafety:
    def test_kernel_blocks_are_dags(self, small_fir, small_iir, small_conv):
        import networkx as nx

        for program in (small_fir, small_iir, small_conv):
            for block in program.blocks.values():
                deps = build_dependence_graph(block)
                assert nx.is_directed_acyclic_graph(deps.graph)
