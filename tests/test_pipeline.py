"""Pass-pipeline architecture tests.

The load-bearing contract: every paper flow run as a declared pipeline
is **bit-identical** to its legacy hand-wired function — same spec,
same cycles, same noise, same groups — across a kernel × target ×
constraint smoke grid.  Plus the registry error paths and the per-pass
cache reuse guarantees the sweep engine builds on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FlowError, WLOError
from repro.flows import run_float, run_wlo_first, run_wlo_slp
from repro.pipeline import (
    ANALYSIS_PASS_NAMES,
    FlowSpec,
    FlowState,
    NoiseReportPass,
    Pass,
    PassCache,
    Pipeline,
    available_flows,
    content_fingerprint,
    declare_joint_flow,
    execute_flow,
    get_flow,
    register_flow,
    run_flow,
)
from repro.targets import get_target
from repro.wlo.registry import (
    available_wlo_engines,
    get_wlo_engine,
    register_wlo_engine,
)


def _group_shape(groups):
    """Comparable structure of a per-block group dict."""
    if groups is None:
        return None
    return {
        name: [(g.kind, tuple(g.lanes), g.wl, g.size) for g in group_set]
        for name, group_set in groups.items()
    }


def _assert_specs_identical(a, b):
    assert np.array_equal(a.wl_vector(), b.wl_vector())
    assert np.array_equal(a.iwl_vector(), b.iwl_vector())
    assert np.array_equal(a.edge_wl_matrix(), b.edge_wl_matrix())


# ----------------------------------------------------------------------
# Golden parity: pipeline flows vs legacy flow functions.

class TestLegacyParity:
    """Pipeline declarations must reproduce the legacy functions
    bit-for-bit on a kernel × target × constraint smoke grid."""

    @pytest.mark.parametrize("target_name,constraint", [
        ("xentium", -15.0), ("xentium", -45.0), ("vex-1", -25.0),
    ])
    def test_wlo_slp_fir(self, fir_context, target_name, constraint):
        target = get_target(target_name)
        legacy = run_wlo_slp(
            fir_context.program, target, constraint, fir_context
        )
        piped = run_flow(
            "wlo-slp", fir_context.program, target, constraint
        )
        assert piped.flow == legacy.flow == "wlo-slp"
        assert piped.total_cycles == legacy.total_cycles
        assert piped.noise_db == legacy.noise_db
        assert _group_shape(piped.groups) == _group_shape(legacy.groups)
        _assert_specs_identical(piped.spec, legacy.spec)

    def test_wlo_slp_iir(self, iir_context):
        target = get_target("st240")
        legacy = run_wlo_slp(iir_context.program, target, -30.0, iir_context)
        piped = run_flow("wlo-slp", iir_context.program, target, -30.0)
        assert piped.total_cycles == legacy.total_cycles
        assert piped.noise_db == legacy.noise_db
        assert _group_shape(piped.groups) == _group_shape(legacy.groups)
        _assert_specs_identical(piped.spec, legacy.spec)

    @pytest.mark.parametrize("engine", ["tabu", "max-1", "min+1"])
    def test_wlo_first_engines(self, fir_context, engine):
        target = get_target("xentium")
        legacy = run_wlo_first(
            fir_context.program, target, -25.0, fir_context, wlo=engine
        )
        piped = run_flow(
            "wlo-first", fir_context.program, target, -25.0, wlo=engine
        )
        assert piped.scalar.flow == legacy.scalar.flow
        assert piped.simd.flow == legacy.simd.flow
        assert piped.scalar.total_cycles == legacy.scalar.total_cycles
        assert piped.simd.total_cycles == legacy.simd.total_cycles
        assert piped.scalar.noise_db == legacy.scalar.noise_db
        assert _group_shape(piped.simd.groups) == _group_shape(
            legacy.simd.groups
        )
        _assert_specs_identical(piped.spec, legacy.spec)

    @pytest.mark.parametrize("target_name", ["xentium", "st240", "vex-1"])
    def test_float(self, fir_context, target_name):
        target = get_target(target_name)
        legacy = run_float(fir_context.program, target)
        piped = run_flow("float", fir_context.program, target)
        assert piped.flow == legacy.flow == "float"
        assert piped.total_cycles == legacy.total_cycles
        assert piped.spec is None and piped.noise_db is None

    def test_twin_context_parity(self):
        """Pipelines honour the analysis-twin trick like the legacy
        context (same decisions from a reduced-trip-count twin)."""
        from repro.flows import AnalysisContext
        from repro.kernels import fir

        program = fir(n_samples=96, n_taps=16)
        twin = fir(n_samples=48, n_taps=16)
        target = get_target("xentium")
        ctx = AnalysisContext.build(program, twin)
        legacy = run_wlo_slp(program, target, -30.0, ctx)
        piped = run_flow(
            "wlo-slp", program, target, -30.0, analysis_program=twin
        )
        assert piped.total_cycles == legacy.total_cycles
        assert piped.noise_db == legacy.noise_db
        _assert_specs_identical(piped.spec, legacy.spec)


# ----------------------------------------------------------------------
# New flow variants.

class TestFlowVariants:
    def test_variants_registered(self):
        names = available_flows()
        assert {"float", "wlo-first", "wlo-slp"} <= set(names)
        assert {"wlo-first-greedy", "wlo-slp-lite"} <= set(names)

    def test_greedy_variant_equals_parameterized_baseline(self, fir_context):
        target = get_target("xentium")
        variant = run_flow(
            "wlo-first-greedy", fir_context.program, target, -25.0
        )
        explicit = run_flow(
            "wlo-first", fir_context.program, target, -25.0, wlo="max-1"
        )
        assert variant.simd.total_cycles == explicit.simd.total_cycles
        assert variant.simd.flow == "wlo-first-greedy/max-1/simd"

    def test_lite_variant_equals_ablation_kwargs(self, fir_context):
        target = get_target("xentium")
        variant = run_flow("wlo-slp-lite", fir_context.program, target, -25.0)
        legacy = run_wlo_slp(
            fir_context.program, target, -25.0, fir_context,
            harmonize=False, scaloptim=False,
        )
        assert variant.total_cycles == legacy.total_cycles
        assert variant.noise_db == legacy.noise_db
        _assert_specs_identical(variant.spec, legacy.spec)

    def test_custom_declaration_is_one_line(self, fir_context):
        declare_joint_flow(
            "test-no-conflicts", "test variant", accuracy_conflicts=False,
            overwrite=True,
        )
        result = run_flow(
            "test-no-conflicts", fir_context.program, get_target("xentium"),
            -25.0,
        )
        assert result.flow == "test-no-conflicts"
        assert result.total_cycles > 0


# ----------------------------------------------------------------------
# Registry error paths.

class TestFlowRegistry:
    def test_unknown_flow_lists_available(self):
        with pytest.raises(FlowError, match="unknown flow 'warp'"):
            get_flow("warp")
        with pytest.raises(FlowError, match="wlo-slp"):
            get_flow("warp")

    def test_duplicate_registration_rejected(self):
        spec = get_flow("wlo-slp")
        with pytest.raises(FlowError, match="already registered"):
            register_flow(spec)
        register_flow(spec, overwrite=True)  # explicit replace is fine

    def test_unknown_override_rejected(self, small_fir):
        with pytest.raises(FlowError, match="no parameter"):
            run_flow(
                "wlo-slp", small_fir, get_target("xentium"), -25.0,
                engine="tabu",
            )

    def test_missing_constraint_rejected(self, small_fir):
        with pytest.raises(FlowError, match="requires an accuracy constraint"):
            run_flow("wlo-slp", small_fir, get_target("xentium"))

    def test_case_insensitive_lookup(self):
        assert get_flow("WLO-SLP") is get_flow("wlo-slp")


class TestWloRegistry:
    def test_unknown_engine_lists_available(self):
        with pytest.raises(WLOError, match="unknown WLO engine 'quantum'"):
            get_wlo_engine("quantum")
        with pytest.raises(WLOError, match="tabu"):
            get_wlo_engine("quantum")

    def test_builtins_present(self):
        assert {"tabu", "max-1", "min+1"} <= set(available_wlo_engines())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(WLOError, match="already registered"):
            register_wlo_engine("tabu", get_wlo_engine("tabu"))

    def test_custom_engine_runs_through_flows(self, fir_context):
        register_wlo_engine(
            "test-greedy", get_wlo_engine("max-1"), overwrite=True
        )
        target = get_target("xentium")
        via_alias = run_flow(
            "wlo-first", fir_context.program, target, -25.0,
            wlo="test-greedy",
        )
        direct = run_flow(
            "wlo-first", fir_context.program, target, -25.0, wlo="max-1"
        )
        assert via_alias.simd.total_cycles == direct.simd.total_cycles


# ----------------------------------------------------------------------
# Pipeline mechanics: validation, state, fingerprints.

class TestPipelineMechanics:
    def test_misordered_pass_list_rejected(self):
        with pytest.raises(FlowError, match="no earlier pass writes"):
            Pipeline((NoiseReportPass(),))

    def test_pass_must_write_declared_artifacts(self, small_fir):
        class Liar(Pass):
            name = "liar"
            reads = ("program",)
            writes = ("something",)

            def run(self, state):
                return {"other": 1}

        state = FlowState.seed(small_fir, get_target("xentium"))
        with pytest.raises(FlowError, match="declared"):
            Pipeline((Liar(),)).run(state, cache=PassCache())

    def test_missing_artifact_error_names_available(self, small_fir):
        state = FlowState.seed(small_fir, get_target("xentium"))
        with pytest.raises(FlowError, match="no artifact 'spec'"):
            state.get("spec")

    def test_program_fingerprints_differ_by_content(self):
        from repro.kernels import fir

        base = content_fingerprint(fir(n_samples=64, n_taps=16))
        longer = content_fingerprint(fir(n_samples=128, n_taps=16))
        assert base != longer
        assert base == content_fingerprint(fir(n_samples=64, n_taps=16))

    def test_fingerprint_covers_coefficient_payloads(self):
        from repro.kernels import fir

        taps = 16
        coeffs = np.linspace(-0.4, 0.4, taps)
        a = content_fingerprint(fir(n_samples=64, n_taps=taps))
        b = content_fingerprint(
            fir(n_samples=64, n_taps=taps, coefficients=coeffs)
        )
        assert a != b

    def test_no_fingerprint_for_derived_types(self):
        with pytest.raises(TypeError, match="derived artifacts"):
            content_fingerprint(object())

    def test_constraint_free_flow_rejects_constraint_readers(self):
        from repro.pipeline import LowerFloatPass, SchedulePass, WloPass

        with pytest.raises(FlowError, match="constraint_db"):
            Pipeline(
                (LowerFloatPass(), SchedulePass("float_lowered"), WloPass()),
                has_constraint=False,
            )
        # The same list is fine when a constraint seed will exist…
        # (order check only; WloPass also needs spec/model upstream)
        with pytest.raises(FlowError, match="spec"):
            Pipeline(
                (LowerFloatPass(), SchedulePass("float_lowered"), WloPass()),
                has_constraint=True,
            )

    def test_tabu_config_honoured_case_insensitively(self, fir_context):
        from repro.wlo import TabuConfig

        target = get_target("xentium")
        lower = run_wlo_first(
            fir_context.program, target, -25.0, fir_context,
            wlo="tabu", tabu_config=TabuConfig(max_iterations=2),
        )
        upper = run_wlo_first(
            fir_context.program, target, -25.0, fir_context,
            wlo="Tabu", tabu_config=TabuConfig(max_iterations=2),
        )
        assert (
            upper.scalar.extra["wlo_stats"].iterations
            == lower.scalar.extra["wlo_stats"].iterations
            <= 2
        )


# ----------------------------------------------------------------------
# Per-pass caching: the sweep-speed contract.

class TestPassCache:
    def test_second_constraint_skips_all_analysis_passes(self, small_fir):
        cache = PassCache()
        target = get_target("xentium")
        run_flow("wlo-slp", small_fir, target, -15.0, cache=cache)
        for name in ANALYSIS_PASS_NAMES:
            assert cache.executions(name) == 1
        run_flow("wlo-slp", small_fir, target, -45.0, cache=cache)
        for name in ANALYSIS_PASS_NAMES:
            assert cache.executions(name) == 1  # zero re-executions
            assert cache.hits[name] == 1

    def test_analysis_prefix_shared_across_flows(self, small_fir):
        cache = PassCache()
        target = get_target("xentium")
        run_flow("wlo-first", small_fir, target, -25.0, cache=cache)
        run_flow("wlo-slp", small_fir, target, -25.0, cache=cache)
        run_flow("wlo-slp-lite", small_fir, target, -25.0, cache=cache)
        for name in ANALYSIS_PASS_NAMES:
            assert cache.executions(name) == 1
            assert cache.hits[name] == 2

    def test_different_programs_never_alias(self, small_fir, small_conv):
        cache = PassCache()
        target = get_target("xentium")
        run_flow("wlo-slp", small_fir, target, -15.0, cache=cache)
        run_flow("wlo-slp", small_conv, target, -15.0, cache=cache)
        for name in ANALYSIS_PASS_NAMES:
            assert cache.executions(name) == 2
            assert cache.hits.get(name, 0) == 0

    def test_cached_rerun_is_bit_identical(self, small_fir):
        cache = PassCache()
        target = get_target("vex-1")
        first = run_flow("wlo-slp", small_fir, target, -25.0, cache=cache)
        second = run_flow("wlo-slp", small_fir, target, -25.0, cache=cache)
        assert second.total_cycles == first.total_cycles
        assert second.noise_db == first.noise_db
        _assert_specs_identical(second.spec, first.spec)

    def test_lru_eviction_bounds_entries(self):
        cache = PassCache(max_entries=2)
        cache.store("k1", {"x": 1})
        cache.store("k2", {"x": 2})
        assert cache.lookup("p", "k1") == {"x": 1}  # touch: k2 is now LRU
        cache.store("k3", {"x": 3})  # evicts k2
        assert len(cache) == 2
        assert cache.lookup("p", "k2") is None
        assert cache.lookup("p", "k1") == {"x": 1}
        assert cache.lookup("p", "k3") == {"x": 3}

    def test_timings_report_sources(self, small_fir):
        cache = PassCache()
        target = get_target("xentium")
        _, cold = execute_flow(
            "wlo-slp", small_fir, target, -15.0, cache=cache
        )
        _, warm = execute_flow(
            "wlo-slp", small_fir, target, -45.0, cache=cache
        )
        assert all(not t.cached for t in cold.timings)
        cached = {t.name.split("[")[0] for t in warm.timings if t.cached}
        assert set(ANALYSIS_PASS_NAMES) <= cached
        report = warm.timing_report()
        assert "range-analysis" in report and "cached" in report


# ----------------------------------------------------------------------
# FlowSpec structure introspection (what the sweep cache keys on).

class TestFlowStructure:
    def test_pass_names_resolve_parameters(self):
        names = get_flow("wlo-first").pass_names(wlo="min+1")
        assert "wlo[engine='min+1']" in names
        assert names.index(
            "range-analysis[method='auto',sim_backend='batch']"
        ) == 0
        # The simulation backend resolves into the pass signature too,
        # so cell keys can never alias results across backends.
        scalar_names = get_flow("wlo-first").pass_names(sim_backend="scalar")
        assert scalar_names != get_flow("wlo-first").pass_names()

    def test_variants_have_distinct_structures(self):
        assert (
            get_flow("wlo-slp").pass_names()
            != get_flow("wlo-slp-lite").pass_names()
        )
        assert (
            get_flow("wlo-first").pass_names()
            != get_flow("wlo-first-greedy").pass_names()
        )

    def test_spec_from_registry_is_frozen_declaration(self):
        spec = get_flow("wlo-slp")
        assert isinstance(spec, FlowSpec)
        assert spec.needs_constraint
        assert not get_flow("float").needs_constraint
