"""SCALOPTIM (paper Fig. 1b) tests."""

from repro.ir import OpKind, ProgramBuilder, loop_index
from repro.slp import GroupSet, SIMDGroup
from repro.wlo import lane_shifts, optimize_scalings, superword_reuses


def _mismatch_setup():
    """Two mul->store lanes with different mul formats: the consumer
    (store) group needs different per-lane shifts until SCALOPTIM
    uniformizes the producer lane formats.  A second, full-precision
    output (z) also consumes the products, so producer-side fixes are
    not noise-free — the accuracy guard has something to reject."""
    b = ProgramBuilder("mismatch")
    x = b.input_array("x", (32,), value_range=(-1.0, 1.0))
    h = b.coeff_array("h", [0.5, 0.25])
    y = b.output_array("y", (32,))
    z = b.output_array("z", (32,))
    i = loop_index("i")
    with b.loop("i", 16):
        with b.block("body"):
            t0 = b.mul(b.load(x, i * 2), b.load(h, 0))
            t1 = b.mul(b.load(x, i * 2 + 1), b.load(h, 1))
            b.store(y, i * 2, t0)
            b.store(y, i * 2 + 1, t1)
            b.store(z, i * 2, t0)
            b.store(z, i * 2 + 1, t1)
    program = b.build()

    from repro.flows import AnalysisContext

    context = AnalysisContext.build(program)
    spec = context.fresh_spec()
    ops = program.blocks["body"].ops
    muls = tuple(o.opid for o in ops if o.kind is OpKind.MUL)
    stores = tuple(
        o.opid for o in ops if o.kind is OpKind.STORE and o.array == "y"
    )
    groups = GroupSet("body")
    groups.add(SIMDGroup(0, "body", OpKind.MUL, muls, 16))
    groups.add(SIMDGroup(1, "body", OpKind.STORE, stores, 16))
    for opid in muls + stores:
        spec.set_wl(opid, 16)
    # Both lanes need *positive* (right) shifts into the store format,
    # but by different amounts: lane 0 by 3 bits, lane 1 by 1 bit.
    spec.set_fwl(stores[0], spec.fwl(muls[0]) - 3)
    spec.set_fwl(muls[1], spec.fwl(stores[0]) + 1)
    return program, context, spec, groups, muls, stores


class TestLaneShifts:
    def test_mismatch_detected(self):
        program, context, spec, groups, muls, stores = _mismatch_setup()
        store_group = groups.groups[1]
        shifts = lane_shifts(spec, program, store_group, 0)
        assert shifts == [3, 1]

    def test_reuse_edges_found(self):
        program, context, spec, groups, muls, stores = _mismatch_setup()
        reuses = superword_reuses(groups, program)
        assert len(reuses) == 1
        producer, consumer, pos = reuses[0]
        assert producer.kind is OpKind.MUL
        assert consumer.kind is OpKind.STORE and pos == 0


class TestOptimizeScalings:
    def test_uniformizes_when_budget_allows(self):
        program, context, spec, groups, muls, stores = _mismatch_setup()
        stats = optimize_scalings(program, spec, context.model, -20.0, groups)
        assert stats.fixed == 1
        shifts = lane_shifts(spec, program, groups.groups[1], 0)
        assert len(set(shifts)) == 1

    def test_rejected_when_budget_exhausted(self):
        program, context, spec, groups, muls, stores = _mismatch_setup()
        level = context.model.noise_db(spec)
        stats = optimize_scalings(
            program, spec, context.model, level + 0.1, groups
        )
        # No fix possible without violating the (already tight) budget
        # on the producer side; consumer side cannot move (store group
        # writes one array with one format).
        assert stats.fixed == 0
        assert stats.rejected_by_accuracy + stats.skipped_untieable >= 1

    def test_accuracy_never_violated(self):
        program, context, spec, groups, muls, stores = _mismatch_setup()
        for constraint in (-10.0, -30.0, -50.0):
            token = spec.save()
            optimize_scalings(program, spec, context.model, constraint, groups)
            assert not context.model.violates(spec, constraint)
            spec.revert(token)

    def test_already_uniform_is_noop(self, fir_context):
        """FIR's accumulator chains are format-tied: zero shifts."""
        from repro.wlo import wlo_slp_optimize
        from repro.targets import get_target

        spec = fir_context.fresh_spec()
        outcome = wlo_slp_optimize(
            fir_context.program, spec, fir_context.model,
            get_target("xentium"), -15.0, harmonize=False,
        )
        stats = outcome.scaling
        assert stats.reuse_edges > 0
        assert stats.already_uniform == stats.reuse_edges - stats.fixed - (
            stats.rejected_by_accuracy + stats.skipped_negative
            + stats.skipped_untieable
        )


class TestWordLengthsPreserved:
    def test_scaloptim_moves_binary_points_only(self):
        program, context, spec, groups, muls, stores = _mismatch_setup()
        wl_before = spec.wl_vector().copy()
        optimize_scalings(program, spec, context.model, -20.0, groups)
        assert (spec.wl_vector() == wl_before).all()
