"""End-to-end tests for the ``repro serve`` HTTP service.

A real :class:`ThreadingHTTPServer` on an ephemeral port, driven with
stdlib ``urllib`` — submit a job over the wire, poll its outcomes to
completion, and assert the payload is bit-for-bit what a serial
in-process run of the same :class:`~repro.api.SweepRequest` produces.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.api import SweepRequest, registry_listing
from repro.serve import SweepService, make_server

SMALL = dict(
    n_samples=96, analysis_samples=96, image_size=18, analysis_image_size=18
)

ONE_CELL = {
    "kernels": ["fir"],
    "targets": ["vex-1"],
    "grid": [-15.0],
    "no_cache": True,
}


@pytest.fixture(scope="module")
def server_url():
    import threading

    service = SweepService(config=SMALL)
    server = make_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read().decode())


def _post(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read().decode())


def _error_of(call):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        call()
    return excinfo.value.code, json.loads(excinfo.value.read().decode())


def _poll_to_completion(server_url: str, job_id: int, deadline_s: float = 120.0):
    """Incremental-poll a job like a real client: chase ``next`` until
    the status goes terminal, accumulating the outcome chunks."""
    outcomes, since = [], 0
    deadline = time.monotonic() + deadline_s
    while True:
        _, page = _get(f"{server_url}/jobs/{job_id}/outcomes?since={since}")
        outcomes.extend(page["outcomes"])
        since = page["next"]
        if page["status"] in ("done", "error"):
            return page["status"], page["error"], outcomes
        assert time.monotonic() < deadline, "job did not finish in time"
        time.sleep(0.05)


class TestEndpoints:
    def test_health(self, server_url):
        status, payload = _get(f"{server_url}/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert set(payload) >= {"jobs", "running", "done", "memo_cells"}

    def test_registries_match_the_python_listing(self, server_url):
        status, payload = _get(f"{server_url}/registries")
        assert status == 200
        assert payload == json.loads(json.dumps(registry_listing()))

    def test_unknown_endpoint_is_404(self, server_url):
        code, payload = _error_of(lambda: _get(f"{server_url}/nope"))
        assert code == 404 and "no such endpoint" in payload["error"]

    def test_unknown_job_is_404(self, server_url):
        code, payload = _error_of(lambda: _get(f"{server_url}/jobs/999"))
        assert code == 404 and "unknown job" in payload["error"]

    def test_unknown_request_field_is_400(self, server_url):
        code, payload = _error_of(
            lambda: _post(f"{server_url}/jobs", {"kernelz": ["fir"]})
        )
        assert code == 400
        assert "unknown sweep request field" in payload["error"]

    def test_unknown_registry_name_is_400_with_alternatives(self, server_url):
        code, payload = _error_of(
            lambda: _post(f"{server_url}/jobs", {**ONE_CELL, "wlo": "quantum"})
        )
        assert code == 400
        assert payload["error"].startswith("unknown WLO engine ")
        assert "available: " in payload["error"]

    def test_invalid_json_body_is_400(self, server_url):
        def call():
            request = urllib.request.Request(
                f"{server_url}/jobs", data=b"not json", method="POST"
            )
            with urllib.request.urlopen(request, timeout=30):
                pass

        code, payload = _error_of(call)
        assert code == 400 and "invalid JSON body" in payload["error"]


class TestSubmitAndPoll:
    def test_http_job_matches_serial_in_process_run(self, server_url):
        """The acceptance criterion: one cell submitted over HTTP,
        polled to completion, bit-for-bit equal to the same request
        executed serially in-process."""
        from repro.experiments import ExperimentRunner

        status, created = _post(f"{server_url}/jobs", ONE_CELL)
        assert status == 201
        assert created["planned"] == 1
        assert created["request"]["kernels"] == ["fir"]
        job_id = created["id"]

        final, error, outcomes = _poll_to_completion(server_url, job_id)
        assert final == "done" and error is None
        assert len(outcomes) == 1

        request = SweepRequest.from_payload(ONE_CELL)
        runner = ExperimentRunner.from_request(request, **SMALL)
        report = runner.submit(request)
        assert outcomes == json.loads(json.dumps(list(report.outcomes)))

        _, summary = _get(f"{server_url}/jobs/{job_id}")
        assert summary["status"] == "done"
        assert summary["resolved"] == summary["planned"] == 1
        assert summary["counts"]["computed"] == 1
        assert summary["counts"]["failed"] == 0

        _, jobs = _get(f"{server_url}/jobs")
        assert any(j["id"] == job_id for j in jobs["jobs"])

    def test_incremental_poll_is_exhausted_after_done(self, server_url):
        _, created = _post(f"{server_url}/jobs", ONE_CELL)
        _, _, outcomes = _poll_to_completion(server_url, created["id"])
        _, page = _get(
            f"{server_url}/jobs/{created['id']}/outcomes"
            f"?since={len(outcomes)}"
        )
        assert page["outcomes"] == [] and page["next"] == len(outcomes)

    def test_failed_cells_are_outcomes_not_job_errors(self, server_url):
        payload = {**ONE_CELL, "grid": [-400.0]}  # infeasible constraint
        _, created = _post(f"{server_url}/jobs", payload)
        final, error, outcomes = _poll_to_completion(server_url, created["id"])
        assert final == "done" and error is None  # the job itself is fine
        (outcome,) = outcomes
        assert outcome["cell"] is None
        assert "infeasible" in outcome["error"]
        _, summary = _get(f"{server_url}/jobs/{created['id']}")
        assert summary["counts"]["failed"] == 1

    def test_resubmission_is_served_from_the_shared_memo(self, server_url):
        _, first = _post(f"{server_url}/jobs", ONE_CELL)
        _poll_to_completion(server_url, first["id"])
        _, second = _post(f"{server_url}/jobs", ONE_CELL)
        final, _, _ = _poll_to_completion(server_url, second["id"])
        assert final == "done"
        _, summary = _get(f"{server_url}/jobs/{second['id']}")
        assert summary["counts"]["memo"] == 1
        assert summary["counts"]["computed"] == 0
        _, health = _get(f"{server_url}/health")
        assert health["memo_cells"] >= 1


class TestServiceDefaults:
    def test_server_defaults_fill_missing_request_fields(self):
        service = SweepService(
            defaults={"jobs": 3, "backend": "workqueue"}, config=SMALL
        )
        job = service.submit_payload(dict(ONE_CELL))
        assert job.request.jobs == 3
        assert job.request.backend == "workqueue"
        status, _, _ = _wait_job(service, job.id)
        assert status == "done"

    def test_payload_overrides_server_defaults(self):
        service = SweepService(defaults={"jobs": 3}, config=SMALL)
        job = service.submit_payload({**ONE_CELL, "jobs": 1})
        assert job.request.jobs == 1
        status, _, _ = _wait_job(service, job.id)
        assert status == "done"


def _wait_job(service: SweepService, job_id: int, deadline_s: float = 120.0):
    deadline = time.monotonic() + deadline_s
    while True:
        page = service.outcomes_since(job_id)
        if page["status"] in ("done", "error"):
            return page["status"], page["error"], page["outcomes"]
        assert time.monotonic() < deadline, "job did not finish in time"
        time.sleep(0.05)
