"""Sweep engine tests: plan, cache, parallel executor, CLI.

Covers the contracts the CI pipeline relies on: cache hit/miss
behaviour, bit-identical parallel vs serial results, corrupted cache
recovery, and the WLO-engine keying fix (ablation cells must never
alias baseline cells).
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import FlowError
from repro.experiments import (
    Cell,
    CellRequest,
    ExperimentRunner,
    KernelConfig,
    SweepCache,
    SweepExecutor,
    SweepPlan,
    evaluate_cell,
)

SMALL = dict(
    n_samples=96, analysis_samples=96, image_size=18, analysis_image_size=18
)
GRID = (-15.0, -45.0)


@pytest.fixture(scope="module")
def config() -> KernelConfig:
    return KernelConfig(**SMALL)


@pytest.fixture(scope="module")
def reference_cells(config) -> dict[CellRequest, Cell]:
    """Serial, cache-less ground truth for fir on two targets."""
    executor = SweepExecutor(config, jobs=1)
    plan = SweepPlan.build(config, ("fir",), ("xentium", "vex-1"), GRID)
    cells, stats = executor.run(plan)
    assert stats.computed == len(plan)
    return cells


class TestPlan:
    def test_enumeration_and_dedup(self, config):
        plan = SweepPlan.build(
            config, ("fir", "fir"), ("xentium",), (-15.0, -15.0, -45.0)
        )
        assert len(plan) == 2
        assert plan.kernels == ["fir"]

    def test_kernel_major_order(self, config):
        plan = SweepPlan.build(
            config, ("fir", "iir"), ("xentium", "vex-1"), GRID
        )
        kernels = [r.kernel for r in plan.requests]
        assert kernels == sorted(kernels, key=("fir", "iir").index)

    def test_only_filter(self, config):
        plan = SweepPlan.build(
            config, ("fir", "iir"), ("xentium", "vex-1"), GRID,
            only=("fir:vex-1",),
        )
        assert {(r.kernel, r.target) for r in plan.requests} == {("fir", "vex-1")}

    def test_bad_only_filter(self, config):
        with pytest.raises(FlowError, match="KERNEL:TARGET"):
            SweepPlan.build(config, ("fir",), ("xentium",), GRID, only=("fir",))

    def test_requests_are_picklable(self, config):
        plan = SweepPlan.build(config, ("fir",), ("xentium",), GRID)
        for request in plan.requests:
            restored = pickle.loads(pickle.dumps((config, request)))
            assert restored == (config, request)


class TestCache:
    def test_miss_then_hit(self, config, reference_cells, tmp_path):
        cache = SweepCache(tmp_path)
        request = next(iter(reference_cells))
        assert cache.load(config, request) is None
        cache.store(config, request, reference_cells[request])
        assert cache.load(config, request) == reference_cells[request]
        assert len(cache) == 1

    def test_executor_cold_then_warm(self, config, tmp_path):
        cache = SweepCache(tmp_path)
        plan = SweepPlan.build(config, ("fir",), ("xentium",), GRID)
        _, cold = SweepExecutor(config, cache=cache, jobs=1).run(plan)
        assert (cold.computed, cold.cache) == (len(plan), 0)
        # Fresh executor, fresh memo: everything must come from disk.
        warm_cells, warm = SweepExecutor(config, cache=cache, jobs=1).run(plan)
        assert (warm.computed, warm.cache) == (0, len(plan))
        # And a second resolve through the same executor hits the memo.
        _, memo = SweepExecutor(config, cache=cache, jobs=1, memo=warm_cells).run(plan)
        assert (memo.computed, memo.cache, memo.memo) == (0, 0, len(plan))

    def test_corrupted_file_recovers(self, config, reference_cells, tmp_path):
        cache = SweepCache(tmp_path)
        request = next(iter(reference_cells))
        path = cache.store(config, request, reference_cells[request])
        path.write_text("{ not json !!")
        assert cache.load(config, request) is None  # tolerated, not raised
        _, stats = SweepExecutor(config, cache=cache, jobs=1).run(
            SweepPlan(config, [request])
        )
        assert stats.computed == 1  # recomputed through the corruption
        assert cache.load(config, request) == reference_cells[request]  # repaired

    def test_truncated_and_mismatched_entries_miss(
        self, config, reference_cells, tmp_path
    ):
        cache = SweepCache(tmp_path)
        request = next(iter(reference_cells))
        path = cache.store(config, request, reference_cells[request])
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.load(config, request) is None
        # A structurally valid file whose cell belongs to another key.
        other = CellRequest("fir", "vex-1", -45.0)
        cache.store(config, request, reference_cells[other])
        assert cache.load(config, request) is None

    def test_key_rolls_with_code_version(self, config, tmp_path, monkeypatch):
        cache = SweepCache(tmp_path)
        request = CellRequest("fir", "xentium", -15.0)
        before = cache.key(config, request)
        monkeypatch.setattr(
            "repro.experiments.cache.flow_code_version", lambda: "0" * 16
        )
        assert cache.key(config, request) != before

    def test_key_depends_on_wlo_engine(self, config, tmp_path):
        cache = SweepCache(tmp_path)
        tabu = cache.key(config, CellRequest("fir", "xentium", -15.0, "tabu"))
        greedy = cache.key(config, CellRequest("fir", "xentium", -15.0, "max-1"))
        assert tabu != greedy

    def test_key_depends_on_flow_variant(self, config, tmp_path):
        cache = SweepCache(tmp_path)
        base = cache.key(config, CellRequest("fir", "xentium", -15.0))
        lite = cache.key(
            config, CellRequest("fir", "xentium", -15.0, flow="wlo-slp-lite")
        )
        assert base != lite

    def test_key_depends_on_pipeline_structure(self, config):
        """Re-declaring a flow with a different pass list rolls the key
        even though the request tuple is unchanged."""
        from repro.pipeline import declare_joint_flow, get_flow, register_flow

        cache = SweepCache()
        request = CellRequest("fir", "xentium", -15.0)
        before = cache.key(config, request)
        original = get_flow("wlo-slp")
        declare_joint_flow(
            "wlo-slp", "restructured for the test", scaloptim=False,
            overwrite=True,
        )
        try:
            assert cache.key(config, request) != before
        finally:
            register_flow(original, overwrite=True)
        assert cache.key(config, request) == before

    def test_pipeline_signature_names_all_three_roles(self):
        from repro.experiments import cell_pipeline_signature

        signature = cell_pipeline_signature(
            CellRequest("fir", "xentium", -15.0, "min+1", "wlo-slp-lite")
        )
        assert set(signature) == {"float", "baseline", "joint"}
        assert "wlo[engine='min+1']" in signature["baseline"]
        assert any("scaloptim=False" in name for name in signature["joint"])


class TestParallel:
    def test_parallel_equals_serial(self, config, reference_cells):
        plan = SweepPlan.build(config, ("fir",), ("xentium", "vex-1"), GRID)
        cells, stats = SweepExecutor(config, jobs=2).run(plan)
        assert stats.computed == len(plan)
        assert cells == reference_cells

    def test_parallel_streams_progress(self, config):
        seen = []
        executor = SweepExecutor(
            config, jobs=2,
            progress=lambda done, total, outcome: seen.append((done, total)),
        )
        plan = SweepPlan.build(config, ("fir",), ("xentium",), GRID)
        executor.run(plan)
        assert seen == [(1, len(plan)), (2, len(plan))]

    def test_parallel_fills_shared_cache(self, config, reference_cells, tmp_path):
        cache = SweepCache(tmp_path)
        plan = SweepPlan.build(config, ("fir",), ("xentium", "vex-1"), GRID)
        SweepExecutor(config, cache=cache, jobs=2).run(plan)
        assert len(cache) == len(plan)
        # Serial warm read-back returns identical cells.
        cells, stats = SweepExecutor(config, cache=cache, jobs=1).run(plan)
        assert stats.computed == 0
        assert cells == reference_cells


class TestRunnerKeying:
    def test_wlo_engine_is_part_of_the_key(self):
        runner = ExperimentRunner(**SMALL)
        baseline = runner.cell("fir", "xentium", -15.0)
        ablation = runner.cell("fir", "xentium", -15.0, wlo="max-1")
        assert baseline is not ablation  # distinct memo entries
        assert runner.cell("fir", "xentium", -15.0) is baseline  # no aliasing
        assert runner.cell("fir", "xentium", -15.0, wlo="max-1") is ablation

    def test_evaluate_cell_is_pure(self, config, reference_cells):
        request = next(iter(reference_cells))
        assert evaluate_cell(config, request) == reference_cells[request]

    def test_evaluate_cell_adopts_shipped_flow_specs(self, config):
        """Runtime-declared variants reach workers as shipped FlowSpecs
        (the spawn/forkserver path, simulated in-process by dropping
        the registration before re-evaluating)."""
        import pickle

        from repro.pipeline import declare_joint_flow, get_flow
        from repro.pipeline import registry as flow_registry

        declare_joint_flow(
            "test-shipped", "worker-shipping test variant", scaloptim=False,
            overwrite=True,
        )
        try:
            spec = pickle.loads(pickle.dumps(get_flow("test-shipped")))
            request = CellRequest("fir", "xentium", -15.0, flow="test-shipped")
            expected = evaluate_cell(config, request)
            # Simulate a freshly spawned worker: the runtime registration
            # is gone, only the shipped spec can resolve the flow.
            del flow_registry._FLOWS["test-shipped"]
            with pytest.raises(FlowError, match="unknown flow"):
                evaluate_cell(config, request)
            assert evaluate_cell(config, request, flows=(spec,)) == expected
        finally:
            flow_registry._FLOWS.pop("test-shipped", None)


class TestSweepCLI:
    def test_sweep_cold_then_warm(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["sweep", "--only", "fir:xentium", "--grid", "-15",
                "--jobs", "1", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 computed" in out and "fir" in out
        assert main(argv) == 0  # warm: zero re-evaluations
        out = capsys.readouterr().out
        assert "0 computed" in out and "1 from disk cache" in out

    def test_sweep_no_cache_writes_nothing(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["sweep", "--only", "fir:xentium", "--grid", "-15",
                     "--no-cache", "--cache-dir", str(tmp_path)]) == 0
        assert list(tmp_path.glob("*.json")) == []

    def test_sweep_flow_variant_by_name(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["sweep", "--only", "fir:xentium", "--grid", "-15",
                     "--flow", "wlo-slp-lite", "--cache-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wlo-slp-lite" in out and "1 computed" in out
        # The variant cell persisted under its own key: re-running the
        # default flow on the same slice computes, never aliases.
        assert main(["sweep", "--only", "fir:xentium", "--grid", "-15",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 computed" in out

    def test_sweep_rejects_unknown_flow_and_engine(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--only", "fir:xentium", "--grid", "-15",
                     "--no-cache", "--flow", "warp"]) == 1
        assert "unknown flow" in capsys.readouterr().err
        assert main(["sweep", "--only", "fir:xentium", "--grid", "-15",
                     "--no-cache", "--wlo", "quantum"]) == 1
        assert "unknown WLO engine" in capsys.readouterr().err
