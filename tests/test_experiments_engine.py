"""Sweep engine tests: plan, cache, execution backends, CLI.

Covers the contracts the CI pipeline relies on: cache hit/miss
behaviour, bit-identical results across every execution backend,
per-cell fault isolation (one infeasible cell must never abort a
sweep or drop completed work), corrupted cache recovery, and the
WLO-engine keying fix (ablation cells must never alias baseline
cells).
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ExecutionBackendError, FlowError
from repro.experiments import (
    Cell,
    CellOutcome,
    CellRequest,
    ExperimentRunner,
    KernelConfig,
    SweepCache,
    SweepExecutor,
    SweepPlan,
    available_execution_backends,
    evaluate_cell,
    get_execution_backend,
)

SMALL = dict(
    n_samples=96, analysis_samples=96, image_size=18, analysis_image_size=18
)
GRID = (-15.0, -45.0)


@pytest.fixture(scope="module")
def config() -> KernelConfig:
    return KernelConfig(**SMALL)


@pytest.fixture(scope="module")
def reference_cells(config) -> dict[CellRequest, Cell]:
    """Serial, cache-less ground truth for fir on two targets."""
    executor = SweepExecutor(config, jobs=1)
    plan = SweepPlan.build(config, ("fir",), ("xentium", "vex-1"), GRID)
    cells, stats = executor.run(plan)
    assert stats.computed == len(plan)
    return cells


class TestPlan:
    def test_enumeration_and_dedup(self, config):
        plan = SweepPlan.build(
            config, ("fir", "fir"), ("xentium",), (-15.0, -15.0, -45.0)
        )
        assert len(plan) == 2
        assert plan.kernels == ["fir"]

    def test_kernel_major_order(self, config):
        plan = SweepPlan.build(
            config, ("fir", "iir"), ("xentium", "vex-1"), GRID
        )
        kernels = [r.kernel for r in plan.requests]
        assert kernels == sorted(kernels, key=("fir", "iir").index)

    def test_only_filter(self, config):
        plan = SweepPlan.build(
            config, ("fir", "iir"), ("xentium", "vex-1"), GRID,
            only=("fir:vex-1",),
        )
        assert {(r.kernel, r.target) for r in plan.requests} == {("fir", "vex-1")}

    def test_bad_only_filter(self, config):
        with pytest.raises(FlowError, match="KERNEL:TARGET"):
            SweepPlan.build(config, ("fir",), ("xentium",), GRID, only=("fir",))

    def test_requests_are_picklable(self, config):
        plan = SweepPlan.build(config, ("fir",), ("xentium",), GRID)
        for request in plan.requests:
            restored = pickle.loads(pickle.dumps((config, request)))
            assert restored == (config, request)


class TestCache:
    def test_miss_then_hit(self, config, reference_cells, tmp_path):
        cache = SweepCache(tmp_path)
        request = next(iter(reference_cells))
        assert cache.load(config, request) is None
        cache.store(config, request, reference_cells[request])
        assert cache.load(config, request) == reference_cells[request]
        assert len(cache) == 1

    def test_executor_cold_then_warm(self, config, tmp_path):
        cache = SweepCache(tmp_path)
        plan = SweepPlan.build(config, ("fir",), ("xentium",), GRID)
        _, cold = SweepExecutor(config, cache=cache, jobs=1).run(plan)
        assert (cold.computed, cold.cache) == (len(plan), 0)
        # Fresh executor, fresh memo: everything must come from disk.
        warm_cells, warm = SweepExecutor(config, cache=cache, jobs=1).run(plan)
        assert (warm.computed, warm.cache) == (0, len(plan))
        # And a second resolve through the same executor hits the memo.
        _, memo = SweepExecutor(config, cache=cache, jobs=1, memo=warm_cells).run(plan)
        assert (memo.computed, memo.cache, memo.memo) == (0, 0, len(plan))

    def test_corrupted_file_recovers(self, config, reference_cells, tmp_path):
        cache = SweepCache(tmp_path)
        request = next(iter(reference_cells))
        path = cache.store(config, request, reference_cells[request])
        path.write_text("{ not json !!")
        assert cache.load(config, request) is None  # tolerated, not raised
        _, stats = SweepExecutor(config, cache=cache, jobs=1).run(
            SweepPlan(config, [request])
        )
        assert stats.computed == 1  # recomputed through the corruption
        assert cache.load(config, request) == reference_cells[request]  # repaired

    def test_truncated_and_mismatched_entries_miss(
        self, config, reference_cells, tmp_path
    ):
        cache = SweepCache(tmp_path)
        request = next(iter(reference_cells))
        path = cache.store(config, request, reference_cells[request])
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.load(config, request) is None
        # A structurally valid file whose cell belongs to another key.
        other = CellRequest("fir", "vex-1", -45.0)
        cache.store(config, request, reference_cells[other])
        assert cache.load(config, request) is None

    def test_key_rolls_with_code_version(self, config, tmp_path, monkeypatch):
        cache = SweepCache(tmp_path)
        request = CellRequest("fir", "xentium", -15.0)
        before = cache.key(config, request)
        monkeypatch.setattr(
            "repro.experiments.cache.flow_code_version", lambda: "0" * 16
        )
        assert cache.key(config, request) != before

    def test_key_depends_on_wlo_engine(self, config, tmp_path):
        cache = SweepCache(tmp_path)
        tabu = cache.key(config, CellRequest("fir", "xentium", -15.0, "tabu"))
        greedy = cache.key(config, CellRequest("fir", "xentium", -15.0, "max-1"))
        assert tabu != greedy

    def test_key_depends_on_flow_variant(self, config, tmp_path):
        cache = SweepCache(tmp_path)
        base = cache.key(config, CellRequest("fir", "xentium", -15.0))
        lite = cache.key(
            config, CellRequest("fir", "xentium", -15.0, flow="wlo-slp-lite")
        )
        assert base != lite

    def test_key_depends_on_pipeline_structure(self, config):
        """Re-declaring a flow with a different pass list rolls the key
        even though the request tuple is unchanged."""
        from repro.pipeline import declare_joint_flow, get_flow, register_flow

        cache = SweepCache()
        request = CellRequest("fir", "xentium", -15.0)
        before = cache.key(config, request)
        original = get_flow("wlo-slp")
        declare_joint_flow(
            "wlo-slp", "restructured for the test", scaloptim=False,
            overwrite=True,
        )
        try:
            assert cache.key(config, request) != before
        finally:
            register_flow(original, overwrite=True)
        assert cache.key(config, request) == before

    def test_pipeline_signature_names_all_three_roles(self):
        from repro.experiments import cell_pipeline_signature

        signature = cell_pipeline_signature(
            CellRequest("fir", "xentium", -15.0, "min+1", "wlo-slp-lite")
        )
        assert set(signature) == {"float", "baseline", "joint"}
        assert "wlo[engine='min+1']" in signature["baseline"]
        assert any("scaloptim=False" in name for name in signature["joint"])


class TestCacheTmpHygiene:
    def test_store_unlinks_tmp_on_failure(
        self, config, reference_cells, tmp_path, monkeypatch
    ):
        """A store that dies between write and rename must not leak its
        temp file (the pre-fix behaviour littered the shared directory
        forever)."""
        cache = SweepCache(tmp_path)
        request = next(iter(reference_cells))

        def exploding_replace(src, dst):
            raise OSError("simulated crash mid-store")

        monkeypatch.setattr("repro.experiments.cache.os.replace",
                            exploding_replace)
        with pytest.raises(OSError, match="mid-store"):
            cache.store(config, request, reference_cells[request])
        assert list(tmp_path.glob("*.tmp*")) == []
        monkeypatch.undo()
        # The cache still works after the failed attempt.
        cache.store(config, request, reference_cells[request])
        assert cache.load(config, request) == reference_cells[request]

    def test_executor_sweeps_stale_tmp_but_keeps_live_writers(
        self, config, reference_cells, tmp_path
    ):
        """The sweep *coordinator* grooms orphaned temp files once per
        resolve; worker-side stores never pay the directory glob."""
        import os
        import time

        stale = tmp_path / ("f" * 32 + ".json.tmp12345")
        stale.write_text("{ torn write of a hard-killed worker")
        aged = time.time() - 7200
        os.utime(stale, (aged, aged))
        fresh = tmp_path / ("a" * 32 + ".json.tmp999")
        fresh.write_text("{ a concurrent worker mid-write")

        cache = SweepCache(tmp_path)
        request = next(iter(reference_cells))
        cache.store(config, request, reference_cells[request])
        assert stale.exists()  # a store alone never globs the directory

        executor = SweepExecutor(config, cache=cache, jobs=1)
        _, stats = executor.run(SweepPlan(config, [request]))
        assert stats.cache == 1  # resolved from the store above
        assert not stale.exists()  # orphan swept by the coordinator
        assert fresh.exists()  # a live writer's young file is untouched


#: The infeasible-constraint cell injected by the fault-tolerance
#: tests: -400 dB is unreachable even at 32-bit word lengths, so the
#: WLO pass raises WLOError for exactly this cell.
FAULTY_GRID = (-15.0, -400.0)


class _InstantlyBrokenPool:
    """Stands in for ``ProcessPoolExecutor``: every submitted future
    raises :class:`BrokenProcessPool`, simulating a worker killed
    before delivering anything (OOM, segfault)."""

    broken_builds = None  # None: always broken; N: first N pools break
    built = 0

    def __init__(self, max_workers=None):
        cls = type(self)
        cls.built += 1
        self.broken = (
            cls.broken_builds is None or cls.built <= cls.broken_builds
        )

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args):
        from concurrent.futures import Future
        from concurrent.futures.process import BrokenProcessPool

        future = Future()
        if self.broken:
            future.set_exception(BrokenProcessPool("worker died"))
        else:
            future.set_result(fn(*args))  # healthy rebuild: run inline
        return future


class _BreaksOncePool(_InstantlyBrokenPool):
    """First pool breaks (worker death), the rebuilt pool is healthy."""

    broken_builds = 1
    built = 0


class TestExecutionBackends:
    @pytest.fixture(scope="class")
    def faulty_plan(self, config) -> SweepPlan:
        return SweepPlan.build(config, ("fir",), ("xentium",), FAULTY_GRID)

    def test_registry(self):
        assert available_execution_backends() == [
            "chunked", "process", "serial", "workqueue"
        ]
        assert get_execution_backend("SERIAL").name == "serial"
        with pytest.raises(
            ExecutionBackendError, match="unknown execution backend"
        ):
            get_execution_backend("warp")

    @pytest.mark.parametrize(
        "backend", ["serial", "process", "chunked", "workqueue"]
    )
    def test_failure_is_isolated_and_survivors_persist(
        self, backend, config, faulty_plan, reference_cells, tmp_path
    ):
        """One infeasible cell: every backend completes the other cell
        bit-identically, persists it to disk, and reports exactly one
        failure carrying the exception text."""
        cache = SweepCache(tmp_path)
        executor = SweepExecutor(config, cache=cache, jobs=2, backend=backend)
        cells, stats = executor.run(faulty_plan)
        assert (stats.computed, stats.failed) == (1, 1)
        assert stats.total == len(faulty_plan)
        ((request, error),) = stats.failures
        assert request.constraint_db == -400.0
        assert error.startswith("WLOError") and "infeasible" in error
        survivor = CellRequest("fir", "xentium", -15.0)
        assert cells == {survivor: reference_cells[survivor]}
        assert len(cache) == 1
        assert cache.load(config, survivor) == reference_cells[survivor]
        assert "1 failed" in stats.summary()
        with pytest.raises(FlowError, match="infeasible"):
            stats.ensure_complete()

    def test_failed_outcomes_stream_through_progress(self, config, faulty_plan):
        outcomes: list[CellOutcome] = []
        executor = SweepExecutor(
            config, jobs=1, progress=lambda done, total, o: outcomes.append(o)
        )
        executor.run(faulty_plan)
        sources = {o.request.constraint_db: o.source for o in outcomes}
        assert sources == {-15.0: "computed", -400.0: "failed"}
        failed = next(o for o in outcomes if o.failed)
        assert failed.cell is None and "infeasible" in failed.error

    def test_progress_printer_renders_failures(self):
        import io

        from repro.report import ProgressPrinter

        stream = io.StringIO()
        outcome = CellOutcome(
            CellRequest("fir", "xentium", -400.0), None, "failed",
            "WLOError: accuracy constraint -400.0 dB is infeasible",
        )
        ProgressPrinter(stream)(1, 2, outcome)
        line = stream.getvalue()
        assert "failed" in line and "WLOError" in line and "-400" in line

    def test_chunks_are_kernel_major_and_order_preserving(self, config):
        backend = get_execution_backend("chunked")
        plan = SweepPlan.build(
            config, ("fir", "iir"), ("xentium",), (-15.0, -25.0, -45.0)
        )
        chunks = backend.chunks(plan.requests, jobs=2)
        assert [r for chunk in chunks for r in chunk] == plan.requests
        for chunk in chunks:
            assert len({r.kernel for r in chunk}) == 1  # never spans kernels

    def test_chunked_workers_cooperate_through_shared_cache(
        self, config, reference_cells, tmp_path
    ):
        """Multi-host mode: one of two cells is already in the shared
        cache (as if another host stored it).  Workers must load it,
        compute only the other, and persist the new cell worker-side —
        nothing left for the coordinating process to write."""
        cache = SweepCache(tmp_path)
        first = CellRequest("fir", "xentium", -15.0)
        second = CellRequest("fir", "xentium", -45.0)
        cache.store(config, first, reference_cells[first])
        backend = get_execution_backend("chunked")
        results = {
            r.request: r
            for r in backend.evaluate(
                config, [first, second], jobs=2, cache=cache
            )
        }
        assert results[first].source == "cache" and results[first].stored
        assert results[second].source == "computed" and results[second].stored
        assert results[second].cell == reference_cells[second]
        assert len(cache) == 2

    def test_process_backend_retries_broken_pool_in_fresh_pool(
        self, config, reference_cells, monkeypatch
    ):
        """A transient worker death breaks the pool; the undelivered
        cells are retried in a fresh pool (never in the coordinator)
        and all survive."""
        monkeypatch.setattr(_BreaksOncePool, "built", 0)
        monkeypatch.setattr(
            "repro.experiments.backends.ProcessPoolExecutor",
            _BreaksOncePool,
        )
        backend = get_execution_backend("process")
        requests = [
            CellRequest("fir", "xentium", -15.0),
            CellRequest("fir", "xentium", -45.0),
        ]
        results = list(backend.evaluate(config, requests, jobs=2))
        assert _BreaksOncePool.built == 2  # the rebuilt pool
        assert {r.request: r.cell for r in results} == {
            request: reference_cells[request] for request in requests
        }

    def test_process_backend_fails_cleanly_when_pool_stays_broken(
        self, config, monkeypatch
    ):
        """Permanent breakage (e.g. a cell that always kills its
        worker): every undelivered cell fails with the breakage text —
        no coordinator crash, no lost bookkeeping."""
        monkeypatch.setattr(_InstantlyBrokenPool, "built", 0)
        monkeypatch.setattr(
            "repro.experiments.backends.ProcessPoolExecutor",
            _InstantlyBrokenPool,
        )
        backend = get_execution_backend("process")
        requests = [
            CellRequest("fir", "xentium", -15.0),
            CellRequest("fir", "xentium", -45.0),
        ]
        results = list(backend.evaluate(config, requests, jobs=2))
        assert len(results) == len(requests)
        assert all("BrokenProcessPool" in r.error for r in results)

    def test_chunked_backend_reports_persisted_cells_truthfully(
        self, config, reference_cells, tmp_path, monkeypatch
    ):
        """A worker that dies mid-chunk already persisted its finished
        cells: the backend must recover those from the shared cache and
        fail only the genuinely unfinished ones."""
        cache = SweepCache(tmp_path)
        first = CellRequest("fir", "xentium", -15.0)
        second = CellRequest("fir", "xentium", -45.0)
        cache.store(config, first, reference_cells[first])  # worker got here
        monkeypatch.setattr(_InstantlyBrokenPool, "built", 0)
        monkeypatch.setattr(
            "repro.experiments.backends.ProcessPoolExecutor",
            _InstantlyBrokenPool,
        )
        backend = get_execution_backend("chunked")
        monkeypatch.setattr(backend, "oversubscribe", 1)  # one 2-cell chunk
        assert backend.chunks([first, second], jobs=1) == [[first, second]]
        results = {
            r.request: r
            for r in backend.evaluate(
                config, [first, second], jobs=1, cache=cache
            )
        }
        recovered = results[first]
        assert recovered.cell == reference_cells[first]
        assert recovered.source == "cache" and recovered.stored
        assert "BrokenProcessPool" in results[second].error

    def test_runner_cell_raises_with_captured_error(self):
        runner = ExperimentRunner(**SMALL)
        with pytest.raises(FlowError, match="infeasible"):
            runner.cell("fir", "xentium", -400.0)
        # The failure is not memoized and neighbours still evaluate.
        assert runner.cell("fir", "xentium", -15.0) is not None

    def test_explicit_backend_reaches_the_runner(self, tmp_path):
        runner = ExperimentRunner(
            **SMALL, backend="chunked", jobs=2, cache=SweepCache(tmp_path)
        )
        assert runner.executor.backend == "chunked"
        stats = runner.prefetch(("fir",), ("xentium",), (-15.0,))
        assert stats.computed == 1 and len(SweepCache(tmp_path)) == 1


class TestParallel:
    def test_parallel_equals_serial(self, config, reference_cells):
        plan = SweepPlan.build(config, ("fir",), ("xentium", "vex-1"), GRID)
        cells, stats = SweepExecutor(config, jobs=2).run(plan)
        assert stats.computed == len(plan)
        assert cells == reference_cells

    def test_parallel_streams_progress(self, config):
        seen = []
        executor = SweepExecutor(
            config, jobs=2,
            progress=lambda done, total, outcome: seen.append((done, total)),
        )
        plan = SweepPlan.build(config, ("fir",), ("xentium",), GRID)
        executor.run(plan)
        assert seen == [(1, len(plan)), (2, len(plan))]

    def test_parallel_fills_shared_cache(self, config, reference_cells, tmp_path):
        cache = SweepCache(tmp_path)
        plan = SweepPlan.build(config, ("fir",), ("xentium", "vex-1"), GRID)
        SweepExecutor(config, cache=cache, jobs=2).run(plan)
        assert len(cache) == len(plan)
        # Serial warm read-back returns identical cells.
        cells, stats = SweepExecutor(config, cache=cache, jobs=1).run(plan)
        assert stats.computed == 0
        assert cells == reference_cells


class TestRunnerKeying:
    def test_wlo_engine_is_part_of_the_key(self):
        runner = ExperimentRunner(**SMALL)
        baseline = runner.cell("fir", "xentium", -15.0)
        ablation = runner.cell("fir", "xentium", -15.0, wlo="max-1")
        assert baseline is not ablation  # distinct memo entries
        assert runner.cell("fir", "xentium", -15.0) is baseline  # no aliasing
        assert runner.cell("fir", "xentium", -15.0, wlo="max-1") is ablation

    def test_evaluate_cell_is_pure(self, config, reference_cells):
        request = next(iter(reference_cells))
        assert evaluate_cell(config, request) == reference_cells[request]

    def test_evaluate_cell_adopts_shipped_flow_specs(self, config):
        """Runtime-declared variants reach workers as shipped FlowSpecs
        (the spawn/forkserver path, simulated in-process by dropping
        the registration before re-evaluating)."""
        import pickle

        from repro.pipeline import declare_joint_flow, get_flow
        from repro.pipeline import registry as flow_registry

        declare_joint_flow(
            "test-shipped", "worker-shipping test variant", scaloptim=False,
            overwrite=True,
        )
        try:
            spec = pickle.loads(pickle.dumps(get_flow("test-shipped")))
            request = CellRequest("fir", "xentium", -15.0, flow="test-shipped")
            expected = evaluate_cell(config, request)
            # Simulate a freshly spawned worker: the runtime registration
            # is gone, only the shipped spec can resolve the flow.
            del flow_registry._FLOWS["test-shipped"]
            with pytest.raises(FlowError, match="unknown flow"):
                evaluate_cell(config, request)
            assert evaluate_cell(config, request, flows=(spec,)) == expected
        finally:
            flow_registry._FLOWS.pop("test-shipped", None)


class TestSweepCLI:
    def test_sweep_cold_then_warm(self, tmp_path, capsys):
        from repro.cli import main

        argv = ["sweep", "--only", "fir:xentium", "--grid", "-15",
                "--jobs", "1", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 computed" in out and "fir" in out
        assert main(argv) == 0  # warm: zero re-evaluations
        out = capsys.readouterr().out
        assert "0 computed" in out and "1 from disk cache" in out

    def test_sweep_no_cache_writes_nothing(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["sweep", "--only", "fir:xentium", "--grid", "-15",
                     "--no-cache", "--cache-dir", str(tmp_path)]) == 0
        assert list(tmp_path.glob("*.json")) == []

    def test_sweep_flow_variant_by_name(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["sweep", "--only", "fir:xentium", "--grid", "-15",
                     "--flow", "wlo-slp-lite", "--cache-dir",
                     str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wlo-slp-lite" in out and "1 computed" in out
        # The variant cell persisted under its own key: re-running the
        # default flow on the same slice computes, never aliases.
        assert main(["sweep", "--only", "fir:xentium", "--grid", "-15",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 computed" in out

    def test_sweep_rejects_unknown_flow_and_engine(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--only", "fir:xentium", "--grid", "-15",
                     "--no-cache", "--flow", "warp"]) == 1
        assert "unknown flow" in capsys.readouterr().err
        assert main(["sweep", "--only", "fir:xentium", "--grid", "-15",
                     "--no-cache", "--wlo", "quantum"]) == 1
        assert "unknown WLO engine" in capsys.readouterr().err

    def test_sweep_rejects_unknown_backend(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--only", "fir:xentium", "--grid", "-15",
                     "--no-cache", "--backend", "warp"]) == 1
        assert "unknown execution backend" in capsys.readouterr().err

    def test_sweep_with_failing_cell_completes_and_exits_nonzero(
        self, tmp_path, capsys
    ):
        """The acceptance scenario: a grid with one infeasible cell
        finishes every other cell, stores them on disk, prints a
        per-cell failure table, and exits non-zero."""
        from repro.cli import main

        argv = ["sweep", "--only", "fir:xentium", "--grid", "-15", "-400",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 1
        out = capsys.readouterr().out
        assert "Failed cells" in out and "infeasible" in out
        assert "1 computed" in out and "1 failed" in out
        assert len(list(tmp_path.glob("*.json"))) == 1  # survivor persisted
        # Warm rerun: the survivor loads from disk, the infeasible cell
        # is retried (failures are never cached) and still fails.
        assert main(argv) == 1
        out = capsys.readouterr().out
        assert "1 from disk cache" in out and "1 failed" in out

    def test_sweep_backends_are_bit_identical(self, tmp_path, capsys):
        from repro.cli import main

        rows = {}
        for backend in ("serial", "chunked", "workqueue"):
            assert main(["sweep", "--only", "fir:xentium", "--grid", "-15",
                         "--backend", backend, "--jobs", "2",
                         "--cache-dir", str(tmp_path / backend)]) == 0
            out = capsys.readouterr().out
            rows[backend] = [
                line for line in out.splitlines() if line.startswith("   fir")
            ]
            assert rows[backend]
        assert rows["serial"] == rows["chunked"] == rows["workqueue"]
