"""Tabu-search WLO (the WLO-First engine) tests."""

import pytest

from repro.errors import WLOError
from repro.targets import get_target
from repro.wlo import TabuConfig, tabu_wlo, wl_relative_cost


class TestTabu:
    def test_constraint_always_satisfied(self, fir_context):
        target = get_target("xentium")
        for constraint in (-15.0, -45.0, -62.0):
            spec = fir_context.fresh_spec()
            tabu_wlo(fir_context.program, spec, fir_context.model,
                     target, constraint)
            assert not fir_context.model.violates(spec, constraint)

    def test_improves_over_start(self, fir_context):
        target = get_target("xentium")
        spec = fir_context.fresh_spec()
        start_cost = wl_relative_cost(fir_context.program, spec, target)
        result = tabu_wlo(fir_context.program, spec, fir_context.model,
                          target, -25.0)
        assert result.best_cost < start_cost
        assert result.best_cost == pytest.approx(
            wl_relative_cost(fir_context.program, spec, target)
        )

    def test_loose_constraint_narrows_everything(self, fir_context):
        """At -10 dB on a 2-width target the uniform 16-bit solution is
        feasible and strictly cheapest: Tabu must find it."""
        target = get_target("xentium")
        spec = fir_context.fresh_spec()
        tabu_wlo(fir_context.program, spec, fir_context.model, target, -10.0)
        wls = {spec.wl(root) for root in fir_context.slotmap.roots}
        assert wls == {16}

    def test_strict_constraint_keeps_width(self, fir_context):
        target = get_target("xentium")
        spec = fir_context.fresh_spec()
        tabu_wlo(fir_context.program, spec, fir_context.model, target, -90.0)
        wls = [spec.wl(root) for root in fir_context.slotmap.roots]
        assert 32 in wls  # something had to stay wide

    def test_infeasible_raises(self, fir_context):
        target = get_target("xentium")
        spec = fir_context.fresh_spec()
        with pytest.raises(WLOError, match="infeasible"):
            tabu_wlo(fir_context.program, spec, fir_context.model,
                     target, -400.0)

    def test_supported_wls_only(self, fir_context):
        target = get_target("vex-4")
        spec = fir_context.fresh_spec()
        tabu_wlo(fir_context.program, spec, fir_context.model, target, -30.0)
        for root in fir_context.slotmap.roots:
            assert spec.wl(root) in target.supported_wls

    def test_deterministic(self, fir_context):
        target = get_target("xentium")
        spec_a = fir_context.fresh_spec()
        spec_b = fir_context.fresh_spec()
        tabu_wlo(fir_context.program, spec_a, fir_context.model, target, -45.0)
        tabu_wlo(fir_context.program, spec_b, fir_context.model, target, -45.0)
        assert (spec_a.wl_vector() == spec_b.wl_vector()).all()

    def test_respects_iteration_budget(self, fir_context):
        target = get_target("xentium")
        spec = fir_context.fresh_spec()
        result = tabu_wlo(
            fir_context.program, spec, fir_context.model, target, -45.0,
            TabuConfig(max_iterations=5),
        )
        assert result.iterations <= 5

    def test_patience_pins_stall_termination(self, fir_context):
        """Regression pin for the patience/stall logic: termination
        depends only on best-cost improvements (no other per-iteration
        state), so patience changes *only* how far the search coasts
        past its last improvement — the move trajectory, improvement
        count and best solution are identical, and each extra unit of
        patience buys exactly one extra non-improving iteration before
        the stall break."""
        target = get_target("xentium")

        def run(patience: int):
            spec = fir_context.fresh_spec()
            return tabu_wlo(
                fir_context.program, spec, fir_context.model, target, -45.0,
                TabuConfig(max_iterations=10_000, patience=patience),
            )

        eager, patient = run(2), run(30)
        # Both stop on stall, far inside the iteration budget.
        assert eager.iterations < 10_000 and patient.iterations < 10_000
        assert patient.iterations - eager.iterations == 30 - 2
        assert eager.improved_moves == patient.improved_moves
        assert eager.best_cost == patient.best_cost
        assert eager.best_assignment == patient.best_assignment


class TestCostModel:
    def test_cost_scales_with_wl(self, fir_context):
        target = get_target("xentium")
        spec = fir_context.fresh_spec()
        wide = wl_relative_cost(fir_context.program, spec, target)
        for root in fir_context.slotmap.roots:
            spec.set_wl(root, 16)
        half = wl_relative_cost(fir_context.program, spec, target)
        assert half == pytest.approx(wide / 2.0)

    def test_cost_weights_by_executions(self, fir_context):
        """Narrowing a hot-loop op saves more than a cold-block op."""
        target = get_target("xentium")
        program = fir_context.program
        from repro.ir import OpKind

        body_mul = next(
            o for o in program.blocks["body"].ops if o.kind is OpKind.MUL
        )
        reduce_add = next(
            o for o in program.blocks["reduce"].ops if o.kind is OpKind.ADD
        )
        spec = fir_context.fresh_spec()
        base = wl_relative_cost(program, spec, target)
        spec.set_wl(body_mul.opid, 16)
        hot_saving = base - wl_relative_cost(program, spec, target)
        spec = fir_context.fresh_spec()
        spec.set_wl(reduce_add.opid, 16)
        cold_saving = base - wl_relative_cost(program, spec, target)
        assert hot_saving > cold_saving

    def test_unsupported_wl_charged_at_next_wider(self, fir_context):
        target = get_target("xentium")  # supports 16, 32
        spec = fir_context.fresh_spec()
        for root in fir_context.slotmap.roots:
            spec.set_wl(root, 24)  # not supported: implemented as 32
        cost24 = wl_relative_cost(fir_context.program, spec, target)
        for root in fir_context.slotmap.roots:
            spec.set_wl(root, 32)
        cost32 = wl_relative_cost(fir_context.program, spec, target)
        assert cost24 == pytest.approx(cost32)
