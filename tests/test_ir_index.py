"""Unit and property tests for affine index expressions."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IRError
from repro.ir import AffineIndex, loop_index


def idx(mapping, const=0):
    return AffineIndex.of(mapping, const)


class TestConstruction:
    def test_zero_coefficients_dropped(self):
        assert idx({"i": 0, "j": 2}).terms == (("j", 2),)

    def test_terms_sorted(self):
        a = AffineIndex((("j", 1), ("i", 1)))
        b = AffineIndex((("i", 1), ("j", 1)))
        assert a == b and hash(a) == hash(b)

    def test_constant_factory(self):
        c = AffineIndex.constant(7)
        assert c.is_constant() and c.const == 7

    def test_loop_index(self):
        assert loop_index("n") == idx({"n": 1})


class TestAlgebra:
    def test_add_int(self):
        assert (loop_index("i") + 3).const == 3

    def test_add_index(self):
        total = idx({"i": 1}, 1) + idx({"i": 2, "j": 1}, 2)
        assert total == idx({"i": 3, "j": 1}, 3)

    def test_sub_cancels(self):
        diff = idx({"i": 4}, 5) - idx({"i": 4}, 2)
        assert diff == AffineIndex.constant(3)

    def test_scale(self):
        assert (loop_index("k") * 4) == idx({"k": 4})
        assert (4 * loop_index("k")) == idx({"k": 4})

    def test_radd(self):
        assert (2 + loop_index("i")) == idx({"i": 1}, 2)


class TestEvaluate:
    def test_basic(self):
        assert idx({"i": 2, "j": -1}, 5).evaluate({"i": 3, "j": 4}) == 7

    def test_unbound_variable(self):
        with pytest.raises(IRError, match="unbound"):
            loop_index("i").evaluate({})

    @given(
        st.dictionaries(st.sampled_from("ijk"), st.integers(-5, 5), max_size=3),
        st.integers(-100, 100),
        st.dictionaries(st.sampled_from("ijk"), st.integers(0, 50),
                        min_size=3, max_size=3),
    )
    def test_evaluate_is_linear(self, coeffs, const, env):
        index = idx(coeffs, const)
        expected = const + sum(c * env[v] for v, c in coeffs.items())
        assert index.evaluate(env) == expected


class TestConstantOffset:
    def test_same_linear_part(self):
        a = idx({"n": 1, "k": 4}, 3)
        b = idx({"n": 1, "k": 4}, 1)
        assert a.constant_offset_from(b) == 2

    def test_different_linear_part(self):
        assert idx({"n": 1}).constant_offset_from(idx({"k": 1})) is None

    def test_reflexive_zero(self):
        a = idx({"n": 2}, 9)
        assert a.constant_offset_from(a) == 0


class TestBounds:
    def test_positive_coefficients(self):
        lo, hi = idx({"i": 2}, 1).bounds({"i": (0, 9)})
        assert (lo, hi) == (1, 19)

    def test_negative_coefficients(self):
        lo, hi = idx({"i": -1}, 10).bounds({"i": (0, 4)})
        assert (lo, hi) == (6, 10)

    def test_missing_extent(self):
        with pytest.raises(IRError):
            loop_index("i").bounds({})

    @given(
        st.integers(-4, 4), st.integers(-50, 50),
        st.integers(0, 20), st.integers(0, 20),
    )
    def test_bounds_contain_all_samples(self, coeff, const, lo_i, width):
        index = idx({"i": coeff}, const)
        extent = (lo_i, lo_i + width)
        lo, hi = index.bounds({"i": extent})
        for value in range(extent[0], extent[1] + 1):
            point = index.evaluate({"i": value})
            assert lo <= point <= hi


class TestStr:
    def test_rendering(self):
        assert str(idx({"n": 1, "k": 4}, 3)) == "4*k + n + 3"
        assert str(AffineIndex.constant(0)) == "0"
        assert "- i" in str(idx({"i": -1}, 5)) or "-i" in str(idx({"i": -1}, 5))
