"""IWL determination tests."""

import pytest
from hypothesis import given, strategies as st

from repro.fixedpoint import (
    FixedPointSpec,
    Interval,
    QFormat,
    SlotMap,
    analyze_ranges,
    assign_iwls,
    iwl_for_interval,
    iwl_for_magnitude,
)


class TestIwlForMagnitude:
    @pytest.mark.parametrize("magnitude,want", [
        (0.0, 1),      # degenerate: sign bit only
        (0.4, 1),      # fits Q1.x
        (1.0, 1),      # power of two saturates one quantum (Q1.15 style)
        (1.0001, 2),
        (1.5, 2),
        (2.0, 2),      # power of two again
        (2.5, 3),
        (16.0, 5),
        (100.0, 8),
    ])
    def test_cases(self, magnitude, want):
        assert iwl_for_magnitude(magnitude) == want

    def test_min_iwl_floor(self):
        assert iwl_for_magnitude(0.001, min_iwl=3) == 3

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_range_is_covered(self, magnitude):
        iwl = iwl_for_magnitude(magnitude)
        fmt = QFormat(iwl, 24)
        # Covered up to the one-quantum saturation allowance.
        assert fmt.max_value >= magnitude - magnitude * 2 ** -20 - fmt.quantum
        assert fmt.min_value <= -magnitude

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_minimality(self, magnitude):
        """One bit fewer would not cover the magnitude."""
        iwl = iwl_for_magnitude(magnitude)
        if iwl > 1:
            smaller = 2.0 ** (iwl - 2)
            assert magnitude * (1 - 2 ** -24) > smaller or iwl == 1


class TestIwlForInterval:
    def test_asymmetric_interval(self):
        assert iwl_for_interval(Interval(-3.0, 1.0)) == 3

    def test_positive_only_interval(self):
        assert iwl_for_interval(Interval(0.0, 0.9)) == 1


class TestAssignIwls:
    def test_every_root_gets_an_iwl(self, small_fir):
        slotmap = SlotMap(small_fir)
        ranges = analyze_ranges(small_fir, slotmap)
        spec = FixedPointSpec(slotmap)
        assign_iwls(spec, ranges)
        for root in slotmap.roots:
            interval = ranges.ranges.get(root)
            if interval is None:
                assert spec.iwl(root) == 1
            else:
                assert spec.iwl(root) == iwl_for_interval(interval)

    def test_wl_untouched(self, small_fir):
        slotmap = SlotMap(small_fir)
        spec = FixedPointSpec(slotmap, max_wl=32)
        assign_iwls(spec, analyze_ranges(small_fir, slotmap))
        assert all(spec.wl(root) == 32 for root in slotmap.roots)

    def test_inputs_get_q1(self, small_fir):
        """[-1, 1]-normalized inputs must land on iwl=1 (Q1.x)."""
        slotmap = SlotMap(small_fir)
        spec = FixedPointSpec(slotmap)
        assign_iwls(spec, analyze_ranges(small_fir, slotmap))
        assert spec.iwl(slotmap.slot_of_symbol("x")) == 1
