"""Tests for the IR builder and structural validation."""

import pytest

from repro.errors import IRError, ValidationError
from repro.ir import (
    OpKind,
    ProgramBuilder,
    loop_index,
)


class TestSymbols:
    def test_duplicate_symbol_rejected(self):
        b = ProgramBuilder("p")
        b.input_array("x", (4,), value_range=(-1, 1))
        with pytest.raises(IRError, match="already declared"):
            b.output_array("x", (4,))
        with pytest.raises(IRError, match="already declared"):
            b.scalar("x")

    def test_input_needs_range(self):
        from repro.ir.symbols import ArrayDecl, SymbolKind

        with pytest.raises(IRError, match="value_range"):
            ArrayDecl("x", (4,), SymbolKind.INPUT)

    def test_coeff_needs_values(self):
        from repro.ir.symbols import ArrayDecl, SymbolKind

        with pytest.raises(IRError, match="values"):
            ArrayDecl("h", (4,), SymbolKind.COEFF)

    def test_coeff_range_derived(self):
        b = ProgramBuilder("p")
        h = b.coeff_array("h", [0.25, -0.5, 1.0])
        assert h.value_range == (-0.5, 1.0)

    def test_3d_array_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(IRError, match="1-D/2-D"):
            b.output_array("cube", (2, 2, 2))


class TestStructure:
    def test_block_inside_loop(self):
        b = ProgramBuilder("p")
        x = b.input_array("x", (4,), value_range=(-1, 1))
        y = b.output_array("y", (4,))
        with b.loop("i", 4):
            with b.block("body"):
                b.store(y, loop_index("i"), b.load(x, loop_index("i")))
        program = b.build()
        assert program.blocks["body"].loop_vars == ("i",)
        assert program.blocks["body"].executions == 4

    def test_nested_blocks_rejected(self):
        b = ProgramBuilder("p")
        with b.block("outer"):
            with pytest.raises(IRError, match="nest"):
                with b.block("inner"):
                    pass

    def test_loop_inside_block_rejected(self):
        b = ProgramBuilder("p")
        with b.block("blk"):
            with pytest.raises(IRError, match="inside a block"):
                with b.loop("i", 4):
                    pass

    def test_op_outside_block_rejected(self):
        b = ProgramBuilder("p")
        with pytest.raises(IRError, match="inside a block"):
            b.const(1.0)

    def test_auto_block_names(self):
        b = ProgramBuilder("p")
        with b.block() as blk:
            pass
        assert blk.name == "bb0"


class TestOperations:
    def test_operator_overloads(self):
        b = ProgramBuilder("p")
        x = b.input_array("x", (2,), value_range=(-1, 1))
        y = b.output_array("y", (1,))
        with b.block("blk"):
            a = b.load(x, 0)
            c = b.load(x, 1)
            b.store(y, 0, -(a + c) * a - c)
        program = b.build()
        kinds = [op.kind for op in program.blocks["blk"].ops]
        assert kinds.count(OpKind.ADD) == 1
        assert kinds.count(OpKind.NEG) == 1
        assert kinds.count(OpKind.MUL) == 1
        assert kinds.count(OpKind.SUB) == 1

    def test_load_rank_mismatch(self):
        b = ProgramBuilder("p")
        img = b.input_array("img", (4, 4), value_range=(-1, 1))
        with b.block("blk"):
            with pytest.raises(IRError, match="rank"):
                b.load(img, 0)

    def test_store_to_coeff_rejected(self):
        b = ProgramBuilder("p")
        h = b.coeff_array("h", [1.0])
        with b.block("blk"):
            with pytest.raises(IRError, match="coefficient"):
                b.store(h, 0, b.const(0.0))

    def test_undeclared_symbols(self):
        b = ProgramBuilder("p")
        with b.block("blk"):
            with pytest.raises(IRError, match="undeclared"):
                b.load("ghost", 0)
            with pytest.raises(IRError, match="undeclared"):
                b.getvar("ghost")

    def test_cross_builder_values_rejected(self):
        b1 = ProgramBuilder("p1")
        b2 = ProgramBuilder("p2")
        with b1.block("blk"):
            v1 = b1.const(1.0)
        with b2.block("blk"):
            v2 = b2.const(2.0)
            with pytest.raises(IRError, match="different builders"):
                b2.add(v1, v2)


class TestValidation:
    def test_out_of_bounds_subscript(self):
        b = ProgramBuilder("p")
        x = b.input_array("x", (4,), value_range=(-1, 1))
        y = b.output_array("y", (8,))
        with b.loop("i", 8):
            with b.block("body"):
                b.store(y, loop_index("i"), b.load(x, loop_index("i")))
        with pytest.raises(ValidationError, match="exceeds extent"):
            b.build()

    def test_foreign_loop_var(self):
        b = ProgramBuilder("p")
        x = b.input_array("x", (8,), value_range=(-1, 1))
        y = b.output_array("y", (1,))
        with b.block("blk"):  # not inside loop i
            b.store(y, 0, b.load(x, loop_index("i")))
        with pytest.raises(ValidationError, match="not enclosing"):
            b.build()

    def test_build_with_open_block(self):
        b = ProgramBuilder("p")
        ctx = b.block("blk")
        ctx.__enter__()
        with pytest.raises(IRError, match="open loop or block"):
            b.build()


class TestProgramQueries:
    def test_priority_order(self, tiny_program):
        names = [blk.name for blk in tiny_program.blocks_by_priority()]
        assert names[0] == "body"  # 8 executions beats 1

    def test_op_lookup(self, tiny_program):
        op = tiny_program.op(0)
        assert op.opid == 0
        with pytest.raises(IRError):
            tiny_program.op(10_000)

    def test_output_store_ops(self, tiny_program):
        stores = tiny_program.output_store_ops()
        assert len(stores) == 1
        assert stores[0].array == "y"

    def test_symbol_kind_queries(self, tiny_program):
        assert [a.name for a in tiny_program.input_arrays()] == ["x"]
        assert [a.name for a in tiny_program.output_arrays()] == ["y"]
        assert tiny_program.coeff_arrays() == []
