"""Unit tests for the int64 width-proof pass.

The proof (:mod:`repro.fixedpoint.widthproof`) decides whether the
batch fixed-point interpreter may run on native ``int64`` lanes.  Its
obligations: bound every *transient* — full-precision multiply
products, pre-overflow accumulation sums, requantization up-shifts and
the ``ROUND`` half-ulp offset — not just the stored values, and fail
closed (object tier) whenever any bound, shift distance or word length
escapes what int64 arithmetic can carry.
"""

from __future__ import annotations

import pytest

from repro.fixedpoint import (
    FixedPointSpec,
    FxpConfig,
    OverflowMode,
    QuantMode,
    SlotMap,
    analyze_ranges,
    assign_iwls,
    fixed_point_tier,
    prove_int64_safe,
)
from repro.fixedpoint.fxpbatch import FORCE_OBJECT_ENV
from repro.ir import OpKind, ProgramBuilder, loop_index
from repro.kernels import kernel_by_name, kernel_names

I64_MAX = (1 << 63) - 1


def _default_spec(program, max_wl=32):
    slotmap = SlotMap(program)
    spec = FixedPointSpec(slotmap, max_wl=max_wl)
    assign_iwls(spec, analyze_ranges(program, slotmap))
    return spec


def _mul_program(length=4):
    """y[i] = x[i] * w[i] — one full-width multiply per element."""
    builder = ProgramBuilder("mulxy")
    x = builder.input_array("x", (length,), value_range=(-1.0, 1.0))
    w = builder.input_array("w", (length,), value_range=(-1.0, 1.0))
    y = builder.output_array("y", (length,))
    i = loop_index("i")
    with builder.loop("i", length):
        with builder.block("body"):
            builder.store(y, i, builder.mul(builder.load(x, i),
                                            builder.load(w, i)))
    return builder.build()


def _accumulate_program(length=6):
    """acc += x[i] — a loop-carried accumulation chain."""
    builder = ProgramBuilder("accum")
    x = builder.input_array("x", (length,), value_range=(-1.0, 1.0))
    total = builder.output_array("total", (1,))
    acc = builder.scalar("acc")
    i = loop_index("i")
    with builder.loop("i", length):
        with builder.block("body"):
            builder.setvar(
                acc, builder.add(builder.getvar(acc), builder.load(x, i))
            )
    with builder.block("fin"):
        builder.store(total, 0, builder.getvar(acc))
    return builder.build()


class TestShippedKernelsProve:
    @pytest.mark.parametrize("kernel", kernel_names())
    def test_default_configs_are_int64_safe(self, kernel):
        """The fast path engages on the whole paper workload."""
        program = kernel_by_name(kernel)
        proof = prove_int64_safe(program, _default_spec(program))
        assert proof.safe, proof.reasons
        assert proof.reasons == ()
        assert 0 < proof.peak_bound <= I64_MAX
        assert "int64-safe" in proof.describe()


class TestMulWidening:
    def test_product_transient_is_bounded_not_ignored(self):
        program = _mul_program()
        spec = _default_spec(program)
        proof = prove_int64_safe(program, spec)
        # Operands carry 32-bit mantissas at iwl=1 (fwl=31): the
        # full-precision product transiently reaches 2^62 even though
        # every *stored* value fits 32 bits.
        assert proof.safe
        assert proof.peak_bound >= 1 << 62

    def test_widened_operands_push_product_past_int64(self):
        program = _mul_program()
        spec = _default_spec(program, max_wl=40)
        proof = prove_int64_safe(program, spec)
        # 40-bit operands: product transient ~2^78 — provably > int64.
        assert not proof.safe
        assert proof.peak_bound > I64_MAX
        assert any("product" in reason for reason in proof.reasons)
        assert "fallback" in proof.describe()

    def test_edge_narrowing_restores_the_proof(self):
        # The same 40-bit program proves safe once every MUL consumes
        # its operands through 16-bit edges (the SLP pack boundary).
        program = _mul_program()
        spec = _default_spec(program, max_wl=40)
        for op in program.all_ops():
            if op.kind is OpKind.MUL:
                spec.set_edge_wl(op.opid, 0, 16)
                spec.set_edge_wl(op.opid, 1, 16)
        assert prove_int64_safe(program, spec).safe


class TestAccumulateWidening:
    def test_accumulation_chain_proves_at_default_widths(self):
        program = _accumulate_program()
        proof = prove_int64_safe(program, _default_spec(program))
        assert proof.safe

    def test_unclamped_init_is_in_the_variable_bound(self):
        # A variable init is converted without overflow, so a huge
        # init mantissa must widen the READVAR bound even though every
        # written value is clamped.  fwl=55 turns init=100.0 into a
        # ~2^61.6 mantissa; one more up-shift breaks int64.
        builder = ProgramBuilder("biginit")
        x = builder.input_array("x", (2,), value_range=(-1.0, 1.0))
        out = builder.output_array("out", (1,))
        acc = builder.scalar("acc", init=100.0)
        with builder.block("body"):
            builder.setvar(
                acc,
                builder.add(builder.getvar(acc), builder.load(x, 0)),
            )
        with builder.block("fin"):
            builder.store(out, 0, builder.getvar(acc))
        program = builder.build()
        slotmap = SlotMap(program)
        spec = FixedPointSpec(slotmap, max_wl=32)
        assign_iwls(spec, analyze_ranges(program, slotmap))
        acc_slot = slotmap.slot_of_symbol("acc")
        spec.set_wl(acc_slot, 62)
        spec.set_iwl(acc_slot, 7)  # fwl=55: init 100.0 -> ~2^61.6
        out_slot = slotmap.slot_of_symbol("out")
        spec.set_wl(out_slot, 62)
        spec.set_iwl(out_slot, 4)  # fwl=58: requantize shifts up by 3
        proof = prove_int64_safe(program, spec)
        assert not proof.safe

    def test_operand_alignment_widening_breaks_int64(self):
        # Aligning the loaded operand up to the accumulator's fwl
        # shifts its 62-bit clamp 2 bits past int64 — a pure transient:
        # every *stored* format in the program stays native-safe.
        program = _accumulate_program()
        slotmap = SlotMap(program)
        spec = FixedPointSpec(slotmap, max_wl=62)
        for root in slotmap.roots:
            spec.set_wl(root, 62)
            spec.set_iwl(root, 1)
        spec.set_iwl(slotmap.slot_of_symbol("x"), 3)  # fwl 59 vs acc 61
        proof = prove_int64_safe(program, spec)
        assert not proof.safe
        assert any("add" in reason for reason in proof.reasons)


class TestShiftBounds:
    def test_oversized_requantize_shift_fails_closed(self):
        # fwl gaps beyond 62 can arise with negative IWLs while every
        # word length stays native-safe; numpy cannot issue the shift.
        program = _accumulate_program()
        slotmap = SlotMap(program)
        spec = FixedPointSpec(slotmap, max_wl=32)
        assign_iwls(spec, analyze_ranges(program, slotmap))
        x_slot = slotmap.slot_of_symbol("x")
        spec.set_wl(x_slot, 8)
        spec.set_iwl(x_slot, 80)   # fwl = -72
        proof = prove_int64_safe(program, spec)
        assert not proof.safe
        assert any("shift" in reason for reason in proof.reasons)

    def test_oversized_word_length_fails_closed(self):
        program = _mul_program()
        slotmap = SlotMap(program)
        spec = FixedPointSpec(slotmap, max_wl=70)
        assign_iwls(spec, analyze_ranges(program, slotmap))
        proof = prove_int64_safe(program, spec)
        assert not proof.safe
        assert any("word length 70" in reason for reason in proof.reasons)


class TestPolicySensitivity:
    def test_round_offset_widens_the_peak(self):
        program = kernel_by_name("fir")
        spec = _default_spec(program)
        truncate = prove_int64_safe(program, spec,
                                    FxpConfig(quant_mode=QuantMode.TRUNCATE))
        rounded = prove_int64_safe(program, spec,
                                   FxpConfig(quant_mode=QuantMode.ROUND))
        assert rounded.peak_bound >= truncate.peak_bound

    @pytest.mark.parametrize(
        "overflow",
        [OverflowMode.WRAP, OverflowMode.SATURATE, OverflowMode.ERROR],
    )
    def test_every_overflow_policy_is_modeled(self, overflow):
        program = kernel_by_name("dot")
        spec = _default_spec(program)
        proof = prove_int64_safe(program, spec, FxpConfig(overflow=overflow))
        assert proof.safe


class TestTierHelper:
    def test_tier_tracks_the_proof(self):
        program = _mul_program()
        assert fixed_point_tier(program, _default_spec(program)) == "int64"
        assert fixed_point_tier(
            program, _default_spec(program, max_wl=40)
        ) == "object"

    def test_force_object_kwarg_pins_object(self):
        program = _mul_program()
        spec = _default_spec(program)
        assert fixed_point_tier(program, spec, force_object=True) == "object"

    def test_env_knob_pins_object(self, monkeypatch):
        program = _mul_program()
        spec = _default_spec(program)
        monkeypatch.setenv(FORCE_OBJECT_ENV, "1")
        assert fixed_point_tier(program, spec) == "object"
        monkeypatch.setenv(FORCE_OBJECT_ENV, "0")
        assert fixed_point_tier(program, spec) == "int64"
        monkeypatch.delenv(FORCE_OBJECT_ENV)
        assert fixed_point_tier(program, spec) == "int64"
