"""Typed request API tests: round-trips, CLI materialization, and the
standardized unknown-name error format of all five registries."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    RunRequest,
    SweepReport,
    SweepRequest,
    registry_listing,
)
from repro.errors import (
    BackendError,
    ExecutionBackendError,
    FlowError,
    FormatError,
    IRError,
    TargetError,
    WLOError,
)

SMALL = dict(
    n_samples=96, analysis_samples=96, image_size=18, analysis_image_size=18
)


class TestSweepRequestRoundTrip:
    def test_default_round_trips(self):
        request = SweepRequest()
        assert SweepRequest.from_json(request.to_json()) == request

    def test_lists_normalize_to_tuples(self):
        a = SweepRequest(kernels=["fir"], targets=["vex-1"], grid=[-15])
        b = SweepRequest(kernels=("fir",), targets=("vex-1",), grid=(-15.0,))
        assert a == b
        assert a.grid == (-15.0,)  # ints coerce to floats

    def test_every_field_survives_the_wire(self):
        request = SweepRequest(
            kernels=("iir",), targets=("st240",), grid=(-25.0, -35.0),
            only=("iir:st240",), wlo="max-1", flow="wlo-slp-lite",
            sim_backend="scalar", jobs=7, backend="workqueue",
            cache_dir="/tmp/x", no_cache=True,
        )
        hydrated = SweepRequest.from_json(request.to_json())
        assert hydrated == request
        assert hydrated.only == ("iir:st240",)

    def test_unknown_payload_field_is_rejected(self):
        with pytest.raises(FlowError, match="unknown sweep request field"):
            SweepRequest.from_payload({"kernelz": ["fir"]})

    def test_defaults_fill_missing_payload_keys_only(self):
        defaults = {"jobs": 4, "backend": "workqueue", "ignored": 1}
        request = SweepRequest.from_payload({"jobs": 2}, defaults)
        assert request.jobs == 2  # payload wins
        assert request.backend == "workqueue"  # default fills the hole

    def test_validate_accepts_the_default_request(self):
        SweepRequest().validate()

    def test_validate_rejects_bad_jobs(self):
        with pytest.raises(FlowError, match="jobs must be >= 1"):
            SweepRequest(jobs=0).validate()

    def test_plan_matches_engine_enumeration(self):
        from repro.experiments import KernelConfig

        request = SweepRequest(
            kernels=("fir", "fir"), targets=("xentium",),
            grid=(-15.0, -15.0, -45.0),
        )
        plan = request.plan(KernelConfig(**SMALL))
        assert len(plan.requests) == 2  # deduplicated
        assert plan.requests[0].sim_backend == ""

    def test_grid_deduplicates_order_preserving(self):
        request = SweepRequest(grid=(-25.0, -15, -25.0, -15.0, -45.0))
        assert request.grid == (-25.0, -15.0, -45.0)
        assert SweepRequest.from_json(request.to_json()) == request

    def test_empty_grid_is_rejected(self):
        with pytest.raises(FlowError, match="grid is empty"):
            SweepRequest(grid=())

    def test_continuation_round_trips(self):
        warm = SweepRequest(continuation=True)
        pareto = SweepRequest(pareto=True)
        assert SweepRequest.from_json(warm.to_json()) == warm
        assert SweepRequest.from_json(pareto.to_json()) == pareto
        assert SweepRequest().continuation_mode == ""
        assert warm.continuation_mode == "warm"
        assert pareto.continuation_mode == "pareto"

    def test_continuation_and_pareto_are_mutually_exclusive(self):
        with pytest.raises(FlowError, match="mutually exclusive"):
            SweepRequest(continuation=True, pareto=True).validate()

    def test_format_round_trips_and_canonicalizes(self):
        request = SweepRequest(format="float32")
        assert SweepRequest.from_json(request.to_json()) == request
        # Canonical spelling: case and binary(E,M) spacing never split
        # request equality (and thus never split cache cells).
        assert SweepRequest(format="Binary( 8 , 10 )") == SweepRequest(
            format="binary(8,10)"
        )
        assert SweepRequest(format="fixed") == SweepRequest(format="")

    def test_format_validates_through_the_registry(self):
        SweepRequest(format="bfloat16").validate()
        with pytest.raises(FormatError, match="unknown format 'floot32'"):
            SweepRequest(format="floot32").validate()
        # The oracle is a reference backend, not a quantization target.
        with pytest.raises(FormatError, match="bigfloat"):
            SweepRequest(format="bigfloat").validate()

    def test_format_reaches_the_plan(self):
        from repro.experiments import KernelConfig

        request = SweepRequest(
            kernels=("fir",), targets=("vex-1",), grid=(-15.0,),
            format="float32",
        )
        plan = request.plan(KernelConfig(**SMALL))
        assert [r.format for r in plan.requests] == ["float32"]
        fixed = SweepRequest(
            kernels=("fir",), targets=("vex-1",), grid=(-15.0,)
        ).plan(KernelConfig(**SMALL))
        # Format cells never alias fixed-point cells.
        assert plan.requests[0] != fixed.requests[0]

    def test_continuation_reaches_the_plan(self):
        from repro.experiments import KernelConfig

        request = SweepRequest(
            kernels=("fir",), targets=("vex-1",), grid=(-15.0, -45.0, -25.0),
            continuation=True,
        )
        plan = request.plan(KernelConfig(**SMALL))
        # Warm plans run each panel strictest-first so every cell after
        # the first has a feasible neighbor to seed from.
        assert [r.constraint_db for r in plan.requests] == [-45.0, -25.0, -15.0]
        assert all(r.continuation == "warm" for r in plan.requests)
        cold = SweepRequest(
            kernels=("fir",), targets=("vex-1",), grid=(-15.0, -45.0, -25.0)
        ).plan(KernelConfig(**SMALL))
        assert [r.constraint_db for r in cold.requests] == [-15.0, -45.0, -25.0]
        assert all(r.continuation == "" for r in cold.requests)


class TestRunRequestRoundTrip:
    def test_round_trip(self):
        request = RunRequest(
            kernel="dot", target="vex-1", constraint_db=-20,
            flow="wlo-first", wlo="min+1", sim_backend="scalar",
        )
        assert RunRequest.from_json(request.to_json()) == request
        assert request.constraint_db == -20.0

    def test_unknown_field_is_rejected(self):
        with pytest.raises(FlowError, match="unknown run request field"):
            RunRequest.from_payload({"kernal": "fir"})

    def test_execute_runs_the_flow(self):
        result, state = RunRequest(
            kernel="dot", target="vex-1", constraint_db=-15.0
        ).execute()
        assert result.total_cycles > 0
        assert state.timing_report()

    def test_execute_float_flow_ignores_sim_backend(self):
        result, _ = RunRequest(
            kernel="dot", target="vex-1", flow="float", sim_backend="scalar"
        ).execute()
        assert result.total_cycles > 0


class TestCliMaterialization:
    """Every sweep-backed CLI invocation materializes into a
    SweepRequest whose JSON round-trip is equal (the acceptance
    criterion of the unified request API)."""

    INVOCATIONS = [
        ["sweep", "--only", "fir:vex-1", "--grid", "-15"],
        ["sweep", "--kernels", "iir", "--targets", "st240", "--jobs", "3",
         "--backend", "workqueue", "--no-cache"],
        ["sweep", "--wlo", "max-1", "--flow", "wlo-slp-lite",
         "--sim-backend", "scalar", "--cache-dir", "/tmp/cache"],
        ["fig4", "--kernels", "fir", "--targets", "vex-1", "--grid", "-25",
         "--jobs", "2"],
        ["table1", "--grid", "-15", "-25", "--backend", "chunked"],
        ["fig6", "--no-cache"],
        ["ablations", "--kernel", "iir", "--target", "st240", "--jobs", "2"],
        ["validate", "--kernels", "fir", "--sim-backend", "batch"],
        ["serve", "--port", "0", "--jobs", "4", "--backend", "workqueue"],
        ["sweep", "--only", "fir:vex-1", "--continuation"],
        ["sweep", "--only", "fir:vex-1", "--pareto", "--grid", "-15", "-25"],
        ["sweep", "--format", "float32", "--only", "fir:vex-1"],
        ["fig4", "--format", "bfloat16", "--kernels", "fir",
         "--targets", "vex-1", "--grid", "-25"],
    ]

    @pytest.mark.parametrize(
        "argv", INVOCATIONS, ids=lambda argv: " ".join(argv)
    )
    def test_namespace_round_trips_through_json(self, argv):
        from repro.cli import build_parser

        args = build_parser().parse_args(argv)
        request = SweepRequest.from_args(args)
        assert SweepRequest.from_json(request.to_json()) == request

    def test_shared_engine_flags_reach_the_request(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["sweep", "--jobs", "5", "--backend", "workqueue",
             "--cache-dir", "/tmp/c", "--no-cache",
             "--sim-backend", "scalar", "--format", "float32"]
        )
        request = SweepRequest.from_args(args)
        assert request.jobs == 5
        assert request.backend == "workqueue"
        assert request.cache_dir == "/tmp/c"
        assert request.no_cache is True
        assert request.sim_backend == "scalar"
        assert request.format == "float32"

    def test_run_request_from_args(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--kernel", "dot", "--target", "vex-1",
             "--constraint", "-20", "--flow", "wlo-first",
             "--wlo", "min+1", "--sim-backend", "scalar"]
        )
        request = RunRequest.from_args(args)
        assert request == RunRequest(
            kernel="dot", target="vex-1", constraint_db=-20.0,
            flow="wlo-first", wlo="min+1", sim_backend="scalar",
        )


class TestUnknownNameErrors:
    """Satellite: all five registries (plus targets and kernels) speak
    one error dialect — ``unknown <kind> '<name>'; available: ...`` —
    via :func:`repro.errors.unknown_name_error`."""

    CASES = [
        ("format", FormatError,
         lambda: __import__("repro.formats", fromlist=["x"])
         .get_format("posit16"),
         ["fixed", "float32", "bfloat16", "bigfloat", "binary(E,M)"]),
        ("flow", FlowError,
         lambda: __import__("repro.pipeline", fromlist=["get_flow"])
         .get_flow("warp"),
         ["float", "wlo-first", "wlo-slp"]),
        ("WLO engine", WLOError,
         lambda: __import__("repro.wlo.registry", fromlist=["x"])
         .get_wlo_engine("quantum"),
         ["tabu", "max-1", "min+1"]),
        ("evaluation backend", BackendError,
         lambda: __import__("repro.ir.backend", fromlist=["x"])
         .get_backend("warp"),
         ["scalar", "batch"]),
        ("execution backend", ExecutionBackendError,
         lambda: __import__("repro.experiments.backends", fromlist=["x"])
         .get_execution_backend("warp"),
         ["serial", "process", "chunked", "workqueue"]),
        ("target", TargetError,
         lambda: __import__("repro.targets.registry", fromlist=["x"])
         .get_target("z80"),
         ["xentium", "st240", "vex-1", "vex-4"]),
        ("kernel", IRError,
         lambda: __import__("repro.kernels", fromlist=["x"])
         .kernel_by_name("matmul"),
         ["fir", "iir", "conv", "dot"]),
    ]

    @pytest.mark.parametrize(
        "kind, error_cls, trigger, expected", CASES,
        ids=[kind for kind, *_ in CASES],
    )
    def test_error_lists_alternatives(self, kind, error_cls, trigger, expected):
        with pytest.raises(error_cls) as excinfo:
            trigger()
        message = str(excinfo.value)
        assert message.startswith(f"unknown {kind} ")
        assert "; available: " in message
        for name in expected:
            assert name in message

    def test_helper_format_is_stable(self):
        from repro.errors import ReproError, unknown_name_error

        error = unknown_name_error(ReproError, "thing", "x", ["b", "a"])
        assert str(error) == "unknown thing 'x'; available: a, b"


class TestRegistryListing:
    def test_covers_every_registry(self):
        listing = registry_listing()
        assert set(listing) == {
            "flows", "wlo_engines", "wlo_continuation_modes",
            "sim_backends", "execution_backends", "formats", "kernels",
            "targets",
        }
        assert listing["wlo_continuation_modes"] == ["warm", "pareto"]
        assert {f["name"] for f in listing["flows"]} >= {
            "float", "wlo-first", "wlo-slp"
        }
        assert "tabu" in listing["wlo_engines"]
        assert {b["name"] for b in listing["sim_backends"]} == {
            "scalar", "batch", "bigfloat"
        }
        formats = {f["name"]: f for f in listing["formats"]}
        assert set(formats) == {
            "fixed", "float64", "float32", "bfloat16", "bigfloat"
        }
        assert formats["float32"]["exp_bits"] == 8
        assert formats["float32"]["man_bits"] == 23
        assert formats["bigfloat"]["kind"] == "oracle"
        by_name = {b["name"]: b for b in listing["sim_backends"]}
        assert [t["name"] for t in by_name["batch"]["tiers"]] == [
            "int64", "object"
        ]
        assert by_name["scalar"]["tiers"] == []
        assert {b["name"] for b in listing["execution_backends"]} == {
            "serial", "process", "chunked", "workqueue"
        }
        assert {k["name"] for k in listing["kernels"]} >= {"fir", "iir", "conv"}
        assert "xentium" in listing["targets"]

    def test_is_json_serializable(self):
        json.dumps(registry_listing())

    def test_flow_entries_carry_passes_and_params(self):
        listing = registry_listing()
        wlo_slp = next(
            f for f in listing["flows"] if f["name"] == "wlo-slp"
        )
        assert wlo_slp["passes"]
        assert wlo_slp["needs_constraint"] is True
        assert "wlo" in wlo_slp["params"] or "sim_backend" in wlo_slp["params"]

    def test_matches_cli_json_output(self, capsys):
        from repro.cli import main

        assert main(["flows", "--json"]) == 0
        flows_payload = json.loads(capsys.readouterr().out)
        assert main(["kernels", "--json"]) == 0
        kernels_payload = json.loads(capsys.readouterr().out)
        assert flows_payload == kernels_payload == registry_listing()


class TestSweepReport:
    def test_report_round_trips_and_rehydrates(self):
        from repro.experiments import ExperimentRunner

        request = SweepRequest(
            kernels=("fir",), targets=("vex-1",), grid=(-15.0,),
            no_cache=True,
        )
        runner = ExperimentRunner.from_request(request, **SMALL)
        report = runner.submit(request)
        assert report.counts["computed"] == 1
        hydrated = SweepReport.from_json(report.to_json())
        assert hydrated == report
        (outcome,) = report.outcomes
        cell = report.cell(outcome)
        assert cell is not None and cell.wlo_slp_speedup > 0
        assert report.cell_request(outcome).kernel == "fir"
        report.ensure_complete()

    def test_failed_cells_surface_in_ensure_complete(self):
        from repro.experiments import ExperimentRunner

        request = SweepRequest(
            kernels=("fir",), targets=("vex-1",), grid=(-15.0, -400.0),
            no_cache=True,
        )
        runner = ExperimentRunner.from_request(request, **SMALL)
        report = runner.submit(request)
        assert report.counts["failed"] == 1
        assert len(report.failures) == 1
        assert "infeasible" in report.failures[0]["error"]
        with pytest.raises(FlowError, match="infeasible"):
            report.ensure_complete()
