"""Golden bit-identity contract of the batch evaluation backend.

The ``batch`` backend exists purely for throughput: on every program,
every stimulus set and every quantization policy it must produce
results *bit-identical* to the ``scalar`` reference interpreters.
These tests pin that contract property-style — every registered
kernel, several random seeds, float and fixed point, truncation and
rounding, saturation and wrap — plus the vectorization-plan decisions
and the cache-key separation of backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BackendError, InterpreterError
from repro.fixedpoint import (
    FORCE_OBJECT_ENV,
    BatchFixedPointInterpreter,
    FixedPointSpec,
    FxpConfig,
    OverflowMode,
    QuantMode,
    SlotMap,
    analyze_ranges,
    assign_iwls,
    simulation_ranges,
)
from repro.ir import (
    OpKind,
    ProgramBuilder,
    available_backends,
    get_backend,
    loop_index,
    vector_plan,
)
from repro.kernels import (
    conv2d,
    dot_product,
    fir,
    iir,
    kernel_names,
    sad,
    scale_offset,
)

#: Small instances of every registered kernel (the catalog the CLI
#: lists); sizes are reduced, shapes are the paper's.
KERNEL_BUILDERS = {
    "fir": lambda: fir(n_samples=40, n_taps=16),
    "iir": lambda: iir(n_samples=48, order=4),
    "conv": lambda: conv2d(height=11, width=12),
    "dot": lambda: dot_product(length=32),
    "sad": lambda: sad(length=32),
    "scale_offset": lambda: scale_offset(length=32),
}


def _stimuli(program, seed, count=3):
    rng = np.random.default_rng(seed)
    return [
        {
            decl.name: rng.uniform(*decl.value_range, size=decl.shape)
            for decl in program.input_arrays()
        }
        for _ in range(count)
    ]


def _spec_for(program, wl_cycle=(12, 16, 20, 24)):
    """Range-derived IWLs with deterministically mixed word lengths."""
    slotmap = SlotMap(program)
    spec = FixedPointSpec(slotmap, max_wl=32)
    assign_iwls(spec, analyze_ranges(program, slotmap))
    for position, root in enumerate(slotmap.roots):
        spec.set_wl(root, wl_cycle[position % len(wl_cycle)])
    return spec


def _assert_outputs_identical(reference, measured):
    assert len(reference) == len(measured)
    for ref, got in zip(reference, measured):
        assert sorted(ref) == sorted(got)
        for name in ref:
            assert ref[name].shape == got[name].shape
            assert np.array_equal(ref[name], got[name]), name


class TestCatalogCoverage:
    def test_builders_cover_every_registered_kernel(self):
        assert sorted(KERNEL_BUILDERS) == kernel_names()


@pytest.mark.parametrize("kernel", sorted(KERNEL_BUILDERS))
@pytest.mark.parametrize("seed", [0, 1, 2017])
class TestBitIdentity:
    def test_float(self, kernel, seed):
        program = KERNEL_BUILDERS[kernel]()
        stimuli = _stimuli(program, seed)
        reference = get_backend("scalar").run_float(program, stimuli)
        measured = get_backend("batch").run_float(program, stimuli)
        _assert_outputs_identical(reference, measured)

    def test_fixed_point(self, kernel, seed):
        program = KERNEL_BUILDERS[kernel]()
        stimuli = _stimuli(program, seed)
        spec = _spec_for(program)
        reference = get_backend("scalar").run_fixed(program, spec, stimuli)
        measured = get_backend("batch").run_fixed(program, spec, stimuli)
        _assert_outputs_identical(reference, measured)


@pytest.mark.parametrize("quant", [QuantMode.TRUNCATE, QuantMode.ROUND])
@pytest.mark.parametrize("overflow", [OverflowMode.SATURATE, OverflowMode.WRAP])
class TestQuantizationPolicies:
    def test_fir_policies_bit_identical(self, quant, overflow):
        program = KERNEL_BUILDERS["fir"]()
        stimuli = _stimuli(program, 7)
        # Narrow word lengths so quantization and overflow both bite.
        spec = _spec_for(program, wl_cycle=(8, 10, 12))
        config = FxpConfig(quant_mode=quant, overflow=overflow)
        reference = get_backend("scalar").run_fixed(
            program, spec, stimuli, config
        )
        measured = get_backend("batch").run_fixed(
            program, spec, stimuli, config
        )
        _assert_outputs_identical(reference, measured)


class TestEdgeNarrowing:
    def test_mul_consumption_narrowing_bit_identical(self):
        program = KERNEL_BUILDERS["fir"]()
        spec = _spec_for(program, wl_cycle=(32,))
        for op in program.all_ops():
            if op.kind is OpKind.MUL:
                spec.set_edge_wl(op.opid, 0, 8)
                spec.set_edge_wl(op.opid, 1, 8)
        stimuli = _stimuli(program, 11)
        reference = get_backend("scalar").run_fixed(program, spec, stimuli)
        measured = get_backend("batch").run_fixed(program, spec, stimuli)
        _assert_outputs_identical(reference, measured)


class TestVectorPlan:
    def test_fir_outer_loop_becomes_lanes(self):
        plan = vector_plan(KERNEL_BUILDERS["fir"]())
        assert plan.loops == (("n", 40),)

    def test_conv_row_loop_becomes_lanes(self):
        plan = vector_plan(KERNEL_BUILDERS["conv"]())
        assert plan.loops == (("r", 9),)

    def test_iir_feedback_stays_scalar(self):
        # y is both loaded and stored inside the sample loop, and the
        # accumulators are read before written in the tap loops.
        plan = vector_plan(KERNEL_BUILDERS["iir"]())
        assert plan.loops == ()

    def test_accumulator_across_loop_stays_scalar(self):
        # dot's accumulators are initialized *outside* the loop, so the
        # loop carries them and must stay a Python loop.
        plan = vector_plan(KERNEL_BUILDERS["dot"]())
        assert plan.loops == ()

    def test_interleaved_stores_are_lane_disjoint(self):
        # scale_offset stores even and odd cells from two store ops;
        # the exact collision check proves lanes never clash.
        plan = vector_plan(KERNEL_BUILDERS["scale_offset"]())
        assert plan.loops == (("i", 16),)

    def test_outer_coefficient_mismatch_rejects_vectorization(self):
        # Two stores to one array with *different* coefficients on an
        # enclosing loop: at o=1 the second store's cells 4..7 collide
        # cross-lane with the first store's 7..4, so the inner loop
        # must stay scalar (the outer loop is rejected by the
        # lane-constant first store).
        builder = ProgramBuilder("outer_coeff")
        x = builder.input_array("x", (4,), value_range=(-1.0, 1.0))
        a = builder.output_array("a", (8,))
        i = loop_index("i")
        o = loop_index("o")
        with builder.loop("o", 2):
            with builder.loop("i", 4):
                with builder.block("body"):
                    value = builder.load(x, i)
                    builder.store(a, i.scaled(-1) + 7, builder.neg(value))
                    builder.store(a, o.scaled(4) + i, value)
        program = builder.build()
        assert vector_plan(program).loops == ()
        stimuli = _stimuli(program, 5)
        _assert_outputs_identical(
            get_backend("scalar").run_float(program, stimuli),
            get_backend("batch").run_float(program, stimuli),
        )

    def test_agreeing_outer_coefficients_still_vectorize(self):
        # When every store carries the *same* outer coefficient, the
        # outer contribution is a common lane offset and the inner
        # loop vectorizes (cells 8o+i and 8o+4+i never cross lanes).
        # A loop-carried counter makes the outer loop itself ineligible
        # so the inner candidate is the one analyzed.
        builder = ProgramBuilder("outer_agree")
        x = builder.input_array("x", (4,), value_range=(-1.0, 1.0))
        a = builder.output_array("a", (16,))
        count = builder.output_array("count", (1,))
        acc = builder.scalar("acc")
        i = loop_index("i")
        o = loop_index("o")
        with builder.loop("o", 2):
            with builder.block("carry"):  # read-before-write: o stays scalar
                builder.setvar(
                    acc, builder.add(builder.getvar(acc), builder.const(1.0))
                )
            with builder.loop("i", 4):
                with builder.block("body"):
                    value = builder.load(x, i)
                    builder.store(a, o.scaled(8) + i, value)
                    builder.store(a, o.scaled(8) + i + 4, builder.neg(value))
        with builder.block("fin"):
            builder.store(count, 0, builder.getvar(acc))
        program = builder.build()
        assert vector_plan(program).loops == (("i", 4),)
        stimuli = _stimuli(program, 5)
        _assert_outputs_identical(
            get_backend("scalar").run_float(program, stimuli),
            get_backend("batch").run_float(program, stimuli),
        )

    def test_colliding_stores_reject_vectorization(self):
        builder = ProgramBuilder("collide")
        x = builder.input_array("x", (8,), value_range=(-1.0, 1.0))
        y = builder.output_array("y", (1,))
        with builder.loop("i", 8):
            with builder.block("body"):
                builder.store(y, 0, builder.load(x, loop_index("i")))
        program = builder.build()
        assert vector_plan(program).loops == ()
        # ... and execution still matches the scalar reference (the
        # last iteration's value wins in both).
        stimuli = _stimuli(program, 3)
        _assert_outputs_identical(
            get_backend("scalar").run_float(program, stimuli),
            get_backend("batch").run_float(program, stimuli),
        )


class TestMinMaxSemantics:
    def _minmax_program(self):
        builder = ProgramBuilder("minmax")
        a = builder.input_array("a", (6,), value_range=(-2.0, 2.0))
        b = builder.input_array("b", (6,), value_range=(-2.0, 2.0))
        lo = builder.output_array("lo", (6,))
        hi = builder.output_array("hi", (6,))
        i = loop_index("i")
        with builder.loop("i", 6):
            with builder.block("body"):
                av = builder.load(a, i)
                bv = builder.load(b, i)
                builder.store(lo, i, builder.min_(av, bv))
                builder.store(hi, i, builder.max_(av, bv))
        return builder.build()

    @pytest.mark.parametrize("backend", ["scalar", "batch"])
    def test_python_minmax_semantics(self, backend):
        """Both backends resolve ties, signed zeros and NaNs like
        Python's min/max (first operand unless the second improves)."""
        program = self._minmax_program()
        nan = float("nan")
        stimulus = {
            "a": np.array([0.0, -0.0, nan, 1.0, nan, -1.0]),
            "b": np.array([-0.0, 0.0, 1.0, nan, nan, 1.0]),
        }
        outputs = get_backend(backend).run_float(program, [stimulus])[0]
        expected_lo = [min(a, b) for a, b in zip(stimulus["a"], stimulus["b"])]
        expected_hi = [max(a, b) for a, b in zip(stimulus["a"], stimulus["b"])]
        for got, expected in ((outputs["lo"], expected_lo),
                              (outputs["hi"], expected_hi)):
            assert [repr(float(v)) for v in got] \
                == [repr(float(v)) for v in expected]


class TestRangeAnalysisParity:
    def test_simulation_ranges_identical_across_backends(self):
        program = KERNEL_BUILDERS["iir"]()
        scalar = simulation_ranges(program, backend="scalar")
        batch = simulation_ranges(program, backend="batch")
        assert scalar.ranges.keys() == batch.ranges.keys()
        for root, interval in scalar.ranges.items():
            assert interval.lo == batch.ranges[root].lo
            assert interval.hi == batch.ranges[root].hi


class TestEvaluatorParity:
    def test_noise_power_identical_across_backends(self, fir_context):
        from repro.accuracy import SimulationAccuracyEvaluator

        spec = fir_context.fresh_spec()
        for root in fir_context.slotmap.roots:
            spec.set_wl(root, 14)
        scalar = SimulationAccuracyEvaluator(
            fir_context.program, n_stimuli=2, backend="scalar"
        )
        batch = SimulationAccuracyEvaluator(
            fir_context.program, n_stimuli=2, backend="batch"
        )
        assert scalar.noise_power(spec) == batch.noise_power(spec)


class TestPipelineCacheKeys:
    def test_pass_key_distinguishes_backends(self, small_fir):
        from repro.pipeline import FlowState, RangeAnalysisPass, pass_key
        from repro.targets import get_target

        state = FlowState.seed(small_fir, get_target("xentium"), -25.0)
        keys = {
            pass_key(RangeAnalysisPass(sim_backend=name), state)
            for name in available_backends()
        }
        assert len(keys) == len(available_backends())

    def test_flow_structure_distinguishes_backends(self):
        from repro.pipeline import get_flow

        for flow in ("wlo-slp", "wlo-first"):
            assert (
                get_flow(flow).pass_names(sim_backend="scalar")
                != get_flow(flow).pass_names(sim_backend="batch")
            )


class TestRegistry:
    def test_unknown_backend_lists_alternatives(self):
        with pytest.raises(BackendError, match="scalar"):
            get_backend("tpu")

    def test_duplicate_registration_rejected(self):
        from repro.ir import ScalarBackend, register_backend

        with pytest.raises(BackendError, match="already registered"):
            register_backend(ScalarBackend())

    def test_listing_is_sorted(self):
        assert available_backends() == sorted(available_backends())
        assert {"scalar", "batch"} <= set(available_backends())


def _mul_boundary_program(length=4):
    """y[i] = x[i] * w[i] with inputs spanning exactly [-1, 1]."""
    builder = ProgramBuilder("mul_boundary")
    x = builder.input_array("x", (length,), value_range=(-1.0, 1.0))
    w = builder.input_array("w", (length,), value_range=(-1.0, 1.0))
    y = builder.output_array("y", (length,))
    i = loop_index("i")
    with builder.loop("i", length):
        with builder.block("body"):
            builder.store(y, i, builder.mul(builder.load(x, i),
                                            builder.load(w, i)))
    return builder.build()


#: Per-kernel instances used by the native-tier matrix.  Same catalog
#: as KERNEL_BUILDERS except IIR, whose reduced 48-sample instance has
#: static feedback bounds past int64 (a genuine, wanted fallback — see
#: test_reduced_iir_falls_back_and_stays_identical); 96 samples is the
#: smallest size whose range analysis converges tight enough to prove.
NATIVE_KERNEL_BUILDERS = dict(
    KERNEL_BUILDERS, iir=lambda: iir(n_samples=96)
)


@pytest.fixture
def native_env(monkeypatch):
    """Clear the object-tier pin so proof-driven selection is tested
    even when the suite itself runs under REPRO_FXP_FORCE_OBJECT=1
    (the CI leg that pins the whole golden suite to object lanes)."""
    monkeypatch.delenv(FORCE_OBJECT_ENV, raising=False)


class TestNativeTier:
    """The int64 fast path: proof-gated, transparent, bit-identical."""

    def test_every_kernel_proves_native_at_spec_defaults(self, native_env):
        for kernel in sorted(NATIVE_KERNEL_BUILDERS):
            program = NATIVE_KERNEL_BUILDERS[kernel]()
            interp = BatchFixedPointInterpreter(program, _spec_for(program))
            assert interp.tier == "int64", (kernel, interp.proof.reasons)

    def test_reduced_iir_falls_back_and_stays_identical(self):
        # The reduced IIR instance (order 4, 48 samples) assigns IWLs
        # near 100 to its feedback slots, so requantize shifts provably
        # exceed what int64 lanes can issue: the proof must refuse, and
        # the object tier must still match the scalar reference.
        program = KERNEL_BUILDERS["iir"]()
        spec = _spec_for(program)
        interp = BatchFixedPointInterpreter(program, spec)
        assert interp.tier == "object"
        assert any("shift" in reason for reason in interp.proof.reasons)
        stimuli = _stimuli(program, 11)
        _assert_outputs_identical(
            get_backend("scalar").run_fixed(program, spec, stimuli),
            interp.run(stimuli),
        )

    @pytest.mark.parametrize("kernel", sorted(NATIVE_KERNEL_BUILDERS))
    @pytest.mark.parametrize("seed", [0, 2017])
    @pytest.mark.parametrize("quant", [QuantMode.TRUNCATE, QuantMode.ROUND])
    @pytest.mark.parametrize(
        "overflow", [OverflowMode.SATURATE, OverflowMode.WRAP]
    )
    def test_native_vs_object_bit_identity(self, kernel, seed, quant,
                                           overflow, native_env):
        program = NATIVE_KERNEL_BUILDERS[kernel]()
        stimuli = _stimuli(program, seed)
        # Narrow mixed widths so quantization and overflow both bite.
        spec = _spec_for(program, wl_cycle=(8, 10, 12, 16))
        config = FxpConfig(quant_mode=quant, overflow=overflow)
        native = BatchFixedPointInterpreter(program, spec, config)
        forced = BatchFixedPointInterpreter(program, spec, config,
                                            force_object=True)
        assert native.tier == "int64"
        assert forced.tier == "object"
        _assert_outputs_identical(forced.run(stimuli), native.run(stimuli))

    def test_overflowing_kernel_falls_back_and_matches_scalar(self):
        # 40-bit multiply operands: the product transient provably
        # exceeds int64, so the proof must refuse and the object tier
        # must still match the scalar reference bit-for-bit.
        program = _mul_boundary_program()
        slotmap = SlotMap(program)
        spec = FixedPointSpec(slotmap, max_wl=40)
        assign_iwls(spec, analyze_ranges(program, slotmap))
        interp = BatchFixedPointInterpreter(program, spec)
        assert interp.tier == "object"
        assert not interp.proof.safe
        stimuli = _stimuli(program, 13)
        _assert_outputs_identical(
            get_backend("scalar").run_fixed(program, spec, stimuli),
            interp.run(stimuli),
        )

    @pytest.mark.parametrize(
        "overflow", [OverflowMode.WRAP, OverflowMode.SATURATE]
    )
    def test_products_straddling_two_pow_62_stay_native(self, overflow,
                                                        native_env):
        # 32-bit operands at fwl=31: x = w = -1.0 quantizes to -2^31,
        # so the multiply transient materializes *exactly* +-2^62 at
        # runtime — inside int64 but past what any stored word holds.
        program = _mul_boundary_program()
        slotmap = SlotMap(program)
        spec = FixedPointSpec(slotmap, max_wl=32)
        for root in slotmap.roots:
            spec.set_iwl(root, 1)
        config = FxpConfig(overflow=overflow)
        interp = BatchFixedPointInterpreter(program, spec, config)
        assert interp.tier == "int64"
        assert interp.proof.peak_bound == 1 << 62
        stimuli = [{
            "x": np.array([-1.0, 1.0, -1.0, 1.0]),
            "w": np.array([-1.0, -1.0, 1.0, 1.0]),
        }]
        measured = interp.run(stimuli)
        _assert_outputs_identical(
            get_backend("scalar").run_fixed(program, spec, stimuli, config),
            measured,
        )
        _assert_outputs_identical(
            BatchFixedPointInterpreter(
                program, spec, config, force_object=True
            ).run(stimuli),
            measured,
        )

    @pytest.mark.parametrize(
        "overflow", [OverflowMode.WRAP, OverflowMode.SATURATE]
    )
    def test_products_past_two_pow_62_fall_back(self, overflow):
        # One operand widened to 33 bits pushes the product transient
        # to +-2^63 — past int64 — so the proof must fall back, and
        # the object tier must still match the scalar reference.
        program = _mul_boundary_program()
        slotmap = SlotMap(program)
        spec = FixedPointSpec(slotmap, max_wl=32)
        for root in slotmap.roots:
            spec.set_iwl(root, 1)
        spec.set_wl(slotmap.slot_of_symbol("x"), 33)
        spec.set_iwl(slotmap.slot_of_symbol("x"), 1)
        config = FxpConfig(overflow=overflow)
        interp = BatchFixedPointInterpreter(program, spec, config)
        assert interp.tier == "object"
        stimuli = [{
            "x": np.array([-1.0, 1.0, -1.0, 1.0]),
            "w": np.array([-1.0, -1.0, 1.0, 1.0]),
        }]
        _assert_outputs_identical(
            get_backend("scalar").run_fixed(program, spec, stimuli, config),
            interp.run(stimuli),
        )

    def test_env_knob_pins_object_tier(self, monkeypatch):
        program = KERNEL_BUILDERS["fir"]()
        spec = _spec_for(program)
        stimuli = _stimuli(program, 3, count=2)
        native = BatchFixedPointInterpreter(program, spec).run(stimuli)
        monkeypatch.setenv(FORCE_OBJECT_ENV, "1")
        pinned = BatchFixedPointInterpreter(program, spec)
        assert pinned.tier == "object"
        assert pinned.proof.safe  # the proof holds; the knob overrides
        _assert_outputs_identical(native, pinned.run(stimuli))
        monkeypatch.setenv(FORCE_OBJECT_ENV, "0")
        assert BatchFixedPointInterpreter(program, spec).tier == "int64"

    def test_run_fixed_force_object_kwarg(self, small_fir):
        spec = _spec_for(small_fir)
        stimuli = _stimuli(small_fir, 5, count=2)
        _assert_outputs_identical(
            get_backend("batch").run_fixed(small_fir, spec, stimuli),
            get_backend("batch").run_fixed(small_fir, spec, stimuli,
                                           force_object=True),
        )

    def test_fixed_tier_surfacing(self, native_env):
        program = KERNEL_BUILDERS["dot"]()
        spec = _spec_for(program)
        assert get_backend("batch").fixed_tier(program, spec) \
            == "batch[int64]"
        assert get_backend("scalar").fixed_tier(program, spec) == "scalar"
        wide = _mul_boundary_program()
        wide_map = SlotMap(wide)
        wide_spec = FixedPointSpec(wide_map, max_wl=40)
        assign_iwls(wide_spec, analyze_ranges(wide, wide_map))
        assert get_backend("batch").fixed_tier(wide, wide_spec) \
            == "batch[object]"

    def test_backend_tiers_are_documented(self):
        tiers = {t["name"] for t in get_backend("batch").tiers}
        assert tiers == {"int64", "object"}
        assert get_backend("scalar").tiers == ()

    def test_evaluator_force_object_parity(self, fir_context, native_env):
        from repro.accuracy import SimulationAccuracyEvaluator

        spec = fir_context.fresh_spec()
        fast = SimulationAccuracyEvaluator(
            fir_context.program, n_stimuli=2, backend="batch"
        )
        exact = SimulationAccuracyEvaluator(
            fir_context.program, n_stimuli=2, backend="batch",
            force_object=True,
        )
        assert fast.tier(spec) == "batch[int64]"
        assert exact.tier(spec) == "batch[object]"
        assert fast.noise_power(spec) == exact.noise_power(spec)


class TestBatchErrors:
    def test_empty_stimuli_rejected(self, small_fir):
        with pytest.raises(InterpreterError, match="at least one"):
            get_backend("batch").run_float(small_fir, [])

    def test_missing_input_rejected(self, small_fir):
        with pytest.raises(InterpreterError, match="missing input"):
            get_backend("batch").run_float(small_fir, [{}])

    def test_shape_mismatch_rejected(self, small_fir):
        bad = {"x": np.zeros(3)}
        with pytest.raises(InterpreterError, match="shape"):
            get_backend("batch").run_float(small_fir, [bad])
