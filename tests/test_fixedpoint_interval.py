"""Interval arithmetic soundness (the containment property)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FixedPointError
from repro.fixedpoint import Interval

values = st.floats(-100, 100)


@st.composite
def intervals(draw):
    a = draw(values)
    b = draw(values)
    return Interval(min(a, b), max(a, b))


@st.composite
def interval_with_point(draw):
    interval = draw(intervals())
    t = draw(st.floats(0, 1))
    point = interval.lo + t * (interval.hi - interval.lo)
    # Float rounding can push the sample past either edge; clamp it in.
    point = min(max(point, interval.lo), interval.hi)
    return interval, point


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(FixedPointError):
            Interval(1.0, 0.0)

    def test_point(self):
        p = Interval.point(3.0)
        assert p.lo == p.hi == 3.0 and p.width == 0.0

    def test_symmetric(self):
        s = Interval.symmetric(-2.0)
        assert s == Interval(-2.0, 2.0)


class TestContainment:
    """Soundness: op(interval) contains op(point) for points inside."""

    @given(interval_with_point(), interval_with_point())
    def test_add(self, ap, bp):
        (ia, a), (ib, b) = ap, bp
        assert (ia + ib).contains(a + b)

    @given(interval_with_point(), interval_with_point())
    def test_sub(self, ap, bp):
        (ia, a), (ib, b) = ap, bp
        assert (ia - ib).contains(a - b)

    @given(interval_with_point(), interval_with_point())
    def test_mul(self, ap, bp):
        (ia, a), (ib, b) = ap, bp
        result = ia * ib
        # Tolerate float rounding at the interval edges.
        slack = 1e-9 * max(1.0, abs(result.lo), abs(result.hi))
        assert result.lo - slack <= a * b <= result.hi + slack

    @given(interval_with_point())
    def test_neg_abs(self, ap):
        interval, point = ap
        assert (-interval).contains(-point)
        assert interval.abs().contains(abs(point))

    @given(interval_with_point(), interval_with_point())
    def test_min_max(self, ap, bp):
        (ia, a), (ib, b) = ap, bp
        assert ia.min_with(ib).contains(min(a, b))
        assert ia.max_with(ib).contains(max(a, b))

    @given(interval_with_point(), intervals())
    def test_join_keeps_both(self, ap, other):
        interval, point = ap
        joined = interval.join(other)
        assert joined.contains(point)
        assert joined.encloses(other)


class TestDerivedProperties:
    def test_abs_positive_interval(self):
        assert Interval(1.0, 2.0).abs() == Interval(1.0, 2.0)

    def test_abs_negative_interval(self):
        assert Interval(-3.0, -1.0).abs() == Interval(1.0, 3.0)

    def test_abs_straddling(self):
        assert Interval(-3.0, 1.0).abs() == Interval(0.0, 3.0)

    def test_magnitude(self):
        assert Interval(-3.0, 1.0).magnitude == 3.0
        assert Interval(0.5, 2.0).magnitude == 2.0

    def test_widen_relative(self):
        widened = Interval(-1.0, 1.0).widen_relative(0.5)
        assert widened == Interval(-1.5, 1.5)

    def test_widen_zero_point_is_noop(self):
        assert Interval.point(0.0).widen_relative(0.5) == Interval.point(0.0)

    def test_mul_sign_grid(self):
        assert Interval(-1, 2) * Interval(-3, 1) == Interval(-6, 3)
