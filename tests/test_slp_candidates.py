"""SLP candidate extraction tests."""

from repro.ir import OpKind, build_dependence_graph
from repro.slp import (
    Candidate,
    extract_candidates,
    initial_items,
    memory_lane_stride,
)
from repro.targets import get_target, vex


def _body_candidates(program, target_name="xentium"):
    block = program.blocks["body"]
    deps = build_dependence_graph(block)
    items = initial_items(block)
    return extract_candidates(
        program, items, deps, get_target(target_name)
    ), block


class TestInitialItems:
    def test_only_simdizable_ops(self, small_fir):
        items = initial_items(small_fir.blocks["body"])
        kinds = {small_fir.op(item[0]).kind for item in items}
        assert OpKind.READVAR not in kinds
        assert OpKind.WRITEVAR not in kinds
        assert OpKind.CONST not in kinds
        assert OpKind.MUL in kinds and OpKind.LOAD in kinds


class TestStructuralRules:
    def test_kinds_are_isomorphic(self, small_fir):
        candidates, _ = _body_candidates(small_fir)
        for candidate in candidates:
            kinds = {small_fir.op(o).kind for o in candidate.lanes}
            assert kinds == {candidate.kind}

    def test_memory_lanes_share_array(self, small_fir):
        candidates, _ = _body_candidates(small_fir)
        for candidate in candidates:
            if candidate.kind is OpKind.LOAD:
                arrays = {small_fir.op(o).array for o in candidate.lanes}
                assert len(arrays) == 1

    def test_lanes_are_independent(self, small_fir):
        candidates, block = _body_candidates(small_fir)
        deps = build_dependence_graph(block)
        for candidate in candidates:
            for a in candidate.left:
                for b in candidate.right:
                    assert deps.independent(a, b)

    def test_accumulator_adds_do_not_pair_across_chain(self, tiny_program):
        """A single accumulator chain has no independent add pairs."""
        block = tiny_program.blocks["body"]
        deps = build_dependence_graph(block)
        items = initial_items(block)
        candidates = extract_candidates(
            tiny_program, items, deps, get_target("xentium")
        )
        assert all(c.kind is not OpKind.ADD for c in candidates)

    def test_lane_wl_from_eq1(self, small_fir):
        candidates, _ = _body_candidates(small_fir)
        target = get_target("xentium")
        for candidate in candidates:
            assert candidate.wl == target.group_wl(candidate.size) == 16

    def test_no_candidates_without_simd(self, small_fir):
        from repro.targets import TargetModel

        scalar_only = TargetModel(name="plain", issue_width=2, simd_widths=())
        block = small_fir.blocks["body"]
        deps = build_dependence_graph(block)
        candidates = extract_candidates(
            small_fir, initial_items(block), deps, scalar_only
        )
        assert candidates == []


class TestWidening:
    def test_pairs_of_pairs(self, small_fir):
        """After merging two mul pairs, a 4-lane candidate exists on
        VEX (which supports 4x8) but not on XENTIUM (2x16 only)."""
        block = small_fir.blocks["body"]
        deps = build_dependence_graph(block)
        muls = [o.opid for o in block.ops if o.kind is OpKind.MUL]
        items = [(muls[0], muls[1]), (muls[2], muls[3])]
        on_vex = extract_candidates(small_fir, items, deps, vex(4))
        assert len(on_vex) == 1 and on_vex[0].size == 4 and on_vex[0].wl == 8
        on_xentium = extract_candidates(
            small_fir, items, deps, get_target("xentium")
        )
        assert on_xentium == []

    def test_unequal_sizes_do_not_combine(self, small_fir):
        block = small_fir.blocks["body"]
        deps = build_dependence_graph(block)
        muls = [o.opid for o in block.ops if o.kind is OpKind.MUL]
        items = [(muls[0], muls[1]), (muls[2],), (muls[3],)]
        candidates = extract_candidates(small_fir, items, deps, vex(4))
        sizes = {c.size for c in candidates}
        assert sizes == {2}  # only the two singletons pair


class TestCandidateHelpers:
    def test_shares_op_with(self):
        a = Candidate((1,), (2,), OpKind.MUL, 16)
        b = Candidate((2,), (3,), OpKind.MUL, 16)
        c = Candidate((4,), (5,), OpKind.MUL, 16)
        assert a.shares_op_with(b)
        assert not a.shares_op_with(c)

    def test_lane_order_canonical(self, small_fir):
        candidates, _ = _body_candidates(small_fir)
        for candidate in candidates:
            assert candidate.left[0] < candidate.right[0]


class TestMemoryLaneStride:
    def test_contiguous_loads(self, small_fir):
        block = small_fir.blocks["body"]
        x_loads = tuple(
            o.opid for o in block.ops
            if o.kind is OpKind.LOAD and o.array == "x"
        )
        assert memory_lane_stride(small_fir, x_loads) == 1
        assert memory_lane_stride(small_fir, tuple(reversed(x_loads))) == -1

    def test_strided_2d_loads(self, small_conv):
        block = small_conv.blocks["body"]
        img_loads = [o for o in block.ops
                     if o.kind is OpKind.LOAD and o.array == "img"]
        row0 = tuple(o.opid for o in img_loads[:3])  # same row, dc 0,1,2
        assert memory_lane_stride(small_conv, row0) == 1
        col = (img_loads[0].opid, img_loads[3].opid)  # rows 0 and 1
        width = small_conv.arrays["img"].shape[1]
        assert memory_lane_stride(small_conv, col) == width

    def test_non_memory_lanes(self, small_fir):
        muls = tuple(
            o.opid for o in small_fir.blocks["body"].ops
            if o.kind is OpKind.MUL
        )
        assert memory_lane_stride(small_fir, muls[:2]) is None
