"""Conflict detection tests (common op, cyclic dependency)."""

from repro.ir import OpKind, ProgramBuilder, build_dependence_graph
from repro.slp import (
    Candidate,
    conflict_matrix,
    have_common_op,
    have_cyclic_dependency,
    structural_conflict,
)


def _cross_program():
    """Two add chains crossing each other: a1 -> b2 and b1 -> a2.

    Grouping {a1, a2} and {b1, b2} creates a group-level cycle: the
    canonical SLP conflict example.
    """
    b = ProgramBuilder("cross")
    x = b.input_array("x", (4,), value_range=(-1.0, 1.0))
    y = b.output_array("y", (2,))
    with b.block("blk"):
        a1 = b.add(b.load(x, 0), b.load(x, 1))       # opid 2
        b1 = b.add(b.load(x, 2), b.load(x, 3))       # opid 5
        b2 = b.add(a1, b.load(x, 0))                 # opid 7: uses a1
        a2 = b.add(b1, b.load(x, 1))                 # opid 9: uses b1
        b.store(y, 0, a2)
        b.store(y, 1, b2)
    return b.build(), (a1.opid, b1.opid, b2.opid, a2.opid)


class TestCommonOp:
    def test_shared_lane(self):
        a = Candidate((1, 2), (3, 4), OpKind.ADD, 16)
        b = Candidate((4, 5), (6, 7), OpKind.ADD, 16)
        assert have_common_op(a, b)

    def test_disjoint(self):
        a = Candidate((1,), (2,), OpKind.ADD, 16)
        b = Candidate((3,), (4,), OpKind.ADD, 16)
        assert not have_common_op(a, b)


class TestCyclicDependency:
    def test_crossing_chains_conflict(self):
        program, (a1, b1, b2, a2) = _cross_program()
        deps = build_dependence_graph(program.blocks["blk"])
        group_a = Candidate((a1,), (a2,), OpKind.ADD, 16)
        group_b = Candidate((b1,), (b2,), OpKind.ADD, 16)
        assert have_cyclic_dependency(group_a, group_b, deps)
        assert structural_conflict(group_a, group_b, deps)

    def test_one_way_dependence_is_fine(self):
        """Producer group feeding consumer group: no cycle."""
        program, (a1, b1, b2, a2) = _cross_program()
        deps = build_dependence_graph(program.blocks["blk"])
        producers = Candidate((a1,), (b1,), OpKind.ADD, 16)
        consumers = Candidate((b2,), (a2,), OpKind.ADD, 16)
        assert not have_cyclic_dependency(producers, consumers, deps)
        assert not structural_conflict(producers, consumers, deps)


class TestConflictMatrix:
    def test_matrix_matches_pairwise(self, small_fir):
        from repro.slp import extract_candidates, initial_items
        from repro.targets import get_target

        block = small_fir.blocks["body"]
        deps = build_dependence_graph(block)
        candidates = extract_candidates(
            small_fir, initial_items(block), deps, get_target("xentium")
        )
        matrix = conflict_matrix(candidates, deps)
        for i in range(len(candidates)):
            for j in range(i + 1, len(candidates)):
                expected = structural_conflict(
                    candidates[i], candidates[j], deps
                )
                assert (frozenset((i, j)) in matrix) == expected

    def test_matrix_is_symmetric_by_construction(self, small_fir):
        from repro.slp import extract_candidates, initial_items
        from repro.targets import get_target

        block = small_fir.blocks["body"]
        deps = build_dependence_graph(block)
        candidates = extract_candidates(
            small_fir, initial_items(block), deps, get_target("xentium")
        )
        for pair in conflict_matrix(candidates, deps):
            assert len(pair) == 2
