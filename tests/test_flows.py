"""End-to-end flow tests — the whole pipeline, measured honestly.

The load-bearing invariant: every flow's final spec satisfies its
accuracy constraint when *measured* by bit-accurate simulation against
the float reference, not merely according to the analytical model that
guided the optimization.
"""

import pytest

from repro.accuracy import SimulationAccuracyEvaluator
from repro.errors import FlowError, WLOError
from repro.flows import (
    AnalysisContext,
    run_float,
    run_wlo_first,
    run_wlo_slp,
    speedup,
)
from repro.targets import get_target


CONSTRAINTS = (-15.0, -40.0)


class TestWloSlpFlow:
    @pytest.mark.parametrize("constraint", CONSTRAINTS)
    def test_measured_accuracy_met(self, fir_context, constraint):
        result = run_wlo_slp(
            fir_context.program, get_target("xentium"), constraint,
            fir_context,
        )
        simulator = SimulationAccuracyEvaluator(
            fir_context.program, n_stimuli=3
        )
        measured = simulator.noise_db(result.spec)
        assert measured <= constraint + 1.0  # model tolerance margin

    @pytest.mark.parametrize("constraint", CONSTRAINTS)
    def test_iir_measured_accuracy_met(self, iir_context, constraint):
        result = run_wlo_slp(
            iir_context.program, get_target("st240"), constraint,
            iir_context,
        )
        simulator = SimulationAccuracyEvaluator(
            iir_context.program, n_stimuli=3, discard=64
        )
        assert simulator.noise_db(result.spec) <= constraint + 3.0

    def test_result_structure(self, fir_context):
        result = run_wlo_slp(
            fir_context.program, get_target("xentium"), -20.0, fir_context
        )
        assert result.flow == "wlo-slp"
        assert result.total_cycles > 0
        assert result.n_groups > 0
        assert result.noise_db is not None
        assert "selection_stats" in result.extra
        assert "cycles" in result.summary()

    def test_infeasible_constraint_raises(self, fir_context):
        with pytest.raises(WLOError, match="infeasible"):
            run_wlo_slp(
                fir_context.program, get_target("xentium"), -400.0,
                fir_context,
            )

    def test_strict_constraint_fewer_groups(self, fir_context):
        loose = run_wlo_slp(
            fir_context.program, get_target("xentium"), -10.0, fir_context
        )
        strict = run_wlo_slp(
            fir_context.program, get_target("xentium"), -80.0, fir_context
        )
        assert strict.n_groups <= loose.n_groups
        assert strict.total_cycles >= loose.total_cycles


class TestWloFirstFlow:
    @pytest.mark.parametrize("constraint", CONSTRAINTS)
    def test_measured_accuracy_met(self, fir_context, constraint):
        result = run_wlo_first(
            fir_context.program, get_target("xentium"), constraint,
            fir_context,
        )
        simulator = SimulationAccuracyEvaluator(
            fir_context.program, n_stimuli=3
        )
        assert simulator.noise_db(result.spec) <= constraint + 1.0

    def test_scalar_and_simd_share_spec(self, fir_context):
        result = run_wlo_first(
            fir_context.program, get_target("xentium"), -25.0, fir_context
        )
        assert result.scalar.spec is result.simd.spec

    def test_greedy_engines(self, fir_context):
        for engine in ("max-1", "min+1"):
            result = run_wlo_first(
                fir_context.program, get_target("xentium"), -25.0,
                fir_context, wlo=engine,
            )
            assert not fir_context.model.violates(result.spec, -25.0)

    def test_unknown_engine(self, fir_context):
        with pytest.raises(WLOError, match="unknown WLO engine"):
            run_wlo_first(
                fir_context.program, get_target("xentium"), -25.0,
                fir_context, wlo="quantum",
            )


class TestFloatFlow:
    def test_soft_float_much_slower(self, fir_context):
        program = fir_context.program
        float_result = run_float(program, get_target("xentium"))
        fixed = run_wlo_slp(program, get_target("xentium"), -25.0, fir_context)
        assert speedup(float_result, fixed) > 5.0

    def test_hw_float_close(self, fir_context):
        program = fir_context.program
        float_result = run_float(program, get_target("st240"))
        fixed = run_wlo_slp(program, get_target("st240"), -25.0, fir_context)
        assert 0.5 < speedup(float_result, fixed) < 3.0


class TestAnalysisContext:
    def test_twin_must_match(self, small_fir, small_conv):
        with pytest.raises(FlowError, match="twin"):
            AnalysisContext.build(small_fir, small_conv)

    def test_twin_accepted(self):
        from repro.kernels import fir

        program = fir(n_samples=96, n_taps=16)
        twin = fir(n_samples=48, n_taps=16)
        context = AnalysisContext.build(program, twin)
        assert context.program is program
        assert context.analysis_program is twin

    def test_twin_produces_same_decisions(self):
        """Flows driven by a twin-based context must agree with flows
        driven by a full context (same ops, same gains structure)."""
        from repro.kernels import fir

        program = fir(n_samples=96, n_taps=16)
        full = AnalysisContext.build(program)
        twinned = AnalysisContext.build(program, fir(n_samples=48, n_taps=16))
        target = get_target("xentium")
        a = run_wlo_slp(program, target, -30.0, full)
        b = run_wlo_slp(program, target, -30.0, twinned)
        assert a.total_cycles == b.total_cycles
        assert a.n_groups == b.n_groups

    def test_fresh_spec_has_iwls(self, fir_context):
        spec = fir_context.fresh_spec()
        x_iwl = spec.iwl(fir_context.slotmap.slot_of_symbol("x"))
        assert x_iwl == 1  # [-1,1] input


class TestSpeedupHelper:
    def test_speedup_eq2(self, fir_context):
        scalar = run_wlo_first(
            fir_context.program, get_target("xentium"), -25.0, fir_context
        ).scalar
        assert speedup(scalar, scalar) == pytest.approx(1.0)

    def test_zero_cycles_rejected(self, fir_context):
        result = run_float(fir_context.program, get_target("xentium"))
        broken = run_float(fir_context.program, get_target("xentium"))
        broken.cycles.total_cycles = 0
        with pytest.raises(FlowError):
            speedup(result, broken)
