"""Tests for the joint optimizer (paper Fig. 1a) as a whole."""

import pytest

from repro.errors import WLOError
from repro.targets import get_target, vex
from repro.wlo import wlo_slp_optimize


class TestInvariants:
    @pytest.mark.parametrize("constraint", [-10.0, -40.0, -70.0])
    def test_constraint_always_holds(self, fir_context, constraint):
        spec = fir_context.fresh_spec()
        wlo_slp_optimize(
            fir_context.program, spec, fir_context.model,
            get_target("xentium"), constraint,
        )
        assert not fir_context.model.violates(spec, constraint)

    def test_group_wls_obey_eq1(self, fir_context):
        spec = fir_context.fresh_spec()
        target = vex(4)
        outcome = wlo_slp_optimize(
            fir_context.program, spec, fir_context.model, target, -10.0,
        )
        for groups in outcome.groups.values():
            for group in groups:
                limit = target.group_wl(group.size)
                assert limit is not None
                assert group.wl <= limit
                for opid in group.lanes:
                    assert spec.wl(opid) == group.wl

    def test_groups_partition_ops(self, fir_context):
        spec = fir_context.fresh_spec()
        outcome = wlo_slp_optimize(
            fir_context.program, spec, fir_context.model,
            get_target("xentium"), -15.0,
        )
        seen = set()
        for groups in outcome.groups.values():
            for group in groups:
                for opid in group.lanes:
                    assert opid not in seen
                    seen.add(opid)

    def test_infeasible_raises_before_touching_groups(self, fir_context):
        spec = fir_context.fresh_spec()
        with pytest.raises(WLOError, match="infeasible"):
            wlo_slp_optimize(
                fir_context.program, spec, fir_context.model,
                get_target("xentium"), -300.0,
            )


class TestBudgetBehaviour:
    def test_loose_budget_more_groups(self, fir_context):
        loose_spec = fir_context.fresh_spec()
        loose = wlo_slp_optimize(
            fir_context.program, loose_spec, fir_context.model,
            get_target("xentium"), -10.0,
        )
        tight_spec = fir_context.fresh_spec()
        tight = wlo_slp_optimize(
            fir_context.program, tight_spec, fir_context.model,
            get_target("xentium"), -80.0,
        )
        assert loose.n_groups >= tight.n_groups

    def test_priority_order_spends_budget_on_hot_block(self, fir_context):
        """With a budget that fits only some groups, the body (hot)
        block gets them before init/reduce (cold)."""
        spec = fir_context.fresh_spec()
        outcome = wlo_slp_optimize(
            fir_context.program, spec, fir_context.model,
            get_target("xentium"), -62.0,
        )
        body_groups = len(outcome.groups.get("body", []))
        assert body_groups >= 1

    def test_vex_widens_to_quads_at_loose_budget(self, fir_context):
        spec = fir_context.fresh_spec()
        outcome = wlo_slp_optimize(
            fir_context.program, spec, fir_context.model, vex(4), -8.0,
        )
        sizes = {
            group.size
            for groups in outcome.groups.values()
            for group in groups
        }
        assert 4 in sizes


class TestStatsAndSwitches:
    def test_selection_stats_populated(self, fir_context):
        spec = fir_context.fresh_spec()
        outcome = wlo_slp_optimize(
            fir_context.program, spec, fir_context.model,
            get_target("xentium"), -15.0,
        )
        assert outcome.selection.rounds > 0
        assert outcome.selection.candidates_seen > 0
        assert outcome.selection.benefit_evaluations > 0

    def test_harmonize_off_leaves_ungrouped_at_max(self, fir_context):
        spec = fir_context.fresh_spec()
        outcome = wlo_slp_optimize(
            fir_context.program, spec, fir_context.model,
            get_target("xentium"), -15.0, harmonize=False,
        )
        assert outcome.boundary_moves == 0
        grouped = {
            opid
            for groups in outcome.groups.values()
            for group in groups
            for opid in group.lanes
        }
        from repro.ir import OpKind

        reduce_adds = [
            o.opid for o in fir_context.program.blocks["reduce"].ops
            if o.kind is OpKind.ADD and o.opid not in grouped
        ]
        # Paper Fig. 1a: untouched nodes stay at maximum word length
        # (they are tied to the 16-bit accumulators though, so check
        # genuinely independent ones only).
        spec_roots = {fir_context.slotmap.root_of(o) for o in reduce_adds}
        assert spec_roots  # sanity: something ungrouped exists

    def test_harmonize_on_narrows_boundaries(self, fir_context):
        spec = fir_context.fresh_spec()
        outcome = wlo_slp_optimize(
            fir_context.program, spec, fir_context.model,
            get_target("xentium"), -15.0, harmonize=True,
        )
        assert outcome.boundary_moves >= 1

    def test_group_records_refreshed_after_harmonize(self, conv_context):
        spec = conv_context.fresh_spec()
        outcome = wlo_slp_optimize(
            conv_context.program, spec, conv_context.model, vex(4), -10.0,
        )
        for groups in outcome.groups.values():
            for group in groups:
                assert group.wl == spec.wl(group.lanes[0])
