"""Report rendering tests (tables, ASCII plots)."""

import json

import pytest

from repro.report import TextTable, line_plot


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(headers=("name", "value"), title="T")
        table.add_row("a", 1)
        table.add_row("longer", 22)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_row_arity_checked(self):
        table = TextTable(headers=("a", "b"))
        with pytest.raises(ValueError, match="columns"):
            table.add_row(1)

    def test_float_formatting(self):
        table = TextTable(headers=("x",))
        table.add_row(1.23456)
        assert "1.23" in table.render()

    def test_csv_round_trip(self, tmp_path):
        table = TextTable(headers=("a", "b"))
        table.add_row(1, "x")
        path = tmp_path / "t.csv"
        text = table.to_csv(path)
        assert path.read_text() == text
        assert text.splitlines()[0] == "a,b"
        assert text.splitlines()[1] == "1,x"

    def test_json_export(self, tmp_path):
        table = TextTable(headers=("a",), title="T")
        table.add_row(7)
        payload = json.loads(table.to_json(tmp_path / "t.json"))
        assert payload["title"] == "T"
        assert payload["rows"] == [{"a": 7}]


class TestLinePlot:
    def test_empty(self):
        assert "(no data)" in line_plot({}, title="empty")

    def test_glyphs_and_legend(self):
        text = line_plot({
            "first": [(-5, 1.0), (-15, 1.2)],
            "second": [(-5, 0.9), (-15, 1.1)],
        }, title="demo")
        assert "demo" in text
        assert "o=first" in text and "x=second" in text
        assert text.count("o") >= 2

    def test_y_extremes_labeled(self):
        text = line_plot({"s": [(0, 1.0), (1, 3.0)]})
        assert "3." in text and "0." in text or "1." in text

    def test_flat_series_does_not_crash(self):
        text = line_plot({"s": [(0, 1.0), (1, 1.0), (2, 1.0)]})
        assert "s" in text

    def test_x_ticks_rendered(self):
        text = line_plot({"s": [(-5, 1.0), (-65, 2.0)]}, x_label="dB")
        assert "-65" in text and "-5" in text and "[dB]" in text
