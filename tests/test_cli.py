"""Command-line interface tests (fast paths only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["targets"],
            ["kernels"],
            ["flows"],
            ["run", "--kernel", "dot", "--constraint", "-20"],
            ["run", "--kernel", "dot", "--flow", "wlo-first",
             "--wlo", "min+1", "--timings"],
            ["run", "--kernel", "dot", "--sim-backend", "scalar"],
            ["validate", "--kernels", "fir", "--stimuli", "3",
             "--sim-seed", "7", "--sim-backend", "batch"],
            ["fig4", "--kernels", "fir", "--targets", "xentium"],
            ["table1"],
            ["fig6", "--grid", "-15", "-45"],
            ["ablations", "--kernel", "iir"],
            ["sweep", "--flow", "wlo-slp-lite", "--wlo", "max-1"],
            ["codegen", "--kernel", "dot", "--simd"],
        ):
            parser.parse_args(argv)

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_targets(self, capsys):
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        assert "xentium" in out and "st240" in out

    def test_run_wlo_slp_on_dot(self, capsys):
        assert main(["run", "--kernel", "dot", "--target", "xentium",
                     "--constraint", "-30", "--flow", "wlo-slp"]) == 0
        out = capsys.readouterr().out
        assert "wlo-slp" in out and "cycles" in out

    def test_run_float(self, capsys):
        assert main(["run", "--kernel", "dot", "--flow", "float"]) == 0
        assert "float" in capsys.readouterr().out

    def test_codegen_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "dot.c"
        assert main(["codegen", "--kernel", "dot", "--constraint", "-30",
                     "-o", str(out_file)]) == 0
        assert "void kernel(void)" in out_file.read_text()

    def test_codegen_simd_stdout(self, capsys):
        assert main(["codegen", "--kernel", "dot", "--constraint", "-30",
                     "--simd"]) == 0
        assert "V2" in capsys.readouterr().out

    def test_error_reported_cleanly(self, capsys):
        code = main(["run", "--kernel", "dot", "--target", "tpu"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestFlowsCommand:
    def test_lists_flows_and_engines(self, capsys):
        assert main(["flows"]) == 0
        out = capsys.readouterr().out
        for name in ("float", "wlo-first", "wlo-slp", "wlo-first-greedy",
                     "wlo-slp-lite"):
            assert name in out
        assert "range-analysis" in out  # pass structure is shown
        assert "WLO engines:" in out and "tabu" in out
        assert "Simulation backends:" in out
        assert "batch" in out and "scalar" in out


class TestKernelsCommand:
    def test_lists_every_kernel(self, capsys):
        from repro.kernels import kernel_names

        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        for name in kernel_names():
            assert name in out

    def test_unknown_kernel_lists_alternatives(self, capsys):
        code = main(["run", "--kernel", "fft", "--constraint", "-20"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "fir" in err and "'fft'" in err


class TestSimBackendFlag:
    def test_flag_is_noop_on_flows_without_simulation(self, capsys):
        # float has no simulation-backed pass; the flag must not error.
        assert main(["run", "--kernel", "dot", "--flow", "float",
                     "--sim-backend", "batch"]) == 0
        assert "float" in capsys.readouterr().out

    def test_zero_stimuli_reports_clean_error(self, capsys):
        code = main(["validate", "--kernels", "fir", "--stimuli", "0"])
        assert code == 1
        assert "at least one stimulus" in capsys.readouterr().err

    def test_scalar_and_batch_runs_agree(self, capsys):
        assert main(["run", "--kernel", "dot", "--constraint", "-30",
                     "--sim-backend", "scalar"]) == 0
        scalar_out = capsys.readouterr().out
        assert main(["run", "--kernel", "dot", "--constraint", "-30",
                     "--sim-backend", "batch"]) == 0
        batch_out = capsys.readouterr().out
        # Backends are bit-identical: same cycles, groups and noise.
        assert scalar_out == batch_out


class TestRunFlowSelection:
    def test_run_variant_flow_by_name(self, capsys):
        assert main(["run", "--kernel", "dot", "--constraint", "-30",
                     "--flow", "wlo-slp-lite"]) == 0
        assert "wlo-slp-lite" in capsys.readouterr().out

    def test_run_wlo_engine_selection(self, capsys):
        assert main(["run", "--kernel", "dot", "--constraint", "-30",
                     "--flow", "wlo-first", "--wlo", "min+1"]) == 0
        assert "wlo-first/min+1" in capsys.readouterr().out

    def test_run_timings_report(self, capsys):
        assert main(["run", "--kernel", "dot", "--constraint", "-30",
                     "--timings"]) == 0
        out = capsys.readouterr().out
        assert "range-analysis" in out and "passes cached" in out

    def test_unknown_flow_lists_available(self, capsys):
        assert main(["run", "--kernel", "dot", "--flow", "warp"]) == 1
        err = capsys.readouterr().err
        assert "unknown flow" in err and "wlo-slp" in err

    def test_unknown_engine_lists_available(self, capsys):
        assert main(["run", "--kernel", "dot", "--wlo", "quantum"]) == 1
        err = capsys.readouterr().err
        assert "unknown WLO engine" in err and "tabu" in err

    def test_engine_override_on_flow_without_wlo_param(self, capsys):
        assert main(["run", "--kernel", "dot", "--flow", "float",
                     "--wlo", "tabu"]) == 1
        assert "no parameter" in capsys.readouterr().err


class TestValidateCommand:
    def test_parses(self):
        build_parser().parse_args(["validate", "--kernels", "fir"])
