"""Unit tests for repro.utils."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    ceil_div,
    chunked,
    clamp,
    db_to_power,
    pairs,
    power_to_db,
    stable_unique,
)


class TestDbConversions:
    def test_round_trip(self):
        assert power_to_db(db_to_power(-37.5)) == pytest.approx(-37.5)

    def test_known_values(self):
        assert power_to_db(1.0) == pytest.approx(0.0)
        assert power_to_db(0.1) == pytest.approx(-10.0)
        assert db_to_power(20.0) == pytest.approx(100.0)

    def test_zero_power_clamped(self):
        assert power_to_db(0.0) == -400.0
        assert power_to_db(-1.0) == -400.0
        assert power_to_db(0.0, floor_db=-123.0) == -123.0

    @given(st.floats(min_value=-200, max_value=200))
    def test_round_trip_property(self, db):
        assert math.isclose(power_to_db(db_to_power(db)), db, abs_tol=1e-9)


class TestPairs:
    def test_counts(self):
        assert len(list(pairs([1, 2, 3, 4]))) == 6
        assert list(pairs([1])) == []
        assert list(pairs([])) == []

    def test_unordered_distinct(self):
        result = list(pairs("abc"))
        assert ("a", "b") in result and ("b", "a") not in result


class TestChunked:
    def test_even_split(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_ragged_tail(self):
        assert list(chunked([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))

    @given(st.lists(st.integers(), max_size=50), st.integers(1, 10))
    def test_concatenation_identity(self, items, size):
        flattened = [x for chunk in chunked(items, size) for x in chunk]
        assert flattened == items


class TestStableUnique:
    def test_preserves_first_seen_order(self):
        assert stable_unique([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_empty(self):
        assert stable_unique([]) == []


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_outside(self):
        assert clamp(-3.0, 0.0, 1.0) == 0.0
        assert clamp(3.0, 0.0, 1.0) == 1.0

    def test_empty_interval(self):
        with pytest.raises(ValueError):
            clamp(0.0, 1.0, -1.0)


class TestCeilDiv:
    @pytest.mark.parametrize("a,b,want", [(0, 4, 0), (1, 4, 1), (4, 4, 1),
                                          (5, 4, 2), (8, 4, 2), (9, 4, 3)])
    def test_values(self, a, b, want):
        assert ceil_div(a, b) == want

    def test_bad_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    @given(st.integers(0, 10 ** 6), st.integers(1, 10 ** 3))
    def test_matches_math_ceil(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)
