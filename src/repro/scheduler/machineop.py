"""Machine-level operations.

Lowering (``repro.codegen``) translates IR blocks into lists of
:class:`MachineOp`; the list scheduler packs them into VLIW issue
slots.  A machine op knows its functional-unit class and latency —
both resolved against the target model at lowering time — plus its
dependence predecessors within the block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MachineOp", "MachineBlock"]


@dataclass
class MachineOp:
    """One machine instruction in a lowered block."""

    mid: int
    name: str
    unit: str
    latency: int
    preds: tuple[int, ...] = ()
    #: SIMD lane count (1 = scalar); informational.
    lanes: int = 1
    #: Originating IR op, when there is a 1:1 correspondence.
    origin: int | None = None
    comment: str = ""

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError(f"machine op {self.name!r}: latency must be >= 1")


@dataclass
class MachineBlock:
    """A lowered basic block: machine ops plus bookkeeping."""

    name: str
    ops: list[MachineOp] = field(default_factory=list)

    def add(
        self,
        name: str,
        unit: str,
        latency: int,
        preds: tuple[int, ...] = (),
        lanes: int = 1,
        origin: int | None = None,
        comment: str = "",
    ) -> int:
        """Append an op; returns its machine id."""
        mid = len(self.ops)
        self.ops.append(
            MachineOp(mid, name, unit, latency, preds, lanes, origin, comment)
        )
        return mid

    def __len__(self) -> int:
        return len(self.ops)

    def op_histogram(self) -> dict[str, int]:
        """Instruction mix, for reports and tests."""
        histogram: dict[str, int] = {}
        for op in self.ops:
            histogram[op.name] = histogram.get(op.name, 0) + 1
        return histogram
