"""Dependence- and resource-constrained VLIW list scheduling.

This is the repository's stand-in for the paper's target cycle
simulators: lowered machine ops are packed into issue slots under

* dependence constraints (an op issues only when every predecessor's
  result is available, ``issue(pred) + latency(pred)``),
* the global issue width,
* per-class functional unit counts, with optionally non-pipelined
  units (busy for their full latency — used for soft-float emulation).

Priority is the classic critical-path heuristic (longest latency-
weighted path to any sink), which is what production VLIW compilers
use at ``-O3`` for straight-line DSP blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulerError
from repro.scheduler.machineop import MachineBlock, MachineOp
from repro.targets.model import TargetModel

__all__ = ["Schedule", "schedule_block"]


@dataclass
class Schedule:
    """Result of scheduling one machine block."""

    block_name: str
    length: int
    #: issue cycle per machine op id.
    issue_cycle: list[int]
    n_ops: int

    @property
    def ipc(self) -> float:
        """Achieved instructions per cycle."""
        if self.length == 0:
            return 0.0
        return self.n_ops / self.length

    def ops_at(self, cycle: int) -> list[int]:
        """Machine op ids issued at ``cycle``."""
        return [m for m, c in enumerate(self.issue_cycle) if c == cycle]


def _critical_path_priority(ops: list[MachineOp]) -> list[int]:
    """Latency-weighted longest path to a sink, per op."""
    succs: list[list[int]] = [[] for _ in ops]
    for op in ops:
        for pred in op.preds:
            succs[pred].append(op.mid)
    priority = [0] * len(ops)
    for op in reversed(ops):  # ops are in topological (emission) order
        best = 0
        for succ in succs[op.mid]:
            best = max(best, priority[succ])
        priority[op.mid] = op.latency + best
    return priority


def schedule_block(block: MachineBlock, target: TargetModel) -> Schedule:
    """Schedule ``block`` on ``target``; returns cycle assignments.

    Raises :class:`SchedulerError` on malformed input (forward
    references — lowering emits ops in topological order by
    construction).
    """
    ops = block.ops
    if not ops:
        return Schedule(block.name, 0, [], 0)
    for op in ops:
        for pred in op.preds:
            if pred >= op.mid:
                raise SchedulerError(
                    f"block {block.name!r}: op {op.mid} depends on later "
                    f"op {pred}"
                )

    priority = _critical_path_priority(ops)
    successors: list[list[int]] = [[] for _ in ops]
    for op in ops:
        for pred in op.preds:
            successors[pred].append(op.mid)
    # Earliest start from dependences, updated as preds get scheduled.
    ready_at = [0] * len(ops)
    unscheduled_preds = [len(op.preds) for op in ops]
    issue_cycle = [-1] * len(ops)

    ready: list[int] = [op.mid for op in ops if not op.preds]
    pending = len(ops)
    cycle = 0
    # Non-pipelined units: cycle until which each unit instance is busy.
    unit_busy_until: dict[str, list[int]] = {
        unit: [0] * count
        for unit, count in target.units.items()
        if unit in target.non_pipelined
    }

    max_cycles = sum(op.latency for op in ops) + len(ops) + 16
    while pending:
        if cycle > max_cycles:  # pragma: no cover - defensive
            raise SchedulerError(
                f"block {block.name!r}: scheduler did not converge"
            )
        issued = 0
        unit_used: dict[str, int] = {}
        # Highest priority first; ties broken by op id for determinism.
        candidates = sorted(
            (m for m in ready if ready_at[m] <= cycle),
            key=lambda m: (-priority[m], m),
        )
        for mid in candidates:
            if issued >= target.issue_width:
                break
            op = ops[mid]
            capacity = target.units.get(op.unit, 0)
            if capacity == 0:
                raise SchedulerError(
                    f"target {target.name} has no {op.unit!r} unit for "
                    f"{op.name!r}"
                )
            if op.unit in target.non_pipelined:
                lanes_busy = unit_busy_until[op.unit]
                free = [i for i, busy in enumerate(lanes_busy) if busy <= cycle]
                if not free:
                    continue
                lanes_busy[free[0]] = cycle + op.latency
            else:
                if unit_used.get(op.unit, 0) >= capacity:
                    continue
            unit_used[op.unit] = unit_used.get(op.unit, 0) + 1
            issue_cycle[mid] = cycle
            issued += 1
            ready.remove(mid)
            pending -= 1
            done_at = cycle + op.latency
            for succ in successors[mid]:
                ready_at[succ] = max(ready_at[succ], done_at)
                unscheduled_preds[succ] -= 1
                if unscheduled_preds[succ] == 0:
                    ready.append(succ)
        cycle += 1

    length = max(
        issue_cycle[op.mid] + op.latency for op in ops
    )
    return Schedule(block.name, length, issue_cycle, len(ops))
