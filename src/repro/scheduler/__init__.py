"""VLIW cycle-level scheduling — the repository's processor simulator."""

from repro.scheduler.cycles import CycleReport, program_cycles
from repro.scheduler.list_scheduler import Schedule, schedule_block
from repro.scheduler.machineop import MachineBlock, MachineOp

__all__ = [
    "CycleReport",
    "MachineBlock",
    "MachineOp",
    "Schedule",
    "program_cycles",
    "schedule_block",
]
