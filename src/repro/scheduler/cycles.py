"""Whole-program cycle model.

Combines per-block schedules with the loop tree: a loop costs
``trip * (body + loop overhead)``; a block costs its schedule length.
The result is the "number of cycles spent executing the benchmark" of
the paper's eq. (2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulerError
from repro.ir.program import BlockRef, LoopNode, Program
from repro.scheduler.list_scheduler import Schedule, schedule_block
from repro.scheduler.machineop import MachineBlock
from repro.targets.model import TargetModel

__all__ = ["CycleReport", "program_cycles"]


@dataclass
class CycleReport:
    """Cycle counts of a lowered program on a target."""

    program_name: str
    target_name: str
    total_cycles: int
    block_schedules: dict[str, Schedule] = field(default_factory=dict)
    #: dynamic instruction count (ops weighted by executions).
    dynamic_ops: int = 0

    def block_cycles(self, name: str) -> int:
        return self.block_schedules[name].length

    def summary(self) -> str:
        lines = [
            f"{self.program_name} on {self.target_name}: "
            f"{self.total_cycles} cycles, {self.dynamic_ops} dynamic ops"
        ]
        for name, sched in sorted(self.block_schedules.items()):
            lines.append(
                f"  block {name}: {sched.length} cycles/iter, "
                f"{sched.n_ops} ops, ipc {sched.ipc:.2f}"
            )
        return "\n".join(lines)


def program_cycles(
    program: Program,
    lowered: dict[str, MachineBlock],
    target: TargetModel,
) -> CycleReport:
    """Schedule every block and fold the loop tree into total cycles."""
    schedules: dict[str, Schedule] = {}
    for name, mblock in lowered.items():
        schedules[name] = schedule_block(mblock, target)

    overhead = target.loop_overhead_cycles()

    def cost(items) -> int:
        total = 0
        for item in items:
            if isinstance(item, BlockRef):
                if item.name not in schedules:
                    raise SchedulerError(
                        f"block {item.name!r} was not lowered"
                    )
                total += schedules[item.name].length
            elif isinstance(item, LoopNode):
                body = cost(item.body)
                total += item.trip * (body + overhead)
        return total

    total = cost(program.schedule)
    dynamic_ops = 0
    for name, block in program.blocks.items():
        dynamic_ops += len(lowered[name].ops) * block.executions
    return CycleReport(
        program.name, target.name, total, schedules, dynamic_ops
    )
