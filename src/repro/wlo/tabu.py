"""Tabu-search word-length optimization (the WLO-First engine).

Re-implementation of the Tabu WLO of Nguyen (EUSIPCO 2011) as used by
the paper's baseline flow (Section V-A): minimize the WL-relative cost
model subject to the accuracy constraint, moving one tie-group at a
time through the target's supported word lengths, with a recency tabu
list and best-solution aspiration.

The search is deterministic for a given program/constraint — but its
solutions respond discontinuously to the constraint, which is exactly
the "varies randomly" behaviour Table I reports for WLO-First.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accuracy.analytical import AccuracyModel
from repro.errors import WLOError
from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.program import Program
from repro.targets.model import TargetModel
from repro.wlo.continuation import apply_warm_start
from repro.wlo.cost import wl_relative_cost

__all__ = ["TabuConfig", "TabuResult", "tabu_wlo"]


@dataclass(frozen=True)
class TabuConfig:
    """Tuning knobs of the Tabu search."""

    max_iterations: int = 120
    tenure: int = 7
    #: Stop after this many consecutive non-improving iterations.
    patience: int = 30
    #: Stall budget when a warm-start seed was adopted.  A continuation
    #: seed already sits next to the optimum, so the long plateau
    #: patience of a cold descent would only pad the termination tail;
    #: the warm quality contract (cost ≤ cold) stays pinned by
    #: ``tests/test_wlo_continuation.py``.
    warm_patience: int = 6


@dataclass
class TabuResult:
    """Outcome of a Tabu WLO run."""

    best_cost: float
    iterations: int
    evaluations: int
    improved_moves: int = 0
    best_assignment: dict[int, int] = field(default_factory=dict)
    #: Whether the search actually continued from a warm-start seed
    #: (``False`` for cold runs *and* for rejected/unusable seeds).
    warm_start: bool = False


def _neighbor_wls(current: int, supported: list[int]) -> list[int]:
    """Supported word lengths one step away from ``current``."""
    narrower = [w for w in supported if w < current]
    wider = [w for w in supported if w > current]
    moves = []
    if narrower:
        moves.append(max(narrower))
    if wider:
        moves.append(min(wider))
    return moves


def tabu_wlo(
    program: Program,
    spec: FixedPointSpec,
    model: AccuracyModel,
    target: TargetModel,
    constraint_db: float,
    config: TabuConfig | None = None,
    warm_start: dict[int, int] | None = None,
) -> TabuResult:
    """Optimize ``spec`` in place; returns search statistics.

    Starts from the all-maximum-WL assignment (the most accurate
    natively supported spec); raises :class:`WLOError` when even that
    violates the constraint (infeasible problem).

    ``warm_start`` (a root → word-length assignment, typically the
    nearest stricter constraint's solution) replaces the all-max
    starting point when it is complete, supported and feasible at this
    constraint — the tabu search then begins next to the optimum and
    terminates on patience after a handful of iterations instead of
    descending the full width ladder.  An unusable or infeasible seed
    falls back to the cold start.  The search stays deterministic for
    fixed inputs: one (program, constraint, warm start) triple always
    produces the same trajectory.
    """
    config = config or TabuConfig()
    slotmap = spec.slotmap
    roots = slotmap.roots
    supported = sorted(target.supported_wls)

    for root in roots:
        spec.set_wl(root, target.max_wl)
    if model.violates(spec, constraint_db):
        raise WLOError(
            f"accuracy constraint {constraint_db} dB is infeasible even at "
            f"{target.max_wl}-bit word lengths"
        )
    warm = False
    if warm_start is not None:
        token = spec.save()
        if apply_warm_start(spec, warm_start, supported) and not model.violates(
            spec, constraint_db
        ):
            warm = True
        else:
            spec.revert(token)

    def snapshot() -> dict[int, int]:
        return {root: spec.wl(root) for root in roots}

    best_cost = wl_relative_cost(program, spec, target)
    best = snapshot()
    tabu_until: dict[int, int] = {}
    evaluations = 0
    improved = 0
    stall = 0
    iteration = 0

    for iteration in range(1, config.max_iterations + 1):
        best_move: tuple[float, int, int] | None = None
        for root in roots:
            current_wl = spec.wl(root)
            for wl in _neighbor_wls(current_wl, supported):
                token = spec.save()
                spec.set_wl(root, wl)
                evaluations += 1
                feasible = not model.violates(spec, constraint_db)
                cost = wl_relative_cost(program, spec, target) if feasible else None
                spec.revert(token)
                if cost is None:
                    continue
                is_tabu = tabu_until.get(root, 0) >= iteration
                if is_tabu and cost >= best_cost:
                    continue  # aspiration: tabu only breaks for records
                key = (cost, root, wl)
                if best_move is None or key < best_move:
                    best_move = key
        if best_move is None:
            break  # no feasible move at all
        cost, root, wl = best_move
        spec.set_wl(root, wl)
        tabu_until[root] = iteration + config.tenure
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = snapshot()
            improved += 1
            stall = 0
        else:
            stall += 1
            if stall >= (config.warm_patience if warm else config.patience):
                break

    for root, wl in best.items():
        spec.set_wl(root, wl)
    if model.violates(spec, constraint_db):  # pragma: no cover - invariant
        raise WLOError("tabu search returned an infeasible best solution")
    return TabuResult(best_cost, iteration, evaluations, improved, best, warm)
