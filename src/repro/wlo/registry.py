"""WLO engine lookup by name (mirrors :mod:`repro.targets.registry`).

Every engine shares one calling convention::

    engine(program, spec, model, target, constraint_db) -> stats

mutating ``spec`` in place and returning its search statistics.
Engines *may* additionally accept a ``warm_start`` keyword (a root →
word-length assignment seeding the search; see
:mod:`repro.wlo.continuation`) — the ``wlo`` pipeline pass detects the
keyword by signature inspection and only passes a seed to engines that
declare it, so engines without it simply always run cold.  The
flow layer (:mod:`repro.flows.wlo_first`, the ``wlo`` pipeline pass)
resolves engines exclusively through this registry, so a new engine
registered here is immediately selectable by name from ``repro run
--wlo``, ``repro sweep --wlo`` and any declared flow variant.

Registrations are process-local.  Parallel sweeps (``--jobs N``) on
platforms whose multiprocessing start method is ``spawn`` or
``forkserver`` re-import this package in each worker: a custom engine
used from a worker must therefore be registered at import time of a
module the worker also imports (flow *declarations* are shipped to
workers automatically; engine callables are not).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import WLOError, unknown_name_error
from repro.wlo.greedy import max_minus_one, min_plus_one
from repro.wlo.tabu import tabu_wlo

__all__ = [
    "WloEngine",
    "available_wlo_engines",
    "get_wlo_engine",
    "register_wlo_engine",
]

#: (program, spec, model, target, constraint_db) -> engine statistics.
WloEngine = Callable[..., Any]

_ENGINES: dict[str, WloEngine] = {
    "tabu": tabu_wlo,
    "max-1": max_minus_one,
    "min+1": min_plus_one,
}


def get_wlo_engine(name: str) -> WloEngine:
    """Look an engine up by name (case-insensitive)."""
    engine = _ENGINES.get(name.lower())
    if engine is None:
        raise unknown_name_error(
            WLOError, "WLO engine", name, available_wlo_engines()
        )
    return engine


def available_wlo_engines() -> list[str]:
    """Names accepted by :func:`get_wlo_engine`."""
    return sorted(_ENGINES)


def register_wlo_engine(
    name: str, engine: WloEngine, *, overwrite: bool = False
) -> None:
    """Register a custom engine (used by examples and tests)."""
    key = name.lower()
    if key in _ENGINES and not overwrite:
        raise WLOError(
            f"WLO engine {name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    _ENGINES[key] = engine
