"""Word-length optimization engines."""

from repro.wlo.continuation import (
    CONTINUATION_MODES,
    apply_warm_start,
    clear_continuations,
)
from repro.wlo.cost import wl_relative_cost
from repro.wlo.greedy import GreedyResult, max_minus_one, min_plus_one
from repro.wlo.pareto import (
    FrontierPoint,
    ParetoFrontier,
    ParetoResult,
    pareto_frontier,
)
from repro.wlo.registry import (
    available_wlo_engines,
    get_wlo_engine,
    register_wlo_engine,
)
from repro.wlo.scaling import (
    ScalingStats,
    lane_shifts,
    optimize_scalings,
    superword_reuses,
)
from repro.wlo.slp_aware import JointWarmStart, WloSlpOutcome, wlo_slp_optimize
from repro.wlo.tabu import TabuConfig, TabuResult, tabu_wlo

__all__ = [
    "CONTINUATION_MODES",
    "FrontierPoint",
    "GreedyResult",
    "JointWarmStart",
    "ParetoFrontier",
    "ParetoResult",
    "ScalingStats",
    "TabuConfig",
    "TabuResult",
    "WloSlpOutcome",
    "apply_warm_start",
    "available_wlo_engines",
    "clear_continuations",
    "get_wlo_engine",
    "lane_shifts",
    "max_minus_one",
    "min_plus_one",
    "optimize_scalings",
    "pareto_frontier",
    "register_wlo_engine",
    "superword_reuses",
    "tabu_wlo",
    "wl_relative_cost",
    "wlo_slp_optimize",
]
