"""Word-length optimization engines."""

from repro.wlo.cost import wl_relative_cost
from repro.wlo.greedy import GreedyResult, max_minus_one, min_plus_one
from repro.wlo.scaling import (
    ScalingStats,
    lane_shifts,
    optimize_scalings,
    superword_reuses,
)
from repro.wlo.slp_aware import WloSlpOutcome, wlo_slp_optimize
from repro.wlo.tabu import TabuConfig, TabuResult, tabu_wlo

__all__ = [
    "GreedyResult",
    "ScalingStats",
    "TabuConfig",
    "TabuResult",
    "WloSlpOutcome",
    "lane_shifts",
    "max_minus_one",
    "min_plus_one",
    "optimize_scalings",
    "superword_reuses",
    "tabu_wlo",
    "wl_relative_cost",
    "wlo_slp_optimize",
]
