"""Greedy word-length optimization baselines.

The two classic single-direction procedures of the WLO literature,
kept as ablation baselines against the Tabu search:

* ``max_minus_one`` — start from maximum word lengths (feasible) and
  greedily narrow whichever tie group yields the largest cost saving
  while staying feasible;
* ``min_plus_one`` — start from minimum word lengths (usually
  infeasible) and greedily widen whichever tie group buys the most
  noise reduction per unit of cost until feasible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accuracy.analytical import AccuracyModel
from repro.errors import WLOError
from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.program import Program
from repro.targets.model import TargetModel
from repro.wlo.cost import wl_relative_cost

__all__ = ["GreedyResult", "max_minus_one", "min_plus_one"]


@dataclass
class GreedyResult:
    """Outcome of a greedy WLO run."""

    cost: float
    moves: int
    evaluations: int


def max_minus_one(
    program: Program,
    spec: FixedPointSpec,
    model: AccuracyModel,
    target: TargetModel,
    constraint_db: float,
) -> GreedyResult:
    """Greedy narrowing from the all-maximum assignment."""
    roots = spec.slotmap.roots
    supported = sorted(target.supported_wls)
    for root in roots:
        spec.set_wl(root, target.max_wl)
    if model.violates(spec, constraint_db):
        raise WLOError(
            f"constraint {constraint_db} dB infeasible at maximum word lengths"
        )
    moves = 0
    evaluations = 0
    while True:
        best: tuple[float, int, int] | None = None
        for root in roots:
            narrower = [w for w in supported if w < spec.wl(root)]
            if not narrower:
                continue
            wl = max(narrower)
            token = spec.save()
            spec.set_wl(root, wl)
            evaluations += 1
            if not model.violates(spec, constraint_db):
                cost = wl_relative_cost(program, spec, target)
                key = (cost, root, wl)
                if best is None or key < best:
                    best = key
            spec.revert(token)
        if best is None:
            break
        _cost, root, wl = best
        spec.set_wl(root, wl)
        moves += 1
    return GreedyResult(wl_relative_cost(program, spec, target), moves, evaluations)


def min_plus_one(
    program: Program,
    spec: FixedPointSpec,
    model: AccuracyModel,
    target: TargetModel,
    constraint_db: float,
    max_moves: int = 10_000,
) -> GreedyResult:
    """Greedy widening from the all-minimum assignment."""
    roots = spec.slotmap.roots
    supported = sorted(target.supported_wls)
    for root in roots:
        spec.set_wl(root, supported[0])
    moves = 0
    evaluations = 0
    while model.violates(spec, constraint_db):
        if moves >= max_moves:
            raise WLOError("min_plus_one did not reach feasibility")
        best: tuple[float, int, int] | None = None
        current_noise = model.noise_power(spec)
        for root in roots:
            wider = [w for w in supported if w > spec.wl(root)]
            if not wider:
                continue
            wl = min(wider)
            token = spec.save()
            spec.set_wl(root, wl)
            evaluations += 1
            gain = current_noise - model.noise_power(spec)
            added_cost = wl - supported[0]
            score = gain / max(added_cost, 1)
            spec.revert(token)
            key = (-score, root, wl)
            if best is None or key < best:
                best = key
        if best is None:
            raise WLOError(
                f"constraint {constraint_db} dB infeasible even at maximum "
                "word lengths"
            )
        _score, root, wl = best
        spec.set_wl(root, wl)
        moves += 1
    return GreedyResult(wl_relative_cost(program, spec, target), moves, evaluations)
