"""Greedy word-length optimization baselines.

The two classic single-direction procedures of the WLO literature,
kept as ablation baselines against the Tabu search:

* ``max_minus_one`` — start from maximum word lengths (feasible) and
  greedily narrow whichever tie group yields the largest cost saving
  while staying feasible;
* ``min_plus_one`` — start from minimum word lengths (usually
  infeasible) and greedily widen whichever tie group buys the most
  noise reduction per unit of cost until feasible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accuracy.analytical import AccuracyModel
from repro.errors import WLOError
from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.program import Program
from repro.targets.model import TargetModel
from repro.wlo.continuation import apply_warm_start
from repro.wlo.cost import wl_relative_cost

__all__ = ["GreedyResult", "max_minus_one", "min_plus_one"]


@dataclass
class GreedyResult:
    """Outcome of a greedy WLO run."""

    cost: float
    moves: int
    evaluations: int
    #: Whether the search actually continued from a warm-start seed
    #: (``False`` for cold runs *and* for rejected/unusable seeds).
    warm_start: bool = False


def max_minus_one(
    program: Program,
    spec: FixedPointSpec,
    model: AccuracyModel,
    target: TargetModel,
    constraint_db: float,
    warm_start: dict[int, int] | None = None,
) -> GreedyResult:
    """Greedy narrowing from the all-maximum assignment.

    ``warm_start`` (a root → word-length assignment, typically a
    neighboring stricter constraint's solution) replaces the all-max
    starting point when it is complete, supported and feasible at this
    constraint; the narrowing continues from there.  An unusable or
    infeasible seed falls back to the cold all-max start — the result
    is feasible either way.
    """
    roots = spec.slotmap.roots
    supported = sorted(target.supported_wls)
    for root in roots:
        spec.set_wl(root, target.max_wl)
    if model.violates(spec, constraint_db):
        raise WLOError(
            f"constraint {constraint_db} dB infeasible at maximum word lengths"
        )
    warm = False
    if warm_start is not None:
        token = spec.save()
        if apply_warm_start(spec, warm_start, supported) and not model.violates(
            spec, constraint_db
        ):
            warm = True
        else:
            spec.revert(token)
    moves = 0
    evaluations = 0
    while True:
        best: tuple[float, int, int] | None = None
        for root in roots:
            narrower = [w for w in supported if w < spec.wl(root)]
            if not narrower:
                continue
            wl = max(narrower)
            token = spec.save()
            spec.set_wl(root, wl)
            evaluations += 1
            if not model.violates(spec, constraint_db):
                cost = wl_relative_cost(program, spec, target)
                key = (cost, root, wl)
                if best is None or key < best:
                    best = key
            spec.revert(token)
        if best is None:
            break
        _cost, root, wl = best
        spec.set_wl(root, wl)
        moves += 1
    return GreedyResult(
        wl_relative_cost(program, spec, target), moves, evaluations, warm
    )


def min_plus_one(
    program: Program,
    spec: FixedPointSpec,
    model: AccuracyModel,
    target: TargetModel,
    constraint_db: float,
    max_moves: int = 10_000,
    warm_start: dict[int, int] | None = None,
) -> GreedyResult:
    """Greedy widening from the all-minimum assignment.

    A useful ``warm_start`` for a *widening* search is an **infeasible**
    seed below the constraint (e.g. a looser constraint's solution):
    the widening continues from it, skipping the moves the two
    trajectories share (the move scoring is constraint-independent, so
    a seed produced by this engine lies on the cold path and the
    result is bit-identical to cold).  A *feasible* seed carries no
    information a widening search can exploit — accepting it as-is
    would strand the cost above the cold result — so it falls back to
    the cold all-minimum start.
    """
    roots = spec.slotmap.roots
    supported = sorted(target.supported_wls)
    warm = False
    if warm_start is not None and apply_warm_start(spec, warm_start, supported):
        if model.violates(spec, constraint_db):
            warm = True
    if not warm:
        for root in roots:
            spec.set_wl(root, supported[0])
    moves = 0
    evaluations = 0
    while model.violates(spec, constraint_db):
        if moves >= max_moves:
            raise WLOError("min_plus_one did not reach feasibility")
        best: tuple[float, int, int] | None = None
        current_noise = model.noise_power(spec)
        for root in roots:
            wider = [w for w in supported if w > spec.wl(root)]
            if not wider:
                continue
            wl = min(wider)
            token = spec.save()
            spec.set_wl(root, wl)
            evaluations += 1
            gain = current_noise - model.noise_power(spec)
            added_cost = wl - supported[0]
            score = gain / max(added_cost, 1)
            spec.revert(token)
            key = (-score, root, wl)
            if best is None or key < best:
                best = key
        if best is None:
            raise WLOError(
                f"constraint {constraint_db} dB infeasible even at maximum "
                "word lengths"
            )
        _score, root, wl = best
        spec.set_wl(root, wl)
        moves += 1
    return GreedyResult(
        wl_relative_cost(program, spec, target), moves, evaluations, warm
    )
