"""SLP-aware scaling optimization (paper Fig. 1b, ``SCALOPTIM``).

When a superword produced by group ``g1`` is reused by group ``g2``,
each lane may require a different alignment shift (the lanes have
independent fixed-point formats).  Embedded SIMD ISAs only shift all
lanes by the same amount, so non-uniform shift vectors force an
unpack / scalar-shift / repack sequence — the Fig. 2 scenario that can
erase the benefit of SLP.

``optimize_scalings`` walks every superword-reuse edge and, when the
per-lane shift amounts are positive but unequal, trades fractional
bits for uniformity (word lengths never change — the binary point
moves, ``fwl`` shrinks, ``iwl`` grows), accepting each fix only if the
accuracy constraint still holds.

Where the paper's pseudocode adjusts one fixed side, this
implementation tries the *producer* side first (uniformize to the
smallest shift — the least destructive choice) and falls back to the
*consumer* side (uniformize to the largest shift) when producer lanes
share a tie group and cannot take distinct formats; the accuracy
check guards both, preserving Fig. 1b's semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accuracy.analytical import AccuracyModel
from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.optypes import OpKind
from repro.ir.program import Program
from repro.slp.groups import GroupSet, SIMDGroup

__all__ = ["ScalingStats", "lane_shifts", "superword_reuses", "optimize_scalings"]


@dataclass
class ScalingStats:
    """Outcome counters of one SCALOPTIM run."""

    reuse_edges: int = 0
    already_uniform: int = 0
    fixed_producer_side: int = 0
    fixed_consumer_side: int = 0
    rejected_by_accuracy: int = 0
    skipped_negative: int = 0
    skipped_untieable: int = 0

    @property
    def fixed(self) -> int:
        return self.fixed_producer_side + self.fixed_consumer_side


def superword_reuses(
    groups: GroupSet, program: Program
) -> list[tuple[SIMDGroup, SIMDGroup, int]]:
    """All (producer group, consumer group, operand position) edges."""
    reuses = []
    for consumer in groups:
        arity = len(program.op(consumer.lanes[0]).operands)
        for pos in range(arity):
            producers = tuple(
                program.op(opid).operands[pos] for opid in consumer.lanes
            )
            producer = groups.producer_group(producers)
            if producer is not None:
                reuses.append((producer, consumer, pos))
    return reuses


def lane_shifts(
    spec: FixedPointSpec,
    program: Program,
    consumer: SIMDGroup,
    pos: int,
) -> list[int]:
    """Per-lane right-shift amounts required at a reuse edge.

    Positive amounts discard fractional bits (right shifts); negative
    amounts are exact left shifts.  A uniform vector means one SIMD
    shift instruction (or none, if all zero).
    """
    shifts = []
    for opid in consumer.lanes:
        op = program.op(opid)
        producer = op.operands[pos]
        f_src = spec.fwl(producer)
        if op.kind is OpKind.MUL:
            f_dst = spec.consumption_fwl(opid, pos)
        else:
            f_dst = spec.fwl(opid)
        shifts.append(f_src - f_dst)
    return shifts


def optimize_scalings(
    program: Program,
    spec: FixedPointSpec,
    model: AccuracyModel,
    constraint_db: float,
    groups: GroupSet,
) -> ScalingStats:
    """Uniformize reuse-edge shift vectors under the accuracy budget."""
    stats = ScalingStats()
    for producer, consumer, pos in superword_reuses(groups, program):
        stats.reuse_edges += 1
        shifts = lane_shifts(spec, program, consumer, pos)
        if len(set(shifts)) == 1:
            stats.already_uniform += 1
            continue
        if any(s < 0 for s in shifts):
            stats.skipped_negative += 1
            continue
        if _fix_producer_side(program, spec, model, constraint_db,
                              producer, shifts, stats):
            continue
        _fix_consumer_side(program, spec, model, constraint_db,
                           consumer, pos, shifts, stats)
    return stats


def _fix_producer_side(
    program: Program,
    spec: FixedPointSpec,
    model: AccuracyModel,
    constraint_db: float,
    producer: SIMDGroup,
    shifts: list[int],
    stats: ScalingStats,
) -> bool:
    """Reduce producer-lane FWLs so every lane needs shift ``min(S)``."""
    target_shift = min(shifts)
    deltas = [s - target_shift for s in shifts]
    # Lanes sharing a tie group must agree on their reduction.
    per_root: dict[int, int] = {}
    for opid, delta in zip(producer.lanes, deltas):
        root = spec.slotmap.root_of(opid)
        if per_root.setdefault(root, delta) != delta:
            stats.skipped_untieable += 1
            return False
    token = spec.save()
    for opid, delta in zip(producer.lanes, deltas):
        if delta:
            spec.set_fwl(opid, spec.fwl(opid) - delta)
    if model.violates(spec, constraint_db):
        spec.revert(token)
        stats.rejected_by_accuracy += 1
        return False
    stats.fixed_producer_side += 1
    return True


def _fix_consumer_side(
    program: Program,
    spec: FixedPointSpec,
    model: AccuracyModel,
    constraint_db: float,
    consumer: SIMDGroup,
    pos: int,
    shifts: list[int],
    stats: ScalingStats,
) -> bool:
    """Deepen consumer-side consumption so every lane shifts ``max(S)``."""
    target_shift = max(shifts)
    if consumer.kind is OpKind.STORE:
        stats.skipped_untieable += 1  # one array, one format: nothing to move
        return False
    per_root: dict[int, int] = {}
    plan: list[tuple[int, int]] = []
    for opid, shift in zip(consumer.lanes, shifts):
        op = program.op(opid)
        src = op.operands[pos]
        f_src = spec.fwl(src)
        if op.kind is OpKind.MUL:
            plan.append((opid, spec.iwl(src) + f_src - target_shift))
        else:
            wanted_fwl = f_src - target_shift
            root = spec.slotmap.root_of(opid)
            if per_root.setdefault(root, wanted_fwl) != wanted_fwl:
                stats.skipped_untieable += 1
                return False
            plan.append((opid, wanted_fwl))
    token = spec.save()
    for opid, value in plan:
        if program.op(opid).kind is OpKind.MUL:
            spec.set_edge_wl(opid, pos, value)
        else:
            spec.set_fwl(opid, value)
    if model.violates(spec, constraint_db):
        spec.revert(token)
        stats.rejected_by_accuracy += 1
        return False
    stats.fixed_consumer_side += 1
    return True
