"""Boundary word-length harmonization.

A refinement pass run after SCALOPTIM (and in its spirit): the paper's
Fig. 1a leaves every *ungrouped* node at the maximum word length, so
each dataflow edge crossing a group boundary (vector lane -> scalar
consumer, scalar producer -> vector lane) needs a format-conversion
shift.  This pass walks ungrouped arithmetic/store nodes adjacent to
narrower neighbours and tries to narrow them to the widest adjacent
word length, accepting each move only when the accuracy constraint
still holds.

Word lengths only ever shrink toward the target's supported widths, so
the result stays implementable; the accuracy model guards every move
exactly like SCALOPTIM's.  Disable with ``harmonize=False`` on
``wlo_slp_optimize`` to measure its effect (ablation benchmark B2).
"""

from __future__ import annotations

from repro.accuracy.analytical import AccuracyModel
from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.optypes import ARITHMETIC_KINDS, OpKind
from repro.ir.program import Program
from repro.targets.model import TargetModel

__all__ = ["harmonize_boundary_wls"]

_ELIGIBLE = ARITHMETIC_KINDS | {OpKind.STORE}


def harmonize_boundary_wls(
    program: Program,
    spec: FixedPointSpec,
    model: AccuracyModel,
    target: TargetModel,
    constraint_db: float,
    grouped_ops: set[int],
    groups: list | None = None,
    max_passes: int = 4,
) -> int:
    """Narrow nodes toward their neighbours' word lengths.

    Two move classes, both accuracy-guarded:

    * *scalar moves* — an ungrouped arithmetic/store node narrows to
      the widest word length among its narrower neighbours;
    * *group moves* — a whole SIMD group narrows below its eq. (1)
      maximum to match an adjacent narrower group (e.g. a 16-bit pair
      consuming an 8-bit quad), eliminating the lane-width conversion
      at the boundary.  Narrowing keeps ``wl * size <= datapath``, so
      legality is preserved.

    Returns the number of accepted moves.
    """
    consumers: dict[int, list[int]] = {}
    for op in program.all_ops():
        for producer in op.operands:
            consumers.setdefault(producer, []).append(op.opid)

    supported = sorted(target.supported_wls)
    accepted = 0
    for _ in range(max_passes):
        changed = False
        for op in program.all_ops():
            if op.opid in grouped_ops or op.kind not in _ELIGIBLE:
                continue
            current = spec.wl(op.opid)
            wanted = _wanted_wl(
                spec, program, (op.opid,), consumers, supported, current
            )
            if wanted is None:
                continue
            token = spec.save()
            spec.set_wl(op.opid, wanted)
            if model.violates(spec, constraint_db):
                spec.revert(token)
                continue
            accepted += 1
            changed = True
        for group in groups or ():
            current = spec.wl(group.lanes[0])
            wanted = _wanted_wl(
                spec, program, group.lanes, consumers, supported, current,
                exclude=set(group.lanes),
            )
            if wanted is None or wanted not in target.simd_widths:
                continue
            token = spec.save()
            from repro.slp.accuracy_aware import set_group_wl

            set_group_wl(spec, program, group.lanes, wanted)
            if model.violates(spec, constraint_db):
                spec.revert(token)
                continue
            accepted += 1
            changed = True
        if not changed:
            break
    return accepted


def _wanted_wl(
    spec: FixedPointSpec,
    program: Program,
    opids: tuple[int, ...],
    consumers: dict[int, list[int]],
    supported: list[int],
    current: int,
    exclude: set[int] | None = None,
) -> int | None:
    """Widest narrower-neighbour word length, snapped to supported."""
    exclude = exclude or set()
    neighbour_wls = []
    for opid in opids:
        op = program.op(opid)
        for neighbour in (*op.operands, *consumers.get(opid, ())):
            if neighbour in exclude:
                continue
            if program.op(neighbour).kind is OpKind.CONST:
                continue
            neighbour_wls.append(spec.wl(neighbour))
    narrower = [w for w in neighbour_wls if w < current]
    if not narrower:
        return None
    wanted = max(narrower)
    wanted = next((w for w in supported if w >= wanted), current)
    if wanted >= current:
        return None
    return wanted
