"""SLP-aware word-length optimization (paper Fig. 1a) — the
contribution of the reproduced paper.

Joint algorithm: start from maximum word lengths (the most accurate
natively supported spec, and the one with least SLP); process basic
blocks in execution-count priority order; inside each block run the
accuracy-aware SLP extraction (Fig. 1c) repeatedly, widening groups as
long as new selections land; then uniformize scaling shifts
(SCALOPTIM, Fig. 1b).  Word lengths are *derived from grouping
decisions* via eq. (1) rather than searched independently — this is
what makes the accuracy budget land exactly on the operations SIMD can
exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accuracy.analytical import AccuracyModel
from repro.errors import WLOError
from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.deps import build_dependence_graph
from repro.ir.program import Program
from repro.slp.accuracy_aware import set_group_wl, slp_round_accuracy_aware
from repro.slp.benefit import BenefitEstimator
from repro.slp.candidates import initial_items
from repro.slp.extraction import (
    SelectionStats,
    build_group_set,
    merge_items,
)
from repro.slp.groups import GroupSet
from repro.targets.model import TargetModel
from repro.wlo.boundary import harmonize_boundary_wls
from repro.wlo.continuation import apply_warm_start
from repro.wlo.scaling import ScalingStats, optimize_scalings

__all__ = ["JointWarmStart", "WloSlpOutcome", "wlo_slp_optimize"]


@dataclass
class JointWarmStart:
    """A neighboring constraint's joint solution, usable as a seed.

    The joint engine's state is richer than a word-length vector: the
    grouping *partition* drives the word lengths (eq. (1)), so a
    useful continuation carries both — the final root → WL assignment
    and the per-block group sets of the seeding cell.

    ``partition_safe`` is the adoption guard.  A partition is safe to
    reuse at a *looser* constraint only when the seeding run's
    selection saw **zero** accuracy rejections and **zero** accuracy
    conflicts: then the seed's partition is purely structural/benefit
    driven, and since a looser constraint's accuracy guard rejects a
    subset of what the stricter one did (same spec trajectory, more
    noise headroom), the looser cold extraction would commit the
    *identical* partition — adoption merely skips its accuracy checks.
    A partition shaped by accuracy (rejections or conflicts at the
    stricter constraint) can lock in lane pairings a looser cold run
    would not choose, violating the cost ≤ cold quality contract, so
    the engine ignores unsafe seeds entirely.
    """

    wls: dict[int, int]
    groups: dict[str, GroupSet]
    partition_safe: bool = False


@dataclass
class WloSlpOutcome:
    """Result of the joint optimization: groups per block + statistics."""

    groups: dict[str, GroupSet] = field(default_factory=dict)
    selection: SelectionStats = field(default_factory=SelectionStats)
    scaling: ScalingStats = field(default_factory=ScalingStats)
    boundary_moves: int = 0
    #: Whether the optimization actually continued from a warm-start
    #: seed (``False`` for cold runs and rejected seeds alike).
    warm_start: bool = False

    @property
    def n_groups(self) -> int:
        return sum(len(gs) for gs in self.groups.values())

    def groups_of(self, block: str) -> GroupSet:
        return self.groups[block]


def wlo_slp_optimize(
    program: Program,
    spec: FixedPointSpec,
    model: AccuracyModel,
    target: TargetModel,
    constraint_db: float,
    harmonize: bool = True,
    scaloptim: bool = True,
    accuracy_conflicts: bool = True,
    warm_start: JointWarmStart | None = None,
) -> WloSlpOutcome:
    """Run the joint WLO + SLP extraction, mutating ``spec`` in place.

    ``harmonize`` enables the boundary word-length pass (see
    ``repro.wlo.boundary``); it only ever narrows ungrouped nodes under
    the accuracy guard.  ``scaloptim`` and ``accuracy_conflicts`` turn
    off Fig. 1b and the accuracy-conflict class of Fig. 1c for the
    ablation benchmarks.  Raises :class:`WLOError` when the constraint
    is infeasible even at maximum word lengths (nothing any WLO could
    do).

    ``warm_start`` (a stricter neighboring constraint's joint solution)
    seeds both halves of the joint state when it is marked
    ``partition_safe``, usable and feasible here: the word lengths
    replace the all-max start, and each block's SLP rounds continue
    from the seed's *partition* (its groups become pre-merged pack
    items) instead of from singletons, so the rounds only explore
    merges the neighbor hadn't already committed to.  An unsafe,
    unusable or infeasible seed falls back to the cold start — see
    :class:`JointWarmStart` for why unsafe partitions must not be
    adopted.
    """
    for root in spec.slotmap.roots:
        spec.set_wl(root, target.max_wl)
    if model.violates(spec, constraint_db):
        raise WLOError(
            f"accuracy constraint {constraint_db} dB is infeasible at "
            f"{target.max_wl}-bit word lengths"
        )
    warm = False
    if warm_start is not None and warm_start.partition_safe:
        token = spec.save()
        if apply_warm_start(spec, warm_start.wls, sorted(target.supported_wls)):
            # A node-WL assignment alone under-states the seed: SETMAXWL
            # also narrowed the multiply *operand edges* of every group
            # lane (pack-boundary narrowing).  Re-apply it per adopted
            # group so the seeded spec — and hence the feasibility check
            # below — matches the state the seed finished in.
            for group_set in warm_start.groups.values():
                for group in group_set:
                    set_group_wl(spec, program, group.lanes, group.wl)
            if not model.violates(spec, constraint_db):
                warm = True
        if not warm:
            spec.revert(token)

    outcome = WloSlpOutcome(warm_start=warm)
    for block in program.blocks_by_priority():
        items = initial_items(block)
        if warm:
            items = _adopt_items(items, warm_start.groups.get(block.name))
        if len(items) < 2 or target.max_group_size < 2:
            # An adopted partition can collapse a tiny block to a single
            # merged item; materialize it instead of dropping the group.
            # (Cold runs only reach here with singletons — empty set.)
            group_set = build_group_set(block, items, program, spec)
            if scaloptim and len(group_set):
                scaling = optimize_scalings(
                    program, spec, model, constraint_db, group_set
                )
                _merge_scaling_stats(outcome.scaling, scaling)
            outcome.groups[block.name] = group_set
            continue
        deps = build_dependence_graph(block)
        estimator = BenefitEstimator(program, block)
        while True:
            selected = slp_round_accuracy_aware(
                program, block, items, deps, target, spec, model,
                constraint_db, estimator, outcome.selection,
                accuracy_conflicts=accuracy_conflicts,
            )
            if not selected:
                break
            items = merge_items(items, selected)
        group_set = build_group_set(block, items, program, spec)
        if scaloptim:
            scaling = optimize_scalings(
                program, spec, model, constraint_db, group_set
            )
            _merge_scaling_stats(outcome.scaling, scaling)
        outcome.groups[block.name] = group_set
    if harmonize:
        all_groups = [
            group
            for group_set in outcome.groups.values()
            for group in group_set
        ]
        grouped_ops = {opid for group in all_groups for opid in group.lanes}
        outcome.boundary_moves = harmonize_boundary_wls(
            program, spec, model, target, constraint_db, grouped_ops,
            groups=all_groups,
        )
        # Group word lengths may have moved below their eq. (1) maxima:
        # refresh the (frozen) group records from the spec.
        outcome.groups = {
            name: _refresh_group_wls(group_set, spec)
            for name, group_set in outcome.groups.items()
        }
        if scaloptim:
            # Boundary moves may have changed reuse-edge shift vectors;
            # give SCALOPTIM a second look at each block.
            for group_set in outcome.groups.values():
                scaling = optimize_scalings(
                    program, spec, model, constraint_db, group_set
                )
                _merge_scaling_stats(outcome.scaling, scaling)
    return outcome


def _adopt_items(
    items: list[tuple[int, ...]], group_set: GroupSet | None
) -> list[tuple[int, ...]]:
    """Pre-merge singleton items into a seeding cell's partition.

    Every adopted group's lanes become one multi-lane pack item; the
    block's remaining SIMDizable ops stay singletons, so subsequent
    extraction rounds only explore merges the seed hadn't committed.
    Ops the seed grouped but this block no longer exposes (impossible
    for identical programs, cheap to guard) invalidate that group only.
    """
    if group_set is None or not len(group_set):
        return items
    available = {item[0] for item in items}
    merged: list[tuple[int, ...]] = []
    grouped: set[int] = set()
    for group in group_set:
        lanes = tuple(group.lanes)
        if any(opid not in available for opid in lanes):
            continue
        merged.append(lanes)
        grouped.update(lanes)
    return merged + [item for item in items if item[0] not in grouped]


def _refresh_group_wls(group_set: GroupSet, spec: FixedPointSpec) -> GroupSet:
    from repro.slp.groups import SIMDGroup

    refreshed = GroupSet(group_set.block)
    for group in group_set:
        refreshed.add(SIMDGroup(
            group.gid, group.block, group.kind, group.lanes,
            spec.wl(group.lanes[0]),
        ))
    return refreshed


def _merge_scaling_stats(total: ScalingStats, part: ScalingStats) -> None:
    total.reuse_edges += part.reuse_edges
    total.already_uniform += part.already_uniform
    total.fixed_producer_side += part.fixed_producer_side
    total.fixed_consumer_side += part.fixed_consumer_side
    total.rejected_by_accuracy += part.rejected_by_accuracy
    total.skipped_negative += part.skipped_negative
    total.skipped_untieable += part.skipped_untieable
