"""Single-search Pareto-front word-length optimization.

A constraint sweep asks the same cost-vs-noise question C times with C
different cut-offs.  Instead of C independent searches, this module
walks the whole cost/noise frontier of one (program, spec, model,
target) **once**, from the all-maximum assignment down to the
all-minimum one: every step greedily narrows the tie group buying the
largest cost saving per decibel of added noise — each frontier point
literally seeds the next, which is the continuation idea taken to its
limit.  Projecting the frontier onto a constraint grid is then O(1)
per cell: the cheapest recorded point that still satisfies the cell's
noise budget.

By construction the walk's cost is non-increasing and its noise
non-decreasing, so after dominated-point pruning the recorded points
form a true Pareto front; a projection is therefore *feasible by
selection* — the dense-grid CI smoke asserts exactly that on every
cell.  The front is a greedy approximation (like the ``max-1``
engine's endpoint, reached by a slightly different move order), not a
certified optimum; the paper-grid quality checks live in
``tests/test_wlo_continuation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accuracy.analytical import AccuracyModel
from repro.errors import WLOError
from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.program import Program
from repro.targets.model import TargetModel
from repro.wlo.cost import wl_relative_cost

__all__ = ["FrontierPoint", "ParetoFrontier", "ParetoResult", "pareto_frontier"]


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated (noise, cost) trade-off and its assignment."""

    noise_db: float
    cost: float
    wls: dict[int, int]


@dataclass
class ParetoFrontier:
    """The recorded frontier of one walk, plus its search statistics."""

    #: Cost strictly decreasing, noise strictly increasing.
    points: list[FrontierPoint]
    moves: int = 0
    evaluations: int = 0

    def project(self, constraint_db: float) -> FrontierPoint:
        """The cheapest frontier point satisfying ``constraint_db``.

        Raises :class:`WLOError` when even the most accurate point
        (the all-maximum assignment) violates the constraint — the
        same infeasibility every engine reports.
        """
        best: FrontierPoint | None = None
        for point in self.points:
            if point.noise_db <= constraint_db:
                best = point  # points are ordered by decreasing cost
            else:
                break
        if best is None:
            raise WLOError(
                f"accuracy constraint {constraint_db} dB is infeasible even "
                f"at maximum word lengths (frontier floor "
                f"{self.points[0].noise_db:.2f} dB)"
            )
        return best


@dataclass
class ParetoResult:
    """Per-cell statistics of a frontier projection (``wlo_stats``).

    ``moves``/``evaluations`` are the *frontier walk's* totals — paid
    once per kernel × target and amortized over every projected cell;
    ``warm_start`` records whether this cell reused a memoized
    frontier (every cell after the panel's first does).
    """

    cost: float
    noise_db: float
    points: int
    moves: int
    evaluations: int
    warm_start: bool = False
    wls: dict[int, int] = field(default_factory=dict)


def pareto_frontier(
    program: Program,
    spec: FixedPointSpec,
    model: AccuracyModel,
    target: TargetModel,
) -> ParetoFrontier:
    """Walk the full cost/noise frontier in one descending pass.

    Mutates ``spec`` while walking (callers project a point onto it
    afterwards); deterministic for fixed inputs.  No constraint is
    involved: the walk records every trade-off from all-max to all-min
    and leaves the cut-off to :meth:`ParetoFrontier.project`.
    """
    roots = spec.slotmap.roots
    supported = sorted(target.supported_wls)

    def snapshot() -> dict[int, int]:
        return {root: spec.wl(root) for root in roots}

    for root in roots:
        spec.set_wl(root, target.max_wl)
    cost = wl_relative_cost(program, spec, target)
    noise = model.noise_db(spec)
    frontier = ParetoFrontier([FrontierPoint(noise, cost, snapshot())])

    while True:
        best: tuple[tuple, int, int, float, float] | None = None
        for root in roots:
            narrower = [w for w in supported if w < spec.wl(root)]
            if not narrower:
                continue
            wl = max(narrower)
            token = spec.save()
            spec.set_wl(root, wl)
            frontier.evaluations += 1
            move_cost = wl_relative_cost(program, spec, target)
            move_noise = model.noise_db(spec)
            spec.revert(token)
            saving = cost - move_cost
            added_noise = max(move_noise - noise, 1e-9)
            # Most saving per decibel first; deterministic tie-break on
            # (least added noise, lowest root, widest wl).
            key = (-(saving / added_noise), move_noise, root, -wl)
            if best is None or key < best[0]:
                best = (key, root, wl, move_cost, move_noise)
        if best is None:
            break  # every root is at the minimum supported width
        _key, root, wl, cost, noise = best
        spec.set_wl(root, wl)
        frontier.moves += 1
        previous = frontier.points[-1]
        if noise <= previous.noise_db:
            # A move that costs no noise dominates the previous point:
            # replace it instead of recording a dominated pair.
            frontier.points.pop()
            frontier.points.append(FrontierPoint(noise, cost, snapshot()))
        elif cost < previous.cost:
            frontier.points.append(FrontierPoint(noise, cost, snapshot()))
        # else: noisier at no saving — keep walking, record nothing.
    return frontier
