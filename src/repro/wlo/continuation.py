"""Cross-constraint continuation for warm-started WLO.

A constraint sweep's cells differ only in ``constraint_db``; their WLO
solutions are near-identical between neighboring constraints.  This
module is the process-global store the WLO passes
(:mod:`repro.pipeline.passes`) use to hand one cell's solution to the
next cell as a *warm start*:

* :func:`record_continuation` files a finished cell's assignment under
  a constraint-independent key (the pass builds it from the artifact
  fingerprints of everything the engine read *except* the constraint).
* :func:`lookup_continuation` answers the nearest available solution
  at a constraint **at least as strict** (``<=``) as the asking
  cell's.  Noise is monotone in word length, so a spec that satisfies
  ``-65`` dB satisfies ``-55`` dB too — a stricter neighbor is always
  a *feasible* seed, never a correctness hazard.  Warm sweeps order
  their grid strictest-first (see
  :meth:`~repro.experiments.engine.SweepPlan.build`) exactly so this
  lookup hits on every cell after the first.
* :func:`lookup_frontier` / :func:`record_frontier` memoize the
  single-search Pareto frontiers of :mod:`repro.wlo.pareto` under the
  same kind of key.

The store is best-effort by design: a miss means a cold search, and a
cell's numbers are *quality-contracted* (feasible, cost no worse than
the engine's cold result — pinned by ``tests/test_wlo_continuation``)
rather than bit-pinned to a particular neighbor being available.  Pool
workers each hold their own store, so ``process``/``workqueue`` sweeps
degrade to per-worker (or cold) continuation without coordination.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

from repro.fixedpoint.spec import FixedPointSpec

__all__ = [
    "CONTINUATION_MODES",
    "apply_warm_start",
    "clear_continuations",
    "lookup_continuation",
    "lookup_frontier",
    "record_continuation",
    "record_frontier",
]

#: The WLO pass continuation modes: ``""`` (cold, the default — every
#: cell searches from scratch), ``"warm"`` (seed each cell from the
#: nearest stricter solution) and ``"pareto"`` (one frontier search
#: per kernel × target, projected onto each cell's constraint).  Part
#: of the pass signature, hence of both cache keys: warm and cold
#: cells can never alias.
CONTINUATION_MODES: tuple[str, ...] = ("", "warm", "pareto")

_LOCK = threading.Lock()
#: key -> [(constraint_db, payload)] sorted ascending by constraint.
_SOLUTIONS: dict[str, list[tuple[float, Any]]] = {}
_FRONTIERS: dict[str, Any] = {}


def record_continuation(key: str, constraint_db: float, payload: Any) -> None:
    """File one solved cell's solution payload under its key."""
    constraint_db = float(constraint_db)
    with _LOCK:
        entries = _SOLUTIONS.setdefault(key, [])
        for index, (existing, _) in enumerate(entries):
            if existing == constraint_db:
                entries[index] = (constraint_db, payload)
                return
        entries.append((constraint_db, payload))
        entries.sort(key=lambda entry: entry[0])


def lookup_continuation(key: str, constraint_db: float) -> Any | None:
    """The payload of the nearest constraint at least as strict.

    "At least as strict" means ``entry <= constraint_db`` (decibel
    constraints are negative; more negative is stricter), so the
    returned solution is guaranteed feasible at ``constraint_db``.
    Returns ``None`` when no such entry exists — the caller searches
    cold.
    """
    constraint_db = float(constraint_db)
    with _LOCK:
        best: tuple[float, Any] | None = None
        for entry_db, payload in _SOLUTIONS.get(key, ()):
            if entry_db <= constraint_db:
                best = (entry_db, payload)
            else:
                break  # entries are sorted ascending
        return None if best is None else best[1]


def record_frontier(key: str, frontier: Any) -> None:
    """Memoize one kernel × target's Pareto frontier."""
    with _LOCK:
        _FRONTIERS[key] = frontier


def lookup_frontier(key: str) -> Any | None:
    with _LOCK:
        return _FRONTIERS.get(key)


def clear_continuations() -> None:
    """Drop every stored solution and frontier (tests, benchmarks)."""
    with _LOCK:
        _SOLUTIONS.clear()
        _FRONTIERS.clear()


# ----------------------------------------------------------------------
def apply_warm_start(
    spec: FixedPointSpec,
    warm_start: dict[int, int] | None,
    supported: Iterable[int],
) -> bool:
    """Seed ``spec`` from a root → word-length assignment, if usable.

    A usable warm start covers every tie-group root of the spec with a
    word length the target supports; anything else (a partial
    assignment, a foreign slot map, an unsupported width) is rejected
    wholesale and the spec is left untouched — the engine then falls
    back to its cold starting point.  Feasibility at the engine's
    constraint is the *caller's* check: this helper is
    constraint-agnostic.
    """
    if warm_start is None:
        return False
    supported_set = set(supported)
    roots = spec.slotmap.roots
    for root in roots:
        if warm_start.get(root) not in supported_set:
            return False
    for root in roots:
        spec.set_wl(root, warm_start[root])
    return True
