"""Word-length-relative cost model for the decoupled WLO baselines.

Menard et al.'s assumption (paper Section II-B / V-A): the relative
execution time of an instruction is proportional to the word length it
operates on — a 32-bit scalar op costs 1, a 16-bit op costs 0.5
(because a 2x16 SIMD instruction *would* retire two of them), an 8-bit
op 0.25.  This is precisely the "very optimistic and unrealistic"
assumption the paper criticizes: it prices SIMD without knowing
whether grouping is possible or what packing would cost.  We implement
it faithfully because the WLO-First baseline needs it.
"""

from __future__ import annotations

from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.optypes import OpKind
from repro.ir.program import Program
from repro.targets.model import TargetModel

__all__ = ["wl_relative_cost"]

#: Op kinds that translate into machine instructions (register moves
#: and constants do not).
_COSTING_KINDS = frozenset({
    OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.MIN, OpKind.MAX,
    OpKind.NEG, OpKind.ABS, OpKind.LOAD, OpKind.STORE,
})


def wl_relative_cost(
    program: Program, spec: FixedPointSpec, target: TargetModel
) -> float:
    """Execution-time estimate under the optimistic WL-relative model.

    Each costing operation contributes ``executions * wl/datapath``:
    at 32 bits the full op, at 16 bits half (assuming perfect 2x16
    SIMDization), at 8 bits a quarter.  Word lengths outside the
    supported set are charged at the next wider supported width.
    """
    supported = sorted(target.supported_wls)
    total = 0.0
    for block in program.blocks.values():
        weight = float(block.executions)
        for op in block.ops:
            if op.kind not in _COSTING_KINDS:
                continue
            wl = spec.wl(op.opid)
            effective = next((w for w in supported if w >= wl), supported[-1])
            total += weight * (effective / target.scalar_wl)
    return total
