"""Job store + background sweep execution behind ``repro serve``.

:class:`SweepService` is deliberately transport-free — the HTTP layer
(:mod:`repro.serve.http`) and the tests drive the same object.  Each
submitted :class:`~repro.api.SweepRequest` becomes a :class:`Job`
running on its own daemon thread; outcomes stream into the job record
as the engine resolves them, so pollers see partial progress, and all
jobs share one in-memory cell memo (plus whatever disk cache the
request names), so resubmissions are served warm.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.api import SweepRequest, outcome_payload
from repro.errors import ReproError

__all__ = ["Job", "SweepService"]


@dataclass
class Job:
    """One submitted sweep and everything pollers may ask about it.

    ``status`` is ``queued`` → ``running`` → ``done`` | ``error``
    (``error`` means the job itself broke — a per-cell failure is a
    normal ``"failed"`` outcome inside a ``done`` job).
    """

    id: int
    request: SweepRequest
    planned: int
    status: str = "queued"
    outcomes: list[dict[str, Any]] = field(default_factory=list)
    counts: dict[str, int] = field(default_factory=dict)
    error: str | None = None
    elapsed_s: float = 0.0

    def summary(self) -> dict[str, Any]:
        """The wire shape of ``GET /jobs/<id>`` (outcomes elided)."""
        return {
            "id": self.id,
            "status": self.status,
            "request": self.request.to_payload(),
            "planned": self.planned,
            "resolved": len(self.outcomes),
            "counts": dict(self.counts),
            "error": self.error,
            "elapsed_s": self.elapsed_s,
        }


class SweepService:
    """Thread-safe sweep-job manager (the daemon's brain).

    ``defaults`` fills request fields absent from submitted payloads —
    the ``repro serve`` CLI flags (``--jobs``, ``--backend``,
    ``--cache-dir``, ``--format`` …) become process-wide defaults a
    client can override per job.  ``config`` forwards kernel sizing overrides
    (``n_samples`` etc.) to every job's runner; tests use it for small
    fast grids.
    """

    def __init__(
        self,
        defaults: dict[str, Any] | None = None,
        config: dict[str, Any] | None = None,
    ) -> None:
        self.defaults = dict(defaults or {})
        self._config = dict(config or {})
        self._jobs: dict[int, Job] = {}
        self._lock = threading.Lock()
        self._next_id = 0
        #: One memo across all jobs: resubmitting a finished request
        #: answers from memory, and overlapping grids share cells.
        self._memo: dict = {}

    # ------------------------------------------------------------------
    def submit_payload(self, payload: dict[str, Any]) -> Job:
        """Validate a wire payload into a running job.

        Raises :class:`~repro.errors.ReproError` subclasses on unknown
        fields or unknown registry names — the HTTP layer maps those
        to 400s with the registry's own "available: …" message.
        """
        request = SweepRequest.from_payload(payload, self.defaults)
        return self.submit(request)

    def submit(self, request: SweepRequest) -> Job:
        request.validate()
        planned = len(request.plan().requests)
        with self._lock:
            self._next_id += 1
            job = Job(self._next_id, request, planned)
            self._jobs[job.id] = job
        thread = threading.Thread(
            target=self._run, args=(job,), daemon=True,
            name=f"repro-serve-job-{job.id}",
        )
        thread.start()
        return job

    # ------------------------------------------------------------------
    def job(self, job_id: int) -> Job:
        with self._lock:
            found = self._jobs.get(job_id)
        if found is None:
            raise ReproError(
                f"unknown job {job_id!r}; known: "
                f"{sorted(self._jobs) or 'none yet'}"
            )
        return found

    def jobs(self) -> list[dict[str, Any]]:
        with self._lock:
            records = list(self._jobs.values())
        return [job.summary() for job in records]

    def outcomes_since(
        self, job_id: int, since: int = 0
    ) -> dict[str, Any]:
        """Incremental poll: outcomes ``since`` (an index a client got
        back as ``next`` last time) plus the job status, so one call
        answers both "anything new?" and "is it finished?"."""
        job = self.job(job_id)
        with self._lock:
            chunk = list(job.outcomes[since:])
            status = job.status
            error = job.error
        return {
            "id": job.id,
            "status": status,
            "error": error,
            "since": since,
            "next": since + len(chunk),
            "outcomes": chunk,
        }

    def stats(self) -> dict[str, Any]:
        with self._lock:
            statuses = [job.status for job in self._jobs.values()]
        return {
            "jobs": len(statuses),
            "running": statuses.count("running") + statuses.count("queued"),
            "done": statuses.count("done"),
            "error": statuses.count("error"),
            "memo_cells": len(self._memo),
        }

    # ------------------------------------------------------------------
    def _run(self, job: Job) -> None:
        from repro.experiments.runner import ExperimentRunner

        started = time.perf_counter()
        try:
            runner = ExperimentRunner.from_request(
                job.request, _cells=self._memo, **self._config
            )
            with self._lock:
                job.status = "running"
            stream = runner.submit_iter(job.request)
            for outcome in stream:
                with self._lock:
                    job.outcomes.append(outcome_payload(outcome))
            stats = stream.stats
            with self._lock:
                job.counts = {
                    "memo": stats.memo,
                    "cache": stats.cache,
                    "computed": stats.computed,
                    "failed": stats.failed,
                }
                job.elapsed_s = round(time.perf_counter() - started, 3)
                job.status = "done"
        except Exception as error:  # job-level breakage, not a cell failure
            with self._lock:
                job.elapsed_s = round(time.perf_counter() - started, 3)
                job.error = f"{type(error).__name__}: {error}"
                job.status = "error"
