"""The JSON wire of ``repro serve`` — stdlib ``http.server`` only.

Endpoints (all JSON):

* ``GET  /health`` — liveness + job stats.
* ``GET  /registries`` — the five registries plus kernels and targets;
  byte-identical payload to ``repro flows --json``.
* ``GET  /jobs`` — every job's summary.
* ``GET  /jobs/<id>`` — one job's summary (counts, progress, status).
* ``GET  /jobs/<id>/outcomes?since=N`` — incremental outcome poll;
  returns ``next`` to pass as the following ``since``.
* ``POST /jobs`` — submit a :class:`~repro.api.SweepRequest` payload;
  missing fields take the server's defaults (its CLI flags), unknown
  fields or names are a 400 carrying the registry's own
  "available: …" message.

Bad requests are ``{"error": "..."}`` with a 4xx status; the handler
never lets a :class:`~repro.errors.ReproError` escape into a 500.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.api import registry_listing
from repro.errors import ReproError
from repro.serve.service import SweepService

__all__ = ["ReproRequestHandler", "make_server"]


class ReproRequestHandler(BaseHTTPRequestHandler):
    """One request; the service lives on the server object."""

    server_version = "repro-serve/1"

    @property
    def service(self) -> SweepService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def _send(self, payload, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, message: str, status: int = 400) -> None:
        self._send({"error": message}, status)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["health"]:
                self._send({"status": "ok", **self.service.stats()})
            elif parts == ["registries"]:
                self._send(registry_listing())
            elif parts == ["jobs"]:
                self._send({"jobs": self.service.jobs()})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send(self.service.job(_job_id(parts[1])).summary())
            elif (
                len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "outcomes"
            ):
                query = parse_qs(url.query)
                since = int(query.get("since", ["0"])[0])
                self._send(
                    self.service.outcomes_since(_job_id(parts[1]), since)
                )
            else:
                self._error(f"no such endpoint: GET {url.path}", 404)
        except ReproError as error:
            self._error(str(error), 404 if "unknown job" in str(error) else 400)
        except ValueError as error:
            self._error(str(error), 400)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts != ["jobs"]:
            self._error(f"no such endpoint: POST {url.path}", 404)
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b"{}"
            payload = json.loads(raw.decode() or "{}")
            if not isinstance(payload, dict):
                raise ReproError("sweep request body must be a JSON object")
            job = self.service.submit_payload(payload)
        except json.JSONDecodeError as error:
            self._error(f"invalid JSON body: {error}")
            return
        except ReproError as error:
            self._error(str(error))
            return
        self._send(
            {
                "id": job.id,
                "status": job.status,
                "planned": job.planned,
                "request": job.request.to_payload(),
            },
            status=201,
        )


def _job_id(text: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ReproError(f"unknown job {text!r}; job ids are integers")


def make_server(
    host: str,
    port: int,
    service: SweepService,
    *,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` threading HTTP server.

    ``port=0`` binds an ephemeral port (tests); read it back from
    ``server.server_address``.
    """
    server = ThreadingHTTPServer((host, port), ReproRequestHandler)
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server
