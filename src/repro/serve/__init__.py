"""``repro serve`` — the sweep engine as a long-lived HTTP job service.

A thin stdlib-only daemon (no new dependencies — the HTTP layer is
``http.server.ThreadingHTTPServer``) wrapping the typed request API of
:mod:`repro.api`:

* :mod:`~repro.serve.service` — :class:`SweepService`: in-process job
  store + one background thread per sweep, streaming
  :class:`~repro.experiments.engine.CellOutcome` payloads into each
  job as they resolve.  All jobs share one in-memory memo and (by
  default) one disk cache, so repeated submissions are warm.
* :mod:`~repro.serve.http` — the JSON wire: ``POST /jobs`` takes a
  :class:`~repro.api.SweepRequest` payload, ``GET /jobs/<id>/outcomes``
  polls incremental results, ``GET /registries`` lists the five
  registries — flows, WLO engines, simulation backends, execution
  backends, numeric formats — (the exact ``repro flows --json``
  payload), ``GET
  /health`` liveness.

Quick start::

    repro serve --port 8642 --jobs 4 &
    curl -s localhost:8642/registries | python -m json.tool
    curl -s -X POST localhost:8642/jobs -d \\
        '{"kernels": ["fir"], "targets": ["xentium"], "grid": [-25.0]}'
    curl -s localhost:8642/jobs/1/outcomes?since=0
"""

from repro.serve.http import make_server
from repro.serve.service import SweepService

__all__ = ["SweepService", "make_server"]
