"""Command-line front end.

Usage examples::

    repro targets
    repro kernels --json
    repro flows
    repro run --kernel fir --target xentium --constraint -25
    repro run --kernel fir --flow wlo-first --wlo min+1 --timings
    repro run --kernel fir --sim-backend scalar
    repro table1 --out results/
    repro fig4 --kernels fir --targets xentium vex-1
    repro fig6
    repro ablations
    repro sweep --jobs 8
    repro sweep --only fir:vex-1 --jobs 2 --cache-dir .sweep-cache
    repro sweep --flow wlo-slp-lite --wlo max-1
    repro sweep --backend workqueue --jobs 8
    repro sweep --only fir:vex-1 --continuation
    repro sweep --only fir:vex-1 --pareto --grid -5 -10 -15 -20 -25
    repro sweep --format float32 --only fir:vex-1
    repro fig4 --dense
    repro serve --port 8642 --jobs 4
    repro validate --stimuli 4 --sim-seed 7 --sim-backend batch
    repro validate --oracle
    repro codegen --kernel fir --target xentium --constraint -25 --simd

Kernels, flows, WLO engines and simulation backends are resolved by
name through their registries (:mod:`repro.kernels`,
:mod:`repro.pipeline`, :mod:`repro.wlo.registry`,
:mod:`repro.ir.backend`); ``repro kernels`` and ``repro flows`` list
them (``--json`` emits the same machine-readable catalog as the
service's ``GET /registries``).

Every sweep-backed command (``sweep``, ``fig4``, ``table1``, ``fig6``,
``ablations``, ``validate``, ``serve``) declares the *same* shared
engine flags — ``--jobs``, ``--backend`` (execution backend:
``serial``/``process``/``chunked``/``workqueue``), ``--cache-dir``,
``--no-cache``, ``--sim-backend``, ``--continuation``, ``--pareto``,
``--format`` (numeric format: ``float32``/``bfloat16``/``binary(E,M)``,
from :mod:`repro.formats`) —
through one argparse parent
parser, and materializes them into a typed
:class:`repro.api.SweepRequest`: the exact object Python callers pass
to :meth:`ExperimentRunner.submit` and HTTP clients POST to
``repro serve``.  Sweeps are fault-tolerant: failing cells are
reported in a per-cell failure table (and a non-zero exit) only after
every other cell completed and persisted.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "SLP-aware word-length optimization for embedded SIMD "
            "processors (DATE 2017 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sim_parent = _sim_backend_parent()
    engine_parent = _engine_parent(sim_parent)

    sub.add_parser("targets", help="list available processor models")

    kernels = sub.add_parser("kernels", help="list available benchmark kernels")
    _json_flag(kernels)

    flows = sub.add_parser(
        "flows",
        help="list registered flows (pass pipelines), WLO engines, "
             "simulation backends and execution backends",
    )
    _json_flag(flows)

    run = sub.add_parser(
        "run", parents=[sim_parent], help="run one flow on one kernel"
    )
    _kernel_target_args(run)
    run.add_argument("--constraint", type=float, default=-25.0,
                     help="accuracy constraint in dB (default -25)")
    run.add_argument(
        "--flow", default="wlo-slp", metavar="FLOW",
        help="registered flow name (see `repro flows`; default wlo-slp)",
    )
    run.add_argument(
        "--wlo", default=None, metavar="ENGINE",
        help="WLO engine for flows with a 'wlo' parameter "
             "(see `repro flows`; default: the flow's declared engine)",
    )
    run.add_argument(
        "--timings", action="store_true",
        help="print the per-pass wall-time report after the run",
    )

    fig4 = sub.add_parser(
        "fig4", parents=[engine_parent], help="regenerate paper Fig. 4"
    )
    fig4.add_argument("--kernels", nargs="+", default=["fir", "iir", "conv"])
    fig4.add_argument("--targets", nargs="+",
                      default=["xentium", "st240", "vex-4", "vex-1"])
    fig4.add_argument(
        "--dense", action="store_true",
        help="4x-resolution constraint grid (28 points, 2.5 dB steps); "
             "defaults the WLO to single-search Pareto-front mode so "
             "the whole panel costs one frontier walk",
    )
    _grid_and_out_args(fig4)

    t1 = sub.add_parser(
        "table1", parents=[engine_parent], help="regenerate paper Table I"
    )
    _grid_and_out_args(t1)

    fig6 = sub.add_parser(
        "fig6", parents=[engine_parent], help="regenerate paper Fig. 6"
    )
    _grid_and_out_args(fig6)

    abl = sub.add_parser(
        "ablations", parents=[engine_parent], help="run the ablation studies"
    )
    abl.add_argument("--kernel", default="fir")
    abl.add_argument("--target", default="xentium")
    _grid_and_out_args(abl, with_grid=False)

    sweep = sub.add_parser(
        "sweep", parents=[engine_parent],
        help="run any slice of the (kernel × target × constraint) grid",
    )
    sweep.add_argument("--kernels", nargs="+", default=["fir", "iir", "conv"])
    sweep.add_argument("--targets", nargs="+",
                       default=["xentium", "st240", "vex-4", "vex-1"])
    sweep.add_argument(
        "--only", nargs="+", default=None, metavar="KERNEL:TARGET",
        help="restrict the grid to these kernel:target pairs",
    )
    sweep.add_argument("--wlo", default="tabu", metavar="ENGINE",
                       help="WLO-First engine, from the WLO registry "
                            "(part of the cell key; default tabu)")
    sweep.add_argument("--flow", default="wlo-slp", metavar="FLOW",
                       help="joint flow variant evaluated per cell, from "
                            "the flow registry (part of the cell key; "
                            "default wlo-slp)")
    _grid_and_out_args(sweep)

    serve = sub.add_parser(
        "serve", parents=[engine_parent],
        help="run the sweep engine as a long-lived HTTP job service "
             "(submit SweepRequest payloads, poll outcomes)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642,
                       help="TCP port (default 8642; 0 = ephemeral)")
    serve.add_argument(
        "--verbose", action="store_true",
        help="log every HTTP request to stderr",
    )

    val = sub.add_parser(
        "validate", parents=[engine_parent],
        help="tabulate analytical vs bit-accurate measured noise",
    )
    val.add_argument("--kernels", nargs="+", default=["fir", "iir", "conv"])
    val.add_argument(
        "--stimuli", type=int, default=2, metavar="N",
        help="random stimuli per kernel simulation (default 2)",
    )
    val.add_argument(
        "--sim-seed", type=int, default=424242, metavar="SEED",
        help="random seed of the stimulus set (default 424242)",
    )
    val.add_argument(
        "--oracle", action="store_true",
        help="add measured-vs-oracle columns: re-measure the noise "
             "against the arbitrary-precision bigfloat reference and "
             "report the float64 reference's own rounding noise, "
             "flagging kernels whose measurement is rounding-limited",
    )
    _grid_and_out_args(val, with_grid=False)

    gen = sub.add_parser("codegen", help="emit fixed-point C code")
    _kernel_target_args(gen)
    gen.add_argument("--constraint", type=float, default=-25.0)
    gen.add_argument("--simd", action="store_true",
                     help="emit SIMD macro-API C instead of scalar C")
    gen.add_argument("-o", "--output", type=Path, default=None)
    return parser


def _kernel_target_args(parser: argparse.ArgumentParser) -> None:
    # Kernel names are validated through the kernel catalog at dispatch
    # time (`repro kernels` lists them), so unknown names produce the
    # library's error message with the available alternatives.
    parser.add_argument("--kernel", default="fir", metavar="KERNEL",
                        help="benchmark kernel (see `repro kernels`)")
    parser.add_argument("--target", default="xentium")


def _json_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable registry catalog (the exact "
             "payload of the serve daemon's GET /registries)",
    )


def _sim_backend_parent() -> argparse.ArgumentParser:
    from repro.ir.backend import available_backends

    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--sim-backend", default=None, metavar="BACKEND",
        choices=available_backends(),
        help="evaluation backend for simulation-based steps "
             f"({'/'.join(available_backends())}; default batch — "
             "bit-identical to scalar, vectorized)",
    )
    return parent


def _engine_parent(
    sim_parent: argparse.ArgumentParser,
) -> argparse.ArgumentParser:
    """The shared engine flags, declared exactly once.

    Every sweep-backed subcommand inherits this parent, so
    ``--jobs/--backend/--cache-dir/--no-cache/--sim-backend`` spell,
    default and document identically everywhere, and
    :meth:`repro.api.SweepRequest.from_args` can materialize any of
    those namespaces the same way.
    """
    parent = argparse.ArgumentParser(add_help=False, parents=[sim_parent])
    parent.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for cell evaluation (default 1 = serial)",
    )
    parent.add_argument(
        "--backend", default=None, metavar="BACKEND",
        help="execution backend dispatching the missing cells "
             "(serial/process/chunked/workqueue; default: serial for "
             "--jobs 1, process otherwise — chunked amortizes IPC per "
             "kernel-major chunk, workqueue adds leases/heartbeats/"
             "retries and survives worker deaths)",
    )
    parent.add_argument(
        "--cache-dir", type=Path, default=None,
        help="sweep result cache directory "
             "(default ~/.cache/repro/sweep or $REPRO_CACHE_DIR)",
    )
    parent.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk result cache entirely")
    parent.add_argument(
        "--continuation", action="store_true",
        help="warm-start each cell's WLO from its nearest stricter "
             "neighbor's solution (constraints run strictest-first; "
             "results stay feasible and never cost more than cold)",
    )
    parent.add_argument(
        "--pareto", action="store_true",
        help="single-search Pareto-front WLO: walk each kernel/target's "
             "cost-noise frontier once and project it onto every grid "
             "constraint (joint flows degrade to --continuation)",
    )
    parent.add_argument(
        "--format", default=None, metavar="FORMAT",
        help="numeric format of every cell, from the formats registry "
             "(float32/bfloat16/binary(E,M)/...; see `repro flows`). "
             "Default: the paper's fixed-point quantization; a float "
             "format skips WLO and reports the format's own rounding "
             "noise instead",
    )
    return parent


def _grid_and_out_args(
    parser: argparse.ArgumentParser, with_grid: bool = True
) -> None:
    if with_grid:
        parser.add_argument(
            "--grid", nargs="+", type=float, default=None,
            help="accuracy constraints in dB (default: the paper grid)",
        )
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for CSV/JSON copies of the results")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "targets":
        from repro.targets import available_targets, get_target

        for name in available_targets():
            print(get_target(name).describe())
        return 0

    if args.command == "kernels":
        from repro.api import registry_listing
        from repro.kernels import kernel_catalog

        if args.as_json:
            print(json.dumps(registry_listing(), indent=2, sort_keys=True))
            return 0
        catalog = kernel_catalog()
        width = max(len(name) for name in catalog)
        for name in sorted(catalog):
            _factory, description = catalog[name]
            print(f"{name:<{width}}  {description}")
        return 0

    if args.command == "flows":
        return _cmd_flows(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "codegen":
        return _cmd_codegen(args)
    if args.command == "serve":
        return _cmd_serve(args)

    from repro.api import SweepRequest
    from repro.experiments import (
        DENSE_CONSTRAINT_GRID,
        PAPER_CONSTRAINT_GRID,
        ablation_wlo_engines,
        ablation_wlo_slp_features,
        render_fig4,
        render_fig6,
        fig4_table,
        fig6_table,
        table1,
        validation_table,
    )

    request = SweepRequest.from_args(args).validate()
    runner = _make_runner(request)
    grid = tuple(getattr(args, "grid", None) or PAPER_CONSTRAINT_GRID)
    if request.format and args.command in (
        "table1", "fig6", "ablations", "validate"
    ):
        raise ReproError(
            f"--format applies to sweep and fig4 only: {args.command} "
            "tabulates fixed-point WLO results"
        )

    if args.command == "sweep":
        return _cmd_sweep(args, request, runner)
    if args.command == "fig4":
        mode = request.continuation_mode
        if args.dense:
            if getattr(args, "grid", None) is None:
                grid = DENSE_CONSTRAINT_GRID
            # A dense panel under per-cell cold WLO would cost 4x the
            # paper grid; the Pareto-front engine walks each panel's
            # frontier once regardless of resolution.  An explicit
            # --continuation still wins.
            mode = mode or "pareto"
        print(render_fig4(runner, request.kernels, request.targets, grid,
                          sim_backend=request.sim_backend,
                          continuation=mode, format=request.format))
        _export(args, fig4_table(runner, request.kernels, request.targets,
                                 grid, sim_backend=request.sim_backend,
                                 continuation=mode, format=request.format),
                "fig4")
        return 0
    if args.command == "table1":
        table = table1(runner, grid=grid, sim_backend=request.sim_backend)
        print(table.render())
        _export(args, table, "table1")
        return 0
    if args.command == "fig6":
        print(render_fig6(runner, grid=grid, sim_backend=request.sim_backend))
        _export(args, fig6_table(runner, grid=grid,
                                 sim_backend=request.sim_backend), "fig6")
        return 0
    if args.command == "validate":
        from repro.ir.backend import DEFAULT_BACKEND

        table = validation_table(
            runner, request.kernels, n_stimuli=args.stimuli,
            seed=args.sim_seed,
            backend=request.sim_backend or DEFAULT_BACKEND,
            oracle=args.oracle,
        )
        print(table.render())
        _export(args, table, "model_validation")
        return 0
    if args.command == "ablations":
        features = ablation_wlo_slp_features(runner, args.kernel, args.target)
        engines = ablation_wlo_engines(runner, args.kernel, args.target)
        print(features.render())
        print()
        print(engines.render())
        _export(args, features, "ablation_features")
        _export(args, engines, "ablation_engines")
        return 0
    raise ReproError(f"unhandled command {args.command!r}")


def _cmd_flows(args: argparse.Namespace) -> int:
    from repro.api import registry_listing

    listing = registry_listing()
    if args.as_json:
        print(json.dumps(listing, indent=2, sort_keys=True))
        return 0
    width = max(len(flow["name"]) for flow in listing["flows"])
    for flow in listing["flows"]:
        print(f"{flow['name']:<{width}}  {flow['description']}")
        print(f"{'':<{width}}    passes: {' -> '.join(flow['passes'])}")
    print(f"\nWLO engines: {', '.join(listing['wlo_engines'])}")
    print(
        "WLO continuation modes: "
        f"{', '.join(listing['wlo_continuation_modes'])} "
        "(sweep --continuation / --pareto; default: cold)"
    )
    backends = ", ".join(
        f"{b['name']} ({b['description']}"
        + (
            f"; tiers: {', '.join(t['name'] for t in b['tiers'])}"
            if b["tiers"] else ""
        )
        + ")"
        for b in listing["sim_backends"]
    )
    print(f"Simulation backends: {backends}")
    dispatchers = ", ".join(
        f"{b['name']} ({b['description']})"
        for b in listing["execution_backends"]
    )
    print(f"Execution backends: {dispatchers}")
    formats = ", ".join(
        f"{f['name']} ({f['description']})" for f in listing["formats"]
    )
    print(
        f"Formats: {formats}; plus parameterized binary(E,M) "
        "(E exponent / M mantissa bits, e.g. --format 'binary(8,10)')"
    )
    return 0


def _make_runner(request):
    """An engine-backed runner honouring the request's execution
    options (--jobs/--backend/--cache-dir/--no-cache)."""
    from repro.experiments import ExperimentRunner
    from repro.report import ProgressPrinter

    return ExperimentRunner.from_request(request, progress=ProgressPrinter())


def _cmd_sweep(args: argparse.Namespace, request, runner) -> int:
    """Run a grid slice through the engine and print the flat table.

    Fault-tolerant: a failing cell (e.g. an infeasible constraint)
    never aborts the sweep — every other cell completes, persists to
    the cache, and prints; the failures get their own per-cell table
    and the exit status is non-zero only after everything completable
    completed.
    """
    from repro.report import TextTable

    report = runner.submit(request)
    order = {req: i for i, req in enumerate(request.plan(runner.config).requests)}
    outcomes = sorted(
        report.outcomes, key=lambda o: order[report.cell_request(o)]
    )
    table = TextTable(
        headers=(
            "kernel", "target", "constraint_db", "wlo", "flow", "format",
            "scalar_cycles", "wlo_first_speedup", "wlo_slp_speedup",
            "float_speedup", "wlo_iters", "warm",
        ),
        title="Sweep — (kernel × target × constraint) cells",
    )
    failures = TextTable(
        headers=("kernel", "target", "constraint_db", "wlo", "flow",
                 "format", "error"),
        title="Failed cells — completed cells above were kept and cached",
    )
    for outcome in outcomes:
        cell_request = report.cell_request(outcome)
        cell = report.cell(outcome)
        if cell is None:
            failures.add_row(
                cell_request.kernel, cell_request.target,
                cell_request.constraint_db, cell_request.wlo,
                cell_request.flow, cell_request.format or "fixed",
                outcome["error"],
            )
            continue
        table.add_row(
            cell.kernel, cell.target, cell.constraint_db, cell_request.wlo,
            cell_request.flow, cell_request.format or "fixed",
            cell.scalar_cycles,
            round(cell.wlo_first_speedup, 3),
            round(cell.wlo_slp_speedup, 3),
            round(cell.float_speedup, 3),
            cell.wlo_iterations,
            "yes" if cell.warm_start else "",
        )
    print(table.render())
    failed = report.counts.get("failed", 0)
    if failed:
        print()
        print(failures.render())
    stats_text = (
        f"{len(report.outcomes)} cells: {report.counts.get('computed', 0)} "
        f"computed, {report.counts.get('cache', 0)} from disk cache, "
        f"{report.counts.get('memo', 0)} memoized"
    )
    if failed:
        stats_text += f", {failed} failed"
    print(f"\n{stats_text} in {report.elapsed_s:.1f}s")
    _export(args, table, "sweep")
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Start the HTTP job service; the engine flags become the
    process-wide request defaults that submitted payloads may
    override per job."""
    from repro.api import SweepRequest
    from repro.serve import SweepService, make_server

    defaults = SweepRequest.from_args(args).validate()
    service = SweepService(
        defaults={
            "jobs": defaults.jobs,
            "backend": defaults.backend,
            "cache_dir": defaults.cache_dir,
            "no_cache": defaults.no_cache,
            "sim_backend": defaults.sim_backend,
            "continuation": defaults.continuation,
            "pareto": defaults.pareto,
            "format": defaults.format,
        }
    )
    server = make_server(args.host, args.port, service, verbose=args.verbose)
    host, port = server.server_address[:2]
    print(f"repro serve listening on http://{host}:{port}")
    print("  POST /jobs              submit a SweepRequest payload")
    print("  GET  /jobs/<id>/outcomes?since=N   poll results")
    print("  GET  /registries        list flows/engines/backends/"
          "formats/kernels")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import RunRequest
    from repro.flows.common import FlowResult

    request = RunRequest.from_args(args)
    result, state = request.execute()
    print(result.summary())
    if isinstance(result, FlowResult) and result.spec is not None:
        print(result.spec.describe())
    if args.timings:
        print()
        print(state.timing_report())
        stats = None
        if isinstance(result, FlowResult):
            stats = result.extra.get("wlo_stats")
        elif hasattr(result, "simd"):  # WloFirstResult
            stats = result.simd.extra.get("wlo_stats")
        if stats is not None:
            from repro.experiments.engine import wlo_stats_numbers

            iterations, evaluations, warm = wlo_stats_numbers(stats)
            print(
                f"WLO search: {iterations} iterations, "
                f"{evaluations} evaluations"
                + (" (warm start)" if warm else "")
            )
        if isinstance(result, FlowResult) and result.spec is not None:
            from repro.fixedpoint.widthproof import prove_int64_safe
            from repro.ir.backend import DEFAULT_BACKEND, get_backend
            from repro.kernels import kernel_by_name

            backend = get_backend(request.sim_backend or DEFAULT_BACKEND)
            program = kernel_by_name(request.kernel)
            tier = backend.fixed_tier(program, result.spec)
            line = f"fixed-point sim tier: {tier}"
            if backend.tiers:
                proof = prove_int64_safe(program, result.spec)
                line += f" — {proof.describe()}"
            print(line)
    return 0


def _cmd_codegen(args: argparse.Namespace) -> int:
    from repro.flows import AnalysisContext, run_wlo_slp
    from repro.codegen import emit_fixed_point_c, emit_simd_c
    from repro.kernels import kernel_by_name
    from repro.targets import get_target

    program = kernel_by_name(args.kernel)
    target = get_target(args.target)
    context = AnalysisContext.build(program)
    result = run_wlo_slp(program, target, args.constraint, context)
    assert result.spec is not None and result.groups is not None
    if args.simd:
        source = emit_simd_c(program, result.spec, result.groups)
    else:
        source = emit_fixed_point_c(program, result.spec)
    if args.output is not None:
        args.output.write_text(source)
        print(f"wrote {args.output}")
    else:
        print(source)
    return 0


def _export(args: argparse.Namespace, table, stem: str) -> None:
    out = getattr(args, "out", None)
    if out is None:
        return
    out.mkdir(parents=True, exist_ok=True)
    table.to_csv(out / f"{stem}.csv")
    table.to_json(out / f"{stem}.json")
    print(f"\n[wrote {out}/{stem}.csv and .json]")


if __name__ == "__main__":
    sys.exit(main())
