"""Command-line front end.

Usage examples::

    repro targets
    repro kernels
    repro flows
    repro run --kernel fir --target xentium --constraint -25
    repro run --kernel fir --flow wlo-first --wlo min+1 --timings
    repro run --kernel fir --sim-backend scalar
    repro table1 --out results/
    repro fig4 --kernels fir --targets xentium vex-1
    repro fig6
    repro ablations
    repro sweep --jobs 8
    repro sweep --only fir:vex-1 --jobs 2 --cache-dir .sweep-cache
    repro sweep --flow wlo-slp-lite --wlo max-1
    repro sweep --backend chunked --jobs 8 --cache-dir /mnt/shared/sweep
    repro validate --stimuli 4 --sim-seed 7 --sim-backend batch
    repro codegen --kernel fir --target xentium --constraint -25 --simd

Kernels, flows, WLO engines and simulation backends are resolved by
name through their registries (:mod:`repro.kernels`,
:mod:`repro.pipeline`, :mod:`repro.wlo.registry`,
:mod:`repro.ir.backend`); ``repro kernels`` and ``repro flows`` list
them.  The sweep-backed commands (``sweep``, ``fig4``, ``table1``,
``fig6``, ``ablations``) share the engine flags ``--jobs``
(process-pool width), ``--backend`` (execution backend from
:mod:`repro.experiments.backends` — ``serial``/``process``/``chunked``;
``chunked`` workers share the cache directory, cooperating across
hosts), ``--cache-dir`` (persistent result cache, default
``~/.cache/repro/sweep`` or ``$REPRO_CACHE_DIR``) and ``--no-cache``.
Sweeps are fault-tolerant: failing cells are reported in a per-cell
failure table (and a non-zero exit) only after every other cell
completed and persisted.  Simulation-backed commands take ``--sim-backend
{scalar,batch}`` (``batch``, the default, is bit-identical and an
order of magnitude faster) and ``validate`` additionally ``--stimuli``
/ ``--sim-seed``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "SLP-aware word-length optimization for embedded SIMD "
            "processors (DATE 2017 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("targets", help="list available processor models")

    sub.add_parser("kernels", help="list available benchmark kernels")

    sub.add_parser(
        "flows",
        help="list registered flows (pass pipelines), WLO engines and "
             "simulation backends",
    )

    run = sub.add_parser("run", help="run one flow on one kernel")
    _kernel_target_args(run)
    run.add_argument("--constraint", type=float, default=-25.0,
                     help="accuracy constraint in dB (default -25)")
    run.add_argument(
        "--flow", default="wlo-slp", metavar="FLOW",
        help="registered flow name (see `repro flows`; default wlo-slp)",
    )
    run.add_argument(
        "--wlo", default=None, metavar="ENGINE",
        help="WLO engine for flows with a 'wlo' parameter "
             "(see `repro flows`; default: the flow's declared engine)",
    )
    run.add_argument(
        "--timings", action="store_true",
        help="print the per-pass wall-time report after the run",
    )
    _sim_backend_arg(run)

    fig4 = sub.add_parser("fig4", help="regenerate paper Fig. 4")
    fig4.add_argument("--kernels", nargs="+", default=["fir", "iir", "conv"])
    fig4.add_argument("--targets", nargs="+",
                      default=["xentium", "st240", "vex-4", "vex-1"])
    _grid_and_out_args(fig4)

    t1 = sub.add_parser("table1", help="regenerate paper Table I")
    _grid_and_out_args(t1)

    fig6 = sub.add_parser("fig6", help="regenerate paper Fig. 6")
    _grid_and_out_args(fig6)

    abl = sub.add_parser("ablations", help="run the ablation studies")
    abl.add_argument("--kernel", default="fir")
    abl.add_argument("--target", default="xentium")
    _grid_and_out_args(abl, with_grid=False)

    sweep = sub.add_parser(
        "sweep",
        help="run any slice of the (kernel × target × constraint) grid",
    )
    sweep.add_argument("--kernels", nargs="+", default=["fir", "iir", "conv"])
    sweep.add_argument("--targets", nargs="+",
                       default=["xentium", "st240", "vex-4", "vex-1"])
    sweep.add_argument(
        "--only", nargs="+", default=None, metavar="KERNEL:TARGET",
        help="restrict the grid to these kernel:target pairs",
    )
    sweep.add_argument("--wlo", default="tabu", metavar="ENGINE",
                       help="WLO-First engine, from the WLO registry "
                            "(part of the cell key; default tabu)")
    sweep.add_argument("--flow", default="wlo-slp", metavar="FLOW",
                       help="joint flow variant evaluated per cell, from "
                            "the flow registry (part of the cell key; "
                            "default wlo-slp)")
    _grid_and_out_args(sweep)

    val = sub.add_parser(
        "validate",
        help="tabulate analytical vs bit-accurate measured noise",
    )
    val.add_argument("--kernels", nargs="+", default=["fir", "iir", "conv"])
    val.add_argument(
        "--stimuli", type=int, default=2, metavar="N",
        help="random stimuli per kernel simulation (default 2)",
    )
    val.add_argument(
        "--sim-seed", type=int, default=424242, metavar="SEED",
        help="random seed of the stimulus set (default 424242)",
    )
    _sim_backend_arg(val)
    _grid_and_out_args(val, with_grid=False)

    gen = sub.add_parser("codegen", help="emit fixed-point C code")
    _kernel_target_args(gen)
    gen.add_argument("--constraint", type=float, default=-25.0)
    gen.add_argument("--simd", action="store_true",
                     help="emit SIMD macro-API C instead of scalar C")
    gen.add_argument("-o", "--output", type=Path, default=None)
    return parser


def _kernel_target_args(parser: argparse.ArgumentParser) -> None:
    # Kernel names are validated through the kernel catalog at dispatch
    # time (`repro kernels` lists them), so unknown names produce the
    # library's error message with the available alternatives.
    parser.add_argument("--kernel", default="fir", metavar="KERNEL",
                        help="benchmark kernel (see `repro kernels`)")
    parser.add_argument("--target", default="xentium")


def _sim_backend_arg(parser: argparse.ArgumentParser) -> None:
    from repro.ir.backend import available_backends

    parser.add_argument(
        "--sim-backend", default=None, metavar="BACKEND",
        choices=available_backends(),
        help="evaluation backend for simulation-based steps "
             f"({'/'.join(available_backends())}; default batch — "
             "bit-identical to scalar, vectorized)",
    )


def _grid_and_out_args(
    parser: argparse.ArgumentParser, with_grid: bool = True
) -> None:
    if with_grid:
        parser.add_argument(
            "--grid", nargs="+", type=float, default=None,
            help="accuracy constraints in dB (default: the paper grid)",
        )
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for CSV/JSON copies of the results")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for cell evaluation (default 1 = serial)",
    )
    parser.add_argument(
        "--backend", default=None, metavar="BACKEND",
        help="execution backend dispatching the missing cells "
             "(serial/process/chunked; default: serial for --jobs 1, "
             "process otherwise — chunked amortizes IPC per kernel-major "
             "chunk and lets workers share --cache-dir across hosts)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="sweep result cache directory "
             "(default ~/.cache/repro/sweep or $REPRO_CACHE_DIR)",
    )
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk result cache entirely")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "targets":
        from repro.targets import available_targets, get_target

        for name in available_targets():
            print(get_target(name).describe())
        return 0

    if args.command == "kernels":
        from repro.kernels import kernel_catalog

        catalog = kernel_catalog()
        width = max(len(name) for name in catalog)
        for name in sorted(catalog):
            _factory, description = catalog[name]
            print(f"{name:<{width}}  {description}")
        return 0

    if args.command == "flows":
        from repro.experiments.backends import (
            available_execution_backends,
            get_execution_backend,
        )
        from repro.ir.backend import available_backends, get_backend
        from repro.pipeline import available_flows, get_flow
        from repro.wlo.registry import available_wlo_engines

        width = max(len(name) for name in available_flows())
        for name in available_flows():
            spec = get_flow(name)
            print(f"{name:<{width}}  {spec.description}")
            print(f"{'':<{width}}    passes: {' -> '.join(spec.pass_names())}")
        print(f"\nWLO engines: {', '.join(available_wlo_engines())}")
        backends = ", ".join(
            f"{name} ({get_backend(name).description})"
            for name in available_backends()
        )
        print(f"Simulation backends: {backends}")
        dispatchers = ", ".join(
            f"{name} ({get_execution_backend(name).description})"
            for name in available_execution_backends()
        )
        print(f"Execution backends: {dispatchers}")
        return 0

    if args.command == "run":
        return _cmd_run(args)
    if args.command == "codegen":
        return _cmd_codegen(args)

    from repro.experiments import (
        PAPER_CONSTRAINT_GRID,
        ablation_wlo_engines,
        ablation_wlo_slp_features,
        render_fig4,
        render_fig6,
        fig4_table,
        fig6_table,
        table1,
        validation_table,
    )

    runner = _make_runner(args)
    grid = tuple(getattr(args, "grid", None) or PAPER_CONSTRAINT_GRID)

    if args.command == "sweep":
        return _cmd_sweep(args, runner, grid)
    if args.command == "fig4":
        print(render_fig4(runner, tuple(args.kernels), tuple(args.targets), grid))
        _export(args, fig4_table(runner, tuple(args.kernels),
                                 tuple(args.targets), grid), "fig4")
        return 0
    if args.command == "table1":
        table = table1(runner, grid=grid)
        print(table.render())
        _export(args, table, "table1")
        return 0
    if args.command == "fig6":
        print(render_fig6(runner, grid=grid))
        _export(args, fig6_table(runner, grid=grid), "fig6")
        return 0
    if args.command == "validate":
        from repro.ir.backend import DEFAULT_BACKEND

        table = validation_table(
            runner, tuple(args.kernels), n_stimuli=args.stimuli,
            seed=args.sim_seed, backend=args.sim_backend or DEFAULT_BACKEND,
        )
        print(table.render())
        _export(args, table, "model_validation")
        return 0
    if args.command == "ablations":
        features = ablation_wlo_slp_features(runner, args.kernel, args.target)
        engines = ablation_wlo_engines(runner, args.kernel, args.target)
        print(features.render())
        print()
        print(engines.render())
        _export(args, features, "ablation_features")
        _export(args, engines, "ablation_engines")
        return 0
    raise ReproError(f"unhandled command {args.command!r}")


def _make_runner(args: argparse.Namespace):
    """An engine-backed runner honouring the shared engine flags
    (--jobs/--backend/--cache-dir/--no-cache)."""
    from repro.experiments import ExperimentRunner, SweepCache
    from repro.experiments.backends import get_execution_backend
    from repro.report import ProgressPrinter

    backend = getattr(args, "backend", None)
    if backend is not None:
        get_execution_backend(backend)  # validate, listing alternatives
    cache = None
    if not getattr(args, "no_cache", False):
        cache = SweepCache(getattr(args, "cache_dir", None))
    return ExperimentRunner(
        jobs=getattr(args, "jobs", 1),
        cache=cache,
        progress=ProgressPrinter(),
        backend=backend,
    )


def _cmd_sweep(args: argparse.Namespace, runner, grid: tuple[float, ...]) -> int:
    """Run a grid slice through the engine and print the flat table.

    Fault-tolerant: a failing cell (e.g. an infeasible constraint)
    never aborts the sweep — every other cell completes, persists to
    the cache, and prints; the failures get their own per-cell table
    and the exit status is non-zero only after everything completable
    completed.
    """
    import time

    from repro.experiments import SweepPlan
    from repro.pipeline import get_flow
    from repro.report import TextTable
    from repro.wlo.registry import get_wlo_engine

    get_flow(args.flow)  # validate names up front, listing alternatives
    get_wlo_engine(args.wlo)
    only = tuple(args.only) if args.only else None
    started = time.perf_counter()
    stats = runner.prefetch(
        tuple(args.kernels), tuple(args.targets), grid, wlo=args.wlo,
        only=only, flow=args.flow,
    )
    elapsed = time.perf_counter() - started

    plan = SweepPlan.build(
        runner.config, args.kernels, args.targets, grid, args.wlo, only,
        args.flow,
    )
    failed = {request: error for request, error in stats.failures}
    table = TextTable(
        headers=(
            "kernel", "target", "constraint_db", "wlo", "flow",
            "scalar_cycles", "wlo_first_speedup", "wlo_slp_speedup",
            "float_speedup",
        ),
        title="Sweep — (kernel × target × constraint) cells",
    )
    for request in plan.requests:
        if request in failed:
            continue
        cell = runner.cell(
            request.kernel, request.target, request.constraint_db,
            request.wlo, request.flow,
        )
        table.add_row(
            cell.kernel, cell.target, cell.constraint_db, request.wlo,
            request.flow,
            cell.scalar_cycles,
            round(cell.wlo_first_speedup, 3),
            round(cell.wlo_slp_speedup, 3),
            round(cell.float_speedup, 3),
        )
    print(table.render())
    if failed:
        failures = TextTable(
            headers=("kernel", "target", "constraint_db", "wlo", "flow",
                     "error"),
            title="Failed cells — completed cells above were kept and cached",
        )
        for request, error in stats.failures:
            failures.add_row(
                request.kernel, request.target, request.constraint_db,
                request.wlo, request.flow, error,
            )
        print()
        print(failures.render())
    print(f"\n{stats.summary()} in {elapsed:.1f}s")
    _export(args, table, "sweep")
    return 1 if failed else 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.flows.common import FlowResult
    from repro.kernels import kernel_by_name
    from repro.pipeline import execute_flow, get_flow
    from repro.targets import get_target
    from repro.wlo.registry import get_wlo_engine

    program = kernel_by_name(args.kernel)
    target = get_target(args.target)
    spec = get_flow(args.flow)  # validates the name, listing alternatives
    overrides = {}
    if args.wlo is not None:
        get_wlo_engine(args.wlo)  # validates the engine, listing engines
        overrides["wlo"] = args.wlo
    if args.sim_backend is not None and "sim_backend" in spec.params:
        # Flows without simulation-backed passes (e.g. float) take no
        # backend; the flag is a no-op for them rather than an error.
        overrides["sim_backend"] = args.sim_backend
    result, state = execute_flow(
        args.flow, program, target,
        args.constraint if spec.needs_constraint else None,
        **overrides,
    )
    print(result.summary())
    if isinstance(result, FlowResult) and result.spec is not None:
        print(result.spec.describe())
    if args.timings:
        print()
        print(state.timing_report())
    return 0


def _cmd_codegen(args: argparse.Namespace) -> int:
    from repro.flows import AnalysisContext, run_wlo_slp
    from repro.codegen import emit_fixed_point_c, emit_simd_c
    from repro.kernels import kernel_by_name
    from repro.targets import get_target

    program = kernel_by_name(args.kernel)
    target = get_target(args.target)
    context = AnalysisContext.build(program)
    result = run_wlo_slp(program, target, args.constraint, context)
    assert result.spec is not None and result.groups is not None
    if args.simd:
        source = emit_simd_c(program, result.spec, result.groups)
    else:
        source = emit_fixed_point_c(program, result.spec)
    if args.output is not None:
        args.output.write_text(source)
        print(f"wrote {args.output}")
    else:
        print(source)
    return 0


def _export(args: argparse.Namespace, table, stem: str) -> None:
    out = getattr(args, "out", None)
    if out is None:
        return
    out.mkdir(parents=True, exist_ok=True)
    table.to_csv(out / f"{stem}.csv")
    table.to_json(out / f"{stem}.json")
    print(f"\n[wrote {out}/{stem}.csv and .json]")


if __name__ == "__main__":
    sys.exit(main())
