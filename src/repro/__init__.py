"""repro — SLP-aware word-length optimization for embedded SIMD processors.

A from-scratch Python reproduction of El Moussawi & Derrien,
"Superword Level Parallelism aware Word Length Optimization",
DATE 2017 (hal-01425550): joint float-to-fixed-point conversion and
superword-level-parallelism extraction, with all supporting substrates
(IR, fixed-point arithmetic, analytical accuracy models, VLIW target
models, cycle-level scheduling, code generation) included.

Quick start::

    from repro import kernels, flows, targets

    program = kernels.fir(n_samples=256)
    target = targets.get_target("xentium")
    result = flows.run_wlo_slp(program, target, accuracy_db=-25.0)
    print(result.summary())
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
