"""On-disk sweep result cache.

One JSON file per cell under a cache directory, named by a SHA-256
content hash of everything that determines the cell's numbers: the
kernel problem sizes (:class:`~repro.experiments.engine.KernelConfig`),
the full cell key (kernel, target, constraint, WLO engine), and
:func:`~repro.flows.common.flow_code_version` — a hash of every
semantic source module.  Editing flows/WLO/SLP/accuracy/… code rolls
the version and orphans stale entries; editing tests, docs, report
renderers or the CLI leaves the cache warm, so re-rendering
``fig4``/``table1``/``fig6`` after an unrelated edit is near-instant.

The cache is forgiving by design: a corrupted, truncated or
foreign-format file is treated as a miss and overwritten on the next
store, never raised to the caller.  Writes go through a same-directory
temp file + ``os.replace`` so concurrent workers — including workers
on *other hosts* sharing the directory over a network mount (the
``chunked`` execution backend's cooperation mode) — never tear each
other's reads.  A temp file orphaned by a worker that died mid-write
is unlinked on the failure path when possible, and stale leftovers
from hard kills are swept by the coordinating
:class:`~repro.experiments.engine.SweepExecutor` at the start of each
resolve (:meth:`SweepCache.sweep_stale_tmp` — never in the store hot
path).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
import uuid
from pathlib import Path

from repro.experiments.engine import (
    Cell,
    CellRequest,
    KernelConfig,
    cell_pipeline_signature,
)
from repro.flows.common import flow_code_version

__all__ = ["SweepCache", "default_cache_dir"]

# 3: CellRequest gained the ``format`` field (repro.formats) — the
# asdict'd request payload changed shape, so pre-format entries are
# orphaned rather than half-matched.
_FORMAT_VERSION = 3

#: Temp files older than this are presumed orphaned by a dead worker
#: (a healthy write lives milliseconds) and swept on the next store.
_TMP_STALE_SECONDS = 3600.0


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/sweep``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "sweep"


class SweepCache:
    """Persistent (config, request) → :class:`Cell` store."""

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self._swept_stale_tmp = False

    # ------------------------------------------------------------------
    def key(self, config: KernelConfig, request: CellRequest) -> str:
        """Stable content hash of one cell's full identity.

        Besides the config, the request and the code version, the key
        hashes the *resolved pipeline structure* of the cell's flows —
        every pass signature of the float/baseline/joint pipelines, in
        order — so a newly declared flow variant (or a re-parameterized
        pass list) can never alias cells of another pipeline shape.
        """
        payload = {
            "format": _FORMAT_VERSION,
            "code_version": flow_code_version(),
            "config": dataclasses.asdict(config),
            "request": dataclasses.asdict(request),
            "pipeline": cell_pipeline_signature(request),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:32]

    def path(self, config: KernelConfig, request: CellRequest) -> Path:
        return self.directory / f"{self.key(config, request)}.json"

    # ------------------------------------------------------------------
    def load(self, config: KernelConfig, request: CellRequest) -> Cell | None:
        """The cached cell, or ``None`` on miss *or any* decode failure."""
        path = self.path(config, request)
        try:
            payload = json.loads(path.read_text())
            cell = Cell(**payload["cell"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            return None  # corrupted / truncated / foreign file: recompute
        if payload.get("request") != dataclasses.asdict(request):
            return None  # hash collision or hand-edited entry
        if (
            cell.kernel != request.kernel
            or cell.target != request.target
            or cell.constraint_db != request.constraint_db
        ):
            return None  # entry's cell belongs to a different key
        return cell

    def store(self, config: KernelConfig, request: CellRequest, cell: Cell) -> Path:
        """Atomically persist one cell; returns its path.

        The temp file is unlinked if the write or rename fails, so an
        interrupted store leaves no permanent ``*.json.tmp*`` litter;
        leftovers from workers killed too hard to clean up are swept
        by :meth:`sweep_stale_tmp` (called by the sweep *coordinator*,
        not here — a store is the hot path of every chunked worker and
        must not pay an O(directory) glob over a network mount).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path(config, request)
        payload = {
            "format": _FORMAT_VERSION,
            "code_version": flow_code_version(),
            "config": dataclasses.asdict(config),
            "request": dataclasses.asdict(request),
            "pipeline": cell_pipeline_signature(request),
            "cell": dataclasses.asdict(cell),
        }
        # PID alone is not unique across the hosts that may share this
        # directory over a network mount (the chunked backend's
        # cooperation mode); the random component keeps two same-PID
        # writers on different machines from interleaving one file.
        tmp = path.with_name(
            path.name + f".tmp{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        return path

    def sweep_stale_tmp(self) -> None:
        """Unlink temp files orphaned by dead workers (once per instance).

        Called by :class:`~repro.experiments.engine.SweepExecutor` at
        the start of each resolve, so the directory is groomed once
        per sweep by its coordinator rather than per worker store.
        Only files older than :data:`_TMP_STALE_SECONDS` go — a live
        concurrent writer's temp file is always younger.  Racing
        sweepers are fine: losing the unlink race is ignored.
        """
        if self._swept_stale_tmp:
            return
        self._swept_stale_tmp = True
        cutoff = time.time() - _TMP_STALE_SECONDS
        for tmp in self.directory.glob("*.json.tmp*"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
            except OSError:
                pass  # vanished or swept by a peer: nothing to do

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))
