"""On-disk sweep result cache.

One JSON file per cell under a cache directory, named by a SHA-256
content hash of everything that determines the cell's numbers: the
kernel problem sizes (:class:`~repro.experiments.engine.KernelConfig`),
the full cell key (kernel, target, constraint, WLO engine), and
:func:`~repro.flows.common.flow_code_version` — a hash of every
semantic source module.  Editing flows/WLO/SLP/accuracy/… code rolls
the version and orphans stale entries; editing tests, docs, report
renderers or the CLI leaves the cache warm, so re-rendering
``fig4``/``table1``/``fig6`` after an unrelated edit is near-instant.

The cache is forgiving by design: a corrupted, truncated or
foreign-format file is treated as a miss and overwritten on the next
store, never raised to the caller.  Writes go through a same-directory
temp file + ``os.replace`` so concurrent workers can share a cache
directory without torn reads.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path

from repro.experiments.engine import (
    Cell,
    CellRequest,
    KernelConfig,
    cell_pipeline_signature,
)
from repro.flows.common import flow_code_version

__all__ = ["SweepCache", "default_cache_dir"]

_FORMAT_VERSION = 2


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/sweep``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "sweep"


class SweepCache:
    """Persistent (config, request) → :class:`Cell` store."""

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()

    # ------------------------------------------------------------------
    def key(self, config: KernelConfig, request: CellRequest) -> str:
        """Stable content hash of one cell's full identity.

        Besides the config, the request and the code version, the key
        hashes the *resolved pipeline structure* of the cell's flows —
        every pass signature of the float/baseline/joint pipelines, in
        order — so a newly declared flow variant (or a re-parameterized
        pass list) can never alias cells of another pipeline shape.
        """
        payload = {
            "format": _FORMAT_VERSION,
            "code_version": flow_code_version(),
            "config": dataclasses.asdict(config),
            "request": dataclasses.asdict(request),
            "pipeline": cell_pipeline_signature(request),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:32]

    def path(self, config: KernelConfig, request: CellRequest) -> Path:
        return self.directory / f"{self.key(config, request)}.json"

    # ------------------------------------------------------------------
    def load(self, config: KernelConfig, request: CellRequest) -> Cell | None:
        """The cached cell, or ``None`` on miss *or any* decode failure."""
        path = self.path(config, request)
        try:
            payload = json.loads(path.read_text())
            cell = Cell(**payload["cell"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            return None  # corrupted / truncated / foreign file: recompute
        if payload.get("request") != dataclasses.asdict(request):
            return None  # hash collision or hand-edited entry
        if (
            cell.kernel != request.kernel
            or cell.target != request.target
            or cell.constraint_db != request.constraint_db
        ):
            return None  # entry's cell belongs to a different key
        return cell

    def store(self, config: KernelConfig, request: CellRequest, cell: Cell) -> Path:
        """Atomically persist one cell; returns its path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path(config, request)
        payload = {
            "format": _FORMAT_VERSION,
            "code_version": flow_code_version(),
            "config": dataclasses.asdict(config),
            "request": dataclasses.asdict(request),
            "pipeline": cell_pipeline_signature(request),
            "cell": dataclasses.asdict(cell),
        }
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))
