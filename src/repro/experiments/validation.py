"""Accuracy-model validation experiment.

Not a paper figure, but the experiment that makes every paper figure
credible: sweep uniform word lengths per kernel and tabulate the
analytical evaluator (what the flows optimize against) next to
bit-accurate measurement (ground truth).  The flows are only as honest
as this table.
"""

from __future__ import annotations

from repro.accuracy import SimulationAccuracyEvaluator
from repro.experiments.runner import ExperimentRunner
from repro.ir.backend import DEFAULT_BACKEND
from repro.report.tables import TextTable

__all__ = ["validation_table"]

#: Word lengths swept per kernel; IIR stops earlier because below
#: ~14 bits its quantization noise reaches signal level and the linear
#: model leaves its validity region (see EXPERIMENTS.md).
_SWEEPS = {
    "fir": (32, 24, 20, 16, 12, 10),
    "iir": (32, 24, 20, 16),
    "conv": (32, 24, 20, 16, 12, 10),
}


def validation_table(
    runner: ExperimentRunner,
    kernels: tuple[str, ...] = ("fir", "iir", "conv"),
    n_stimuli: int = 2,
    seed: int = 424242,
    backend: str = DEFAULT_BACKEND,
) -> TextTable:
    """Analytical vs measured output noise across uniform specs.

    Uses the engine's process-wide analysis contexts (via
    ``runner.context``), so a validation pass after a figure sweep
    costs only the bit-accurate simulations.  ``n_stimuli``, ``seed``
    and ``backend`` parameterize those simulations (the CLI flags
    ``--stimuli`` / ``--sim-seed`` / ``--sim-backend``).
    """
    table = TextTable(
        headers=("kernel", "word_length", "analytical_db", "measured_db",
                 "difference_db", "sim_tier"),
        title="Model validation — analytical EVALACC vs bit-accurate simulation",
    )
    for kernel in kernels:
        context = runner.context(kernel)
        evaluator = SimulationAccuracyEvaluator(
            context.analysis_program, n_stimuli=n_stimuli, seed=seed,
            discard=64 if kernel == "iir" else 0, backend=backend,
        )
        for wl in _SWEEPS.get(kernel, (32, 16)):
            spec = context.fresh_spec()
            for root in context.slotmap.roots:
                spec.set_wl(root, wl)
            analytical = context.model.noise_db(spec)
            measured = evaluator.noise_db(spec)
            table.add_row(
                kernel, wl, round(analytical, 2), round(measured, 2),
                round(analytical - measured, 2), evaluator.tier(spec),
            )
    return table
