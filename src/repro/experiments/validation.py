"""Accuracy-model validation experiment.

Not a paper figure, but the experiment that makes every paper figure
credible: sweep uniform word lengths per kernel and tabulate the
analytical evaluator (what the flows optimize against) next to
bit-accurate measurement (ground truth).  The flows are only as honest
as this table.

``oracle=True`` (the CLI's ``repro validate --oracle``) adds a second
measurement against the arbitrary-precision ``bigfloat`` reference
backend, plus the float64 reference's *own* rounding noise relative to
that oracle — the measurement floor of the standard column.  A row
whose measured noise approaches that floor is flagged as
rounding-limited: its ``measured_db`` says more about float64 than
about the spec under test.
"""

from __future__ import annotations

from repro.accuracy import SimulationAccuracyEvaluator
from repro.accuracy.metrics import measured_noise_power
from repro.experiments.runner import ExperimentRunner
from repro.ir.backend import DEFAULT_BACKEND
from repro.report.tables import TextTable
from repro.utils import power_to_db

__all__ = ["validation_table"]

#: Word lengths swept per kernel; IIR stops earlier because below
#: ~14 bits its quantization noise reaches signal level and the linear
#: model leaves its validity region (see EXPERIMENTS.md).
_SWEEPS = {
    "fir": (32, 24, 20, 16, 12, 10),
    "iir": (32, 24, 20, 16),
    "conv": (32, 24, 20, 16, 12, 10),
}

#: A measured noise within this many dB of the float64 reference's own
#: rounding noise is dominated by the reference, not the spec.
_ROUNDING_LIMITED_MARGIN_DB = 20.0


def validation_table(
    runner: ExperimentRunner,
    kernels: tuple[str, ...] = ("fir", "iir", "conv"),
    n_stimuli: int = 2,
    seed: int = 424242,
    backend: str = DEFAULT_BACKEND,
    oracle: bool = False,
) -> TextTable:
    """Analytical vs measured output noise across uniform specs.

    Uses the engine's process-wide analysis contexts (via
    ``runner.context``), so a validation pass after a figure sweep
    costs only the bit-accurate simulations.  ``n_stimuli``, ``seed``
    and ``backend`` parameterize those simulations (the CLI flags
    ``--stimuli`` / ``--sim-seed`` / ``--sim-backend``); ``oracle``
    adds the measured-vs-oracle columns (``--oracle``).
    """
    headers = ["kernel", "word_length", "analytical_db", "measured_db",
               "difference_db", "sim_tier"]
    if oracle:
        headers[4:4] = ["oracle_db", "ref_rounding_db", "note"]
    table = TextTable(
        headers=tuple(headers),
        title="Model validation — analytical EVALACC vs bit-accurate simulation",
    )
    for kernel in kernels:
        context = runner.context(kernel)
        discard = 64 if kernel == "iir" else 0
        evaluator = SimulationAccuracyEvaluator(
            context.analysis_program, n_stimuli=n_stimuli, seed=seed,
            discard=discard, backend=backend,
        )
        oracle_evaluator = None
        ref_rounding_db = 0.0
        if oracle:
            # Same n_stimuli/seed => bit-identical stimulus set, so the
            # two measurements differ only in their reference.
            oracle_evaluator = SimulationAccuracyEvaluator(
                context.analysis_program, n_stimuli=n_stimuli, seed=seed,
                discard=discard, backend="bigfloat",
            )
            ref_power = sum(
                measured_noise_power(exact, rounded, discard)
                for exact, rounded in zip(
                    oracle_evaluator.references, evaluator.references
                )
            ) / n_stimuli
            ref_rounding_db = power_to_db(ref_power)
        for wl in _SWEEPS.get(kernel, (32, 16)):
            spec = context.fresh_spec()
            for root in context.slotmap.roots:
                spec.set_wl(root, wl)
            analytical = context.model.noise_db(spec)
            measured = evaluator.noise_db(spec)
            row = [
                kernel, wl, round(analytical, 2), round(measured, 2),
                round(analytical - measured, 2), evaluator.tier(spec),
            ]
            if oracle_evaluator is not None:
                note = ""
                if measured <= ref_rounding_db + _ROUNDING_LIMITED_MARGIN_DB:
                    note = "rounding-limited"
                row[4:4] = [
                    round(oracle_evaluator.noise_db(spec), 2),
                    round(ref_rounding_db, 2), note,
                ]
            table.add_row(*row)
    return table
