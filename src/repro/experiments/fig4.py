"""Figure 4: SIMD speedups of WLO-First and WLO-SLP vs. constraint.

One panel per (kernel, target): the speedup of each flow's SIMD code
over the WLO-First *scalar* fixed-point baseline (paper eq. (2)),
plotted against the accuracy constraint in dB.  The paper's claims for
this figure, which ``EXPERIMENTS.md`` checks:

* WLO-SLP beats or ties WLO-First almost everywhere;
* WLO-First frequently lands *below* 1x (SLP-blind WLO degrades);
* both converge toward 1x at the strictest constraints;
* VEX-1 gains exceed VEX-4 gains (ILP absorbs SIMD benefit).
"""

from __future__ import annotations

from repro.experiments.runner import (
    PAPER_CONSTRAINT_GRID,
    PAPER_TARGETS,
    ExperimentRunner,
)
from repro.report.ascii_plot import line_plot
from repro.report.tables import TextTable

__all__ = [
    "DENSE_CONSTRAINT_GRID",
    "fig4_panel",
    "fig4_table",
    "render_fig4",
]

#: The 4x-resolution constraint grid of ``repro fig4 --dense`` — the
#: exact grid the ``pareto-smoke`` CI job sweeps (28 points, 2.5 dB
#: steps, same [-70, -2.5] span as the paper grid).  Dense panels are
#: meant to run under the single-search Pareto-front WLO, where the
#: whole panel costs one frontier walk regardless of grid resolution.
DENSE_CONSTRAINT_GRID: tuple[float, ...] = tuple(
    -2.5 * k for k in range(1, 29)
)


def fig4_panel(
    runner: ExperimentRunner,
    kernel: str,
    target: str,
    grid: tuple[float, ...] = PAPER_CONSTRAINT_GRID,
    sim_backend: str = "",
    continuation: str = "",
    format: str = "",
) -> dict[str, list[tuple[float, float]]]:
    """The two speedup series of one panel."""
    cells = runner.sweep(
        kernel, target, grid, sim_backend=sim_backend,
        continuation=continuation, format=format,
    )
    return {
        "WLO-FIRST": [(c.constraint_db, c.wlo_first_speedup) for c in cells],
        "WLO-SLP": [(c.constraint_db, c.wlo_slp_speedup) for c in cells],
    }


def _panel_request(
    kernels, targets, grid, sim_backend, continuation, format
):
    """The figure's cells as one typed request (lazy import: cycle)."""
    from repro.api import SweepRequest

    return SweepRequest(
        kernels=kernels, targets=targets, grid=grid,
        sim_backend=sim_backend,
        continuation=(continuation == "warm"),
        pareto=(continuation == "pareto"),
        format=format,
    )


def fig4_table(
    runner: ExperimentRunner,
    kernels: tuple[str, ...] = ("fir", "iir", "conv"),
    targets: tuple[str, ...] = PAPER_TARGETS,
    grid: tuple[float, ...] = PAPER_CONSTRAINT_GRID,
    sim_backend: str = "",
    continuation: str = "",
    format: str = "",
) -> TextTable:
    """All panels as one flat table (kernel, target, constraint).

    The submitted :class:`~repro.api.SweepRequest` completes (and
    caches) every completable cell first; if any cell failed, one
    :class:`~repro.errors.FlowError` then names them all — a re-run
    after the fix resumes warm.  ``continuation`` is the engine-side
    mode string (``""``/``"warm"``/``"pareto"``); ``format`` a
    :mod:`repro.formats` name for format-sweep panels.
    """
    request = _panel_request(
        kernels, targets, grid, sim_backend, continuation, format
    )
    runner.submit(request).ensure_complete()
    table = TextTable(
        headers=(
            "kernel", "target", "constraint_db",
            "scalar_cycles", "wlo_first_speedup", "wlo_slp_speedup",
            "wlo_first_groups", "wlo_slp_groups",
        ),
        title="Fig. 4 — SIMD speedup over scalar fixed-point (WLO-First baseline)",
    )
    for kernel in kernels:
        for target in targets:
            for cell in runner.sweep(
                kernel, target, grid, sim_backend=sim_backend,
                continuation=continuation, format=format,
            ):
                table.add_row(
                    kernel, target, cell.constraint_db,
                    cell.scalar_cycles,
                    round(cell.wlo_first_speedup, 3),
                    round(cell.wlo_slp_speedup, 3),
                    cell.wlo_first_groups, cell.wlo_slp_groups,
                )
    return table


def render_fig4(
    runner: ExperimentRunner,
    kernels: tuple[str, ...] = ("fir", "iir", "conv"),
    targets: tuple[str, ...] = PAPER_TARGETS,
    grid: tuple[float, ...] = PAPER_CONSTRAINT_GRID,
    sim_backend: str = "",
    continuation: str = "",
    format: str = "",
) -> str:
    """Full text rendering: one ASCII plot per panel plus the table."""
    request = _panel_request(
        kernels, targets, grid, sim_backend, continuation, format
    )
    runner.submit(request).ensure_complete()
    sections = []
    for kernel in kernels:
        for target in targets:
            series = fig4_panel(
                runner, kernel, target, grid, sim_backend,
                continuation, format,
            )
            sections.append(line_plot(
                series,
                title=f"Fig. 4 panel — {kernel.upper()} on {target}",
                y_label="speedup",
                x_label="accuracy constraint (dB)",
            ))
    sections.append(
        fig4_table(
            runner, kernels, targets, grid, sim_backend, continuation,
            format,
        ).render()
    )
    return "\n\n".join(sections)
