"""Parallel, cache-persistent sweep engine.

The paper's evaluation is a grid of (kernel, target, constraint) cells
that Fig. 4, Table I, Fig. 6 and the ablations all re-derive.  This
module splits the old monolithic runner into three composable parts:

* :func:`evaluate_cell` — a *pure*, picklable function turning one
  :class:`CellRequest` into a :class:`Cell`.  Workers memoize kernel
  builds and :class:`~repro.flows.common.AnalysisContext` construction
  in process-global tables, so a batch of cells sharing a kernel pays
  for analysis once per process.
* :class:`SweepPlan` — enumerates and deduplicates the cells of a
  sweep (the job graph), ordered kernel-major so consecutive cells
  reuse contexts.
* :class:`SweepExecutor` — resolves a plan against an in-memory memo
  and an optional on-disk :class:`~repro.experiments.cache.SweepCache`,
  fanning misses out over ``concurrent.futures.ProcessPoolExecutor``
  (serial in-process fallback for ``jobs <= 1``) and streaming
  completed cells back with progress callbacks.

Cell evaluation is deterministic (fixed analysis seeds), so parallel
and serial execution produce bit-identical results.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import pickle

from repro.errors import FlowError
from repro.flows.common import AnalysisContext
from repro.flows.floatflow import run_float
from repro.flows.wlo_first import WloFirstResult
from repro.kernels import conv2d, fir, iir
from repro.pipeline import ensure_flow, get_flow, run_flow
from repro.pipeline.registry import registry_generation
from repro.targets.registry import get_target

__all__ = [
    "PAPER_CONSTRAINT_GRID",
    "PAPER_TARGETS",
    "Cell",
    "CellOutcome",
    "CellRequest",
    "KernelConfig",
    "SweepPlan",
    "SweepExecutor",
    "SweepStats",
    "build_context",
    "cell_pipeline_signature",
    "evaluate_cell",
    "float_cycles",
    "kernel_programs",
]

#: Table I's constraint grid, reused for every figure by default.
PAPER_CONSTRAINT_GRID: tuple[float, ...] = (
    -5.0, -15.0, -25.0, -35.0, -45.0, -55.0, -65.0
)

#: Fig. 4's target set, in the paper's panel order.
PAPER_TARGETS: tuple[str, ...] = ("xentium", "st240", "vex-4", "vex-1")


@dataclass(frozen=True)
class KernelConfig:
    """Problem sizes shared by every cell of a sweep.

    Frozen (hashable, picklable): it is both the worker-side memo key
    for shared kernel/context builds and part of the on-disk cache key.
    """

    n_samples: int = 2048
    analysis_samples: int = 160
    image_size: int = 66
    analysis_image_size: int = 18

    def builders(self) -> dict[str, tuple[Callable, Callable]]:
        """Per-kernel (benchmark build, analysis-twin build) factories."""
        return {
            "fir": (
                lambda: fir(n_samples=self.n_samples),
                lambda: fir(n_samples=self.analysis_samples),
            ),
            "iir": (
                lambda: iir(n_samples=self.n_samples),
                lambda: iir(n_samples=max(self.analysis_samples, 384)),
            ),
            "conv": (
                lambda: conv2d(self.image_size, self.image_size),
                lambda: conv2d(self.analysis_image_size, self.analysis_image_size),
            ),
        }

    @property
    def kernel_names(self) -> list[str]:
        return ["fir", "iir", "conv"]


@dataclass(frozen=True, order=True)
class CellRequest:
    """One sweep cell, fully keyed.

    ``wlo`` names the WLO-First engine (``tabu`` is the paper's
    baseline; ``max-1`` / ``min+1`` are the ablation engines) and
    ``flow`` names the registered joint flow evaluated for the
    ``wlo_slp_*`` columns (``wlo-slp`` is the paper's; any flow from
    :mod:`repro.pipeline` is sweepable).  Both are part of the key —
    and the on-disk cache additionally hashes the *resolved* pipeline
    structure (:func:`cell_pipeline_signature`) — so variant cells can
    never alias baseline cells.
    """

    kernel: str
    target: str
    constraint_db: float
    wlo: str = "tabu"
    flow: str = "wlo-slp"


@dataclass
class Cell:
    """All numbers of one (kernel, target, constraint) sweep cell."""

    kernel: str
    target: str
    constraint_db: float
    scalar_cycles: int
    wlo_first_simd_cycles: int
    wlo_slp_cycles: int
    float_cycles: int
    wlo_first_groups: int
    wlo_slp_groups: int
    wlo_first_noise_db: float
    wlo_slp_noise_db: float

    @property
    def wlo_first_speedup(self) -> float:
        """SIMD WLO-First over scalar fixed-point (Fig. 4 series 1)."""
        return self.scalar_cycles / self.wlo_first_simd_cycles

    @property
    def wlo_slp_speedup(self) -> float:
        """SIMD WLO-SLP over scalar fixed-point (Fig. 4 series 2)."""
        return self.scalar_cycles / self.wlo_slp_cycles

    @property
    def float_speedup(self) -> float:
        """WLO-SLP over the floating-point original (Fig. 6)."""
        return self.float_cycles / self.wlo_slp_cycles


# ----------------------------------------------------------------------
# Pure cell evaluation (runs in workers; all state is process-global).

#: Per-process caches of the expensive shared work.  Keyed by the full
#: (config, kernel) pair so differently-sized runners never collide.
#: Kernel programs are built once per process; flow-level sharing
#: (analysis passes, lowerings) lives in the pipeline's process-global
#: :class:`~repro.pipeline.cache.PassCache`, keyed by content hash.
_PROGRAMS: dict[tuple[KernelConfig, str], tuple] = {}
_CONTEXTS: dict[tuple[KernelConfig, str], AnalysisContext] = {}
_FLOAT_CYCLES: dict[tuple[KernelConfig, str, str], int] = {}


def kernel_programs(config: KernelConfig, kernel: str) -> tuple:
    """Build (or recall) one kernel's (benchmark, analysis-twin) pair."""
    key = (config, kernel)
    found = _PROGRAMS.get(key)
    if found is None:
        builders = config.builders()
        if kernel not in builders:
            raise FlowError(
                f"unknown kernel {kernel!r}; have {config.kernel_names}"
            )
        build, build_twin = builders[kernel]
        found = (build(), build_twin())
        _PROGRAMS[key] = found
    return found


def build_context(config: KernelConfig, kernel: str) -> AnalysisContext:
    """Build (or recall) the analysis context of one kernel."""
    key = (config, kernel)
    found = _CONTEXTS.get(key)
    if found is None:
        program, twin = kernel_programs(config, kernel)
        found = AnalysisContext.build(program, twin)
        _CONTEXTS[key] = found
    return found


def float_cycles(config: KernelConfig, kernel: str, target: str) -> int:
    """Cycle count of the floating-point original (memoized)."""
    key = (config, kernel, target)
    found = _FLOAT_CYCLES.get(key)
    if found is None:
        ctx = build_context(config, kernel)
        found = run_float(ctx.program, get_target(target)).total_cycles
        _FLOAT_CYCLES[key] = found
    return found


#: (registry generation, memoized signatures by (wlo, flow)) — the
#: sweep cache computes a cell key on every load *and* store, so the
#: per-(wlo, flow) structure is resolved once per registry state
#: instead of rebuilding three pipelines per cell.
_SIGNATURES: list = [-1, {}]


def cell_pipeline_signature(request: CellRequest) -> dict[str, list[str]]:
    """Resolved pipeline structure of one cell's three flow runs.

    Maps each role (``float`` reference, ``baseline`` = WLO-First with
    the request's engine, ``joint`` = the request's flow) to its
    ordered pass signatures.  The on-disk sweep cache hashes this into
    the cell key, so declaring a new flow variant — or changing an
    existing flow's pass list or parameters — can never alias cached
    cells of another pipeline shape.
    """
    generation = registry_generation()
    if _SIGNATURES[0] != generation:
        _SIGNATURES[0] = generation
        _SIGNATURES[1] = {}
    memo = _SIGNATURES[1]
    key = (request.wlo, request.flow)
    found = memo.get(key)
    if found is None:
        found = {
            "float": get_flow("float").pass_names(),
            "baseline": get_flow("wlo-first").pass_names(wlo=request.wlo),
            "joint": get_flow(request.flow).pass_names(),
        }
        memo[key] = found
    return found


def evaluate_cell(
    config: KernelConfig, request: CellRequest, flows: tuple = ()
) -> Cell:
    """Evaluate one sweep cell from scratch (deterministic, picklable).

    This is the unit of work shipped to pool workers.  All three flows
    (float reference, WLO-First baseline with the request's engine, and
    the request's joint flow) resolve through the flow registry and run
    as pass pipelines; the process-global pass cache makes every cell
    of a batch that shares a kernel reuse one analysis prefix, and
    cells sharing (kernel, target, constraint) reuse lowerings too.

    ``flows`` carries :class:`~repro.pipeline.FlowSpec` declarations to
    adopt before resolving — how runtime-declared flow variants reach
    pool workers on spawn/forkserver start methods (workers re-import
    the package and would otherwise only know the built-ins).
    """
    for spec in flows:
        ensure_flow(spec)
    program, twin = kernel_programs(config, request.kernel)
    target = get_target(request.target)
    float_total = run_flow(
        "float", program, target, analysis_program=twin
    ).total_cycles
    baseline = run_flow(
        "wlo-first", program, target, request.constraint_db,
        analysis_program=twin, wlo=request.wlo,
    )
    joint = run_flow(
        request.flow, program, target, request.constraint_db,
        analysis_program=twin,
    )
    if isinstance(joint, WloFirstResult):
        joint = joint.simd  # decoupled variants: their SIMD best effort
    return Cell(
        kernel=request.kernel,
        target=request.target,
        constraint_db=request.constraint_db,
        scalar_cycles=baseline.scalar.total_cycles,
        wlo_first_simd_cycles=baseline.simd.total_cycles,
        wlo_slp_cycles=joint.total_cycles,
        float_cycles=float_total,
        wlo_first_groups=baseline.simd.n_groups,
        wlo_slp_groups=joint.n_groups,
        wlo_first_noise_db=baseline.simd.noise_db or 0.0,
        wlo_slp_noise_db=joint.noise_db or 0.0,
    )


# ----------------------------------------------------------------------
# Job graph.


@dataclass
class SweepPlan:
    """The deduplicated job graph of one sweep."""

    config: KernelConfig
    requests: list[CellRequest]

    @staticmethod
    def build(
        config: KernelConfig,
        kernels: Iterable[str],
        targets: Iterable[str],
        grid: Iterable[float] = PAPER_CONSTRAINT_GRID,
        wlo: str = "tabu",
        only: Iterable[str] | None = None,
        flow: str = "wlo-slp",
    ) -> "SweepPlan":
        """Enumerate (kernel × target × constraint) cells.

        ``only`` restricts the grid to ``kernel:target`` pairs (the CLI
        ``--only fir:vex-1`` filter); ``wlo`` and ``flow`` select the
        baseline WLO engine and the joint flow variant of every cell.
        Duplicates are dropped and the result is ordered kernel-major
        so consecutive cells share analysis-pass results — the
        shared-work deduplication that makes the serial path and each
        pool worker analyze every kernel once.
        """
        pairs = _parse_only(only)
        seen: set[CellRequest] = set()
        requests: list[CellRequest] = []
        for kernel in kernels:
            for target in targets:
                if pairs is not None and (kernel, target) not in pairs:
                    continue
                for constraint in grid:
                    request = CellRequest(
                        kernel, target, float(constraint), wlo, flow
                    )
                    if request not in seen:
                        seen.add(request)
                        requests.append(request)
        return SweepPlan(config, requests)

    @property
    def kernels(self) -> list[str]:
        """Unique kernels of the plan, in first-appearance order."""
        return list(dict.fromkeys(r.kernel for r in self.requests))

    def __len__(self) -> int:
        return len(self.requests)


def _parse_only(only: Iterable[str] | None) -> set[tuple[str, str]] | None:
    if only is None:
        return None
    pairs: set[tuple[str, str]] = set()
    for item in only:
        kernel, sep, target = item.partition(":")
        if not sep or not kernel or not target:
            raise FlowError(
                f"bad --only filter {item!r}; expected KERNEL:TARGET"
            )
        pairs.add((kernel, target))
    return pairs


# ----------------------------------------------------------------------
# Executor.


@dataclass
class CellOutcome:
    """One resolved cell, tagged with where its numbers came from."""

    request: CellRequest
    cell: Cell
    #: ``"memo"`` (in-memory), ``"cache"`` (disk), or ``"computed"``.
    source: str


@dataclass
class SweepStats:
    """How a plan's cells were resolved."""

    memo: int = 0
    cache: int = 0
    computed: int = 0

    @property
    def total(self) -> int:
        return self.memo + self.cache + self.computed

    def count(self, source: str) -> None:
        setattr(self, source, getattr(self, source) + 1)

    def summary(self) -> str:
        return (
            f"{self.total} cells: {self.computed} computed, "
            f"{self.cache} from disk cache, {self.memo} memoized"
        )


class SweepExecutor:
    """Resolves sweep plans through memo, disk cache and worker pool.

    Layering per cell: the in-memory ``memo`` dict (shared with the
    owning :class:`~repro.experiments.runner.ExperimentRunner`), then
    the optional on-disk cache, then evaluation — in-process when
    ``jobs <= 1`` or a single cell is missing, otherwise fanned out
    over a process pool.  Completed cells stream back through
    :meth:`run_iter` as they finish.
    """

    def __init__(
        self,
        config: KernelConfig,
        *,
        cache=None,
        jobs: int = 1,
        memo: dict[CellRequest, Cell] | None = None,
        progress: Callable[[int, int, CellOutcome], None] | None = None,
    ) -> None:
        self.config = config
        self.cache = cache
        self.jobs = max(1, int(jobs))
        self.memo = memo if memo is not None else {}
        self.progress = progress

    # ------------------------------------------------------------------
    def run(self, plan: SweepPlan) -> tuple[dict[CellRequest, Cell], SweepStats]:
        """Resolve a whole plan; returns (cells, stats)."""
        stats = SweepStats()
        cells: dict[CellRequest, Cell] = {}
        for outcome in self.run_iter(plan, stats):
            cells[outcome.request] = outcome.cell
        return cells, stats

    def run_iter(
        self, plan: SweepPlan, stats: SweepStats | None = None
    ) -> Iterator[CellOutcome]:
        """Stream the plan's cells back as they resolve."""
        stats = stats if stats is not None else SweepStats()
        total = len(plan.requests)
        misses: list[CellRequest] = []

        def emit(outcome: CellOutcome) -> CellOutcome:
            stats.count(outcome.source)
            if self.progress is not None:
                self.progress(stats.total, total, outcome)
            return outcome

        for request in plan.requests:
            found = self.memo.get(request)
            if found is not None:
                yield emit(CellOutcome(request, found, "memo"))
                continue
            if self.cache is not None:
                cached = self.cache.load(plan.config, request)
                if cached is not None:
                    self.memo[request] = cached
                    yield emit(CellOutcome(request, cached, "cache"))
                    continue
            misses.append(request)

        for request, cell in self._evaluate(plan.config, misses):
            self.memo[request] = cell
            if self.cache is not None:
                self.cache.store(plan.config, request, cell)
            yield emit(CellOutcome(request, cell, "computed"))

    # ------------------------------------------------------------------
    def _evaluate(
        self, config: KernelConfig, misses: list[CellRequest]
    ) -> Iterator[tuple[CellRequest, Cell]]:
        if not misses:
            return
        if self.jobs == 1 or len(misses) == 1:
            for request in misses:
                yield request, evaluate_cell(config, request)
            return
        flows = _shippable_flow_specs(misses)
        workers = min(self.jobs, len(misses))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {
                pool.submit(evaluate_cell, config, request, flows): request
                for request in misses
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    request = pending.pop(future)
                    yield request, future.result()


def _shippable_flow_specs(requests: list[CellRequest]) -> tuple:
    """The plan's flow declarations, filtered to what pickling allows.

    Every flow a worker will resolve is shipped — the requests' joint
    flows plus the ``float``/``wlo-first`` roles of every cell — so
    runtime declarations *and* runtime re-declarations of built-ins
    reach spawn-started workers (whose registries otherwise hold only
    the stock declarations, silently diverging from the cache key the
    parent computed).  A spec holding unpicklable callables (e.g.
    closures defined in a REPL) is silently skipped — on fork
    platforms the worker inherits it anyway, elsewhere the worker
    raises the registry's clear unknown-flow error.
    """
    names = dict.fromkeys(["float", "wlo-first"])
    names.update(dict.fromkeys(r.flow for r in requests))
    specs = []
    for name in names:
        spec = get_flow(name)
        try:
            pickle.dumps(spec)
        except Exception:
            continue
        specs.append(spec)
    return tuple(specs)
