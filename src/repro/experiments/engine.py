"""Parallel, cache-persistent sweep engine.

The paper's evaluation is a grid of (kernel, target, constraint) cells
that Fig. 4, Table I, Fig. 6 and the ablations all re-derive.  This
module splits the old monolithic runner into three composable parts:

* :func:`evaluate_cell` — a *pure*, picklable function turning one
  :class:`CellRequest` into a :class:`Cell`.  Workers memoize kernel
  builds and :class:`~repro.flows.common.AnalysisContext` construction
  in process-global tables, so a batch of cells sharing a kernel pays
  for analysis once per process.
* :class:`SweepPlan` — enumerates and deduplicates the cells of a
  sweep (the job graph), ordered kernel-major so consecutive cells
  reuse contexts.
* :class:`SweepExecutor` — resolves a plan against an in-memory memo
  and an optional on-disk :class:`~repro.experiments.cache.SweepCache`,
  dispatching misses through a pluggable *execution backend*
  (:mod:`repro.experiments.backends`: ``serial`` / ``process`` /
  ``chunked``) and streaming completed cells back with progress
  callbacks.

Cell evaluation is deterministic (fixed analysis seeds), so every
backend produces bit-identical results on the surviving cells.
Failures are first-class: a cell that raises (e.g. an infeasible
constraint's :class:`~repro.errors.WLOError`) becomes a ``"failed"``
:class:`CellOutcome` carrying the exception text, while every other
cell keeps streaming — and keeps persisting to the disk cache — so
one bad cell can never lose a sweep's worth of completed work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.errors import FlowError, unknown_name_error
from repro.flows.common import AnalysisContext
from repro.flows.floatflow import run_float
from repro.flows.wlo_first import WloFirstResult
from repro.formats import canonical_format
from repro.kernels import conv2d, fir, iir
from repro.pipeline import ensure_flow, get_flow, run_flow
from repro.pipeline.registry import registry_generation
from repro.targets.registry import get_target

__all__ = [
    "PAPER_CONSTRAINT_GRID",
    "PAPER_TARGETS",
    "Cell",
    "CellOutcome",
    "CellRequest",
    "KernelConfig",
    "SweepPlan",
    "SweepExecutor",
    "SweepStats",
    "build_context",
    "cell_pipeline_signature",
    "evaluate_cell",
    "float_cycles",
    "format_noise_db",
    "kernel_programs",
    "wlo_stats_numbers",
]

#: Table I's constraint grid, reused for every figure by default.
PAPER_CONSTRAINT_GRID: tuple[float, ...] = (
    -5.0, -15.0, -25.0, -35.0, -45.0, -55.0, -65.0
)

#: Fig. 4's target set, in the paper's panel order.
PAPER_TARGETS: tuple[str, ...] = ("xentium", "st240", "vex-4", "vex-1")


@dataclass(frozen=True)
class KernelConfig:
    """Problem sizes shared by every cell of a sweep.

    Frozen (hashable, picklable): it is both the worker-side memo key
    for shared kernel/context builds and part of the on-disk cache key.
    """

    n_samples: int = 2048
    analysis_samples: int = 160
    image_size: int = 66
    analysis_image_size: int = 18

    def builders(self) -> dict[str, tuple[Callable, Callable]]:
        """Per-kernel (benchmark build, analysis-twin build) factories."""
        return {
            "fir": (
                lambda: fir(n_samples=self.n_samples),
                lambda: fir(n_samples=self.analysis_samples),
            ),
            "iir": (
                lambda: iir(n_samples=self.n_samples),
                lambda: iir(n_samples=max(self.analysis_samples, 384)),
            ),
            "conv": (
                lambda: conv2d(self.image_size, self.image_size),
                lambda: conv2d(self.analysis_image_size, self.analysis_image_size),
            ),
        }

    @property
    def kernel_names(self) -> list[str]:
        return ["fir", "iir", "conv"]


@dataclass(frozen=True, order=True)
class CellRequest:
    """One sweep cell, fully keyed.

    ``wlo`` names the WLO-First engine (``tabu`` is the paper's
    baseline; ``max-1`` / ``min+1`` are the ablation engines) and
    ``flow`` names the registered joint flow evaluated for the
    ``wlo_slp_*`` columns (``wlo-slp`` is the paper's; any flow from
    :mod:`repro.pipeline` is sweepable).  Both are part of the key —
    and the on-disk cache additionally hashes the *resolved* pipeline
    structure (:func:`cell_pipeline_signature`) — so variant cells can
    never alias baseline cells.
    """

    kernel: str
    target: str
    constraint_db: float
    wlo: str = "tabu"
    flow: str = "wlo-slp"
    #: Simulation-backend override for the cell's simulation-backed
    #: passes; ``""`` (the default) keeps each flow's declared backend.
    #: A string rather than ``None`` so ``order=True`` comparisons and
    #: JSON round-trips stay total.
    sim_backend: str = ""
    #: Cross-constraint continuation mode of the cell's WLO passes
    #: (``""``/``"warm"``/``"pareto"``, see
    #: :mod:`repro.wlo.continuation`).  Part of the request — and,
    #: through the resolved pass signatures, of the pipeline cache key
    #: too — so warm and cold cells can never alias in either cache
    #: layer.
    continuation: str = ""
    #: Numeric format of the cell (:mod:`repro.formats`).  ``""`` (the
    #: default, canonical spelling of ``fixed``) is the paper's
    #: fixed-point path; a float format name (``float32``,
    #: ``bfloat16``, ``binary(E,M)``…) makes the cell a format cell:
    #: no WLO, cycles from the float flow, noise measured against the
    #: ``bigfloat`` oracle.  Normalized on construction so alternative
    #: spellings can never key distinct cells, and part of the request
    #: dataclass — hence of the on-disk cache key — so format cells
    #: never alias fixed-point cells.
    format: str = ""

    def __post_init__(self) -> None:
        # Frozen dataclass: normalize through the canonicalizer so
        # "fixed"/"FIXED"/"" (and binary(E,M) spacing variants) are one
        # request identity.
        object.__setattr__(self, "format", canonical_format(self.format))


@dataclass
class Cell:
    """All numbers of one (kernel, target, constraint) sweep cell."""

    kernel: str
    target: str
    constraint_db: float
    scalar_cycles: int
    wlo_first_simd_cycles: int
    wlo_slp_cycles: int
    float_cycles: int
    wlo_first_groups: int
    wlo_slp_groups: int
    wlo_first_noise_db: float
    wlo_slp_noise_db: float
    #: WLO search effort provenance (``--timings`` and the serve wire):
    #: iteration and candidate-evaluation totals summed over the cell's
    #: two constraint-driven searches (baseline engine + joint flow),
    #: and whether either search continued from a warm start.  Default
    #: values keep pre-continuation disk-cache payloads loadable.
    wlo_iterations: int = 0
    wlo_evaluations: int = 0
    warm_start: bool = False

    @property
    def wlo_first_speedup(self) -> float:
        """SIMD WLO-First over scalar fixed-point (Fig. 4 series 1)."""
        return self.scalar_cycles / self.wlo_first_simd_cycles

    @property
    def wlo_slp_speedup(self) -> float:
        """SIMD WLO-SLP over scalar fixed-point (Fig. 4 series 2)."""
        return self.scalar_cycles / self.wlo_slp_cycles

    @property
    def float_speedup(self) -> float:
        """WLO-SLP over the floating-point original (Fig. 6)."""
        return self.float_cycles / self.wlo_slp_cycles


# ----------------------------------------------------------------------
# Pure cell evaluation (runs in workers; all state is process-global).

#: Per-process caches of the expensive shared work.  Keyed by the full
#: (config, kernel) pair so differently-sized runners never collide.
#: Kernel programs are built once per process; flow-level sharing
#: (analysis passes, lowerings) lives in the pipeline's process-global
#: :class:`~repro.pipeline.cache.PassCache`, keyed by content hash.
_PROGRAMS: dict[tuple[KernelConfig, str], tuple] = {}
_CONTEXTS: dict[tuple[KernelConfig, str], AnalysisContext] = {}
_FLOAT_CYCLES: dict[tuple[KernelConfig, str, str], int] = {}


def kernel_programs(config: KernelConfig, kernel: str) -> tuple:
    """Build (or recall) one kernel's (benchmark, analysis-twin) pair."""
    key = (config, kernel)
    found = _PROGRAMS.get(key)
    if found is None:
        builders = config.builders()
        if kernel not in builders:
            raise unknown_name_error(
                FlowError, "kernel", kernel, config.kernel_names
            )
        build, build_twin = builders[kernel]
        found = (build(), build_twin())
        _PROGRAMS[key] = found
    return found


def build_context(config: KernelConfig, kernel: str) -> AnalysisContext:
    """Build (or recall) the analysis context of one kernel."""
    key = (config, kernel)
    found = _CONTEXTS.get(key)
    if found is None:
        program, twin = kernel_programs(config, kernel)
        found = AnalysisContext.build(program, twin)
        _CONTEXTS[key] = found
    return found


def float_cycles(config: KernelConfig, kernel: str, target: str) -> int:
    """Cycle count of the floating-point original (memoized)."""
    key = (config, kernel, target)
    found = _FLOAT_CYCLES.get(key)
    if found is None:
        ctx = build_context(config, kernel)
        found = run_float(ctx.program, get_target(target)).total_cycles
        _FLOAT_CYCLES[key] = found
    return found


#: (registry generation, memoized signatures by (wlo, flow)) — the
#: sweep cache computes a cell key on every load *and* store, so the
#: per-(wlo, flow) structure is resolved once per registry state
#: instead of rebuilding three pipelines per cell.
_SIGNATURES: list = [-1, {}]


def cell_pipeline_signature(request: CellRequest) -> dict[str, list[str]]:
    """Resolved pipeline structure of one cell's three flow runs.

    Maps each role (``float`` reference, ``baseline`` = WLO-First with
    the request's engine, ``joint`` = the request's flow) to its
    ordered pass signatures.  The on-disk sweep cache hashes this into
    the cell key, so declaring a new flow variant — or changing an
    existing flow's pass list or parameters — can never alias cached
    cells of another pipeline shape.
    """
    generation = registry_generation()
    if _SIGNATURES[0] != generation:
        _SIGNATURES[0] = generation
        _SIGNATURES[1] = {}
    memo = _SIGNATURES[1]
    key = (
        request.wlo, request.flow, request.sim_backend,
        request.continuation, request.format,
    )
    found = memo.get(key)
    if found is None:
        found = {
            "float": get_flow("float").pass_names(
                **_flow_overrides(get_flow("float"), request)
            ),
            "baseline": get_flow("wlo-first").pass_names(
                wlo=request.wlo,
                **_flow_overrides(get_flow("wlo-first"), request),
            ),
            "joint": get_flow(request.flow).pass_names(
                **_flow_overrides(get_flow(request.flow), request)
            ),
        }
        memo[key] = found
    return found


def _flow_overrides(spec, request: CellRequest) -> dict[str, str]:
    """The request's per-flow overrides, iff the flow takes them.

    Flows without simulation-backed passes (``float``) accept no
    ``sim_backend`` parameter, and constraint-free flows no
    ``continuation`` either; for them the request fields are no-ops
    rather than errors — mirroring the CLI's ``--sim-backend``
    behaviour on ``repro run``.  Non-empty overrides land in the
    resolved pass signatures, which is how the continuation mode
    reaches both the per-pass cache key and (via
    :func:`cell_pipeline_signature`) the on-disk sweep cache key.
    """
    overrides: dict[str, str] = {}
    if request.sim_backend and "sim_backend" in spec.params:
        overrides["sim_backend"] = request.sim_backend
    if request.continuation and "continuation" in spec.params:
        overrides["continuation"] = request.continuation
    if request.format and "format" in spec.params:
        overrides["format"] = request.format
    return overrides


def wlo_stats_numbers(stats: Any) -> tuple[int, int, bool]:
    """``(iterations, evaluations, warm_start)`` of any engine's stats.

    Normalizes across the statistics shapes the WLO passes emit:
    ``TabuResult.iterations``, ``GreedyResult``/``ParetoResult``
    ``.moves``, ``WloSlpOutcome.selection.rounds`` (with
    ``benefit_evaluations`` as the evaluation count), falling back to
    zeros for stats a custom engine reports differently.
    """
    if stats is None:
        return 0, 0, False
    iterations = getattr(stats, "iterations", None)
    if iterations is None:
        iterations = getattr(stats, "moves", None)
    evaluations = getattr(stats, "evaluations", None)
    selection = getattr(stats, "selection", None)
    if selection is not None:
        if iterations is None:
            iterations = getattr(selection, "rounds", None)
        if evaluations is None:
            evaluations = getattr(selection, "benefit_evaluations", None)
    try:
        iterations = int(iterations or 0)
        evaluations = int(evaluations or 0)
    except (TypeError, ValueError):
        iterations, evaluations = 0, 0
    return iterations, evaluations, bool(getattr(stats, "warm_start", False))


def evaluate_cell(
    config: KernelConfig, request: CellRequest, flows: tuple = ()
) -> Cell:
    """Evaluate one sweep cell from scratch (deterministic, picklable).

    This is the unit of work shipped to pool workers.  All three flows
    (float reference, WLO-First baseline with the request's engine, and
    the request's joint flow) resolve through the flow registry and run
    as pass pipelines; the process-global pass cache makes every cell
    of a batch that shares a kernel reuse one analysis prefix, and
    cells sharing (kernel, target, constraint) reuse lowerings too.

    ``flows`` carries :class:`~repro.pipeline.FlowSpec` declarations to
    adopt before resolving — how runtime-declared flow variants reach
    pool workers on spawn/forkserver start methods (workers re-import
    the package and would otherwise only know the built-ins).

    Format cells (``request.format`` set) take a different route: see
    :func:`_evaluate_format_cell`.
    """
    for spec in flows:
        ensure_flow(spec)
    if request.format:
        return _evaluate_format_cell(config, request)
    program, twin = kernel_programs(config, request.kernel)
    target = get_target(request.target)
    float_total = run_flow(
        "float", program, target, analysis_program=twin
    ).total_cycles
    baseline = run_flow(
        "wlo-first", program, target, request.constraint_db,
        analysis_program=twin, wlo=request.wlo,
        **_flow_overrides(get_flow("wlo-first"), request),
    )
    joint = run_flow(
        request.flow, program, target, request.constraint_db,
        analysis_program=twin,
        **_flow_overrides(get_flow(request.flow), request),
    )
    if isinstance(joint, WloFirstResult):
        joint = joint.simd  # decoupled variants: their SIMD best effort
    base_iters, base_evals, base_warm = wlo_stats_numbers(
        baseline.simd.extra.get("wlo_stats")
    )
    joint_iters, joint_evals, joint_warm = wlo_stats_numbers(
        joint.extra.get("wlo_stats")
    )
    return Cell(
        kernel=request.kernel,
        target=request.target,
        constraint_db=request.constraint_db,
        scalar_cycles=baseline.scalar.total_cycles,
        wlo_first_simd_cycles=baseline.simd.total_cycles,
        wlo_slp_cycles=joint.total_cycles,
        float_cycles=float_total,
        wlo_first_groups=baseline.simd.n_groups,
        wlo_slp_groups=joint.n_groups,
        # `is None`, not `or`: a legitimately measured 0.0 dB noise is
        # a value, only an unmeasured result maps to the 0.0 sentinel.
        wlo_first_noise_db=(
            0.0 if baseline.simd.noise_db is None else baseline.simd.noise_db
        ),
        wlo_slp_noise_db=0.0 if joint.noise_db is None else joint.noise_db,
        wlo_iterations=base_iters + joint_iters,
        wlo_evaluations=base_evals + joint_evals,
        warm_start=base_warm or joint_warm,
    )


#: Per-process memo of measured format noise, keyed
#: (config, kernel, format): the noise of a float format is
#: constraint- and target-independent, so a format sweep's whole
#: (kernel, format) panel measures it once per process.
_FORMAT_NOISE: dict[tuple[KernelConfig, str, str], float] = {}


def format_noise_db(config: KernelConfig, kernel: str, format: str) -> float:
    """Measured noise (dB) of executing ``kernel`` in ``format``.

    Evaluated on the kernel's analysis twin against the ``bigfloat``
    oracle reference (memoized per process); the iir twin discards its
    warm-up transient exactly like the validation experiment does.
    """
    key = (config, kernel, canonical_format(format))
    found = _FORMAT_NOISE.get(key)
    if found is None:
        # Local import: the accuracy package sits above the IR but the
        # engine is imported by lightweight consumers that never
        # evaluate format cells.
        from repro.accuracy.simulation import FormatAccuracyEvaluator

        _, twin = kernel_programs(config, kernel)
        evaluator = FormatAccuracyEvaluator(
            twin, key[2], n_stimuli=2,
            discard=64 if kernel == "iir" else 0,
        )
        found = evaluator.noise_db()
        _FORMAT_NOISE[key] = found
    return found


def _evaluate_format_cell(config: KernelConfig, request: CellRequest) -> Cell:
    """Evaluate one *format* cell (``request.format`` set).

    A float-format cell has no word-length search: the kernel runs in
    the format everywhere, so its cycle count is the float flow's total
    (the cycle model is precision-independent — one float machine op
    per scalar op) and its noise is the format's measured rounding
    noise against the ``bigfloat`` oracle.  Every cycle column carries
    that one total (speedups are identically 1.0), the SLP group
    counts are zero, and the cell is never constraint-infeasible — the
    constraint axis merely records which noise budget the format is
    being compared against, so format sweeps always complete.
    """
    program, twin = kernel_programs(config, request.kernel)
    target = get_target(request.target)
    total = run_flow(
        "float", program, target, analysis_program=twin,
        format=request.format,
    ).total_cycles
    noise = format_noise_db(config, request.kernel, request.format)
    return Cell(
        kernel=request.kernel,
        target=request.target,
        constraint_db=request.constraint_db,
        scalar_cycles=total,
        wlo_first_simd_cycles=total,
        wlo_slp_cycles=total,
        float_cycles=total,
        wlo_first_groups=0,
        wlo_slp_groups=0,
        wlo_first_noise_db=noise,
        wlo_slp_noise_db=noise,
    )


# ----------------------------------------------------------------------
# Job graph.


@dataclass
class SweepPlan:
    """The deduplicated job graph of one sweep."""

    config: KernelConfig
    requests: list[CellRequest]

    @staticmethod
    def build(
        config: KernelConfig,
        kernels: Iterable[str],
        targets: Iterable[str],
        grid: Iterable[float] = PAPER_CONSTRAINT_GRID,
        wlo: str = "tabu",
        only: Iterable[str] | None = None,
        flow: str = "wlo-slp",
        sim_backend: str = "",
        continuation: str = "",
        format: str = "",
    ) -> "SweepPlan":
        """Enumerate (kernel × target × constraint) cells.

        ``only`` restricts the grid to ``kernel:target`` pairs (the CLI
        ``--only fir:vex-1`` filter); ``wlo`` and ``flow`` select the
        baseline WLO engine and the joint flow variant of every cell
        and ``sim_backend`` optionally overrides the simulation backend
        of every simulation-backed pass.  Duplicates are dropped and
        the result is ordered kernel-major so consecutive cells share
        analysis-pass results — the shared-work deduplication that
        makes the serial path and each pool worker analyze every
        kernel once.

        ``continuation`` stamps every cell with a cross-constraint
        reuse mode and orders each (kernel, target) panel's constraints
        strictest-first (most negative dB first): a stricter solution
        is always feasible at a looser constraint, so in-order
        execution hands every cell after a panel's first a usable warm
        seed.  The ordering is an *optimization*, not a contract —
        backends that split or reorder the plan (``process``,
        ``workqueue``) just get per-chunk or cold continuation, never
        wrong answers.

        ``format`` stamps every cell with a :mod:`repro.formats` name
        (``""`` = the fixed-point default); see :class:`CellRequest`.
        """
        pairs = _parse_only(only)
        constraints = [float(constraint) for constraint in grid]
        if continuation:
            constraints = sorted(constraints)
        seen: set[CellRequest] = set()
        requests: list[CellRequest] = []
        for kernel in kernels:
            for target in targets:
                if pairs is not None and (kernel, target) not in pairs:
                    continue
                for constraint in constraints:
                    request = CellRequest(
                        kernel, target, constraint, wlo, flow,
                        sim_backend, continuation, format,
                    )
                    if request not in seen:
                        seen.add(request)
                        requests.append(request)
        return SweepPlan(config, requests)

    @property
    def kernels(self) -> list[str]:
        """Unique kernels of the plan, in first-appearance order."""
        return list(dict.fromkeys(r.kernel for r in self.requests))

    def __len__(self) -> int:
        return len(self.requests)


def _parse_only(only: Iterable[str] | None) -> set[tuple[str, str]] | None:
    if only is None:
        return None
    pairs: set[tuple[str, str]] = set()
    for item in only:
        kernel, sep, target = item.partition(":")
        if not sep or not kernel or not target:
            raise FlowError(
                f"bad --only filter {item!r}; expected KERNEL:TARGET"
            )
        pairs.add((kernel, target))
    return pairs


# ----------------------------------------------------------------------
# Executor.


@dataclass
class CellOutcome:
    """One resolved cell, tagged with where its numbers came from."""

    request: CellRequest
    #: ``None`` exactly when the cell failed (see ``error``).
    cell: Cell | None
    #: ``"memo"`` (in-memory), ``"cache"`` (disk), ``"computed"``, or
    #: ``"failed"`` (the cell raised; ``error`` holds the text).
    source: str
    #: Exception text of a failed cell (``TypeName: message``).
    error: str | None = None

    @property
    def failed(self) -> bool:
        return self.cell is None


@dataclass
class SweepStats:
    """How a plan's cells were resolved (failures included)."""

    memo: int = 0
    cache: int = 0
    computed: int = 0
    failed: int = 0
    #: ``(request, exception text)`` of every failed cell, plan order.
    failures: list[tuple[CellRequest, str]] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.memo + self.cache + self.computed + self.failed

    def count(self, source: str) -> None:
        setattr(self, source, getattr(self, source) + 1)

    def summary(self) -> str:
        text = (
            f"{self.total} cells: {self.computed} computed, "
            f"{self.cache} from disk cache, {self.memo} memoized"
        )
        if self.failed:
            text += f", {self.failed} failed"
        return text

    def ensure_complete(self) -> None:
        """Raise :class:`FlowError` if any cell failed.

        Called by consumers that need the *whole* grid (the figure and
        table builders) — after the executor has finished everything
        completable and persisted it, so a re-run after fixing the
        failing cells is warm.
        """
        if not self.failures:
            return
        details = "; ".join(
            f"{r.kernel}:{r.target} @ {r.constraint_db:g} dB "
            f"(wlo={r.wlo}, flow={r.flow}): {error}"
            for r, error in self.failures
        )
        raise FlowError(
            f"{self.failed} of {self.total} sweep cells failed "
            f"(all other cells completed) — {details}"
        )


class SweepExecutor:
    """Resolves sweep plans through memo, disk cache and a dispatcher.

    Layering per cell: the in-memory ``memo`` dict (shared with the
    owning :class:`~repro.experiments.runner.ExperimentRunner`), then
    the optional on-disk cache, then evaluation through an execution
    backend from :mod:`repro.experiments.backends`.  ``backend=None``
    auto-selects: in-process ``serial`` when ``jobs <= 1`` or a single
    cell is missing, the ``process`` pool otherwise; pass ``"serial"``
    / ``"process"`` / ``"chunked"`` (or any registered name) to pin
    one.  Completed cells stream back through :meth:`run_iter` as they
    finish; failed cells stream too (source ``"failed"``), so the rest
    of the sweep always completes and persists.
    """

    def __init__(
        self,
        config: KernelConfig,
        *,
        cache=None,
        jobs: int = 1,
        memo: dict[CellRequest, Cell] | None = None,
        progress: Callable[[int, int, CellOutcome], None] | None = None,
        backend: str | None = None,
    ) -> None:
        self.config = config
        self.cache = cache
        self.jobs = max(1, int(jobs))
        self.memo = memo if memo is not None else {}
        self.progress = progress
        self.backend = backend

    # ------------------------------------------------------------------
    def run(self, plan: SweepPlan) -> tuple[dict[CellRequest, Cell], SweepStats]:
        """Resolve a whole plan; returns (cells, stats).

        Failed cells are absent from ``cells`` and listed in
        ``stats.failures``; callers needing the full grid should
        ``stats.ensure_complete()``.
        """
        stats = SweepStats()
        cells: dict[CellRequest, Cell] = {}
        for outcome in self.run_iter(plan, stats):
            if outcome.cell is not None:
                cells[outcome.request] = outcome.cell
        return cells, stats

    def run_iter(
        self, plan: SweepPlan, stats: SweepStats | None = None
    ) -> Iterator[CellOutcome]:
        """Stream the plan's cells back as they resolve."""
        stats = stats if stats is not None else SweepStats()
        if self.cache is not None:
            # Coordinator-side directory grooming: orphaned temp files
            # of hard-killed workers are swept once per cache instance
            # here, never in the workers' store hot path.
            self.cache.sweep_stale_tmp()
        total = len(plan.requests)
        misses: list[CellRequest] = []

        def emit(outcome: CellOutcome) -> CellOutcome:
            stats.count(outcome.source)
            if self.progress is not None:
                self.progress(stats.total, total, outcome)
            return outcome

        for request in plan.requests:
            found = self.memo.get(request)
            if found is not None:
                yield emit(CellOutcome(request, found, "memo"))
                continue
            if self.cache is not None:
                cached = self.cache.load(plan.config, request)
                if cached is not None:
                    self.memo[request] = cached
                    yield emit(CellOutcome(request, cached, "cache"))
                    continue
            misses.append(request)

        for result in self._evaluate(plan.config, misses):
            if result.error is not None:
                stats.failures.append((result.request, result.error))
                yield emit(
                    CellOutcome(result.request, None, "failed", result.error)
                )
                continue
            self.memo[result.request] = result.cell
            if self.cache is not None and not result.stored:
                self.cache.store(plan.config, result.request, result.cell)
            yield emit(CellOutcome(result.request, result.cell, result.source))

    # ------------------------------------------------------------------
    def _evaluate(self, config: KernelConfig, misses: list[CellRequest]):
        """Dispatch the cache misses through the execution backend."""
        # Local import: backends.py imports this module (the registry
        # sits beside the engine, not under it).
        from repro.experiments.backends import get_execution_backend

        if not misses:
            return
        name = self.backend
        if name is None:  # auto: pool only when it can pay off
            name = "serial" if self.jobs == 1 or len(misses) == 1 else "process"
        backend = get_execution_backend(name)
        yield from backend.evaluate(
            config, misses, jobs=self.jobs, cache=self.cache
        )
