"""Pluggable sweep execution backends (the fourth registry).

The sweep engine separates *what* to evaluate (the
:class:`~repro.experiments.engine.SweepPlan`) from *how* the missing
cells are dispatched.  Dispatch strategies are
:class:`ExecutionBackend` instances resolved by name from this
registry, mirroring how flows (:mod:`repro.pipeline`), WLO engines
(:mod:`repro.wlo.registry`) and simulation backends
(:mod:`repro.ir.backend`) are resolved:

* ``serial`` — in-process evaluation, one cell at a time.  No pickling,
  no pool start-up; the reference dispatcher.
* ``process`` — one :class:`~concurrent.futures.ProcessPoolExecutor`
  task per cell, streaming results back as futures complete.
* ``chunked`` — kernel-major *chunks* of cells per pool task, so a
  worker pays pickling/IPC once per chunk and reuses its per-process
  kernel/context memos across the whole chunk.  Each worker loads and
  stores cells directly in the shared on-disk
  :class:`~repro.experiments.cache.SweepCache`, so several hosts
  pointed at one cache directory (``--cache-dir`` or
  ``$REPRO_CACHE_DIR`` on a network mount) cooperatively fill the same
  sweep, and completed cells survive even if the coordinating process
  dies mid-sweep.

Failures are data, not control flow: every backend returns a
:class:`CellResult` per request, carrying either the evaluated
:class:`~repro.experiments.engine.Cell` or the exception text of the
cell that raised.  One infeasible constraint can therefore never abort
a sweep or drop in-flight completed cells — the executor keeps
draining, persists every survivor, and surfaces the failures in its
:class:`~repro.experiments.engine.SweepStats`.

All backends are bit-identical on the surviving cells of *cold*
sweeps: dispatch changes *where*
:func:`~repro.experiments.engine.evaluate_cell` runs, never what it
computes.  Warm-continuation sweeps (``continuation="warm"``, see
:mod:`repro.wlo.continuation`) relax this to the continuation quality
contract: the per-process continuation store means ``serial`` (and
each ``chunked`` worker, whose kernel-major chunks keep a panel's
strictest-first constraint order) hands every cell its neighbor's
seed, while ``process`` one-task-per-cell dispatch usually finds an
empty store and runs cold — always-correct, feasible, never costlier
than cold, but not bit-pinned across dispatch strategies.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Iterator

import pickle

from repro.errors import ExecutionBackendError, unknown_name_error
from repro.experiments.engine import (
    Cell,
    CellRequest,
    KernelConfig,
    evaluate_cell,
)
from repro.pipeline import get_flow

__all__ = [
    "CellResult",
    "ChunkedBackend",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "available_execution_backends",
    "evaluate_request",
    "get_execution_backend",
    "register_execution_backend",
]


@dataclass(frozen=True)
class CellResult:
    """One dispatched cell: a :class:`Cell`, or the error that ate it.

    ``source`` is ``"computed"`` or ``"cache"`` (a worker-side hit in
    the shared disk cache — another process or host got there first);
    ``stored`` means the worker already persisted the cell, so the
    executor must not write it again.
    """

    request: CellRequest
    cell: Cell | None = None
    error: str | None = None
    source: str = "computed"
    stored: bool = False


def evaluate_request(
    config: KernelConfig, request: CellRequest, flows: tuple = ()
) -> CellResult:
    """:func:`evaluate_cell` with per-cell fault capture.

    Any exception — an infeasible constraint's
    :class:`~repro.errors.WLOError` as much as an unexpected bug —
    becomes a ``"failed"`` :class:`CellResult` carrying the exception
    text, so one bad cell never aborts the batch it travels with.
    """
    try:
        return CellResult(request, evaluate_cell(config, request, flows))
    except Exception as error:
        return CellResult(
            request, None, error=f"{type(error).__name__}: {error}"
        )


def _evaluate_chunk(
    config: KernelConfig,
    requests: list[CellRequest],
    flows: tuple,
    cache_dir: str | None,
) -> list[CellResult]:
    """Worker-side body of the ``chunked`` backend (module-level for
    pickling).  Re-checks the shared cache per cell (a cooperating
    host may have finished it since the plan was cut) and persists
    every computed cell before returning, so completed work survives a
    coordinator crash."""
    cache = None
    if cache_dir is not None:
        from repro.experiments.cache import SweepCache

        cache = SweepCache(cache_dir)
    results: list[CellResult] = []
    for request in requests:
        if cache is not None:
            found = cache.load(config, request)
            if found is not None:
                results.append(
                    CellResult(request, found, source="cache", stored=True)
                )
                continue
        result = evaluate_request(config, request, flows)
        if result.cell is not None and cache is not None:
            cache.store(config, request, result.cell)
            result = replace(result, stored=True)
        results.append(result)
    return results


def _shippable_flow_specs(requests: list[CellRequest]) -> tuple:
    """The plan's flow declarations, filtered to what pickling allows.

    Every flow a worker will resolve is shipped — the requests' joint
    flows plus the ``float``/``wlo-first`` roles of every cell — so
    runtime declarations *and* runtime re-declarations of built-ins
    reach spawn-started workers (whose registries otherwise hold only
    the stock declarations, silently diverging from the cache key the
    parent computed).  A spec holding unpicklable callables (e.g.
    closures defined in a REPL) is silently skipped — on fork
    platforms the worker inherits it anyway, elsewhere the worker
    raises the registry's clear unknown-flow error.
    """
    names = dict.fromkeys(["float", "wlo-first"])
    names.update(dict.fromkeys(r.flow for r in requests))
    specs = []
    for name in names:
        spec = get_flow(name)
        try:
            pickle.dumps(spec)
        except Exception:
            continue
        specs.append(spec)
    return tuple(specs)


def _pool_events(tasks: list, workers: int, submit) -> Iterator[tuple]:
    """Shared pool-drain loop of the ``process`` and ``chunked`` backends.

    Runs one ``ProcessPoolExecutor`` over ``tasks`` (``submit(pool,
    task)`` dispatches one task) and yields events:

    * ``("delivered", task, value)`` — the task's future returned
      ``value``;
    * ``("failed", task, text)`` — that one future raised a non-pool
      error (its result would not unpickle, say); the pool is healthy
      and only this task suffers;
    * ``("undelivered", tasks, text)`` — a worker death broke the pool
      (:class:`BrokenProcessPool`, raised at submit *or* result time),
      leaving ``tasks`` undelivered.  Always the final event when it
      occurs; the caller decides between retrying in a fresh pool and
      failing them.
    """
    undelivered: list = []
    broken: str | None = None
    unsubmitted = list(tasks)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        pending: dict = {}
        try:
            while unsubmitted:
                future = submit(pool, unsubmitted[0])
                pending[future] = unsubmitted.pop(0)
        except BrokenProcessPool as error:
            # A worker died mid-submission: the already-submitted
            # futures surface the same breakage below.
            broken = f"{type(error).__name__}: {error}"
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                # Already drained into `undelivered` below.
                task = pending.pop(future, None)
                if task is None:
                    continue
                try:
                    yield "delivered", task, future.result()
                except BrokenProcessPool as error:
                    broken = f"{type(error).__name__}: {error}"
                    undelivered = [task, *pending.values()]
                    pending.clear()
                except Exception as error:
                    yield "failed", task, f"{type(error).__name__}: {error}"
    leftover = [*undelivered, *unsubmitted]
    if leftover:
        yield "undelivered", leftover, broken


# ----------------------------------------------------------------------
# Backends.


class ExecutionBackend:
    """One way of dispatching a batch of missing sweep cells."""

    name: str = "backend"
    description: str = ""

    def evaluate(
        self,
        config: KernelConfig,
        misses: list[CellRequest],
        *,
        jobs: int = 1,
        cache=None,
    ) -> Iterator[CellResult]:
        """Yield one :class:`CellResult` per request, any order.

        ``cache`` is the executor's :class:`SweepCache` (or ``None``);
        backends that persist worker-side mark their results
        ``stored``.  Implementations must yield a result for *every*
        request — failures included — and never raise for a per-cell
        error.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class SerialBackend(ExecutionBackend):
    """In-process, one cell at a time — the reference dispatcher."""

    name = "serial"
    description = "in-process evaluation, no pool, no pickling"

    def evaluate(self, config, misses, *, jobs=1, cache=None):
        for request in misses:
            yield evaluate_request(config, request)


class ProcessBackend(ExecutionBackend):
    """One pool task per cell, streamed back as futures complete.

    Worker deaths (OOM, segfault) break the whole
    ``ProcessPoolExecutor`` — every in-flight future raises
    :class:`BrokenProcessPool` and the culprit is indistinguishable
    from its victims.  The undelivered cells are therefore retried in
    a *fresh* pool (never in the coordinator, where a crashing cell
    would take the sweep's bookkeeping down with it), keeping full
    parallelism for the tail; cells still undelivered after
    ``pool_rebuilds`` rebuilds fail with the pool-breakage text.
    """

    name = "process"
    description = "process-pool fan-out, one task per cell"

    #: Fresh pools built for undelivered cells after a worker death.
    pool_rebuilds = 1

    def evaluate(self, config, misses, *, jobs=1, cache=None):
        flows = _shippable_flow_specs(misses)

        def submit(pool, request):
            return pool.submit(evaluate_request, config, request, flows)

        remaining = list(misses)
        broken: str | None = None
        for _ in range(self.pool_rebuilds + 1):
            workers = max(1, min(jobs, len(remaining)))
            leftover: list[CellRequest] = []
            for kind, task, value in _pool_events(remaining, workers, submit):
                if kind == "delivered":
                    yield value
                elif kind == "failed":
                    yield CellResult(task, None, error=value)
                else:  # undelivered: a worker death broke the pool
                    leftover, broken = task, value
            remaining = leftover
            if not remaining:
                return
        for request in remaining:
            yield CellResult(request, None, error=broken)


class ChunkedBackend(ExecutionBackend):
    """Kernel-major chunks per pool task + worker-side shared cache.

    Chunks never span kernels, so each worker amortizes one kernel
    build/analysis context over its whole chunk; the chunk count
    targets ``oversubscribe`` chunks per worker for load balance.
    Workers read and write the shared disk cache directly — the
    multi-host cooperation rung: point several machines at one
    ``--cache-dir`` and each computes only the cells the others
    haven't persisted yet.
    """

    name = "chunked"
    description = (
        "kernel-major chunk dispatch, workers share the disk cache"
    )

    #: Target chunks per worker; >1 so a slow chunk can't serialize
    #: the tail of the sweep.
    oversubscribe = 2

    def chunks(
        self, misses: list[CellRequest], jobs: int
    ) -> list[list[CellRequest]]:
        """Split a kernel-major miss list into dispatch chunks."""
        jobs = max(1, jobs)
        size = max(
            1, -(-len(misses) // (jobs * self.oversubscribe))
        )
        chunks: list[list[CellRequest]] = []
        for request in misses:
            if (
                chunks
                and chunks[-1][0].kernel == request.kernel
                and len(chunks[-1]) < size
            ):
                chunks[-1].append(request)
            else:
                chunks.append([request])
        return chunks

    #: Fresh pools built for undelivered chunks after a worker death.
    pool_rebuilds = 1

    def evaluate(self, config, misses, *, jobs=1, cache=None):
        flows = _shippable_flow_specs(misses)
        cache_dir = str(cache.directory) if cache is not None else None

        def submit(pool, chunk):
            return pool.submit(_evaluate_chunk, config, chunk, flows, cache_dir)

        remaining = self.chunks(misses, jobs)
        broken: str | None = None
        for _ in range(self.pool_rebuilds + 1):
            workers = max(1, min(jobs, len(remaining)))
            leftover: list[list[CellRequest]] = []
            for kind, task, value in _pool_events(remaining, workers, submit):
                if kind == "delivered":
                    yield from value
                elif kind == "failed":
                    yield from self._recover_chunk(config, task, cache, value)
                else:  # undelivered: a worker death broke the pool
                    leftover, broken = task, value
            remaining = leftover
            if not remaining:
                return
            # Retry in a fresh pool: workers re-check the shared cache
            # per cell, so everything the dead worker already persisted
            # is recovered, not recomputed.
        for chunk in remaining:
            yield from self._recover_chunk(config, chunk, cache, broken)

    def _recover_chunk(self, config, chunk, cache, error):
        """An undeliverable chunk: its worker persisted each completed
        cell as it went, so recover those from the shared cache and
        fail only the genuinely unfinished cells."""
        for request in chunk:
            found = cache.load(config, request) if cache is not None else None
            if found is not None:
                yield CellResult(request, found, source="cache", stored=True)
            else:
                yield CellResult(request, None, error=error)


# ----------------------------------------------------------------------
# Registry.

_EXECUTION_BACKENDS: dict[str, ExecutionBackend] = {}


def register_execution_backend(
    backend: ExecutionBackend, *, overwrite: bool = False
) -> ExecutionBackend:
    """Register a backend instance; returns it (decorator-friendly)."""
    key = backend.name.lower()
    if key in _EXECUTION_BACKENDS and not overwrite:
        raise ExecutionBackendError(
            f"execution backend {backend.name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    _EXECUTION_BACKENDS[key] = backend
    return backend


def get_execution_backend(name: str) -> ExecutionBackend:
    """Look an execution backend up by name (case-insensitive)."""
    found = _EXECUTION_BACKENDS.get(name.lower())
    if found is None:
        raise unknown_name_error(
            ExecutionBackendError, "execution backend", name,
            available_execution_backends(),
        )
    return found


def available_execution_backends() -> list[str]:
    """Names accepted by :func:`get_execution_backend`."""
    return sorted(_EXECUTION_BACKENDS)


register_execution_backend(SerialBackend())
register_execution_backend(ProcessBackend())
register_execution_backend(ChunkedBackend())
