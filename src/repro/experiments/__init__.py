"""Evaluation harness regenerating every table and figure of the paper.

Architecture (one layer per module):

* :mod:`~repro.experiments.engine` — the parallel sweep engine.  A
  sweep is a :class:`SweepPlan` of frozen :class:`CellRequest` keys
  (kernel, target, constraint, WLO engine); :func:`evaluate_cell` is a
  pure, picklable function from request to :class:`Cell`; a
  :class:`SweepExecutor` resolves plans through an in-memory memo, an
  optional on-disk cache, and a pluggable execution backend,
  streaming completed cells back with progress callbacks.  All
  backends are bit-identical on surviving cells; failing cells are
  captured per cell (source ``"failed"``) instead of aborting the
  sweep.
* :mod:`~repro.experiments.backends` — the execution-backend registry
  (fourth registry, next to flows, WLO engines and sim backends):
  ``serial`` (in-process), ``process`` (one pool task per cell) and
  ``chunked`` (kernel-major chunk dispatch whose workers load/store
  the shared disk cache directly, enabling multi-host cooperative
  sweeps over one ``--cache-dir``).
* :mod:`~repro.experiments.workqueue` — the fifth backend:
  ``workqueue``, an active coordinator with leased pull-based
  workers — per-worker heartbeats, lease reclaim from dead/stalled
  workers, failed-cell retries with exponential backoff, and
  cache-first assignment.  ``repro serve`` wraps it in a long-lived
  HTTP job service (:mod:`repro.serve`).
* :mod:`~repro.experiments.cache` — the persistent result store: one
  JSON file per cell, keyed by a content hash of the kernel config,
  the cell key and the flow code version, so semantic code edits
  invalidate exactly the stale cells and nothing else.  Corrupt files
  degrade to cache misses.
* :mod:`~repro.experiments.runner` — :class:`ExperimentRunner`, the
  facade the figure/table modules consume (``context`` / ``cell`` /
  ``sweep`` / ``prefetch``).
* :mod:`~repro.experiments.fig4` / :mod:`~repro.experiments.table1` /
  :mod:`~repro.experiments.fig6` / :mod:`~repro.experiments.ablations`
  / :mod:`~repro.experiments.validation` — the paper artifacts, all
  built on the same engine so every figure shares kernel builds,
  analysis contexts and sweep cells.

CLI entry point: ``repro sweep`` (see ``repro sweep --help``) runs any
slice of the grid with ``--jobs N`` workers and a warm ``--cache-dir``;
the figure commands accept the same flags.
"""

from repro.experiments.ablations import (
    ablation_quant_mode,
    ablation_wlo_engines,
    ablation_wlo_slp_features,
)
from repro.experiments.backends import (
    CellResult,
    ExecutionBackend,
    available_execution_backends,
    get_execution_backend,
    register_execution_backend,
)
from repro.experiments.cache import SweepCache, default_cache_dir
from repro.experiments.engine import (
    PAPER_CONSTRAINT_GRID,
    PAPER_TARGETS,
    Cell,
    CellOutcome,
    CellRequest,
    KernelConfig,
    SweepExecutor,
    SweepPlan,
    SweepStats,
    cell_pipeline_signature,
    evaluate_cell,
)
from repro.experiments.fig4 import (
    DENSE_CONSTRAINT_GRID,
    fig4_panel,
    fig4_table,
    render_fig4,
)
from repro.experiments.fig6 import (
    FIG6_TARGETS,
    fig6_series,
    fig6_table,
    render_fig6,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.table1 import TABLE1_TARGETS, table1
from repro.experiments.validation import validation_table

# Imported last, for its registration side effect: workqueue.py builds
# on backends.py (never the other way around — that would be a cycle).
from repro.experiments.workqueue import WorkQueueBackend, WorkQueueScheduler

__all__ = [
    "Cell",
    "CellOutcome",
    "CellRequest",
    "CellResult",
    "DENSE_CONSTRAINT_GRID",
    "ExecutionBackend",
    "ExperimentRunner",
    "FIG6_TARGETS",
    "KernelConfig",
    "PAPER_CONSTRAINT_GRID",
    "PAPER_TARGETS",
    "SweepCache",
    "SweepExecutor",
    "SweepPlan",
    "SweepStats",
    "TABLE1_TARGETS",
    "WorkQueueBackend",
    "WorkQueueScheduler",
    "ablation_quant_mode",
    "ablation_wlo_engines",
    "ablation_wlo_slp_features",
    "available_execution_backends",
    "cell_pipeline_signature",
    "default_cache_dir",
    "evaluate_cell",
    "get_execution_backend",
    "register_execution_backend",
    "fig4_panel",
    "fig4_table",
    "fig6_series",
    "fig6_table",
    "render_fig4",
    "render_fig6",
    "table1",
    "validation_table",
]
