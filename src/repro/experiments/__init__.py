"""Evaluation harness regenerating every table and figure of the paper."""

from repro.experiments.ablations import (
    ablation_quant_mode,
    ablation_wlo_engines,
    ablation_wlo_slp_features,
)
from repro.experiments.validation import validation_table
from repro.experiments.fig4 import fig4_panel, fig4_table, render_fig4
from repro.experiments.fig6 import (
    FIG6_TARGETS,
    fig6_series,
    fig6_table,
    render_fig6,
)
from repro.experiments.runner import (
    PAPER_CONSTRAINT_GRID,
    PAPER_TARGETS,
    Cell,
    ExperimentRunner,
)
from repro.experiments.table1 import TABLE1_TARGETS, table1

__all__ = [
    "Cell",
    "ExperimentRunner",
    "FIG6_TARGETS",
    "PAPER_CONSTRAINT_GRID",
    "PAPER_TARGETS",
    "TABLE1_TARGETS",
    "ablation_quant_mode",
    "ablation_wlo_engines",
    "ablation_wlo_slp_features",
    "validation_table",
    "fig4_panel",
    "fig4_table",
    "fig6_series",
    "fig6_table",
    "render_fig4",
    "render_fig6",
    "table1",
]
