"""Figure 6: WLO-SLP speedup over the floating-point original.

XENTIUM has no FPU, so the float reference is soft-float emulation and
fixed-point conversion buys 15-45x in the paper; ST240 has hardware
floating point, so the gain there (up to ~1.4x) comes purely from
exploiting the SIMD datapath.
"""

from __future__ import annotations

from repro.experiments.runner import PAPER_CONSTRAINT_GRID, ExperimentRunner
from repro.report.ascii_plot import line_plot
from repro.report.tables import TextTable

__all__ = ["FIG6_TARGETS", "fig6_series", "fig6_table", "render_fig6"]

FIG6_TARGETS: tuple[str, ...] = ("xentium", "st240")


def fig6_series(
    runner: ExperimentRunner,
    target: str,
    kernels: tuple[str, ...] = ("fir", "iir", "conv"),
    grid: tuple[float, ...] = PAPER_CONSTRAINT_GRID,
    sim_backend: str = "",
) -> dict[str, list[tuple[float, float]]]:
    """Per-kernel float-to-WLO-SLP speedup series for one target."""
    from repro.api import SweepRequest  # lazy: avoids import cycle

    request = SweepRequest(
        kernels=kernels, targets=(target,), grid=grid,
        sim_backend=sim_backend,
    )
    runner.submit(request).ensure_complete()
    return {
        kernel.upper(): [
            (cell.constraint_db, cell.float_speedup)
            for cell in runner.sweep(
                kernel, target, grid, sim_backend=sim_backend
            )
        ]
        for kernel in kernels
    }


def fig6_table(
    runner: ExperimentRunner,
    targets: tuple[str, ...] = FIG6_TARGETS,
    kernels: tuple[str, ...] = ("fir", "iir", "conv"),
    grid: tuple[float, ...] = PAPER_CONSTRAINT_GRID,
    sim_backend: str = "",
) -> TextTable:
    """All Fig. 6 points as one flat table.

    Completes and caches everything completable before one
    :class:`~repro.errors.FlowError` reports any failed cells.
    """
    from repro.api import SweepRequest  # lazy: avoids import cycle

    request = SweepRequest(
        kernels=kernels, targets=targets, grid=grid, sim_backend=sim_backend
    )
    runner.submit(request).ensure_complete()
    table = TextTable(
        headers=("target", "kernel", "constraint_db", "float_cycles",
                 "wlo_slp_cycles", "speedup"),
        title="Fig. 6 — WLO-SLP speedup over floating-point original",
    )
    for target in targets:
        for kernel in kernels:
            for cell in runner.sweep(
                kernel, target, grid, sim_backend=sim_backend
            ):
                table.add_row(
                    target, kernel, cell.constraint_db,
                    cell.float_cycles, cell.wlo_slp_cycles,
                    round(cell.float_speedup, 3),
                )
    return table


def render_fig6(
    runner: ExperimentRunner,
    targets: tuple[str, ...] = FIG6_TARGETS,
    kernels: tuple[str, ...] = ("fir", "iir", "conv"),
    grid: tuple[float, ...] = PAPER_CONSTRAINT_GRID,
    sim_backend: str = "",
) -> str:
    """ASCII plots per target plus the flat table."""
    from repro.api import SweepRequest  # lazy: avoids import cycle

    request = SweepRequest(
        kernels=kernels, targets=targets, grid=grid, sim_backend=sim_backend
    )
    runner.submit(request).ensure_complete()
    sections = [
        line_plot(
            fig6_series(runner, target, kernels, grid, sim_backend),
            title=f"Fig. 6 — speedup of WLO-SLP over floating-point on {target}",
            y_label="speedup",
            x_label="accuracy constraint (dB)",
        )
        for target in targets
    ]
    sections.append(
        fig6_table(runner, targets, kernels, grid, sim_backend).render()
    )
    return "\n\n".join(sections)
