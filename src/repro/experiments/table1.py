"""Table I: SIMD cycle counts for FIR.

The paper reports, per target (XENTIUM, ST240, VEX-4) and per accuracy
constraint (-5 .. -65 dB), the cycle counts of the WLO-First and
WLO-SLP SIMD versions.  The property the paper highlights — and the
one the tests assert — is that WLO-SLP's cycle count is monotonically
non-decreasing as the constraint tightens (a controlled
accuracy/performance trade), while WLO-First's "varies randomly".
"""

from __future__ import annotations

from repro.experiments.runner import PAPER_CONSTRAINT_GRID, ExperimentRunner
from repro.report.tables import TextTable

__all__ = ["TABLE1_TARGETS", "table1"]

TABLE1_TARGETS: tuple[str, ...] = ("xentium", "st240", "vex-4")


def table1(
    runner: ExperimentRunner,
    targets: tuple[str, ...] = TABLE1_TARGETS,
    grid: tuple[float, ...] = PAPER_CONSTRAINT_GRID,
    kernel: str = "fir",
    sim_backend: str = "",
) -> TextTable:
    """Build Table I (cycle counts of SIMD versions for FIR).

    Every completable cell is resolved (and cached) before a failing
    cell surfaces as one :class:`~repro.errors.FlowError` naming all
    failures — the table needs the full grid to keep its columns.
    """
    from repro.api import SweepRequest  # lazy: avoids import cycle

    request = SweepRequest(
        kernels=(kernel,), targets=targets, grid=grid,
        sim_backend=sim_backend,
    )
    runner.submit(request).ensure_complete()
    table = TextTable(
        headers=("target", "flow") + tuple(f"{a:g} dB" for a in grid),
        title="Table I — number of cycles of SIMD versions for FIR",
    )
    for target in targets:
        cells = runner.sweep(kernel, target, grid, sim_backend=sim_backend)
        table.add_row(
            target, "WLO-First", *(c.wlo_first_simd_cycles for c in cells)
        )
        table.add_row(
            target, "WLO-SLP", *(c.wlo_slp_cycles for c in cells)
        )
    return table
