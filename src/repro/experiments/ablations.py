"""Ablation studies (beyond the paper, justifying its design choices).

* **A — SCALOPTIM on/off**: how much of WLO-SLP's win comes from
  uniformizing scaling shifts (paper Fig. 1b / Fig. 2)?
* **B — accuracy conflicts on/off**: the extra conflict class of
  Fig. 1c (joint selection violating the constraint).
* **B2 — boundary harmonization on/off**: this repo's documented
  extension narrowing ungrouped nodes at group boundaries.
* **C — WLO engines for WLO-First**: Tabu (the paper's) vs the greedy
  max-1 / min+1 classics.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentRunner
from repro.flows.wlo_slp import run_wlo_slp
from repro.report.tables import TextTable
from repro.targets.registry import get_target

__all__ = [
    "ablation_wlo_slp_features",
    "ablation_wlo_engines",
    "ablation_quant_mode",
]


def ablation_wlo_slp_features(
    runner: ExperimentRunner,
    kernel: str = "fir",
    target_name: str = "xentium",
    grid: tuple[float, ...] = (-15.0, -45.0, -65.0),
) -> TextTable:
    """Ablations A, B and B2 on the WLO-SLP flow."""
    ctx = runner.context(kernel)
    target = get_target(target_name)
    variants = {
        "full": {},
        "no-scaloptim": {"scaloptim": False},
        "no-acc-conflicts": {"accuracy_conflicts": False},
        "no-harmonize": {"harmonize": False},
    }
    table = TextTable(
        headers=("constraint_db", "variant", "cycles", "groups", "noise_db"),
        title=(
            f"Ablation A/B/B2 — WLO-SLP features on {kernel}/{target_name}"
        ),
    )
    for constraint in grid:
        for name, kwargs in variants.items():
            result = run_wlo_slp(ctx.program, target, constraint, ctx, **kwargs)
            table.add_row(
                constraint, name, result.total_cycles, result.n_groups,
                round(result.noise_db or 0.0, 1),
            )
    return table


def ablation_quant_mode(
    runner: ExperimentRunner,
    kernel: str = "fir",
    target_name: str = "vex-4",
    grid: tuple[float, ...] = (-10.0, -20.0, -30.0),
) -> TextTable:
    """Ablation D — truncation (the paper's mode) vs rounding.

    Truncating every multiply-accumulate builds a coherent DC bias
    (~64 half-quanta on the 64-tap FIR), which is what makes 8-bit
    quad groups infeasible below roughly -12 dB under the paper's
    truncation assumption.  Rounding removes the bias and pushes
    narrow-lane feasibility (hence 4x8 SIMD speedups) much deeper into
    the constraint range — at the cost of one extra add per
    requantization on real hardware, which this repo's cycle model
    deliberately does not charge (documented simplification).
    """
    from repro.accuracy import AccuracyModel
    from repro.fixedpoint import QuantMode

    ctx = runner.context(kernel)
    target = get_target(target_name)
    rounded_model = AccuracyModel(
        ctx.model.program, ctx.slotmap, ctx.model.gains,
        quant_mode=QuantMode.ROUND, input_mode=QuantMode.ROUND,
    )
    table = TextTable(
        headers=("constraint_db", "quant_mode", "cycles", "groups",
                 "max_group", "noise_db"),
        title=f"Ablation D — quantization mode on {kernel}/{target_name}",
    )
    from repro.wlo import wlo_slp_optimize

    for constraint in grid:
        for label, model in (("truncate", ctx.model),
                             ("round", rounded_model)):
            spec = ctx.fresh_spec(max_wl=target.max_wl)
            outcome = wlo_slp_optimize(
                ctx.program, spec, model, target, constraint
            )
            from repro.codegen.simd import lower_simd_program
            from repro.scheduler.cycles import program_cycles

            lowered = lower_simd_program(ctx.program, spec, target,
                                         outcome.groups)
            cycles = program_cycles(ctx.program, lowered, target)
            sizes = [
                group.size
                for groups in outcome.groups.values()
                for group in groups
            ]
            table.add_row(
                constraint, label, cycles.total_cycles, len(sizes),
                max(sizes) if sizes else 1,
                round(model.noise_db(spec), 1),
            )
    return table


def ablation_wlo_engines(
    runner: ExperimentRunner,
    kernel: str = "fir",
    target_name: str = "xentium",
    grid: tuple[float, ...] = (-15.0, -45.0, -65.0),
) -> TextTable:
    """Ablation C — Tabu vs greedy engines inside WLO-First.

    Runs through the sweep engine: each engine variant is a distinct
    :class:`~repro.experiments.engine.CellRequest` (the ``wlo`` field
    is part of the memo/cache key), so ablation cells share the memo
    and disk cache with the baseline sweep without ever aliasing it.
    """
    from repro.experiments.engine import CellRequest, SweepPlan

    table = TextTable(
        headers=("constraint_db", "engine", "scalar_cycles", "simd_cycles",
                 "noise_db"),
        title=f"Ablation C — WLO-First engines on {kernel}/{target_name}",
    )
    # One combined plan across all engines so --jobs parallelism spans
    # the full 3×grid cell set instead of one engine at a time.  The
    # run drains (and caches) every completable cell before a failure
    # in any engine variant surfaces through ensure_complete().
    requests = [
        CellRequest(kernel, target_name, float(constraint), engine)
        for engine in ("tabu", "max-1", "min+1")
        for constraint in grid
    ]
    _, stats = runner.executor.run(SweepPlan(runner.config, requests))
    stats.ensure_complete()
    for constraint in grid:
        for engine in ("tabu", "max-1", "min+1"):
            cell = runner.cell(kernel, target_name, constraint, wlo=engine)
            table.add_row(
                constraint, engine,
                cell.scalar_cycles, cell.wlo_first_simd_cycles,
                round(cell.wlo_first_noise_db, 1),
            )
    return table
