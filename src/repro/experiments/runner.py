"""Experiment sweep runner — the friendly facade over the engine.

:class:`ExperimentRunner` keeps the interface the figure/table modules
and the benchmark harness use (``context``, ``cell``, ``sweep``), but
is now a thin veneer over :mod:`repro.experiments.engine`: cells are
keyed :class:`~repro.experiments.engine.CellRequest` objects (including
the WLO engine name, so ablation runs can never alias baseline cells),
resolved through a :class:`~repro.experiments.engine.SweepExecutor`
that layers an in-memory memo, an optional persistent on-disk cache,
and a pluggable execution backend
(:mod:`repro.experiments.backends`: ``serial`` / ``process`` /
``chunked``) for bulk :meth:`prefetch` fan-out.  Sweeps are
fault-tolerant: a failing cell never aborts :meth:`prefetch` — it is
reported in the returned stats while every other cell completes and
persists; :meth:`cell` raises a :class:`~repro.errors.FlowError`
carrying the captured exception text when the one cell it was asked
for failed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FlowError
from repro.experiments.engine import (
    PAPER_CONSTRAINT_GRID,
    PAPER_TARGETS,
    Cell,
    CellRequest,
    KernelConfig,
    SweepExecutor,
    SweepPlan,
    SweepStats,
    build_context,
    float_cycles,
)
from repro.flows.common import AnalysisContext

__all__ = ["PAPER_CONSTRAINT_GRID", "PAPER_TARGETS", "Cell", "ExperimentRunner"]


@dataclass
class ExperimentRunner:
    """Builds kernels and runs sweep cells with memoization.

    ``jobs``/``cache``/``progress`` configure the underlying executor:
    ``jobs > 1`` makes :meth:`prefetch` fan cells out over a process
    pool, ``cache`` (a :class:`~repro.experiments.cache.SweepCache`)
    persists results across processes and sessions.
    """

    n_samples: int = 2048
    analysis_samples: int = 160
    image_size: int = 66
    analysis_image_size: int = 18
    jobs: int = 1
    cache: object | None = None
    progress: object | None = None
    #: Execution backend name (``serial``/``process``/``chunked``);
    #: ``None`` auto-selects from ``jobs`` and the miss count.
    backend: str | None = None
    _cells: dict[CellRequest, Cell] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.config = KernelConfig(
            n_samples=self.n_samples,
            analysis_samples=self.analysis_samples,
            image_size=self.image_size,
            analysis_image_size=self.analysis_image_size,
        )
        self.executor = SweepExecutor(
            self.config,
            cache=self.cache,
            jobs=self.jobs,
            memo=self._cells,
            progress=self.progress,
            backend=self.backend,
        )

    # ------------------------------------------------------------------
    @property
    def kernel_names(self) -> list[str]:
        return self.config.kernel_names

    def context(self, kernel: str) -> AnalysisContext:
        """The (process-wide cached) analysis context of a kernel."""
        return build_context(self.config, kernel)

    def float_cycles(self, kernel: str, target_name: str) -> int:
        return float_cycles(self.config, kernel, target_name)

    def cell(
        self,
        kernel: str,
        target_name: str,
        constraint_db: float,
        wlo: str = "tabu",
        flow: str = "wlo-slp",
        sim_backend: str = "",
        continuation: str = "",
        format: str = "",
    ) -> Cell:
        """Run (or recall) one sweep cell."""
        request = CellRequest(
            kernel, target_name, float(constraint_db), wlo, flow, sim_backend,
            continuation, format,
        )
        found = self._cells.get(request)
        if found is not None:
            return found
        plan = SweepPlan(self.config, [request])
        cells, stats = self.executor.run(plan)
        found = cells.get(request)
        if found is None:
            error = next(
                (text for req, text in stats.failures if req == request),
                "cell evaluation failed",
            )
            raise FlowError(
                f"sweep cell {kernel}:{target_name} @ {constraint_db:g} dB "
                f"(wlo={wlo}, flow={flow}) failed: {error}"
            )
        return found

    def sweep(
        self,
        kernel: str,
        target_name: str,
        grid: tuple[float, ...] = PAPER_CONSTRAINT_GRID,
        wlo: str = "tabu",
        flow: str = "wlo-slp",
        sim_backend: str = "",
        continuation: str = "",
        format: str = "",
    ) -> list[Cell]:
        """All cells of one (kernel, target) panel.

        ``ensure_complete`` raises one :class:`FlowError` naming every
        failed cell up front — the alternative (letting :meth:`cell`
        trip over the first hole) would re-evaluate each failed cell a
        second time just to fail again.
        """
        self.prefetch(
            (kernel,), (target_name,), grid, wlo, flow=flow,
            sim_backend=sim_backend, continuation=continuation,
            format=format,
        ).ensure_complete()
        return [
            self.cell(
                kernel, target_name, a, wlo, flow, sim_backend, continuation,
                format,
            )
            for a in grid
        ]

    # ------------------------------------------------------------------
    def prefetch(
        self,
        kernels: tuple[str, ...],
        targets: tuple[str, ...],
        grid: tuple[float, ...] = PAPER_CONSTRAINT_GRID,
        wlo: str = "tabu",
        only: tuple[str, ...] | None = None,
        flow: str = "wlo-slp",
        sim_backend: str = "",
        continuation: str = "",
        format: str = "",
    ) -> SweepStats:
        """Resolve a whole grid through the executor in one batch.

        This is where ``jobs > 1`` pays off: every missing cell of the
        grid is evaluated concurrently, then the figure/table builders
        read them back from the memo.  Returns the resolution stats.
        """
        plan = SweepPlan.build(
            self.config, kernels, targets, grid, wlo, only, flow, sim_backend,
            continuation, format,
        )
        _, stats = self.executor.run(plan)
        return stats

    # ------------------------------------------------------------------
    # Typed-request surface (repro.api) — what the CLI, the figure
    # drivers and the ``repro serve`` service all go through.

    @classmethod
    def from_request(cls, request, *, progress=None, **config) -> "ExperimentRunner":
        """Build a runner configured by a :class:`repro.api.SweepRequest`.

        Materializes the request's execution options — ``jobs``, the
        execution backend, and the cache configuration (``cache_dir``
        / ``no_cache``) — into a runner; ``config`` forwards kernel
        sizing overrides (``n_samples`` etc., used by tests for small
        fast grids).
        """
        from repro.experiments.cache import SweepCache

        cache = None
        if not request.no_cache:
            cache = SweepCache(request.cache_dir or None)
        return cls(
            jobs=request.jobs,
            cache=cache,
            progress=progress,
            backend=request.backend or None,
            **config,
        )

    def submit_iter(self, request):
        """Stream a :class:`repro.api.SweepRequest`'s cells as they
        resolve; yields :class:`CellOutcome` objects in completion
        order.  ``submit_iter(...).stats`` is live while streaming —
        the HTTP service reads it for job progress."""
        plan = request.plan(self.config)
        stats = SweepStats()

        class _Stream:
            def __init__(self, inner):
                self.stats = stats
                self._inner = inner

            def __iter__(self):
                return self._inner

        return _Stream(iter(self.executor.run_iter(plan, stats)))

    def submit(self, request):
        """Resolve a :class:`repro.api.SweepRequest` into a
        :class:`repro.api.SweepReport` (outcomes in plan order plus
        resolution counts)."""
        import time

        from repro.api import SweepReport

        started = time.perf_counter()
        stream = self.submit_iter(request)
        outcomes = list(stream)
        return SweepReport.build(
            request, outcomes, stream.stats,
            elapsed_s=time.perf_counter() - started,
        )
