"""Experiment sweep runner.

Central cache-aware executor for the paper's evaluation: builds each
kernel (full-size program + reduced analysis twin) once, builds each
:class:`~repro.flows.common.AnalysisContext` once, and memoizes every
(kernel, target, constraint) cell so Fig. 4, Table I, Fig. 6 and the
ablations share work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import FlowError
from repro.flows.common import AnalysisContext
from repro.flows.floatflow import run_float
from repro.flows.wlo_first import run_wlo_first
from repro.flows.wlo_slp import run_wlo_slp
from repro.kernels import conv2d, fir, iir
from repro.targets.registry import get_target

__all__ = ["PAPER_CONSTRAINT_GRID", "PAPER_TARGETS", "Cell", "ExperimentRunner"]

#: Table I's constraint grid, reused for every figure by default.
PAPER_CONSTRAINT_GRID: tuple[float, ...] = (
    -5.0, -15.0, -25.0, -35.0, -45.0, -55.0, -65.0
)

#: Fig. 4's target set, in the paper's panel order.
PAPER_TARGETS: tuple[str, ...] = ("xentium", "st240", "vex-4", "vex-1")


@dataclass
class Cell:
    """All numbers of one (kernel, target, constraint) sweep cell."""

    kernel: str
    target: str
    constraint_db: float
    scalar_cycles: int
    wlo_first_simd_cycles: int
    wlo_slp_cycles: int
    float_cycles: int
    wlo_first_groups: int
    wlo_slp_groups: int
    wlo_first_noise_db: float
    wlo_slp_noise_db: float

    @property
    def wlo_first_speedup(self) -> float:
        """SIMD WLO-First over scalar fixed-point (Fig. 4 series 1)."""
        return self.scalar_cycles / self.wlo_first_simd_cycles

    @property
    def wlo_slp_speedup(self) -> float:
        """SIMD WLO-SLP over scalar fixed-point (Fig. 4 series 2)."""
        return self.scalar_cycles / self.wlo_slp_cycles

    @property
    def float_speedup(self) -> float:
        """WLO-SLP over the floating-point original (Fig. 6)."""
        return self.float_cycles / self.wlo_slp_cycles


def _default_kernels(
    n_samples: int, analysis_samples: int, image: int, analysis_image: int
) -> dict[str, tuple[Callable, Callable]]:
    return {
        "fir": (
            lambda: fir(n_samples=n_samples),
            lambda: fir(n_samples=analysis_samples),
        ),
        "iir": (
            lambda: iir(n_samples=n_samples),
            lambda: iir(n_samples=max(analysis_samples, 384)),
        ),
        "conv": (
            lambda: conv2d(image, image),
            lambda: conv2d(analysis_image, analysis_image),
        ),
    }


@dataclass
class ExperimentRunner:
    """Builds kernels and runs sweep cells with memoization."""

    n_samples: int = 2048
    analysis_samples: int = 160
    image_size: int = 66
    analysis_image_size: int = 18
    _contexts: dict[str, AnalysisContext] = field(default_factory=dict)
    _cells: dict[tuple[str, str, float], Cell] = field(default_factory=dict)
    _float_cycles: dict[tuple[str, str], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._kernels = _default_kernels(
            self.n_samples, self.analysis_samples,
            self.image_size, self.analysis_image_size,
        )

    # ------------------------------------------------------------------
    @property
    def kernel_names(self) -> list[str]:
        return list(self._kernels)

    def context(self, kernel: str) -> AnalysisContext:
        """The (cached) analysis context of a kernel."""
        found = self._contexts.get(kernel)
        if found is None:
            if kernel not in self._kernels:
                raise FlowError(
                    f"unknown kernel {kernel!r}; have {self.kernel_names}"
                )
            build, build_twin = self._kernels[kernel]
            found = AnalysisContext.build(build(), build_twin())
            self._contexts[kernel] = found
        return found

    def float_cycles(self, kernel: str, target_name: str) -> int:
        key = (kernel, target_name)
        found = self._float_cycles.get(key)
        if found is None:
            ctx = self.context(kernel)
            found = run_float(ctx.program, get_target(target_name)).total_cycles
            self._float_cycles[key] = found
        return found

    def cell(self, kernel: str, target_name: str, constraint_db: float) -> Cell:
        """Run (or recall) one sweep cell."""
        key = (kernel, target_name, constraint_db)
        found = self._cells.get(key)
        if found is not None:
            return found
        ctx = self.context(kernel)
        target = get_target(target_name)
        wlo_first = run_wlo_first(ctx.program, target, constraint_db, ctx)
        wlo_slp = run_wlo_slp(ctx.program, target, constraint_db, ctx)
        cell = Cell(
            kernel=kernel,
            target=target_name,
            constraint_db=constraint_db,
            scalar_cycles=wlo_first.scalar.total_cycles,
            wlo_first_simd_cycles=wlo_first.simd.total_cycles,
            wlo_slp_cycles=wlo_slp.total_cycles,
            float_cycles=self.float_cycles(kernel, target_name),
            wlo_first_groups=wlo_first.simd.n_groups,
            wlo_slp_groups=wlo_slp.n_groups,
            wlo_first_noise_db=wlo_first.simd.noise_db or 0.0,
            wlo_slp_noise_db=wlo_slp.noise_db or 0.0,
        )
        self._cells[key] = cell
        return cell

    def sweep(
        self,
        kernel: str,
        target_name: str,
        grid: tuple[float, ...] = PAPER_CONSTRAINT_GRID,
    ) -> list[Cell]:
        """All cells of one (kernel, target) panel."""
        return [self.cell(kernel, target_name, a) for a in grid]
