"""Active work-queue execution backend (the fifth dispatcher).

The pool backends (``process``/``chunked``) push a fixed partition of
the miss list into a ``ProcessPoolExecutor`` and hope: a dead worker
breaks the whole pool, a stalled worker serializes the tail, and a
failed cell is final.  The ``workqueue`` backend inverts control — an
active coordinator owns the queue and *pull-based* workers ask for
work one lease at a time:

* **Leases** — an assignment is a (ticket, cell) lease with a
  deadline.  Workers heartbeat while evaluating; a lease whose
  deadline lapses (dead or stalled worker) is reclaimed and handed to
  the next ready worker.  First result wins; stale results from a
  reclaimed lease are discarded.
* **Retries** — a failed cell goes back in the queue with exponential
  backoff; after ``max_attempts`` its last error becomes a normal
  ``"failed"`` :class:`~repro.experiments.backends.CellResult`
  (fault capture unchanged — one infeasible constraint still never
  aborts a sweep).
* **Cache-first assignment** — before a queued cell is leased, the
  coordinator re-checks the shared on-disk
  :class:`~repro.experiments.cache.SweepCache`: cells another host
  (or a previous attempt of a now-dead worker) already persisted are
  completed straight from the cache and never assigned.  Workers
  load/store the cache directly too, like ``chunked`` ones, so
  completed cells survive any crash.
* **Worker respawn** — dead workers are detected by the coordinator,
  their leases reclaimed immediately, and replacements spawned from a
  bounded respawn budget; if every worker is gone and the budget is
  spent, the remaining cells fail with a clear error instead of
  hanging.

The scheduling core (:class:`WorkQueueScheduler`) is pure and
clock-injected — every transition takes an explicit ``now`` — so
lease-reclaim, backoff and dedup logic is deterministically unit
tested without real processes; :class:`WorkQueueBackend` drives it
with real workers over ``multiprocessing`` queues.

Like every backend, ``workqueue`` is bit-identical to ``serial`` on
surviving cells: it changes *where* and *when*
:func:`~repro.experiments.engine.evaluate_cell` runs, never what it
computes.  ``repro serve`` (:mod:`repro.serve`) wraps this backend in
a long-lived HTTP job service.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ExecutionBackendError
from repro.experiments.backends import (
    CellResult,
    ExecutionBackend,
    _shippable_flow_specs,
    evaluate_request,
    register_execution_backend,
)
from repro.experiments.engine import CellRequest, KernelConfig

__all__ = [
    "WorkQueueBackend",
    "WorkQueueScheduler",
]


# ----------------------------------------------------------------------
# Scheduling core (pure, clock-injected).


@dataclass
class _Lease:
    ticket: int
    worker: str
    expires_at: float


@dataclass
class _CellState:
    request: CellRequest
    #: ``queued`` | ``leased`` | ``done`` | ``failed``
    status: str = "queued"
    attempts: int = 0
    #: Backoff gate: not assignable before this time.
    eligible_at: float = 0.0
    lease: _Lease | None = None
    last_error: str | None = None
    result: CellResult | None = None


@dataclass(frozen=True)
class Assignment:
    """One lease handed to a worker."""

    ticket: int
    request: CellRequest


class WorkQueueScheduler:
    """Lease/retry bookkeeping of the work-queue backend.

    Pure state machine over the plan's cells — every method takes an
    explicit ``now`` (any monotonic float), so tests drive dead-worker
    reclaim and backoff exhaustion with a fake clock.  Transitions::

        queued --next_assignment--> leased --complete--> done
          ^                           |
          |<----- fail (retry w/ backoff) / reclaim (lease lapsed)
          |                           |
          +------- attempts exhausted ----> failed

    Terminal transitions return the cell's final :class:`CellResult`
    so the driving backend can stream it; non-terminal ones return
    ``None``.  Duplicate/stale deliveries are idempotent: the first
    result for a cell wins, anything later is dropped.
    """

    def __init__(
        self,
        requests: list[CellRequest],
        *,
        max_attempts: int = 3,
        lease_timeout: float = 60.0,
        retry_backoff: float = 0.25,
    ) -> None:
        if max_attempts < 1:
            raise ExecutionBackendError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.max_attempts = max_attempts
        self.lease_timeout = float(lease_timeout)
        self.retry_backoff = float(retry_backoff)
        # Plan order is preserved for assignment fairness and for
        # yielding deterministic `outcomes()`.
        self._cells: dict[CellRequest, _CellState] = {
            request: _CellState(request) for request in requests
        }
        self._tickets: dict[int, CellRequest] = {}
        self._next_ticket = 0

    # -- queries -------------------------------------------------------
    @property
    def finished(self) -> bool:
        return all(
            cell.status in ("done", "failed")
            for cell in self._cells.values()
        )

    def counts(self) -> dict[str, int]:
        tally = {"queued": 0, "leased": 0, "done": 0, "failed": 0}
        for cell in self._cells.values():
            tally[cell.status] += 1
        return tally

    def next_eligible_at(self) -> float | None:
        """Earliest backoff gate among queued cells (``None`` if no
        cell is queued) — the backend's idle-wait bound."""
        gates = [
            cell.eligible_at
            for cell in self._cells.values()
            if cell.status == "queued"
        ]
        return min(gates) if gates else None

    def outcomes(self) -> list[CellResult]:
        """Terminal results in plan order (every cell, once finished)."""
        return [
            cell.result
            for cell in self._cells.values()
            if cell.result is not None
        ]

    # -- transitions ---------------------------------------------------
    def next_assignment(
        self, worker: str, now: float
    ) -> Assignment | None:
        """Lease the first eligible queued cell to ``worker``."""
        for cell in self._cells.values():
            if cell.status != "queued" or cell.eligible_at > now:
                continue
            self._next_ticket += 1
            ticket = self._next_ticket
            cell.status = "leased"
            cell.attempts += 1
            cell.lease = _Lease(ticket, worker, now + self.lease_timeout)
            self._tickets[ticket] = cell.request
            return Assignment(ticket, cell.request)
        return None

    def heartbeat(self, worker: str, now: float) -> None:
        """Extend the deadlines of every lease ``worker`` holds."""
        for cell in self._cells.values():
            if (
                cell.status == "leased"
                and cell.lease is not None
                and cell.lease.worker == worker
            ):
                cell.lease.expires_at = now + self.lease_timeout

    def complete(self, ticket: int, result: CellResult) -> CellResult | None:
        """Deliver a successful result; first delivery wins.

        Accepts the result even off a reclaimed (stale) lease — the
        work is done and bit-identical, discarding it would only waste
        the re-assigned attempt.  Returns the terminal result when
        this delivery finished the cell, ``None`` when the cell was
        already terminal (duplicate)."""
        request = self._tickets.get(ticket)
        if request is None:
            return None
        cell = self._cells[request]
        if cell.status in ("done", "failed"):
            return None
        cell.status = "done"
        cell.lease = None
        cell.result = result
        return result

    def mark_done(self, request: CellRequest, result: CellResult) -> CellResult | None:
        """Coordinator-side completion (cache-first hit, no lease)."""
        cell = self._cells[request]
        if cell.status in ("done", "failed"):
            return None
        cell.status = "done"
        cell.lease = None
        cell.result = result
        return result

    def fail(self, ticket: int, error: str, now: float) -> CellResult | None:
        """Deliver a failure; requeue with backoff or exhaust.

        Ignored when the ticket is stale (the cell was reclaimed and
        re-leased, or already finished) — only the lease currently on
        the cell may fail it."""
        request = self._tickets.get(ticket)
        if request is None:
            return None
        cell = self._cells[request]
        if (
            cell.status != "leased"
            or cell.lease is None
            or cell.lease.ticket != ticket
        ):
            return None
        return self._retry_or_exhaust(cell, error, now)

    def reclaim(self, now: float) -> list[CellResult]:
        """Requeue every lease whose deadline lapsed (dead or stalled
        worker); returns the terminal failures of cells whose attempts
        were already exhausted."""
        exhausted: list[CellResult] = []
        for cell in self._cells.values():
            if (
                cell.status == "leased"
                and cell.lease is not None
                and cell.lease.expires_at <= now
            ):
                error = (
                    f"lease expired on worker {cell.lease.worker!r} "
                    f"(dead or stalled)"
                )
                terminal = self._retry_or_exhaust(
                    cell, error, now, backoff=False
                )
                if terminal is not None:
                    exhausted.append(terminal)
        return exhausted

    def release_worker(self, worker: str, now: float) -> list[CellResult]:
        """Immediately requeue every lease of a known-dead worker."""
        exhausted: list[CellResult] = []
        for cell in self._cells.values():
            if (
                cell.status == "leased"
                and cell.lease is not None
                and cell.lease.worker == worker
            ):
                terminal = self._retry_or_exhaust(
                    cell, f"worker {worker!r} died", now, backoff=False
                )
                if terminal is not None:
                    exhausted.append(terminal)
        return exhausted

    def abort_pending(self, error: str) -> list[CellResult]:
        """Terminally fail every non-finished cell (no workers left)."""
        failures: list[CellResult] = []
        for cell in self._cells.values():
            if cell.status in ("done", "failed"):
                continue
            cell.status = "failed"
            cell.lease = None
            cell.result = CellResult(cell.request, None, error=error)
            failures.append(cell.result)
        return failures

    # ------------------------------------------------------------------
    def _retry_or_exhaust(
        self,
        cell: _CellState,
        error: str,
        now: float,
        backoff: bool = True,
    ) -> CellResult | None:
        cell.lease = None
        cell.last_error = error
        if cell.attempts >= self.max_attempts:
            cell.status = "failed"
            # Keep the captured exception text first — consumers match
            # on the `TypeName: message` prefix — and append the retry
            # provenance.
            cell.result = CellResult(
                cell.request, None,
                error=f"{error} (after {cell.attempts} attempts)",
            )
            return cell.result
        cell.status = "queued"
        cell.eligible_at = (
            now + self.retry_backoff * (2 ** (cell.attempts - 1))
            if backoff
            else now
        )
        return None


# ----------------------------------------------------------------------
# Worker side (module-level for pickling/spawn).


def _workqueue_worker(
    worker_id: str,
    tasks,
    events,
    config: KernelConfig,
    flows: tuple,
    cache_dir: str | None,
    heartbeat_interval: float,
    chaos: str | None = None,
) -> None:
    """Pull-based worker loop: ready → lease → heartbeat → result.

    Messages *to* the worker on its private ``tasks`` queue:
    ``("cell", ticket, request)`` and ``("stop",)``.  Events back on
    the shared ``events`` queue: ``("ready"|"heartbeat"|"bye",
    worker_id, None)`` and ``("result", worker_id, (ticket,
    CellResult))``.  Heartbeats come from a background thread while
    the (potentially long) evaluation runs, so a slow cell and a dead
    worker are distinguishable coordinator-side.

    ``chaos="kill-first-lease"`` hard-kills the process on its first
    assignment *before* any result is sent — the test hook behind the
    "a killed worker loses no completed cells" guarantee.
    """
    cache = None
    if cache_dir is not None:
        from repro.experiments.cache import SweepCache

        cache = SweepCache(cache_dir)
    events.put(("ready", worker_id, None))
    while True:
        message = tasks.get()
        if message[0] == "stop":
            events.put(("bye", worker_id, None))
            return
        _kind, ticket, request = message
        if chaos == "kill-first-lease":
            os._exit(1)

        stop_beat = threading.Event()

        def _beat() -> None:
            while not stop_beat.wait(heartbeat_interval):
                events.put(("heartbeat", worker_id, None))

        beater = threading.Thread(target=_beat, daemon=True)
        beater.start()
        try:
            result = None
            if cache is not None:
                found = cache.load(config, request)
                if found is not None:
                    result = CellResult(
                        request, found, source="cache", stored=True
                    )
            if result is None:
                result = evaluate_request(config, request, flows)
                if result.cell is not None and cache is not None:
                    cache.store(config, request, result.cell)
                    result = CellResult(
                        request, result.cell, source=result.source,
                        stored=True,
                    )
        finally:
            stop_beat.set()
        events.put(("result", worker_id, (ticket, result)))
        events.put(("ready", worker_id, None))


@dataclass
class _WorkerHandle:
    process: multiprocessing.Process
    tasks: object
    stopped: bool = False
    #: Tickets assigned and not yet resolved (for dead-worker cleanup).
    busy: bool = field(default=False)


# ----------------------------------------------------------------------
# Backend.


class WorkQueueBackend(ExecutionBackend):
    """Coordinator + pull-based leased workers (see module docstring).

    Class attributes are the tuning knobs, overridable per instance
    like the other backends' (``pool_rebuilds`` etc.):

    * ``max_attempts`` — evaluations of a cell before its last error
      becomes final;
    * ``lease_timeout`` — seconds without a heartbeat before a lease
      is reclaimed;
    * ``retry_backoff`` — base seconds of the exponential retry gate;
    * ``respawns`` — replacement workers spawned after deaths;
    * ``chaos`` — test hook forwarded to the *first* initial worker
      (``"kill-first-lease"``).
    """

    name = "workqueue"
    description = (
        "active coordinator with leased pull-based workers; "
        "heartbeats, retries with backoff, cache-first assignment"
    )

    max_attempts = 3
    lease_timeout = 60.0
    retry_backoff = 0.25
    respawns = 2
    #: Coordinator event-loop tick (seconds) when idle.
    tick = 0.05
    chaos: str | None = None

    def evaluate(self, config, misses, *, jobs=1, cache=None):
        if not misses:
            return
        flows = _shippable_flow_specs(misses)
        cache_dir = str(cache.directory) if cache is not None else None
        scheduler = WorkQueueScheduler(
            misses,
            max_attempts=self.max_attempts,
            lease_timeout=self.lease_timeout,
            retry_backoff=self.retry_backoff,
        )
        context = multiprocessing.get_context()
        events = context.Queue()
        fleet: dict[str, _WorkerHandle] = {}
        spawned = 0
        respawns_left = self.respawns
        heartbeat_interval = max(0.01, self.lease_timeout / 4.0)

        def spawn(chaos: str | None = None) -> str:
            nonlocal spawned
            worker_id = f"wq-{spawned}"
            spawned += 1
            tasks = context.Queue()
            process = context.Process(
                target=_workqueue_worker,
                args=(
                    worker_id, tasks, events, config, flows, cache_dir,
                    heartbeat_interval, chaos,
                ),
                daemon=True,
            )
            process.start()
            fleet[worker_id] = _WorkerHandle(process, tasks)
            return worker_id

        def assign(worker_id: str) -> list[CellResult]:
            """Lease the next eligible cell to a ready worker —
            cache-first: anything already persisted completes here
            and is never assigned."""
            finished: list[CellResult] = []
            handle = fleet[worker_id]
            while True:
                assignment = scheduler.next_assignment(
                    worker_id, time.monotonic()
                )
                if assignment is None:
                    handle.busy = False
                    return finished
                if cache is not None:
                    found = cache.load(config, assignment.request)
                    if found is not None:
                        terminal = scheduler.complete(
                            assignment.ticket,
                            CellResult(
                                assignment.request, found,
                                source="cache", stored=True,
                            ),
                        )
                        if terminal is not None:
                            finished.append(terminal)
                        continue
                handle.busy = True
                handle.tasks.put(
                    ("cell", assignment.ticket, assignment.request)
                )
                return finished

        idle: list[str] = []
        try:
            for index in range(max(1, min(jobs, len(misses)))):
                spawn(self.chaos if index == 0 else None)
            while not scheduler.finished:
                try:
                    kind, worker_id, payload = events.get(timeout=self.tick)
                except queue_module.Empty:
                    kind = None
                now = time.monotonic()
                if kind == "heartbeat":
                    scheduler.heartbeat(worker_id, now)
                elif kind == "ready":
                    idle.append(worker_id)
                elif kind == "result":
                    ticket, result = payload
                    if worker_id in fleet:
                        fleet[worker_id].busy = False
                    if result.error is None:
                        terminal = scheduler.complete(ticket, result)
                        if terminal is not None:
                            yield terminal
                    else:
                        terminal = scheduler.fail(ticket, result.error, now)
                        if terminal is not None:
                            yield terminal
                # Lapsed leases (stalled workers that stopped
                # heartbeating) go back in the queue.
                for terminal in scheduler.reclaim(now):
                    yield terminal
                # Dead workers: reclaim their leases immediately and
                # respawn from the budget.
                for dead_id in [
                    wid for wid, handle in fleet.items()
                    if not handle.stopped and not handle.process.is_alive()
                ]:
                    fleet.pop(dead_id)
                    if dead_id in idle:
                        idle.remove(dead_id)
                    for terminal in scheduler.release_worker(dead_id, now):
                        yield terminal
                    if not scheduler.finished and respawns_left > 0:
                        respawns_left -= 1
                        spawn()
                if not fleet and not scheduler.finished:
                    for terminal in scheduler.abort_pending(
                        "all workqueue workers died "
                        "(respawn budget exhausted)"
                    ):
                        yield terminal
                    break
                # Hand work to every idle worker with an eligible cell.
                still_idle: list[str] = []
                for worker_id in idle:
                    if worker_id not in fleet:
                        continue
                    for terminal in assign(worker_id):
                        yield terminal
                    if not fleet[worker_id].busy:
                        still_idle.append(worker_id)
                idle = still_idle
        finally:
            for handle in fleet.values():
                handle.stopped = True
                try:
                    handle.tasks.put(("stop",))
                except Exception:
                    pass
            for handle in fleet.values():
                handle.process.join(timeout=2.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=2.0)
            events.close()


register_execution_backend(WorkQueueBackend())
