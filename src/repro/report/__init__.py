"""Text rendering of experiment results (tables, ASCII figures)."""

from repro.report.ascii_plot import line_plot
from repro.report.progress import ProgressPrinter
from repro.report.tables import TextTable

__all__ = ["ProgressPrinter", "TextTable", "line_plot"]
