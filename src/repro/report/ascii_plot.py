"""Terminal line plots.

Renders the paper's figures as character grids so the benchmark
harness can "draw" Fig. 4 / Fig. 6 in CI logs.  One glyph per series;
points are plotted on a y-scaled grid over evenly spaced x positions
(the figures' x axes are categorical constraint grids).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["line_plot"]

_GLYPHS = "ox+*#@%&"


def line_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Plot ``{label: [(x, y), ...]}`` as an ASCII grid.

    X values are treated as ordered categories (evenly spaced); y is
    linearly scaled between the observed extremes, padded slightly so
    extreme points stay visible.
    """
    points = [p for pts in series.values() for p in pts]
    if not points:
        return f"{title}\n(no data)"
    xs: list[float] = sorted({x for x, _ in points})
    y_lo = min(y for _, y in points)
    y_hi = max(y for _, y in points)
    if y_hi == y_lo:
        y_hi += 0.5
        y_lo -= 0.5
    pad = 0.05 * (y_hi - y_lo)
    y_lo -= pad
    y_hi += pad

    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        index = xs.index(x)
        if len(xs) == 1:
            return width // 2
        return round(index * (width - 1) / (len(xs) - 1))

    def row(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        return (height - 1) - round(frac * (height - 1))

    for glyph, (label, pts) in zip(_GLYPHS, series.items()):
        ordered = sorted(pts)
        # connect consecutive points with interpolated glyph dots
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            c0, c1 = col(x0), col(x1)
            for c in range(c0, c1 + 1):
                t = 0.0 if c1 == c0 else (c - c0) / (c1 - c0)
                y = y0 + t * (y1 - y0)
                grid[row(y)][c] = "." if 0 < t < 1 else glyph
        for x, y in ordered:
            grid[row(y)][col(x)] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.2f}"
    bottom_label = f"{y_lo:.2f}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for r, grid_row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(label_width)
        elif r == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif r == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(grid_row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_ticks = "  ".join(f"{x:g}" for x in xs)
    lines.append(" " * (label_width + 2) + x_ticks + (f"   [{x_label}]" if x_label else ""))
    legend = "   ".join(
        f"{glyph}={label}" for glyph, label in zip(_GLYPHS, series.keys())
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)
