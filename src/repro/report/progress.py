"""Line-oriented progress reporting for long sweeps.

The sweep executor calls back with (done, total, outcome); this
printer renders one status line per resolved cell, e.g.::

    [ 12/84] computed fir:vex-1 @ -25 dB (wlo-slp 1742 cycles)
    [ 13/84] failed   fir:vex-1 @ -400 dB !! WLOError: accuracy ...

Failed cells (fault-captured by the executor, which keeps streaming
the survivors) print their exception text instead of cycle counts.
Writes to stderr by default so table/figure output on stdout stays
machine-readable.
"""

from __future__ import annotations

import sys
from typing import IO

__all__ = ["ProgressPrinter"]


class ProgressPrinter:
    """Callable matching the executor's ``progress`` hook."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, done: int, total: int, outcome) -> None:
        request = outcome.request
        width = len(str(total))
        if outcome.cell is None:
            detail = f"!! {outcome.error}"
        else:
            detail = f"({request.flow} {outcome.cell.wlo_slp_cycles} cycles)"
        line = (
            f"[{done:>{width}}/{total}] {outcome.source:<8} "
            f"{request.kernel}:{request.target} @ {request.constraint_db:g} dB "
            f"{detail}"
        )
        print(line, file=self.stream, flush=True)
