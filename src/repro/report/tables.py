"""Aligned text tables with CSV/JSON export.

The experiment harness renders every paper table/figure as text (the
environment has no plotting stack), and persists machine-readable
copies next to them for downstream analysis.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

__all__ = ["TextTable"]


@dataclass
class TextTable:
    """A small immutable-ish table: headers plus string-able cells."""

    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    title: str = ""

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Fixed-width rendering with a header rule."""
        cells = [[str(h) for h in self.headers]]
        cells += [[_fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(row[col]) for row in cells)
            for col in range(len(self.headers))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(
            cell.ljust(width) for cell, width in zip(cells[0], widths)
        )
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in cells[1:]:
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_csv(self, path: str | Path | None = None) -> str:
        """CSV text; also written to ``path`` when given."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text

    def to_json(self, path: str | Path | None = None) -> str:
        """JSON records; also written to ``path`` when given."""
        records = [
            dict(zip(self.headers, row)) for row in self.rows
        ]
        text = json.dumps({"title": self.title, "rows": records}, indent=2)
        if path is not None:
            Path(path).write_text(text)
        return text


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
