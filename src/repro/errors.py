"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single except clause
while still discriminating on the specific subclass when needed.

:func:`unknown_name_error` builds the one uniform "unknown name"
message every registry lookup uses (flows, WLO engines, simulation
backends, execution backends, kernels, targets), so a typo anywhere —
CLI flag, Python call or wire request — always answers with the
available alternatives in the same shape.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "ReproError",
    "unknown_name_error",
    "IRError",
    "ValidationError",
    "InterpreterError",
    "BackendError",
    "ExecutionBackendError",
    "FixedPointError",
    "FormatError",
    "OverflowPolicyError",
    "RangeAnalysisError",
    "AccuracyError",
    "SLPError",
    "WLOError",
    "TargetError",
    "SchedulerError",
    "CodegenError",
    "FlowError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed IR construction (bad operands, unknown symbols, ...)."""


class ValidationError(IRError):
    """A program failed structural validation."""


class InterpreterError(ReproError):
    """Runtime failure while interpreting a program."""


class BackendError(ReproError):
    """Unknown or misused evaluation backend."""


class ExecutionBackendError(BackendError):
    """Unknown or misused sweep execution backend."""


class FixedPointError(ReproError):
    """Invalid fixed-point format or operation."""


class OverflowPolicyError(FixedPointError):
    """A value overflowed its format under the 'error' overflow policy."""


class FormatError(ReproError):
    """Unknown or misused numeric format (see :mod:`repro.formats`)."""


class RangeAnalysisError(ReproError):
    """Dynamic-range analysis could not bound a value."""


class AccuracyError(ReproError):
    """Accuracy evaluation failed (no output, degenerate gains, ...)."""


class SLPError(ReproError):
    """SLP extraction failure (inconsistent groups, bad lane order, ...)."""


class WLOError(ReproError):
    """Word-length optimization failure (infeasible constraint, ...)."""


class TargetError(ReproError):
    """Unknown target or inconsistent target model."""


class SchedulerError(ReproError):
    """List scheduling failed (cyclic machine-op graph, ...)."""


class CodegenError(ReproError):
    """Lowering or C emission failure."""


class FlowError(ReproError):
    """End-to-end compilation flow failure."""


def unknown_name_error(
    error_cls: type[ReproError],
    kind: str,
    name: object,
    available: Iterable[str],
) -> ReproError:
    """The standard unknown-name error of every registry lookup.

    Always lists the available alternatives, sorted and comma-joined::

        unknown flow 'warp'; available: float, wlo-first, wlo-slp, ...

    Registries raise their own :class:`ReproError` subclass
    (``error_cls``) so callers can still discriminate, but the message
    shape is identical everywhere — asserted by the format tests in
    ``tests/test_api.py``.
    """
    choices = ", ".join(sorted(available))
    return error_cls(f"unknown {kind} {name!r}; available: {choices}")
