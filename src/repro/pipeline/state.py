"""The shared artifact store flow pipelines operate on.

A :class:`FlowState` is a name → artifact dictionary seeded with the
flow inputs (``program``, ``analysis_program``, ``target`` and — for
constraint-driven flows — ``constraint_db``) that passes read from and
write to.  Every artifact carries a *fingerprint*: a content hash for
the seeds, and a hash of the producing pass's cache key for derived
artifacts.  Fingerprints are what make per-pass caching sound — a
pass's cache key is built from the fingerprints of everything it
reads, so two pipelines sharing an analysis prefix (same program, any
constraint) resolve the prefix to identical keys and reuse one
computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import FlowError
from repro.ir.program import Program
from repro.pipeline.cache import content_fingerprint
from repro.targets.model import TargetModel

__all__ = ["FlowState", "PassTiming"]


@dataclass
class PassTiming:
    """Wall-time record of one pass execution (or cache hit)."""

    name: str
    seconds: float
    cached: bool = False

    @property
    def source(self) -> str:
        return "cached" if self.cached else "computed"


@dataclass
class FlowState:
    """Artifact store shared by the passes of one pipeline run."""

    artifacts: dict[str, Any] = field(default_factory=dict)
    fingerprints: dict[str, str] = field(default_factory=dict)
    timings: list[PassTiming] = field(default_factory=list)

    @staticmethod
    def seed(
        program: Program,
        target: TargetModel,
        constraint_db: float | None = None,
        analysis_program: Program | None = None,
    ) -> "FlowState":
        """A fresh state holding the flow inputs.

        The analysis twin defaults to the program itself; when given,
        it must match the program op-for-op (the same check legacy
        :meth:`~repro.flows.common.AnalysisContext.build` applies).
        """
        from repro.flows.common import _check_twin

        twin = analysis_program or program
        _check_twin(program, twin)
        state = FlowState()
        state.put("program", program)
        state.put("analysis_program", twin)
        state.put("target", target)
        if constraint_db is not None:
            state.put("constraint_db", float(constraint_db))
        return state

    # ------------------------------------------------------------------
    def put(self, name: str, value: Any, fingerprint: str | None = None) -> None:
        """Store an artifact; content-fingerprinted unless one is given."""
        self.artifacts[name] = value
        self.fingerprints[name] = fingerprint or content_fingerprint(value)

    def get(self, name: str) -> Any:
        try:
            return self.artifacts[name]
        except KeyError:
            raise FlowError(
                f"pipeline state has no artifact {name!r}; "
                f"available: {sorted(self.artifacts)}"
            ) from None

    def has(self, name: str) -> bool:
        return name in self.artifacts

    def fingerprint(self, name: str) -> str:
        try:
            return self.fingerprints[name]
        except KeyError:
            raise FlowError(
                f"pipeline state has no artifact {name!r}; "
                f"available: {sorted(self.artifacts)}"
            ) from None

    # ------------------------------------------------------------------
    def timing_report(self) -> str:
        """Human-readable per-pass wall-time table (``--timings``)."""
        if not self.timings:
            return "(no passes ran)"
        width = max(len(t.name) for t in self.timings)
        lines = [f"{'pass':<{width}}  {'ms':>9}  source"]
        for timing in self.timings:
            lines.append(
                f"{timing.name:<{width}}  {timing.seconds * 1e3:>9.2f}  "
                f"{timing.source}"
            )
        total = sum(t.seconds for t in self.timings)
        cached = sum(1 for t in self.timings if t.cached)
        lines.append(
            f"{'total':<{width}}  {total * 1e3:>9.2f}  "
            f"({cached}/{len(self.timings)} passes cached)"
        )
        return "\n".join(lines)
