"""Pipeline execution: ordered passes + per-pass caching + timings.

Running a pipeline walks its passes in order.  For every pass the
cache key is computed (pass signature, input fingerprints, code
version); cacheable passes resolve through a :class:`PassCache` —
shared process-globally by default — and every pass execution or hit
is timed into the state's :class:`~repro.pipeline.state.PassTiming`
log, which the CLI renders under ``--timings``.

Output fingerprints are derived from the pass key whether or not the
pass is cacheable, so downstream cacheable passes key identically
across pipeline runs even when an upstream uncacheable pass (e.g. the
fresh-spec construction) re-ran.
"""

from __future__ import annotations

import time

from repro.errors import FlowError
from repro.pipeline.cache import PassCache, global_pass_cache, pass_key
from repro.pipeline.passes import Pass, check_pass_list
from repro.pipeline.state import FlowState, PassTiming

__all__ = ["Pipeline"]


class Pipeline:
    """An ordered, validated list of passes.

    ``has_constraint`` states whether a ``constraint_db`` seed artifact
    will exist at run time (see
    :attr:`~repro.pipeline.registry.FlowSpec.needs_constraint`).
    """

    def __init__(
        self,
        passes: tuple[Pass, ...] | list[Pass],
        has_constraint: bool = True,
    ) -> None:
        self.passes = tuple(passes)
        check_pass_list(self.passes, has_constraint)

    def pass_names(self) -> list[str]:
        """The resolved structure: every pass signature, in order."""
        return [pass_.signature() for pass_ in self.passes]

    # ------------------------------------------------------------------
    def run(self, state: FlowState, cache: PassCache | None = None) -> FlowState:
        """Execute every pass against ``state``; returns the state."""
        cache = cache if cache is not None else global_pass_cache()
        for pass_ in self.passes:
            self._run_pass(pass_, state, cache)
        return state

    def _run_pass(self, pass_: Pass, state: FlowState, cache: PassCache) -> None:
        started = time.perf_counter()
        key = pass_key(pass_, state)
        if pass_.cacheable:
            outputs = cache.lookup(pass_.name, key)
            if outputs is not None:
                self._publish(pass_, state, key, outputs)
                state.timings.append(PassTiming(
                    pass_.signature(), time.perf_counter() - started, True
                ))
                return
        else:
            cache.count_execution(pass_.name)
        outputs = pass_.run(state)
        if set(outputs) != set(pass_.writes):
            raise FlowError(
                f"pass {pass_.signature()!r} wrote {sorted(outputs)}, "
                f"declared {sorted(pass_.writes)}"
            )
        if pass_.cacheable:
            cache.store(key, outputs)
        self._publish(pass_, state, key, outputs)
        state.timings.append(PassTiming(
            pass_.signature(), time.perf_counter() - started, False
        ))

    @staticmethod
    def _publish(pass_: Pass, state: FlowState, key: str, outputs: dict) -> None:
        for name in pass_.writes:
            state.put(name, outputs[name], fingerprint=f"{key}:{name}")
