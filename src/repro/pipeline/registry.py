"""Flow lookup by name: declared pass lists instead of bespoke code.

A :class:`FlowSpec` is the declarative description of one compilation
flow: a name, default parameters, a ``build`` hook turning resolved
parameters into a pass tuple, and a ``result`` hook packaging the
final :class:`~repro.pipeline.state.FlowState` into the flow's public
result object (:class:`~repro.flows.common.FlowResult` or
:class:`~repro.flows.wlo_first.WloFirstResult`).

The registry mirrors :mod:`repro.targets.registry`: library code and
the CLI resolve flows exclusively through :func:`get_flow` /
:func:`run_flow`, so registering a variant makes it immediately
runnable (``repro run --flow NAME``) and sweepable (``repro sweep
--flow NAME``) with its own, never-aliasing cache identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import FlowError, unknown_name_error
from repro.ir.program import Program
from repro.pipeline.cache import PassCache
from repro.pipeline.passes import Pass
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.state import FlowState
from repro.targets.model import TargetModel

__all__ = [
    "FlowSpec",
    "available_flows",
    "ensure_flow",
    "execute_flow",
    "get_flow",
    "register_flow",
    "run_flow",
]


@dataclass(frozen=True)
class FlowSpec:
    """Declaration of one flow: parameterized pass list + result hook."""

    name: str
    description: str
    #: ``build(**params) -> tuple[Pass, ...]``
    build: Callable[..., tuple[Pass, ...]]
    #: ``result(state, flow_name, params) -> result object``
    result: Callable[[FlowState, str, dict[str, Any]], Any]
    #: Default parameter values; overrides must stay within these keys.
    params: dict[str, Any] = field(default_factory=dict)
    #: Whether the flow needs an accuracy constraint (float does not).
    needs_constraint: bool = True

    # ------------------------------------------------------------------
    def resolve_params(self, **overrides: Any) -> dict[str, Any]:
        """Defaults merged with overrides; ``None`` means "default"."""
        given = {k: v for k, v in overrides.items() if v is not None}
        unknown = set(given) - set(self.params)
        if unknown:
            raise FlowError(
                f"flow {self.name!r} has no parameter(s) {sorted(unknown)}; "
                f"accepts {sorted(self.params)}"
            )
        resolved = dict(self.params)
        resolved.update(given)
        return resolved

    def pipeline(self, **overrides: Any) -> Pipeline:
        """The flow's pipeline under resolved parameters."""
        return Pipeline(
            self.build(**self.resolve_params(**overrides)),
            has_constraint=self.needs_constraint,
        )

    def pass_names(self, **overrides: Any) -> list[str]:
        """Resolved structure (pass signatures) — the cell-key input."""
        return self.pipeline(**overrides).pass_names()


_FLOWS: dict[str, FlowSpec] = {}
#: Bumped on every registry mutation; lets callers memoize derived
#: data (e.g. the sweep engine's resolved pipeline signatures) without
#: going stale when a flow is re-declared.
_GENERATION = 0


def registry_generation() -> int:
    """Monotonic counter of registry mutations (for memo keys)."""
    return _GENERATION


def _mutate(key: str, spec: FlowSpec) -> None:
    global _GENERATION
    _FLOWS[key] = spec
    _GENERATION += 1


def register_flow(spec: FlowSpec, *, overwrite: bool = False) -> FlowSpec:
    """Register a flow declaration; returns it (decorator-friendly)."""
    key = spec.name.lower()
    if key in _FLOWS and not overwrite:
        raise FlowError(
            f"flow {spec.name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    _mutate(key, spec)
    return spec


def ensure_flow(spec: FlowSpec) -> None:
    """Adopt a shipped declaration, replacing any same-named one.

    The sweep engine ships the (picklable) specs of a plan's flows to
    its pool workers and replays them through this hook, so flows
    declared — or built-ins *re-declared* — at runtime stay sweepable
    even on spawn/forkserver start methods, where workers re-import
    the package and would otherwise see only the stock declarations.
    The shipped spec is authoritative: the parent process computed the
    cell's cache key from it, so evaluating any other same-named
    pipeline would store wrong results under that key.  (Unchanged
    specs compare equal and the assignment is a no-op in effect.)
    """
    key = spec.name.lower()
    if _FLOWS.get(key) != spec:
        _mutate(key, spec)


def get_flow(name: str) -> FlowSpec:
    """Look a flow up by name (case-insensitive)."""
    spec = _FLOWS.get(name.lower())
    if spec is None:
        raise unknown_name_error(FlowError, "flow", name, available_flows())
    return spec


def available_flows() -> list[str]:
    """Names accepted by :func:`get_flow`."""
    return sorted(_FLOWS)


# ----------------------------------------------------------------------
def execute_flow(
    name: str,
    program: Program,
    target: TargetModel,
    constraint_db: float | None = None,
    *,
    analysis_program: Program | None = None,
    cache: PassCache | None = None,
    **overrides: Any,
) -> tuple[Any, FlowState]:
    """Run a registered flow; returns ``(result, final state)``.

    The state gives access to every intermediate artifact and to the
    per-pass timing log (``state.timing_report()``); plain callers use
    :func:`run_flow` and get just the result.
    """
    spec = get_flow(name)
    if spec.needs_constraint and constraint_db is None:
        raise FlowError(
            f"flow {spec.name!r} requires an accuracy constraint (dB)"
        )
    params = spec.resolve_params(**overrides)
    pipeline = Pipeline(
        spec.build(**params), has_constraint=spec.needs_constraint
    )
    state = FlowState.seed(
        program, target,
        constraint_db=constraint_db if spec.needs_constraint else None,
        analysis_program=analysis_program,
    )
    pipeline.run(state, cache=cache)
    return spec.result(state, spec.name, params), state


def run_flow(
    name: str,
    program: Program,
    target: TargetModel,
    constraint_db: float | None = None,
    *,
    analysis_program: Program | None = None,
    cache: PassCache | None = None,
    **overrides: Any,
) -> Any:
    """Run a registered flow and return its result object."""
    result, _ = execute_flow(
        name, program, target, constraint_db,
        analysis_program=analysis_program, cache=cache, **overrides,
    )
    return result
