"""The pass library: every stage of the paper's flows as a `Pass`.

A pass is a named, parameterized transformation over a
:class:`~repro.pipeline.state.FlowState`: it declares which artifacts
it ``reads`` and ``writes``, and :meth:`Pass.run` returns the written
artifacts as a dict.  Passes whose outputs are immutable downstream
set ``cacheable`` and are memoized across pipeline runs by content
hash (see :mod:`repro.pipeline.cache`) — in a constraint sweep the
whole analysis prefix (range analysis, adjoint gains, accuracy model)
resolves from cache on every constraint after the first.

Each pass body is a verbatim transliteration of the corresponding step
of the legacy flow functions in :mod:`repro.flows` (same callees, same
defaults, same order), which is what makes pipeline flows bit-identical
to them — the parity contract ``tests/test_pipeline.py`` pins down.
"""

from __future__ import annotations

import inspect
from typing import Any

from repro.accuracy.adjoint import extract_gains
from repro.accuracy.analytical import AccuracyModel
from repro.codegen.floatgen import lower_float_program
from repro.codegen.scalar import lower_scalar_program
from repro.codegen.simd import lower_simd_program
from repro.errors import FlowError, unknown_name_error
from repro.fixedpoint.iwl import assign_iwls
from repro.fixedpoint.range_analysis import RangeResult, analyze_ranges
from repro.fixedpoint.spec import FixedPointSpec, SlotMap
from repro.ir.backend import DEFAULT_BACKEND
from repro.pipeline.state import FlowState
from repro.scheduler.cycles import program_cycles
from repro.slp.extraction import SelectionStats, extract_groups_decoupled
from repro.wlo.continuation import (
    CONTINUATION_MODES,
    lookup_continuation,
    lookup_frontier,
    record_continuation,
    record_frontier,
)
from repro.wlo.pareto import ParetoResult, pareto_frontier
from repro.wlo.registry import get_wlo_engine
from repro.wlo.slp_aware import JointWarmStart, wlo_slp_optimize

__all__ = [
    "ANALYSIS_PASS_NAMES",
    "AccuracyModelPass",
    "AdjointGainsPass",
    "DecoupledSlpPass",
    "IwlAssignmentPass",
    "JointWloSlpPass",
    "LowerFloatPass",
    "LowerScalarPass",
    "LowerSimdPass",
    "NoiseReportPass",
    "Pass",
    "RangeAnalysisPass",
    "SchedulePass",
    "WloPass",
    "check_pass_list",
]


class Pass:
    """One step of a flow pipeline.

    Subclasses set ``name``, declare ``reads``/``writes`` (artifact
    names on the :class:`FlowState`), and implement :meth:`run`
    returning a dict with exactly the ``writes`` keys.  ``cacheable``
    marks passes whose outputs are never mutated downstream and may
    therefore be shared between pipeline runs.  Constructor parameters
    that change the pass's behaviour must be reported by
    :meth:`params` — they are part of the cache key and of the flow's
    resolved structure (which the sweep cache keys cells on).
    """

    name: str = "pass"
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    cacheable: bool = False

    def params(self) -> dict[str, Any]:
        """Cache-relevant constructor parameters."""
        return {}

    def signature(self) -> str:
        """Stable identity: name plus sorted parameters."""
        params = self.params()
        if not params:
            return self.name
        rendered = ",".join(f"{k}={params[k]!r}" for k in sorted(params))
        return f"{self.name}[{rendered}]"

    def run(self, state: FlowState) -> dict[str, Any]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.signature()}>"


# ----------------------------------------------------------------------
# Analysis prefix (constraint- and target-independent, cacheable).

class RangeAnalysisPass(Pass):
    """Dynamic-range analysis on the analysis twin, re-keyed onto the
    benchmark program's slot map (identical numbering).

    ``sim_backend`` names the evaluation backend of the simulation
    path (every backend yields identical ranges — see
    :mod:`repro.ir.backend`); it is part of the pass signature, so the
    per-pass cache and the sweep's per-cell cache key cells per
    backend and can never alias results across backends.
    """

    name = "range-analysis"
    reads = ("program", "analysis_program")
    writes = ("slotmap", "ranges")
    cacheable = True

    def __init__(
        self, method: str = "auto", sim_backend: str = DEFAULT_BACKEND
    ) -> None:
        self.method = method
        self.sim_backend = sim_backend

    def params(self) -> dict[str, Any]:
        return {"method": self.method, "sim_backend": self.sim_backend}

    def run(self, state: FlowState) -> dict[str, Any]:
        program = state.get("program")
        twin = state.get("analysis_program")
        slotmap = SlotMap(program)
        twin_slotmap = slotmap if twin is program else SlotMap(twin)
        ranges = analyze_ranges(
            twin, twin_slotmap, method=self.method, backend=self.sim_backend
        )
        ranges = RangeResult(slotmap, ranges.ranges, ranges.method)
        return {"slotmap": slotmap, "ranges": ranges}


class AdjointGainsPass(Pass):
    """Noise-gain extraction (trace + adjoints) on the analysis twin."""

    name = "adjoint-gains"
    reads = ("program", "analysis_program")
    writes = ("gains",)
    cacheable = True

    def __init__(self, n_ref_outputs: int = 4, seed: int = 90210) -> None:
        self.n_ref_outputs = n_ref_outputs
        self.seed = seed

    def params(self) -> dict[str, Any]:
        return {"n_ref_outputs": self.n_ref_outputs, "seed": self.seed}

    def run(self, state: FlowState) -> dict[str, Any]:
        program = state.get("program")
        twin = state.get("analysis_program")
        twin_slotmap = SlotMap(program) if twin is program else SlotMap(twin)
        gains = extract_gains(
            twin, twin_slotmap,
            n_ref_outputs=self.n_ref_outputs, seed=self.seed,
        )
        return {"gains": gains}


class AccuracyModelPass(Pass):
    """Analytical accuracy model over the extracted gains."""

    name = "accuracy-model"
    reads = ("program", "slotmap", "gains")
    writes = ("model",)
    cacheable = True

    def __init__(self, **model_kwargs: Any) -> None:
        self.model_kwargs = model_kwargs

    def params(self) -> dict[str, Any]:
        return dict(self.model_kwargs)

    def run(self, state: FlowState) -> dict[str, Any]:
        model = AccuracyModel(
            state.get("program"), state.get("slotmap"), state.get("gains"),
            **self.model_kwargs,
        )
        return {"model": model}


#: The shared, constraint-independent prefix every fixed-point flow
#: starts with — the passes a warm sweep must never re-execute.
ANALYSIS_PASS_NAMES: tuple[str, ...] = (
    RangeAnalysisPass.name, AdjointGainsPass.name, AccuracyModelPass.name
)


# ----------------------------------------------------------------------
# Spec construction and word-length optimization (mutable, uncached).

class IwlAssignmentPass(Pass):
    """Fresh spec with range-derived IWLs at the target's maximum WL.

    Uncacheable on purpose: the spec is mutated by the WLO passes, so
    every pipeline run needs its own instance (construction is cheap).
    """

    name = "iwl-assignment"
    reads = ("slotmap", "ranges", "target")
    writes = ("spec",)

    def run(self, state: FlowState) -> dict[str, Any]:
        spec = FixedPointSpec(
            state.get("slotmap"), max_wl=state.get("target").max_wl
        )
        assign_iwls(spec, state.get("ranges"))
        return {"spec": spec}


def _check_continuation_mode(mode: str) -> str:
    if mode not in CONTINUATION_MODES:
        raise unknown_name_error(
            FlowError, "continuation mode", mode,
            [m for m in CONTINUATION_MODES if m],
        )
    return mode


def _engine_accepts_warm_start(engine: Any) -> bool:
    """Whether a registered engine can take the ``warm_start`` keyword.

    Custom engines registered before warm starts existed keep working:
    they simply always run cold.
    """
    try:
        parameters = inspect.signature(engine).parameters
    except (TypeError, ValueError):  # builtins, odd callables
        return False
    if "warm_start" in parameters:
        return True
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


def _continuation_key(pass_: Pass, state: FlowState) -> str:
    """The constraint-independent identity of a continuation family.

    Built from the pass signature (engine + mode are part of it) and
    the artifact fingerprints of everything the engine reads *except*
    ``constraint_db`` — two cells share a family exactly when they
    solve the same problem at different constraints.  The fingerprints
    also embed :func:`~repro.flows.common.flow_code_version`, so stale
    solutions can never leak across code changes within a process.
    """
    parts = [pass_.signature()]
    for name in ("program", "spec", "model", "target"):
        parts.append(state.fingerprint(name))
    return "|".join(parts)


class WloPass(Pass):
    """Standalone word-length optimization via a registered engine.

    ``continuation`` selects the cross-constraint reuse mode (see
    :data:`repro.wlo.continuation.CONTINUATION_MODES`): ``"warm"``
    seeds the engine with the nearest stricter constraint's recorded
    solution and files this cell's solution for the next; ``"pareto"``
    replaces the engine search entirely with one memoized
    :func:`~repro.wlo.pareto.pareto_frontier` walk per continuation
    family, projected onto this cell's constraint.  Both modes are
    part of :meth:`params` (hence of every cache key); the default
    ``""`` keeps the signature — and therefore all cold cache keys —
    byte-identical to previous releases.
    """

    name = "wlo"
    reads = ("program", "spec", "model", "target", "constraint_db")
    writes = ("spec", "wlo_stats")

    def __init__(self, engine: str = "tabu", continuation: str = "") -> None:
        self.engine = engine
        self.continuation = _check_continuation_mode(continuation)

    def params(self) -> dict[str, Any]:
        params: dict[str, Any] = {"engine": self.engine}
        if self.continuation:
            params["continuation"] = self.continuation
        return params

    def run(self, state: FlowState) -> dict[str, Any]:
        spec = state.get("spec")
        constraint_db = state.get("constraint_db")
        if self.continuation == "pareto":
            return self._run_pareto(state, spec, constraint_db)
        engine = get_wlo_engine(self.engine)
        key = ""
        seed = None
        if self.continuation == "warm" and _engine_accepts_warm_start(engine):
            key = _continuation_key(self, state)
            seed = lookup_continuation(key, constraint_db)
        if seed is not None:
            stats = engine(
                state.get("program"), spec, state.get("model"),
                state.get("target"), constraint_db, warm_start=seed,
            )
        else:
            stats = engine(
                state.get("program"), spec, state.get("model"),
                state.get("target"), constraint_db,
            )
        if key:
            record_continuation(
                key, constraint_db,
                {root: spec.wl(root) for root in spec.slotmap.roots},
            )
        return {"spec": spec, "wlo_stats": stats}

    def _run_pareto(
        self, state: FlowState, spec: FixedPointSpec, constraint_db: float
    ) -> dict[str, Any]:
        key = _continuation_key(self, state)
        frontier = lookup_frontier(key)
        memoized = frontier is not None
        if frontier is None:
            frontier = pareto_frontier(
                state.get("program"), spec, state.get("model"),
                state.get("target"),
            )
            record_frontier(key, frontier)
        point = frontier.project(constraint_db)
        for root, wl in point.wls.items():
            spec.set_wl(root, wl)
        stats = ParetoResult(
            cost=point.cost, noise_db=point.noise_db,
            points=len(frontier.points), moves=frontier.moves,
            evaluations=frontier.evaluations, warm_start=memoized,
            wls=dict(point.wls),
        )
        return {"spec": spec, "wlo_stats": stats}


class JointWloSlpPass(Pass):
    """The paper's joint SLP-aware WLO (Fig. 1), groups + spec at once.

    ``continuation`` follows :class:`WloPass`: ``"warm"`` seeds the
    joint search with the nearest stricter constraint's word lengths
    *and* grouping partition (see
    :class:`~repro.wlo.slp_aware.JointWarmStart`).  The joint engine
    has no scalar frontier to walk, so ``"pareto"`` degrades to the
    warm-continuation behaviour here — only the standalone
    :class:`WloPass` performs true frontier projection.
    """

    name = "wlo-slp"
    reads = ("program", "spec", "model", "target", "constraint_db")
    writes = ("spec", "groups", "selection_stats", "scaling_stats", "wlo_stats")

    def __init__(
        self,
        harmonize: bool = True,
        scaloptim: bool = True,
        accuracy_conflicts: bool = True,
        continuation: str = "",
    ) -> None:
        self.harmonize = harmonize
        self.scaloptim = scaloptim
        self.accuracy_conflicts = accuracy_conflicts
        self.continuation = _check_continuation_mode(continuation)

    def params(self) -> dict[str, Any]:
        params: dict[str, Any] = {
            "harmonize": self.harmonize,
            "scaloptim": self.scaloptim,
            "accuracy_conflicts": self.accuracy_conflicts,
        }
        if self.continuation:
            params["continuation"] = self.continuation
        return params

    def run(self, state: FlowState) -> dict[str, Any]:
        spec = state.get("spec")
        constraint_db = state.get("constraint_db")
        key = ""
        seed = None
        if self.continuation:
            key = _continuation_key(self, state)
            seed = lookup_continuation(key, constraint_db)
        outcome = wlo_slp_optimize(
            state.get("program"), spec, state.get("model"),
            state.get("target"), constraint_db,
            harmonize=self.harmonize, scaloptim=self.scaloptim,
            accuracy_conflicts=self.accuracy_conflicts,
            warm_start=seed,
        )
        if key:
            selection = outcome.selection
            record_continuation(key, constraint_db, JointWarmStart(
                {root: spec.wl(root) for root in spec.slotmap.roots},
                dict(outcome.groups),
                partition_safe=(
                    selection.accuracy_rejections == 0
                    and selection.accuracy_conflicts == 0
                ),
            ))
        return {
            "spec": spec,
            "groups": outcome.groups,
            "selection_stats": outcome.selection,
            "scaling_stats": outcome.scaling,
            "wlo_stats": outcome,
        }


class NoiseReportPass(Pass):
    """Analytical output noise of the final spec, in dB."""

    name = "noise-report"
    reads = ("model", "spec")
    writes = ("noise_db",)

    def run(self, state: FlowState) -> dict[str, Any]:
        return {"noise_db": state.get("model").noise_db(state.get("spec"))}


class DecoupledSlpPass(Pass):
    """Accuracy-blind SLP extraction after the fact (WLO-First's SLP)."""

    name = "slp-extract"
    reads = ("program", "spec", "target")
    writes = ("groups", "selection_stats")

    def run(self, state: FlowState) -> dict[str, Any]:
        program = state.get("program")
        spec = state.get("spec")
        target = state.get("target")
        stats = SelectionStats()
        groups = {
            name: extract_groups_decoupled(program, block, spec, target, stats)
            for name, block in program.blocks.items()
        }
        return {"groups": groups, "selection_stats": stats}


# ----------------------------------------------------------------------
# Lowering and scheduling (deterministic from spec/groups, cacheable).

class LowerFloatPass(Pass):
    """Single-precision float lowering (FPU or serialized soft-float).

    ``format`` names the :mod:`repro.formats` execution format of a
    format-sweep cell (``float32``, ``bfloat16``, ``binary(E,M)``, …).
    The cycle model is format-independent — the target issues one
    float machine op per scalar op regardless of precision — so the
    lowering itself does not change; the parameter exists to key both
    cache layers per format (following :class:`WloPass`, it enters
    :meth:`params` only when set, keeping the default signature — and
    every pre-format cache key — byte-identical).
    """

    name = "lower-float"
    reads = ("program", "target")
    writes = ("float_lowered",)
    cacheable = True

    def __init__(self, format: str = "") -> None:
        self.format = format

    def params(self) -> dict[str, Any]:
        if self.format:
            return {"format": self.format}
        return {}

    def run(self, state: FlowState) -> dict[str, Any]:
        lowered = lower_float_program(state.get("program"), state.get("target"))
        return {"float_lowered": lowered}


class LowerScalarPass(Pass):
    """Scalar fixed-point lowering of the optimized spec."""

    name = "lower-scalar"
    reads = ("program", "spec", "target")
    writes = ("scalar_lowered",)
    cacheable = True

    def run(self, state: FlowState) -> dict[str, Any]:
        lowered = lower_scalar_program(
            state.get("program"), state.get("spec"), state.get("target")
        )
        return {"scalar_lowered": lowered}


class LowerSimdPass(Pass):
    """SIMD fixed-point lowering of spec + groups."""

    name = "lower-simd"
    reads = ("program", "spec", "target", "groups")
    writes = ("simd_lowered",)
    cacheable = True

    def run(self, state: FlowState) -> dict[str, Any]:
        lowered = lower_simd_program(
            state.get("program"), state.get("spec"), state.get("target"),
            state.get("groups"),
        )
        return {"simd_lowered": lowered}


class SchedulePass(Pass):
    """List-schedule a lowered program into a cycle report.

    Parameterized by source/destination artifact names so one flow can
    schedule several lowerings (WLO-First schedules both its scalar
    baseline and its SIMD best effort).
    """

    name = "schedule"
    cacheable = True

    def __init__(self, src: str, dst: str = "cycles") -> None:
        self.src = src
        self.dst = dst
        self.reads = ("program", src, "target")
        self.writes = (dst,)

    def params(self) -> dict[str, Any]:
        return {"src": self.src, "dst": self.dst}

    def run(self, state: FlowState) -> dict[str, Any]:
        cycles = program_cycles(
            state.get("program"), state.get(self.src), state.get("target")
        )
        return {self.dst: cycles}


def check_pass_list(
    passes: tuple[Pass, ...], has_constraint: bool = True
) -> None:
    """Static shape check: every read is seeded or written upstream.

    ``has_constraint`` mirrors the owning flow's ``needs_constraint``:
    a constraint-free flow (like ``float``) must not contain a pass
    reading ``constraint_db``, and that mistake should fail here, at
    declaration shape-check time, not midway through a run.
    """
    available = {"program", "analysis_program", "target"}
    if has_constraint:
        available.add("constraint_db")
    for pass_ in passes:
        missing = set(pass_.reads) - available
        if missing:
            raise FlowError(
                f"pass {pass_.signature()!r} reads {sorted(missing)} which "
                f"no earlier pass writes"
            )
        available.update(pass_.writes)
