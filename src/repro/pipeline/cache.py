"""Per-pass result cache and the content fingerprints that key it.

Two-level scheme:

* **Fingerprints** identify artifact *content*.  Seed artifacts get a
  true content hash — a :class:`~repro.ir.program.Program` hashes its
  printed IR plus every compile-time array payload, a target model its
  dataclass repr, a constraint its float repr.  Artifacts produced by
  a pass inherit a fingerprint derived from that pass's cache key, so
  provenance chains compose without re-hashing big objects.
* **Pass keys** combine the pass signature (name + parameters), the
  fingerprints of everything the pass reads, and
  :func:`~repro.flows.common.flow_code_version` (so editing semantic
  source rolls every key).  The :class:`PassCache` maps keys to output
  artifact dicts; per-pass hit/miss counters make reuse observable to
  tests, benchmarks and the ``--timings`` report.

The default cache is process-global: every pipeline run in a process
(or pool worker) shares one analysis prefix per kernel, which is what
lets a constraint sweep skip range/adjoint work on all but the first
constraint.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from repro.ir.program import Program
from repro.targets.model import TargetModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.pipeline.passes import Pass
    from repro.pipeline.state import FlowState

__all__ = [
    "PassCache",
    "content_fingerprint",
    "global_pass_cache",
    "pass_key",
]


def _digest(*parts: str) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode())
        digest.update(b"\0")
    return digest.hexdigest()[:32]


def _program_fingerprint(program: Program) -> str:
    """Content hash of a program: printed IR + compile-time payloads.

    The printer covers symbols (with value ranges), the loop tree and
    every op; coefficient/state payloads are hashed separately because
    the printer does not dump array contents.  Memoized on the program
    object — kernel programs live for the whole process.
    """
    cached = getattr(program, "_content_fingerprint", None)
    if cached is not None:
        return cached
    payloads = hashlib.sha256()
    for decl in program.arrays.values():
        if decl.values is not None:
            payloads.update(decl.name.encode())
            payloads.update(str(decl.values.dtype).encode())
            payloads.update(decl.values.tobytes())
    fingerprint = _digest("program", program.name, str(program),
                          payloads.hexdigest())
    try:
        program._content_fingerprint = fingerprint
    except AttributeError:  # pragma: no cover - slotted Program variant
        pass
    return fingerprint


def content_fingerprint(value: Any) -> str:
    """Content hash of a seed artifact (program / target / scalar)."""
    if isinstance(value, Program):
        return _program_fingerprint(value)
    if isinstance(value, TargetModel):
        return _digest("target", repr(value))
    if value is None or isinstance(value, (bool, int, float, str)):
        return _digest("scalar", repr(value))
    raise TypeError(
        f"no content fingerprint for {type(value).__name__}; "
        f"derived artifacts must be written by a pass"
    )


def pass_key(pass_: "Pass", state: "FlowState") -> str:
    """Cache key of one pass applied to one state."""
    from repro.flows.common import flow_code_version

    return _digest(
        "pass", pass_.signature(), flow_code_version(),
        *(state.fingerprint(name) for name in pass_.reads),
    )


class PassCache:
    """LRU-bounded store of pass outputs with per-pass hit counters.

    ``misses[name]`` counts actual executions of cacheable passes, so
    "the analysis prefix ran exactly once across this sweep" is a
    directly assertable property.

    The cache is least-recently-used bounded (``max_entries``) because
    the global instance lives for the whole process: per-cell artifacts
    (lowered programs, cycle reports of individual constraints) would
    otherwise accumulate across a long sweep.  The hot, shared entries
    — the analysis prefix of each kernel — are re-touched by every
    cell and therefore never age out in practice.
    """

    def __init__(self, max_entries: int = 512) -> None:
        self.max_entries = max(1, int(max_entries))
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self.hits: dict[str, int] = {}
        self.misses: dict[str, int] = {}

    def lookup(self, pass_name: str, key: str) -> dict[str, Any] | None:
        found = self._entries.get(key)
        if found is None:
            self.count_execution(pass_name)
            return None
        self._entries.move_to_end(key)
        self.hits[pass_name] = self.hits.get(pass_name, 0) + 1
        return found

    def count_execution(self, pass_name: str) -> None:
        """Record one actual run (also used for uncacheable passes)."""
        self.misses[pass_name] = self.misses.get(pass_name, 0) + 1

    def store(self, key: str, outputs: dict[str, Any]) -> None:
        self._entries[key] = outputs
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def executions(self, pass_name: str) -> int:
        """How many times the named pass actually ran (cache misses)."""
        return self.misses.get(pass_name, 0)

    def clear(self) -> None:
        self._entries.clear()
        self.hits.clear()
        self.misses.clear()

    def __len__(self) -> int:
        return len(self._entries)


_GLOBAL_CACHE = PassCache()


def global_pass_cache() -> PassCache:
    """The process-wide cache every pipeline run shares by default."""
    return _GLOBAL_CACHE
