"""Built-in flow declarations: the paper's three flows, plus variants.

Each of the paper's flows (`float`, `wlo-first`, `wlo-slp`) is a
declared pass list instead of a hand-wired function, built by a small
factory so that *new* scenarios — a different WLO engine, an ablation
configuration, a hybrid — are one-line registrations.  The two extra
variants at the bottom (`wlo-first-greedy`, `wlo-slp-lite`) exist to
prove exactly that point, and double as sweepable ablation flows.

Importing this module populates the registry; `repro.pipeline`
re-exports everything, so ``from repro.pipeline import run_flow`` is
all a caller needs.
"""

from __future__ import annotations

import math
from typing import Any

from repro.flows.common import FlowResult
from repro.flows.wlo_first import WloFirstResult
from repro.ir.backend import DEFAULT_BACKEND
from repro.pipeline.passes import (
    AccuracyModelPass,
    AdjointGainsPass,
    DecoupledSlpPass,
    IwlAssignmentPass,
    JointWloSlpPass,
    LowerFloatPass,
    LowerScalarPass,
    LowerSimdPass,
    NoiseReportPass,
    Pass,
    RangeAnalysisPass,
    SchedulePass,
    WloPass,
)
from repro.pipeline.registry import FlowSpec, register_flow
from repro.pipeline.state import FlowState

__all__ = ["declare_decoupled_flow", "declare_joint_flow"]


def _analysis_passes(sim_backend: str = DEFAULT_BACKEND) -> tuple[Pass, ...]:
    """The shared prefix: ranges, adjoint gains, accuracy model."""
    return (
        RangeAnalysisPass(sim_backend=sim_backend),
        AdjointGainsPass(),
        AccuracyModelPass(),
    )


# ----------------------------------------------------------------------
# float

def _build_float(format: str = "") -> tuple[Pass, ...]:
    return (
        LowerFloatPass(format=format),
        SchedulePass("float_lowered", "cycles"),
    )


def _float_result(
    state: FlowState, flow_name: str, params: dict[str, Any]
) -> FlowResult:
    program = state.get("program")
    return FlowResult(
        flow=flow_name,
        program_name=program.name,
        target_name=state.get("target").name,
        constraint_db=math.nan,
        spec=None,
        cycles=state.get("cycles"),
        noise_db=None,
    )


register_flow(FlowSpec(
    name="float",
    description="floating-point reference (FPU or soft-float), Fig. 6 base",
    build=_build_float,
    result=_float_result,
    # ``format`` names a repro.formats execution format for format
    # sweeps; the default "" is the plain float64 reference and keeps
    # the resolved pipeline byte-identical to pre-format releases.
    params={"format": ""},
    needs_constraint=False,
))


# ----------------------------------------------------------------------
# wlo-first (decoupled baseline) and its variants

def _build_decoupled(
    wlo: str, sim_backend: str, continuation: str
) -> tuple[Pass, ...]:
    return (
        *_analysis_passes(sim_backend),
        IwlAssignmentPass(),
        WloPass(engine=wlo, continuation=continuation),
        NoiseReportPass(),
        LowerScalarPass(),
        SchedulePass("scalar_lowered", "scalar_cycles"),
        DecoupledSlpPass(),
        LowerSimdPass(),
        SchedulePass("simd_lowered", "simd_cycles"),
    )


def _decoupled_result(
    state: FlowState, flow_name: str, params: dict[str, Any]
) -> WloFirstResult:
    program = state.get("program")
    target = state.get("target")
    constraint = state.get("constraint_db")
    spec = state.get("spec")
    noise_db = state.get("noise_db")
    wlo_stats = state.get("wlo_stats")
    prefix = f"{flow_name}/{params['wlo']}"
    scalar = FlowResult(
        flow=f"{prefix}/scalar",
        program_name=program.name,
        target_name=target.name,
        constraint_db=constraint,
        spec=spec,
        cycles=state.get("scalar_cycles"),
        noise_db=noise_db,
        extra={"wlo_stats": wlo_stats},
    )
    simd = FlowResult(
        flow=f"{prefix}/simd",
        program_name=program.name,
        target_name=target.name,
        constraint_db=constraint,
        spec=spec,
        cycles=state.get("simd_cycles"),
        groups=state.get("groups"),
        noise_db=noise_db,
        extra={
            "wlo_stats": wlo_stats,
            "selection_stats": state.get("selection_stats"),
        },
    )
    return WloFirstResult(scalar, simd)


def declare_decoupled_flow(
    name: str,
    description: str,
    wlo: str = "tabu",
    sim_backend: str = DEFAULT_BACKEND,
    continuation: str = "",
    **register_kwargs: Any,
) -> FlowSpec:
    """Declare a WLO-then-SLP flow around the named WLO engine.

    ``continuation`` is the cross-constraint reuse mode of the WLO
    pass (``""``/``"warm"``/``"pareto"``, see
    :mod:`repro.wlo.continuation`); like ``sim_backend`` it is
    overridable per run, which is how ``repro sweep --continuation``
    turns it on without declaring new flows.
    """
    return register_flow(FlowSpec(
        name=name,
        description=description,
        build=_build_decoupled,
        result=_decoupled_result,
        params={
            "wlo": wlo, "sim_backend": sim_backend,
            "continuation": continuation,
        },
    ), **register_kwargs)


# ----------------------------------------------------------------------
# wlo-slp (the paper's joint flow) and its variants

def _build_joint(
    harmonize: bool, scaloptim: bool, accuracy_conflicts: bool,
    sim_backend: str, continuation: str,
) -> tuple[Pass, ...]:
    return (
        *_analysis_passes(sim_backend),
        IwlAssignmentPass(),
        JointWloSlpPass(
            harmonize=harmonize,
            scaloptim=scaloptim,
            accuracy_conflicts=accuracy_conflicts,
            continuation=continuation,
        ),
        NoiseReportPass(),
        LowerSimdPass(),
        SchedulePass("simd_lowered", "cycles"),
    )


def _joint_result(
    state: FlowState, flow_name: str, params: dict[str, Any]
) -> FlowResult:
    return FlowResult(
        flow=flow_name,
        program_name=state.get("program").name,
        target_name=state.get("target").name,
        constraint_db=state.get("constraint_db"),
        spec=state.get("spec"),
        cycles=state.get("cycles"),
        groups=state.get("groups"),
        noise_db=state.get("noise_db"),
        extra={
            "selection_stats": state.get("selection_stats"),
            "scaling_stats": state.get("scaling_stats"),
            "wlo_stats": state.get("wlo_stats"),
        },
    )


def declare_joint_flow(
    name: str,
    description: str,
    harmonize: bool = True,
    scaloptim: bool = True,
    accuracy_conflicts: bool = True,
    sim_backend: str = DEFAULT_BACKEND,
    continuation: str = "",
    **register_kwargs: Any,
) -> FlowSpec:
    """Declare a joint SLP-aware WLO flow with the given features.

    ``continuation`` as in :func:`declare_decoupled_flow`; note the
    joint engine treats ``"pareto"`` as warm continuation (it has no
    scalar frontier to walk).
    """
    return register_flow(FlowSpec(
        name=name,
        description=description,
        build=_build_joint,
        result=_joint_result,
        params={
            "harmonize": harmonize,
            "scaloptim": scaloptim,
            "accuracy_conflicts": accuracy_conflicts,
            "sim_backend": sim_backend,
            "continuation": continuation,
        },
    ), **register_kwargs)


# ----------------------------------------------------------------------
# Registrations.  The paper's flows…

declare_decoupled_flow(
    "wlo-first", "decoupled baseline (paper Fig. 5): Tabu WLO, then SLP"
)
declare_joint_flow(
    "wlo-slp", "joint SLP-aware WLO (paper Fig. 3) — the paper's flow"
)

# …and the variants proving flows are one-line declarations now.
declare_decoupled_flow(
    "wlo-first-greedy",
    "decoupled baseline with greedy max-1 WLO instead of Tabu",
    wlo="max-1",
)
declare_joint_flow(
    "wlo-slp-lite",
    "joint flow without SCALOPTIM or boundary harmonization (pure Fig. 1c)",
    harmonize=False, scaloptim=False,
)
