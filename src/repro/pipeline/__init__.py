"""Composable pass-pipeline flow architecture.

Flows are declared pass lists over a shared :class:`FlowState`
artifact store, resolved by name through a registry, with per-pass
content-hash caching and wall-time instrumentation:

>>> from repro.pipeline import run_flow
>>> result = run_flow("wlo-slp", program, target, -30.0)

Layers (one module each):

* :mod:`~repro.pipeline.state` — :class:`FlowState`, the artifact
  store with content fingerprints and the per-pass timing log.
* :mod:`~repro.pipeline.passes` — the typed pass library: range
  analysis, adjoint gains, accuracy model, IWL assignment, WLO (via
  the engine registry), joint/decoupled SLP, scalar/SIMD/float
  lowering, scheduling.
* :mod:`~repro.pipeline.cache` — :class:`PassCache`: pass outputs
  keyed by (signature, input fingerprints, code version); the default
  instance is process-global, so constraint sweeps reuse the shared
  analysis prefix instead of recomputing it per cell.
* :mod:`~repro.pipeline.pipeline` — :class:`Pipeline` execution.
* :mod:`~repro.pipeline.registry` — :class:`FlowSpec` + the flow
  registry (:func:`register_flow` / :func:`get_flow` /
  :func:`run_flow`).
* :mod:`~repro.pipeline.flows` — the built-in declarations: `float`,
  `wlo-first`, `wlo-slp`, plus the `wlo-first-greedy` and
  `wlo-slp-lite` variants; :func:`declare_decoupled_flow` /
  :func:`declare_joint_flow` are the one-line factories custom
  variants use (see ``examples/custom_flow.py``).

WLO engines have their own registry, :mod:`repro.wlo.registry`.
"""

from repro.pipeline.cache import (
    PassCache,
    content_fingerprint,
    global_pass_cache,
    pass_key,
)
from repro.pipeline.flows import declare_decoupled_flow, declare_joint_flow
from repro.pipeline.passes import (
    ANALYSIS_PASS_NAMES,
    AccuracyModelPass,
    AdjointGainsPass,
    DecoupledSlpPass,
    IwlAssignmentPass,
    JointWloSlpPass,
    LowerFloatPass,
    LowerScalarPass,
    LowerSimdPass,
    NoiseReportPass,
    Pass,
    RangeAnalysisPass,
    SchedulePass,
    WloPass,
)
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.registry import (
    FlowSpec,
    available_flows,
    ensure_flow,
    execute_flow,
    get_flow,
    register_flow,
    run_flow,
)
from repro.pipeline.state import FlowState, PassTiming

__all__ = [
    "ANALYSIS_PASS_NAMES",
    "AccuracyModelPass",
    "AdjointGainsPass",
    "DecoupledSlpPass",
    "FlowSpec",
    "FlowState",
    "IwlAssignmentPass",
    "JointWloSlpPass",
    "LowerFloatPass",
    "LowerScalarPass",
    "LowerSimdPass",
    "NoiseReportPass",
    "Pass",
    "PassCache",
    "PassTiming",
    "Pipeline",
    "RangeAnalysisPass",
    "SchedulePass",
    "WloPass",
    "available_flows",
    "content_fingerprint",
    "declare_decoupled_flow",
    "declare_joint_flow",
    "ensure_flow",
    "execute_flow",
    "get_flow",
    "global_pass_cache",
    "pass_key",
    "register_flow",
    "run_flow",
]
