"""Small shared helpers used across the repro library."""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Iterator, Sequence, TypeVar

__all__ = [
    "db_to_power",
    "power_to_db",
    "pairs",
    "chunked",
    "stable_unique",
    "clamp",
    "ceil_div",
]

T = TypeVar("T")


def db_to_power(db: float) -> float:
    """Convert a decibel level to linear power (``10**(db/10)``)."""
    return 10.0 ** (db / 10.0)


def power_to_db(power: float, floor_db: float = -400.0) -> float:
    """Convert linear power to decibels.

    Zero or negative powers (possible for an exact implementation whose
    measured error is identically zero) are clamped to ``floor_db``
    instead of raising, so sweeps over very precise specifications do
    not explode.
    """
    if power <= 0.0:
        return floor_db
    return 10.0 * math.log10(power)


def pairs(items: Sequence[T]) -> Iterator[tuple[T, T]]:
    """Yield all unordered pairs of distinct elements of ``items``."""
    return itertools.combinations(items, 2)


def chunked(items: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield successive ``size``-length chunks of ``items``.

    The final chunk may be shorter.  ``size`` must be positive.
    """
    if size <= 0:
        raise ValueError(f"chunk size must be positive, got {size}")
    for start in range(0, len(items), size):
        yield items[start:start + size]


def stable_unique(items: Iterable[T]) -> list[T]:
    """Return items de-duplicated while preserving first-seen order."""
    seen: set[T] = set()
    out: list[T] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into the closed interval [lo, hi]."""
    if lo > hi:
        raise ValueError(f"empty clamp interval [{lo}, {hi}]")
    return max(lo, min(hi, value))


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)
