"""The unified typed request API — one description of a job everywhere.

Before this module, "a sweep" was described three different ways: an
``argparse.Namespace`` inside :mod:`repro.cli`, positional keyword
arguments into :mod:`repro.experiments.engine`, and ad-hoc dicts in
the figure drivers.  That made a wire API impossible to add cleanly —
there was nothing to put on the wire.

This module is the single source of truth instead:

* :class:`SweepRequest` — every knob of a (kernel × target ×
  constraint) sweep: the grid slice, the flow/WLO/sim-backend
  selections, and the execution options (jobs, execution backend,
  cache directory).  Frozen, hashable, JSON round-trippable.
* :class:`RunRequest` — one flow on one kernel (``repro run``).
* :class:`SweepReport` — the result side: per-cell outcome payloads
  plus resolution statistics, equally JSON round-trippable.

The CLI subcommands (:mod:`repro.cli`), the engine entry points
(:meth:`~repro.experiments.runner.ExperimentRunner.submit`), the
figure/table drivers and the ``repro serve`` HTTP handlers
(:mod:`repro.serve`) all construct and consume these objects, so the
same validated request travels identically from argparse, from Python
callers, and off the wire::

    >>> from repro.api import SweepRequest
    >>> req = SweepRequest(kernels=("fir",), targets=("vex-1",), grid=(-15.0,))
    >>> SweepRequest.from_json(req.to_json()) == req
    True

:func:`registry_listing` is the shared machine-readable catalog of
all five registries (flows, WLO engines, simulation backends,
execution backends, numeric formats) plus kernels and targets — the
payload of both ``repro flows --json`` / ``repro kernels --json`` and
the service's ``GET /registries`` endpoint.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import FlowError
from repro.experiments.engine import (
    PAPER_CONSTRAINT_GRID,
    PAPER_TARGETS,
    CellOutcome,
    CellRequest,
    KernelConfig,
    SweepPlan,
    SweepStats,
    _parse_only,
)

__all__ = [
    "RunRequest",
    "SweepReport",
    "SweepRequest",
    "outcome_payload",
    "registry_listing",
]


def _names(values: Any) -> tuple[str, ...]:
    return tuple(str(v) for v in values)


def _grid(values: Any) -> tuple[float, ...]:
    return tuple(float(v) for v in values)


@dataclass(frozen=True)
class SweepRequest:
    """One fully-specified sweep job, identical across every surface.

    Name fields hold registry names (resolved lazily, validated by
    :meth:`validate`); ``""`` in the optional string fields means "use
    the default" (``sim_backend``: each flow's declared backend,
    ``backend``: auto-select serial/process, ``cache_dir``: the
    standard cache location) — a string rather than ``None`` so the
    object stays total under JSON round-trips and hashing.
    """

    kernels: tuple[str, ...] = ("fir", "iir", "conv")
    targets: tuple[str, ...] = PAPER_TARGETS
    grid: tuple[float, ...] = PAPER_CONSTRAINT_GRID
    #: ``KERNEL:TARGET`` pair filter (the CLI ``--only``), or ``None``.
    only: tuple[str, ...] | None = None
    wlo: str = "tabu"
    flow: str = "wlo-slp"
    sim_backend: str = ""
    jobs: int = 1
    #: Execution backend (``serial``/``process``/``chunked``/
    #: ``workqueue``); ``""`` auto-selects.
    backend: str = ""
    cache_dir: str = ""
    no_cache: bool = False
    #: Warm-start each cell's WLO from its nearest stricter neighbor
    #: (the ``repro sweep --continuation`` flag; see
    #: :mod:`repro.wlo.continuation`).
    continuation: bool = False
    #: Single-search Pareto-front mode (``repro sweep --pareto``): one
    #: frontier walk per kernel × target, projected onto every grid
    #: constraint.  Mutually exclusive with ``continuation``.
    pareto: bool = False
    #: Numeric format of every cell (``repro sweep --format``; see
    #: :mod:`repro.formats`).  ``""`` is the fixed-point default; a
    #: float format name (``float32``, ``bfloat16``, ``binary(E,M)``…)
    #: makes this a format sweep.
    format: str = ""

    def __post_init__(self) -> None:
        from repro.formats import canonical_format

        # Canonical spelling so request equality, hashing and the JSON
        # round-trip never depend on case or binary(E,M) spacing.
        object.__setattr__(self, "format", canonical_format(self.format))
        # Normalize the sequence fields so value equality (and thus
        # the from_json(to_json()) round-trip) never depends on the
        # caller's choice of list vs tuple.
        object.__setattr__(self, "kernels", _names(self.kernels))
        object.__setattr__(self, "targets", _names(self.targets))
        # Repeated constraints are one cell; drop them up front
        # (order-preserving) so reports and plans agree on the count.
        object.__setattr__(self, "grid", tuple(dict.fromkeys(_grid(self.grid))))
        if not self.grid:
            raise FlowError(
                "sweep request grid is empty: at least one constraint "
                "(dB) is required"
            )
        if self.only is not None:
            object.__setattr__(self, "only", _names(self.only))
        object.__setattr__(self, "jobs", int(self.jobs))
        object.__setattr__(self, "continuation", bool(self.continuation))
        object.__setattr__(self, "pareto", bool(self.pareto))

    @property
    def continuation_mode(self) -> str:
        """The request's WLO continuation mode (``""``/``"warm"``/
        ``"pareto"``) as the engine and pass layers spell it."""
        if self.pareto:
            return "pareto"
        return "warm" if self.continuation else ""

    # ------------------------------------------------------------------
    def validate(self) -> "SweepRequest":
        """Resolve every name through its registry; returns ``self``.

        Raises the registry's own error (listing the available
        alternatives in the standard format) on any unknown name, a
        :class:`FlowError` on a malformed ``--only`` filter or a
        non-positive job count.  Called by the CLI before dispatch and
        by the HTTP service before accepting a job, so a bad request
        fails fast with the same message on every surface.
        """
        from repro.experiments.backends import get_execution_backend
        from repro.formats import ensure_quantization_format
        from repro.ir.backend import get_backend
        from repro.pipeline import get_flow
        from repro.targets.registry import get_target
        from repro.wlo.registry import get_wlo_engine

        config = KernelConfig()
        for kernel in self.kernels:
            if kernel not in config.kernel_names:
                from repro.errors import unknown_name_error

                raise unknown_name_error(
                    FlowError, "kernel", kernel, config.kernel_names
                )
        for target in self.targets:
            get_target(target)
        get_flow(self.flow)
        get_wlo_engine(self.wlo)
        if self.sim_backend:
            get_backend(self.sim_backend)
        if self.backend:
            get_execution_backend(self.backend)
        if self.format:
            # Resolve through the formats registry (standard
            # unknown-name dialect) and reject the non-sweepable
            # oracle up front.
            ensure_quantization_format(self.format)
        _parse_only(self.only)
        if self.jobs < 1:
            raise FlowError(f"jobs must be >= 1, got {self.jobs}")
        if self.continuation and self.pareto:
            raise FlowError(
                "continuation and pareto are mutually exclusive: pareto "
                "already supersedes per-cell warm starts with one "
                "frontier search per kernel/target"
            )
        return self

    def plan(self, config: KernelConfig | None = None) -> SweepPlan:
        """The request's deduplicated job graph (engine entry point)."""
        return SweepPlan.build(
            config if config is not None else KernelConfig(),
            self.kernels, self.targets, self.grid, self.wlo, self.only,
            self.flow, self.sim_backend, self.continuation_mode,
            self.format,
        )

    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """JSON-ready dict (tuples become lists)."""
        payload = dataclasses.asdict(self)
        for key in ("kernels", "targets", "grid"):
            payload[key] = list(payload[key])
        if payload["only"] is not None:
            payload["only"] = list(payload["only"])
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_payload(
        cls,
        payload: Mapping[str, Any],
        defaults: Mapping[str, Any] | None = None,
    ) -> "SweepRequest":
        """Build from a decoded JSON object.

        Unknown keys are rejected (a typoed field name on the wire
        must not silently fall back to a default); missing keys take
        ``defaults`` (e.g. the ``repro serve`` process-wide flags)
        and then the dataclass defaults.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - fields
        if unknown:
            raise FlowError(
                f"unknown sweep request field(s) {sorted(unknown)}; "
                f"accepts {sorted(fields)}"
            )
        merged: dict[str, Any] = {}
        if defaults:
            merged.update({k: v for k, v in defaults.items() if k in fields})
        merged.update(payload)
        return cls(**merged)

    @classmethod
    def from_json(cls, text: str) -> "SweepRequest":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise FlowError("sweep request body must be a JSON object")
        return cls.from_payload(payload)

    @classmethod
    def from_args(cls, args: Any) -> "SweepRequest":
        """Materialize from a parsed CLI namespace.

        Reads whichever of the shared engine flags the subcommand
        declares (``--jobs/--backend/--cache-dir/--no-cache/
        --sim-backend`` come from the shared parent parser in
        :mod:`repro.cli`), falling back to the request defaults for
        the rest — so every sweep-backed subcommand materializes into
        the same object the wire and Python surfaces use.
        """
        values: dict[str, Any] = {}
        kernels = getattr(args, "kernels", None)
        if kernels is None and getattr(args, "kernel", None) is not None:
            kernels = [args.kernel]
        if kernels is not None:
            values["kernels"] = kernels
        targets = getattr(args, "targets", None)
        if targets is None and getattr(args, "target", None) is not None:
            targets = [args.target]
        if targets is not None:
            values["targets"] = targets
        if getattr(args, "grid", None) is not None:
            values["grid"] = args.grid
        if getattr(args, "only", None) is not None:
            values["only"] = args.only
        for name in ("wlo", "flow"):
            value = getattr(args, name, None)
            if value is not None:
                values[name] = value
        values["sim_backend"] = getattr(args, "sim_backend", None) or ""
        values["jobs"] = getattr(args, "jobs", 1)
        values["backend"] = getattr(args, "backend", None) or ""
        cache_dir = getattr(args, "cache_dir", None)
        values["cache_dir"] = str(cache_dir) if cache_dir else ""
        values["no_cache"] = bool(getattr(args, "no_cache", False))
        values["continuation"] = bool(getattr(args, "continuation", False))
        values["pareto"] = bool(getattr(args, "pareto", False))
        values["format"] = getattr(args, "format", None) or ""
        return cls(**values)


@dataclass(frozen=True)
class RunRequest:
    """One flow on one kernel (the ``repro run`` surface).

    ``wlo=""`` keeps the flow's declared engine; ``sim_backend=""``
    keeps each simulation-backed pass's declared backend (and is a
    no-op for flows without one, e.g. ``float``).
    """

    kernel: str = "fir"
    target: str = "xentium"
    constraint_db: float = -25.0
    flow: str = "wlo-slp"
    wlo: str = ""
    sim_backend: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "constraint_db", float(self.constraint_db))

    # ------------------------------------------------------------------
    def execute(self) -> tuple[Any, Any]:
        """Run the flow; returns ``(result, final FlowState)``.

        The single Python entry point behind ``repro run``: kernel,
        target, flow and engine all resolve through their registries,
        raising the standard unknown-name errors.
        """
        from repro.kernels import kernel_by_name
        from repro.pipeline import execute_flow, get_flow
        from repro.targets.registry import get_target
        from repro.wlo.registry import get_wlo_engine

        program = kernel_by_name(self.kernel)
        target = get_target(self.target)
        spec = get_flow(self.flow)
        overrides: dict[str, Any] = {}
        if self.wlo:
            get_wlo_engine(self.wlo)  # validate, listing alternatives
            overrides["wlo"] = self.wlo
        if self.sim_backend and "sim_backend" in spec.params:
            overrides["sim_backend"] = self.sim_backend
        return execute_flow(
            self.flow, program, target,
            self.constraint_db if spec.needs_constraint else None,
            **overrides,
        )

    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "RunRequest":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - fields
        if unknown:
            raise FlowError(
                f"unknown run request field(s) {sorted(unknown)}; "
                f"accepts {sorted(fields)}"
            )
        return cls(**dict(payload))

    @classmethod
    def from_json(cls, text: str) -> "RunRequest":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise FlowError("run request body must be a JSON object")
        return cls.from_payload(payload)

    @classmethod
    def from_args(cls, args: Any) -> "RunRequest":
        return cls(
            kernel=args.kernel,
            target=args.target,
            constraint_db=args.constraint,
            flow=args.flow,
            wlo=getattr(args, "wlo", None) or "",
            sim_backend=getattr(args, "sim_backend", None) or "",
        )


# ----------------------------------------------------------------------
# Results.


def outcome_payload(outcome: CellOutcome) -> dict[str, Any]:
    """One resolved cell as a JSON-ready dict.

    The shape shared by :class:`SweepReport` and the service's
    ``GET /jobs/<id>/outcomes`` endpoint: the full request key, the
    resolution ``source`` (``computed``/``cache``/``memo``/
    ``failed``), and either the cell's numbers or the error text.
    """
    return {
        "request": dataclasses.asdict(outcome.request),
        "source": outcome.source,
        "cell": (
            None if outcome.cell is None else dataclasses.asdict(outcome.cell)
        ),
        "error": outcome.error,
    }


@dataclass(frozen=True)
class SweepReport:
    """The result side of a :class:`SweepRequest` — wire-friendly.

    ``outcomes`` holds one :func:`outcome_payload` dict per resolved
    cell in plan order; ``counts`` the resolution statistics
    (``computed``/``cache``/``memo``/``failed``).
    """

    request: SweepRequest
    outcomes: tuple[dict[str, Any], ...]
    counts: dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "outcomes", tuple(self.outcomes))

    @classmethod
    def build(
        cls,
        request: SweepRequest,
        outcomes: list[CellOutcome],
        stats: SweepStats,
        elapsed_s: float = 0.0,
    ) -> "SweepReport":
        return cls(
            request=request,
            outcomes=tuple(outcome_payload(o) for o in outcomes),
            counts={
                "memo": stats.memo,
                "cache": stats.cache,
                "computed": stats.computed,
                "failed": stats.failed,
            },
            elapsed_s=round(float(elapsed_s), 3),
        )

    # ------------------------------------------------------------------
    @property
    def failures(self) -> list[dict[str, Any]]:
        """The failed outcome payloads, plan order."""
        return [o for o in self.outcomes if o["cell"] is None]

    def ensure_complete(self) -> "SweepReport":
        """Raise one :class:`FlowError` naming every failed cell.

        The report-level twin of
        :meth:`~repro.experiments.engine.SweepStats.ensure_complete` —
        called by consumers needing the whole grid (figure/table
        builders), after everything completable resolved and
        persisted.  Returns ``self`` for chaining.
        """
        if not self.failures:
            return self
        details = "; ".join(
            f"{o['request']['kernel']}:{o['request']['target']} @ "
            f"{o['request']['constraint_db']:g} dB "
            f"(wlo={o['request']['wlo']}, flow={o['request']['flow']}): "
            f"{o['error']}"
            for o in self.failures
        )
        raise FlowError(
            f"{len(self.failures)} of {len(self.outcomes)} sweep cells "
            f"failed (all other cells completed) — {details}"
        )

    def cell_request(self, payload: Mapping[str, Any]) -> CellRequest:
        """The typed :class:`CellRequest` of one outcome payload."""
        return CellRequest(**payload["request"])

    def cell(self, payload: Mapping[str, Any]):
        """The typed :class:`~repro.experiments.engine.Cell` of one
        outcome payload (rehydrates the speedup properties), or
        ``None`` for a failed cell."""
        from repro.experiments.engine import Cell

        if payload["cell"] is None:
            return None
        return Cell(**payload["cell"])

    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        return {
            "request": self.request.to_payload(),
            "outcomes": list(self.outcomes),
            "counts": dict(self.counts),
            "elapsed_s": self.elapsed_s,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SweepReport":
        return cls(
            request=SweepRequest.from_payload(payload["request"]),
            outcomes=tuple(payload.get("outcomes", ())),
            counts=dict(payload.get("counts", {})),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        return cls.from_payload(json.loads(text))


# ----------------------------------------------------------------------
# Registry catalog.


def _jsonable(value: Any) -> Any:
    """Parameter defaults as JSON-safe values (``repr`` fallback)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def registry_listing() -> dict[str, Any]:
    """Machine-readable catalog of every registry, one shape everywhere.

    The exact payload of ``repro flows --json`` and of the service's
    ``GET /registries`` endpoint — flows (with resolved pass lists and
    default parameters), WLO engines, simulation backends, execution
    backends, numeric formats, kernels and targets.
    """
    from repro.experiments.backends import (
        available_execution_backends,
        get_execution_backend,
    )
    from repro.formats import format_listing
    from repro.ir.backend import available_backends, get_backend
    from repro.kernels import kernel_catalog
    from repro.pipeline import available_flows, get_flow
    from repro.targets.registry import available_targets
    from repro.wlo.continuation import CONTINUATION_MODES
    from repro.wlo.registry import available_wlo_engines

    catalog = kernel_catalog()
    return {
        "flows": [
            {
                "name": name,
                "description": get_flow(name).description,
                "passes": get_flow(name).pass_names(),
                "params": {
                    k: _jsonable(v) for k, v in get_flow(name).params.items()
                },
                "needs_constraint": get_flow(name).needs_constraint,
            }
            for name in available_flows()
        ],
        "wlo_engines": list(available_wlo_engines()),
        # The opt-in cross-constraint reuse modes of the WLO passes
        # ("" — cold — is the implicit default, not listed).
        "wlo_continuation_modes": [m for m in CONTINUATION_MODES if m],
        "sim_backends": [
            {
                "name": name,
                "description": get_backend(name).description,
                # Execution tiers run_fixed may pick between (empty for
                # single-tier backends); bit-identical by contract.
                "tiers": [dict(tier) for tier in get_backend(name).tiers],
            }
            for name in available_backends()
        ],
        "execution_backends": [
            {
                "name": name,
                "description": get_execution_backend(name).description,
            }
            for name in available_execution_backends()
        ],
        # The named numeric formats; the parameterized binary(E,M)
        # family resolves dynamically on top of these.
        "formats": format_listing(),
        "kernels": [
            {"name": name, "description": catalog[name][1]}
            for name in sorted(catalog)
        ],
        "targets": list(available_targets()),
    }
