"""Numeric formats as a first-class axis — the fifth registry.

The paper evaluates fixed-point quantization only; this module makes
"which number format" an explicit, registry-resolved choice next to
flows, WLO engines, simulation backends and execution backends:

* ``fixed`` — the existing Q-format path (:mod:`repro.fixedpoint`):
  per-slot word lengths optimized by the WLO engines.  The default;
  cells spell it ``""`` internally so pre-format cache keys and
  request payloads stay byte-identical.
* ``float64`` — the reference format (IEEE binary64).  Sweeping it
  measures the float64 reference's *own* rounding noise against the
  ``bigfloat`` oracle.
* ``float32`` / ``bfloat16`` — IEEE binary32 and brain-float16, the
  common reduced-precision deployment targets.
* ``binary(E,M)`` — parameterized custom-width binary floats (``E``
  exponent bits, ``M`` explicit mantissa bits), resolved on demand
  from the name, e.g. ``binary(8,10)``.
* ``bigfloat`` — the arbitrary-precision binary-float oracle: exact
  Python-int mantissas rounded to :data:`ORACLE_PRECISION` bits after
  every operation (the same zero-dependency trick as the exact
  object-lane fixed-point tier).  Registered as the third evaluation
  backend in :mod:`repro.ir.backend`; not itself a sweepable
  quantization target.

Quantization is *exact*: every float format rounds via
``float.as_integer_ratio()`` plus the shared integer
:func:`~repro.fixedpoint.quantize.round_half_even_shift` primitive —
true IEEE round-to-nearest-even including subnormals and overflow to
infinity, never a double-rounding through intermediate dtypes.

Lookups follow the registry conventions everywhere else: case
insensitive, with the standard ``unknown <kind> '<name>'; available:
…`` error (:class:`~repro.errors.FormatError`).
"""

from __future__ import annotations

import math
import re
from typing import Iterable

import numpy as np

from repro.errors import FormatError, unknown_name_error
from repro.fixedpoint.quantize import round_half_even_shift

__all__ = [
    "DEFAULT_FORMAT",
    "ORACLE_PRECISION",
    "BigFloat",
    "BigFloatFormat",
    "FixedFormat",
    "FloatFormat",
    "FormatSpec",
    "available_formats",
    "big_to_float",
    "canonical_format",
    "ensure_quantization_format",
    "format_listing",
    "get_format",
    "register_format",
]

#: The format every request means when it does not say — the paper's
#: fixed-point path (spelled ``""`` in requests and cache keys).
DEFAULT_FORMAT = "fixed"

#: Working precision (mantissa bits) of the ``bigfloat`` oracle.  ~4x
#: float64; kernels are a few thousand multiply-adds deep, so the
#: accumulated oracle rounding error sits hundreds of dB below any
#: format noise it is used to measure.
ORACLE_PRECISION = 200

#: float64's parameters, used both to register the reference format
#: and to bound the custom formats representable inside a float64.
_F64_EXP_BITS = 11
_F64_MAN_BITS = 52
_F64_EMIN = -(2 ** (_F64_EXP_BITS - 1) - 1) + 1  # -1022


def _dyadic_parts(value: float) -> tuple[int, int]:
    """``value`` as exact ``(mantissa, exponent)`` with 2**exponent scale."""
    numerator, denominator = value.as_integer_ratio()
    # Finite floats always have a power-of-two denominator.
    return numerator, -(denominator.bit_length() - 1)


def _round_dyadic(
    man: int, exp: int, man_bits: int, emin: int
) -> tuple[int, int]:
    """RNE of ``man * 2**exp`` onto the grid of a binary float format.

    Returns the rounded ``(mantissa, ulp_exponent)``; the ulp exponent
    is clamped at ``emin - man_bits`` so values below the normal range
    round onto the subnormal grid (possibly to zero).
    """
    exponent = exp + man.bit_length() - 1  # floor(log2 |value|)
    ulp_exp = max(exponent, emin) - man_bits
    shift = ulp_exp - exp
    if shift <= 0:
        return man << -shift, ulp_exp
    return round_half_even_shift(man, shift), ulp_exp


# ----------------------------------------------------------------------
# The oracle value type.


class BigFloat:
    """An arbitrary-precision binary float: int mantissa × 2**exponent.

    Every arithmetic result is rounded to nearest-even at ``prec``
    mantissa bits — exactly an IEEE binary float with an unbounded
    exponent.  Addition, multiplication, negation, absolute value and
    comparisons are all the batch interpreter needs (the kernel IR has
    no division), and the operator overloads make ``dtype=object``
    ndarrays of BigFloats vectorize straight through the existing
    elementwise executor code.
    """

    __slots__ = ("man", "exp", "prec")

    def __init__(self, man: int, exp: int, prec: int = ORACLE_PRECISION) -> None:
        if man:
            overflow = man.bit_length() - prec
            if overflow > 0:
                man = round_half_even_shift(man, overflow)
                exp += overflow
                if man.bit_length() > prec:  # carry out: exact power of two
                    man >>= 1
                    exp += 1
            # Normalize trailing zeros so alignment shifts stay small
            # and equal values share one representation.
            trailing = (man & -man).bit_length() - 1
            if trailing:
                man >>= trailing
                exp += trailing
        else:
            exp = 0
        self.man = man
        self.exp = exp
        self.prec = prec

    # ------------------------------------------------------------------
    @classmethod
    def from_float(cls, value: float, prec: int = ORACLE_PRECISION) -> "BigFloat":
        if not math.isfinite(value):
            raise FormatError(
                f"bigfloat cannot represent non-finite value {value!r}"
            )
        man, exp = _dyadic_parts(float(value))
        return cls(man, exp, prec)

    def __float__(self) -> float:
        return big_to_float(self)

    # ------------------------------------------------------------------
    def _coerce(self, other: object) -> "BigFloat | None":
        if isinstance(other, BigFloat):
            return other
        if isinstance(other, (int, float, np.floating, np.integer)):
            return BigFloat.from_float(float(other), self.prec)
        return None

    def __add__(self, other: object):
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        prec = max(self.prec, rhs.prec)
        if self.exp >= rhs.exp:
            return BigFloat(
                (self.man << (self.exp - rhs.exp)) + rhs.man, rhs.exp, prec
            )
        return BigFloat(
            self.man + (rhs.man << (rhs.exp - self.exp)), self.exp, prec
        )

    __radd__ = __add__

    def __sub__(self, other: object):
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return self.__add__(-rhs)

    def __rsub__(self, other: object):
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return rhs.__add__(-self)

    def __mul__(self, other: object):
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return BigFloat(
            self.man * rhs.man, self.exp + rhs.exp, max(self.prec, rhs.prec)
        )

    __rmul__ = __mul__

    def __neg__(self) -> "BigFloat":
        return BigFloat(-self.man, self.exp, self.prec)

    def __abs__(self) -> "BigFloat":
        return BigFloat(abs(self.man), self.exp, self.prec)

    def __pos__(self) -> "BigFloat":
        return self

    # ------------------------------------------------------------------
    def _compare(self, other: object) -> int | None:
        rhs = self._coerce(other)
        if rhs is None:
            return None
        lhs_man, rhs_man = self.man, rhs.man
        if self.exp >= rhs.exp:
            lhs_man <<= self.exp - rhs.exp
        else:
            rhs_man <<= rhs.exp - self.exp
        return (lhs_man > rhs_man) - (lhs_man < rhs_man)

    def __eq__(self, other: object):
        order = self._compare(other)
        return NotImplemented if order is None else order == 0

    def __ne__(self, other: object):
        order = self._compare(other)
        return NotImplemented if order is None else order != 0

    def __lt__(self, other: object):
        order = self._compare(other)
        return NotImplemented if order is None else order < 0

    def __le__(self, other: object):
        order = self._compare(other)
        return NotImplemented if order is None else order <= 0

    def __gt__(self, other: object):
        order = self._compare(other)
        return NotImplemented if order is None else order > 0

    def __ge__(self, other: object):
        order = self._compare(other)
        return NotImplemented if order is None else order >= 0

    def __hash__(self) -> int:
        # Normalized (man, exp) is canonical per value, so equal
        # BigFloats hash equal; cross-type hashing is not needed.
        return hash((self.man, self.exp))

    def __repr__(self) -> str:
        return f"BigFloat({self.man}*2**{self.exp})"


def big_to_float(value: BigFloat) -> float:
    """Nearest float64 of a :class:`BigFloat` (RNE, subnormal-exact)."""
    if value.man == 0:
        return 0.0
    man, ulp_exp = _round_dyadic(
        value.man, value.exp, _F64_MAN_BITS, _F64_EMIN
    )
    if man == 0:
        return 0.0
    try:
        # |man| <= 2**53 here, so float(man) and the ldexp are exact.
        return math.ldexp(man, ulp_exp)
    except OverflowError:
        return math.inf if value.man > 0 else -math.inf


# ----------------------------------------------------------------------
# Format specifications.


class FormatSpec:
    """One registered numeric format — name, kind, and quantizer."""

    #: ``"fixed"`` (Q-format path), ``"float"`` (binary float
    #: quantization target) or ``"oracle"`` (evaluation reference).
    kind: str = "float"
    name: str = "format"
    description: str = ""
    #: Whether ``repro sweep --format NAME`` accepts this format as the
    #: quantization target of every cell.
    sweepable: bool = True

    def round_value(self, value: float) -> float:
        """Nearest representable value of this format (RNE)."""
        raise NotImplementedError

    def quantize_array(self, values: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`round_value` over a float64 array."""
        arr = np.asarray(values, dtype=np.float64)
        flat = np.array(
            [self.round_value(v) for v in arr.reshape(-1).tolist()],
            dtype=np.float64,
        )
        return flat.reshape(arr.shape)

    def listing(self) -> dict[str, object]:
        """The format's entry in :func:`repro.api.registry_listing`."""
        return {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
        }

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class FixedFormat(FormatSpec):
    """The paper's Q-format fixed-point path (the default format).

    Quantization here is *not* a single rounding function: the flows
    assign a per-slot format (:class:`~repro.fixedpoint.spec.FixedPointSpec`)
    and the WLO engines optimize it, so this spec is a registry marker
    whose cells run the existing pipelines unchanged.
    """

    kind = "fixed"
    name = "fixed"
    description = (
        "per-slot Q-format fixed point, word lengths optimized by the "
        "WLO engines (the paper's path; the default)"
    )

    def round_value(self, value: float) -> float:
        raise FormatError(
            "the 'fixed' format has no single rounding function; "
            "fixed-point quantization is the per-slot spec the flows "
            "optimize"
        )


class FloatFormat(FormatSpec):
    """An IEEE-style binary float with E exponent / M mantissa bits.

    ``man_bits`` counts the explicit (stored) mantissa bits, so
    float64 is ``FloatFormat(11, 52)``, float32 ``(8, 23)`` and
    bfloat16 ``(8, 7)``.  Only formats whose values are representable
    in a float64 are constructible (``exp_bits <= 11``,
    ``man_bits <= 52``): quantized execution carries values in float64
    arrays, which is exact precisely under that bound.
    """

    kind = "float"

    def __init__(
        self,
        name: str,
        exp_bits: int,
        man_bits: int,
        description: str = "",
    ) -> None:
        if not 2 <= exp_bits <= _F64_EXP_BITS:
            raise FormatError(
                f"binary float exponent width must be in "
                f"[2, {_F64_EXP_BITS}], got {exp_bits}"
            )
        if not 1 <= man_bits <= _F64_MAN_BITS:
            raise FormatError(
                f"binary float mantissa width must be in "
                f"[1, {_F64_MAN_BITS}], got {man_bits}"
            )
        self.name = name
        self.exp_bits = exp_bits
        self.man_bits = man_bits
        self.emax = 2 ** (exp_bits - 1) - 1
        self.emin = 1 - self.emax
        self.description = description or (
            f"binary float, {exp_bits} exponent + {man_bits} mantissa bits"
        )

    @property
    def bits(self) -> int:
        """Total storage bits (sign + exponent + explicit mantissa)."""
        return 1 + self.exp_bits + self.man_bits

    # ------------------------------------------------------------------
    def round_value(self, value: float) -> float:
        value = float(value)
        if value == 0.0 or not math.isfinite(value):
            return value
        if self.exp_bits == _F64_EXP_BITS and self.man_bits == _F64_MAN_BITS:
            return value  # float64: already on the grid
        man, exp = _dyadic_parts(value)
        man, ulp_exp = _round_dyadic(man, exp, self.man_bits, self.emin)
        if man == 0:
            return math.copysign(0.0, value)
        if ulp_exp + man.bit_length() - 1 > self.emax:
            return math.copysign(math.inf, value)
        return math.ldexp(man, ulp_exp)  # exact: fits inside float64

    def quantize_array(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if self.exp_bits == _F64_EXP_BITS and self.man_bits == _F64_MAN_BITS:
            return arr.copy()
        return super().quantize_array(arr)

    def listing(self) -> dict[str, object]:
        return {
            **super().listing(),
            "exp_bits": self.exp_bits,
            "man_bits": self.man_bits,
            "bits": self.bits,
        }


class BigFloatFormat(FormatSpec):
    """The arbitrary-precision oracle (an evaluation reference).

    Not sweepable: it quantizes nothing — it is the third evaluation
    backend (``--sim-backend bigfloat``) and the reference every float
    format's noise is measured against.
    """

    kind = "oracle"
    name = "bigfloat"
    sweepable = False

    def __init__(self, precision: int = ORACLE_PRECISION) -> None:
        self.precision = precision
        self.description = (
            f"arbitrary-precision binary-float oracle "
            f"({precision}-bit mantissas, exact Python ints); "
            f"evaluation reference, not a quantization target"
        )

    def round_value(self, value: float) -> float:
        # Every float64 is exactly representable at oracle precision.
        return float(value)

    def listing(self) -> dict[str, object]:
        return {**super().listing(), "precision": self.precision}


# ----------------------------------------------------------------------
# Registry.

_FORMATS: dict[str, FormatSpec] = {}
#: Dynamically resolved ``binary(E,M)`` specs, memoized by canonical
#: name (they behave as if registered, but the listing shows only the
#: named formats plus the family hint).
_BINARY_CACHE: dict[str, FloatFormat] = {}

_BINARY_PATTERN = re.compile(r"binary\(\s*(\d+)\s*,\s*(\d+)\s*\)")

#: The hint appended to unknown-format errors for the parameterized
#: family — not a registered name itself.
_BINARY_FAMILY = "binary(E,M)"


def register_format(
    spec: FormatSpec, *, overwrite: bool = False
) -> FormatSpec:
    """Register a format spec; returns it (decorator-friendly)."""
    key = spec.name.lower()
    if key in _FORMATS and not overwrite:
        raise FormatError(
            f"format {spec.name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    _FORMATS[key] = spec
    return spec


def canonical_format(name: str) -> str:
    """The canonical spelling of a format name — the aliasing guard.

    ``""`` and ``"fixed"`` (any case) both mean the default fixed-point
    path and canonicalize to ``""`` — the spelling every pre-format
    request, cache key and payload already uses — so the two can never
    key distinct cells.  ``binary(E,M)`` spellings lose whitespace.
    Unknown names pass through lowercased; they fail lookup later with
    the standard registry error.
    """
    key = str(name or "").strip().lower()
    if key in ("", DEFAULT_FORMAT):
        return ""
    match = _BINARY_PATTERN.fullmatch(key)
    if match:
        return f"binary({int(match.group(1))},{int(match.group(2))})"
    return key


def get_format(name: str) -> FormatSpec:
    """Look a format up by name (case-insensitive).

    ``""`` resolves to the default ``fixed`` format; ``binary(E,M)``
    names construct (and memoize) the parameterized custom float.
    """
    key = canonical_format(name) or DEFAULT_FORMAT
    found = _FORMATS.get(key)
    if found is not None:
        return found
    match = _BINARY_PATTERN.fullmatch(key)
    if match:
        cached = _BINARY_CACHE.get(key)
        if cached is None:
            cached = FloatFormat(
                key, int(match.group(1)), int(match.group(2))
            )
            _BINARY_CACHE[key] = cached
        return cached
    raise unknown_name_error(
        FormatError, "format", name,
        list(available_formats()) + [_BINARY_FAMILY],
    )


def available_formats() -> list[str]:
    """Registered format names (the ``binary(E,M)`` family resolves
    dynamically on top of these; see :func:`get_format`)."""
    return sorted(_FORMATS)


def format_listing() -> list[dict[str, object]]:
    """Registry-catalog entries of every named format, sorted by name."""
    return [_FORMATS[name].listing() for name in available_formats()]


def ensure_quantization_format(name: str) -> FormatSpec:
    """Resolve ``name`` and require a sweepable quantization target.

    The validation behind ``--format``: the oracle is an evaluation
    reference, so asking to *sweep* it is a request error, not a cell
    failure deep inside a worker.
    """
    spec = get_format(name)
    if not spec.sweepable:
        sweepable: Iterable[str] = (
            n for n in available_formats() if _FORMATS[n].sweepable
        )
        raise FormatError(
            f"format {spec.name!r} is an evaluation oracle, not a "
            f"sweepable quantization target; pick one of "
            f"{', '.join(sorted(sweepable))} or {_BINARY_FAMILY}"
        )
    return spec


register_format(FixedFormat())
register_format(FloatFormat(
    "float64", _F64_EXP_BITS, _F64_MAN_BITS,
    "IEEE binary64 — the reference format; sweeping it measures the "
    "reference's own rounding noise against the bigfloat oracle",
))
register_format(FloatFormat(
    "float32", 8, 23, "IEEE binary32 single precision",
))
register_format(FloatFormat(
    "bfloat16", 8, 7, "brain float 16 (binary32 range, 8-bit mantissa)",
))
register_format(BigFloatFormat())
