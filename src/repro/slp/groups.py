"""SIMD groups.

A :class:`SIMDGroup` is an ordered tuple of isomorphic, independent
operations of one basic block that will execute as lanes of a single
SIMD instruction, at the lane word length given by the paper's
eq. (1).  ``GroupSet`` is the per-block collection with the lookup
structure the benefit estimator, the scaling optimizer and the SIMD
lowering all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SLPError
from repro.ir.optypes import OpKind
from repro.ir.program import Program

__all__ = ["SIMDGroup", "GroupSet", "memory_lane_stride"]


@dataclass(frozen=True)
class SIMDGroup:
    """An ordered set of lanes implemented by one SIMD instruction."""

    gid: int
    block: str
    kind: OpKind
    lanes: tuple[int, ...]
    #: Lane word length (paper eq. (1)).
    wl: int

    def __post_init__(self) -> None:
        if len(self.lanes) < 2:
            raise SLPError(f"group {self.gid}: needs >= 2 lanes")
        if len(set(self.lanes)) != len(self.lanes):
            raise SLPError(f"group {self.gid}: duplicate lanes {self.lanes}")

    @property
    def size(self) -> int:
        return len(self.lanes)

    def lane_of(self, opid: int) -> int:
        try:
            return self.lanes.index(opid)
        except ValueError:
            raise SLPError(f"op {opid} not in group {self.gid}") from None


@dataclass
class GroupSet:
    """All SIMD groups of one block, with op -> (group, lane) lookup."""

    block: str
    groups: list[SIMDGroup] = field(default_factory=list)
    _by_op: dict[int, tuple[SIMDGroup, int]] = field(default_factory=dict)

    def add(self, group: SIMDGroup) -> None:
        if group.block != self.block:
            raise SLPError(
                f"group {group.gid} belongs to block {group.block!r}, "
                f"not {self.block!r}"
            )
        for lane, opid in enumerate(group.lanes):
            if opid in self._by_op:
                raise SLPError(f"op {opid} is already in a group")
            self._by_op[opid] = (group, lane)
        self.groups.append(group)

    def group_of(self, opid: int) -> tuple[SIMDGroup, int] | None:
        """(group, lane) containing ``opid``, or None."""
        return self._by_op.get(opid)

    def producer_group(self, lanes: tuple[int, ...]) -> SIMDGroup | None:
        """The group whose lanes are exactly ``lanes`` in order."""
        first = self._by_op.get(lanes[0])
        if first is None:
            return None
        group, lane = first
        if lane != 0 or group.lanes != lanes:
            return None
        return group

    def __iter__(self):
        return iter(self.groups)

    def __len__(self) -> int:
        return len(self.groups)


def memory_lane_stride(program: Program, lanes: tuple[int, ...]) -> int | None:
    """Constant flat-address stride between successive memory lanes.

    Returns the per-lane stride (in elements) when all lanes access the
    same array with subscripts differing by a uniform constant, and
    ``None`` otherwise.  A stride of +1 is the vector-load/store case.
    """
    first = program.op(lanes[0])
    if first.array is None:
        return None
    decl = program.arrays[first.array]
    stride: int | None = None
    for prev, cur in zip(lanes, lanes[1:]):
        a = program.op(prev)
        b = program.op(cur)
        if b.array != first.array:
            return None
        assert a.index is not None and b.index is not None
        flat = 0
        scale = 1
        for dim in range(decl.rank - 1, -1, -1):
            diff = b.index[dim].constant_offset_from(a.index[dim])
            if diff is None:
                return None
            flat += diff * scale
            scale *= decl.shape[dim]
        if stride is None:
            stride = flat
        elif stride != flat:
            return None
    return stride
