"""Conflict detection between SIMD group candidates.

Two candidates conflict when they cannot both be realized:

* **common operation** — an op can live in only one group;
* **cyclic dependency** — some lane of A depends on a lane of B *and*
  some lane of B depends on a lane of A, so neither group can be
  scheduled atomically before the other.

The accuracy-aware variant of the paper (Fig. 1c lines 14-25) adds a
third class — joint selection violates the accuracy constraint — which
lives in ``repro.slp.accuracy_aware`` because it needs the spec and
the accuracy model.
"""

from __future__ import annotations

from repro.ir.deps import DependenceGraph
from repro.slp.candidates import Candidate

__all__ = [
    "have_common_op",
    "have_cyclic_dependency",
    "structural_conflict",
    "conflict_matrix",
]


def have_common_op(a: Candidate, b: Candidate) -> bool:
    """True when the candidates share an operation."""
    return a.shares_op_with(b)


def have_cyclic_dependency(
    a: Candidate, b: Candidate, deps: DependenceGraph
) -> bool:
    """True when grouping both would create a group-level cycle."""
    a_reaches_b = any(
        deps.depends(lb, la) for la in a.lanes for lb in b.lanes
    )
    if not a_reaches_b:
        return False
    return any(
        deps.depends(la, lb) for la in a.lanes for lb in b.lanes
    )


def structural_conflict(
    a: Candidate, b: Candidate, deps: DependenceGraph
) -> bool:
    """Common-op or cyclic-dependency conflict."""
    return have_common_op(a, b) or have_cyclic_dependency(a, b, deps)


def conflict_matrix(
    candidates: list[Candidate], deps: DependenceGraph
) -> set[frozenset[int]]:
    """All structurally conflicting index pairs among ``candidates``."""
    conflicts: set[frozenset[int]] = set()
    for i in range(len(candidates)):
        for j in range(i + 1, len(candidates)):
            if structural_conflict(candidates[i], candidates[j], deps):
                conflicts.add(frozenset((i, j)))
    return conflicts
