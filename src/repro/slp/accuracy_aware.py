"""Accuracy-aware SLP extraction (paper Fig. 1c).

The joint algorithm's inner engine.  Differences from plain SLP:

* ``SETMAXWL`` (here :func:`set_group_wl`) — selecting a group narrows
  the word length of all its lanes to eq. (1)'s ``m`` and narrows the
  multiply operand edges to the lane width;
* *invalid candidates* — a candidate that violates the accuracy
  constraint even with every other node at maximum word length can
  never be implemented as a SIMD instruction and is eliminated up
  front (lines 6-12);
* *accuracy conflicts* — two candidates that cannot coexist without
  violating the constraint conflict exactly like structural conflicts
  (lines 14-25).
"""

from __future__ import annotations


from repro.accuracy.analytical import AccuracyModel
from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.block import BasicBlock
from repro.ir.deps import DependenceGraph
from repro.ir.optypes import OpKind
from repro.ir.program import Program
from repro.slp.benefit import BenefitEstimator
from repro.slp.candidates import Candidate, PackItem, extract_candidates
from repro.slp.conflicts import structural_conflict
from repro.slp.extraction import SelectionStats, select_groups
from repro.targets.model import TargetModel

__all__ = ["set_group_wl", "slp_round_accuracy_aware"]


def set_group_wl(
    spec: FixedPointSpec,
    program: Program,
    lanes: tuple[int, ...],
    wl: int,
) -> None:
    """The paper's ``SETMAXWL``: apply eq. (1)'s lane width to a group.

    Every lane node is narrowed to ``wl`` (keeping its range-derived
    ``iwl``, so only precision is traded); multiply lanes additionally
    record that their operands are consumed through ``wl``-bit lanes,
    which the accuracy model prices as pack-boundary narrowing.
    """
    for opid in lanes:
        spec.set_wl(opid, wl)
        if program.op(opid).kind is OpKind.MUL:
            spec.set_edge_wl(opid, 0, wl)
            spec.set_edge_wl(opid, 1, wl)


def slp_round_accuracy_aware(
    program: Program,
    block: BasicBlock,
    items: list[PackItem],
    deps: DependenceGraph,
    target: TargetModel,
    spec: FixedPointSpec,
    model: AccuracyModel,
    constraint_db: float,
    estimator: BenefitEstimator,
    stats: SelectionStats | None = None,
    accuracy_conflicts: bool = True,
) -> list[Candidate]:
    """One extraction round of Fig. 1c; selections mutate ``spec``.

    Returns the selected candidates (possibly empty, which terminates
    the widening loop of Fig. 1a).  ``accuracy_conflicts=False``
    disables the joint-selection conflict class (ablation B), keeping
    only the per-candidate validity check.
    """
    candidates = extract_candidates(program, items, deps, target)
    if stats is not None:
        stats.rounds += 1
        stats.candidates_seen += len(candidates)

    # --- Candidates Extraction: eliminate accuracy-invalid ones -------
    valid: list[Candidate] = []
    for candidate in candidates:
        token = spec.save()
        set_group_wl(spec, program, candidate.lanes, candidate.wl)
        violates = model.violates(spec, constraint_db)
        spec.revert(token)
        if violates:
            if stats is not None:
                stats.accuracy_rejections += 1
        else:
            valid.append(candidate)
    candidates = valid

    # --- Conflicts Detection ------------------------------------------
    conflicts: set[frozenset[int]] = set()
    for i in range(len(candidates)):
        for j in range(i + 1, len(candidates)):
            if structural_conflict(candidates[i], candidates[j], deps):
                conflicts.add(frozenset((i, j)))
                if stats is not None:
                    stats.structural_conflicts += 1
                continue
            if not accuracy_conflicts:
                continue
            token = spec.save()
            set_group_wl(spec, program, candidates[i].lanes, candidates[i].wl)
            set_group_wl(spec, program, candidates[j].lanes, candidates[j].wl)
            violates = model.violates(spec, constraint_db)
            spec.revert(token)
            if violates:
                conflicts.add(frozenset((i, j)))
                if stats is not None:
                    stats.accuracy_conflicts += 1

    # --- SIMD Groups Selection (SETMAXWL applied permanently) ----------
    def on_select(candidate: Candidate) -> None:
        set_group_wl(spec, program, candidate.lanes, candidate.wl)

    return select_groups(
        candidates, conflicts, estimator, items, on_select, stats
    )
