"""Candidate benefit estimation (Liu et al.'s reuse/cost ratio).

The benefit of selecting a candidate is its contribution to overall
*superword reuse* divided by the *packing/unpacking cost* it incurs
(paper Sections II-A and III-B).  The estimate mirrors the cost rules
of the SIMD lowering (``repro.codegen.simd``) so that what the
selector prefers is what the cycle model rewards:

* operands produced lane-exactly by another group/candidate: free
  (vector register reuse);
* operands that are contiguous same-array loads: vector-loadable;
* the loop-carried accumulator pattern (lanes read variables that the
  same lanes write back): the vector lives in a register across
  iterations — free, and highly reusable;
* everything else must be packed (lane inserts), and lanes consumed by
  scalar ops outside any group must be unpacked (extracts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.block import BasicBlock
from repro.ir.deps import is_loop_invariant_load
from repro.ir.optypes import ARITHMETIC_KINDS, OpKind
from repro.ir.program import Program
from repro.slp.candidates import Candidate, PackItem
from repro.slp.groups import memory_lane_stride

__all__ = ["BenefitEstimator"]

#: Relative reuse credit of a match against an already-formed item
#: versus a still-tentative candidate.
_ITEM_WEIGHT = 1.0
_CANDIDATE_WEIGHT = 0.75


@dataclass
class BenefitEstimator:
    """Benefit oracle for one basic block."""

    program: Program
    block: BasicBlock
    #: op -> list of (consumer opid, operand position) within the block.
    _consumers: dict[int, list[tuple[int, int]]] = field(default_factory=dict)
    #: producer opid -> variable written from it (WRITEVAR value edges).
    _feeds_var: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for op in self.block.ops:
            for pos, producer in enumerate(op.operands):
                self._consumers.setdefault(producer, []).append((op.opid, pos))
            if op.kind is OpKind.WRITEVAR:
                self._feeds_var[op.operands[0]] = op.var  # type: ignore[assignment]

    # ------------------------------------------------------------------
    def benefit(
        self,
        candidate: Candidate,
        candidates: list[Candidate],
        items: list[PackItem],
    ) -> float:
        """Reuse-over-cost score of ``candidate`` in the current state."""
        lanes = candidate.lanes
        n = candidate.size
        reuse = 0.0
        pack_cost = 0.0
        unpack_cost = 0.0

        # Tuple equality implies size equality, so one pool of each
        # suffices for full-lane, half-lane and operand matching alike.
        lane_tuples = set(items)
        cand_tuples = {
            c.lanes for c in candidates if c is not candidate
        }

        if candidate.kind in (OpKind.LOAD, OpKind.STORE):
            if candidate.kind is OpKind.LOAD and all(
                is_loop_invariant_load(self.program, self.program.op(opid))
                for opid in lanes
            ):
                reuse += 1.0  # hoisted: the vector is packed once, free
            else:
                stride = memory_lane_stride(self.program, lanes)
                if stride == 1:
                    reuse += 1.0
                elif stride == -1:
                    pack_cost += 0.5  # one permute after the vector access
                else:
                    pack_cost += n - 1  # gather / scatter
        if candidate.kind in ARITHMETIC_KINDS or candidate.kind is OpKind.STORE:
            arity = len(self.program.op(lanes[0]).operands)
            for pos in range(arity):
                producers = tuple(
                    self.program.op(opid).operands[pos] for opid in lanes
                )
                reuse_gain, cost = self._operand_cost(
                    lanes, producers, lane_tuples, cand_tuples
                )
                reuse += reuse_gain
                pack_cost += cost

        if candidate.kind is not OpKind.STORE:
            r_gain, u_cost = self._result_cost(lanes, lane_tuples, cand_tuples)
            reuse += r_gain
            unpack_cost += u_cost

        saved_issue_slots = 0.5 * (n - 1)
        return (saved_issue_slots + reuse) / (1.0 + pack_cost + unpack_cost)

    # ------------------------------------------------------------------
    def _operand_cost(
        self,
        lanes: tuple[int, ...],
        producers: tuple[int, ...],
        lane_tuples: set[PackItem],
        cand_tuples: set[tuple[int, ...]],
    ) -> tuple[float, float]:
        """(reuse gained, pack cost) of one vector operand."""
        n = len(lanes)
        if producers in lane_tuples:
            return _ITEM_WEIGHT, 0.0
        if producers in cand_tuples:
            supply = [self.program.op(p) for p in producers]
            if all(op.kind is OpKind.LOAD for op in supply):
                stride = memory_lane_stride(self.program, producers)
                if stride not in (1, -1) and not all(
                    is_loop_invariant_load(self.program, op) for op in supply
                ):
                    # The feeding candidate is itself a gather: its
                    # packing cost would land on this chain.
                    return 0.25, 0.0
            return _CANDIDATE_WEIGHT, 0.0
        ops = [self.program.op(p) for p in producers]
        if all(
            op.kind is OpKind.CONST or is_loop_invariant_load(self.program, op)
            for op in ops
        ):
            return 0.25, 0.0  # loop-invariant splat, packed once
        if all(op.kind is OpKind.LOAD for op in ops):
            stride = memory_lane_stride(self.program, producers)
            if stride == 1:
                return 0.5, 0.0  # one vector load feeds the lanes
            return 0.0, float(n - 1)
        if self._is_loop_carried_accumulator(lanes, producers):
            return _ITEM_WEIGHT, 0.0
        if self._single_item_source(producers, lane_tuples):
            return 0.25, 1.0  # one permute/lane-select op
        return 0.0, float(n - 1)

    def _single_item_source(
        self, producers: tuple[int, ...], lane_tuples: set[PackItem]
    ) -> bool:
        """All producers are lanes of one existing wider item."""
        produced = set(producers)
        for item in lane_tuples:
            if len(item) > len(producers) and produced <= set(item):
                return True
        return False

    def _is_loop_carried_accumulator(
        self, lanes: tuple[int, ...], producers: tuple[int, ...]
    ) -> bool:
        """Lanes read variables that the same lanes write back.

        This is the ``vacc += vmul`` reduction pattern: the packed
        accumulator never leaves its vector register across loop
        iterations, so consuming it costs nothing.
        """
        for lane, producer in zip(lanes, producers):
            op = self.program.op(producer)
            if op.kind is not OpKind.READVAR:
                return False
            if self._feeds_var.get(lane) != op.var:
                return False
        return True

    def _result_cost(
        self,
        lanes: tuple[int, ...],
        lane_tuples: set[PackItem],
        cand_tuples: set[tuple[int, ...]],
    ) -> tuple[float, float]:
        """(reuse gained, unpack cost) of the candidate's result.

        Vector consumers (an item or candidate whose operand lanes are
        exactly these lanes) earn reuse credit; loop-carried write-backs
        keep the result in its vector register; any remaining scalar
        consumer forces an extract per use (capped at the lane count —
        a full unpack).
        """
        reuse = sum(self._vector_consumers(lanes, lane_tuples, cand_tuples))
        scalar_uses = 0
        for lane in lanes:
            for consumer, _pos in self._consumers.get(lane, ()):
                cop = self.program.op(consumer)
                if cop.kind is OpKind.WRITEVAR and self._reads_var_somewhere(
                    lanes, cop.var
                ):
                    continue  # stays packed across iterations
                scalar_uses += 1
        unpack = 0.0
        if reuse == 0.0 and scalar_uses:
            unpack = float(min(scalar_uses, len(lanes)))
        if reuse == 0.0:
            # Widening a vector whose *halves* are currently consumed
            # lane-exactly breaks working superword reuse: consumers
            # would have to extract their lanes back out.  Charge the
            # repacking this forces on them.
            unpack += self._broken_half_reuse(lanes, lane_tuples, cand_tuples)
        return reuse, unpack

    def _broken_half_reuse(
        self,
        lanes: tuple[int, ...],
        lane_tuples: set[PackItem],
        cand_tuples: set[tuple[int, ...]],
    ) -> float:
        if len(lanes) < 4:
            return 0.0
        half = len(lanes) // 2
        penalty = 0.0
        for part in (lanes[:half], lanes[half:]):
            if self._vector_consumers(part, lane_tuples, cand_tuples):
                penalty += float(half)
        return penalty

    def _vector_consumers(
        self,
        lanes: tuple[int, ...],
        lane_tuples: set[PackItem],
        cand_tuples: set[tuple[int, ...]],
    ) -> list[float]:
        """Reuse credits from items/candidates consuming ``lanes``."""
        credits: list[float] = []
        for pool, weight in (
            (lane_tuples, _ITEM_WEIGHT),
            (cand_tuples, _CANDIDATE_WEIGHT),
        ):
            for other in pool:
                if other == lanes:
                    continue
                arity = len(self.program.op(other[0]).operands)
                for pos in range(arity):
                    producers = tuple(
                        self.program.op(o).operands[pos] for o in other
                    )
                    if producers == lanes:
                        credits.append(weight)
        return credits

    def _reads_var_somewhere(self, lanes: tuple[int, ...], var: str | None) -> bool:
        if var is None:
            return False
        for lane in lanes:
            for producer in self.program.op(lane).operands:
                pop = self.program.op(producer)
                if pop.kind is OpKind.READVAR and pop.var == var:
                    return True
        return False
