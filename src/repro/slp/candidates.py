"""SIMD group candidate extraction.

A *candidate* pairs two packing items (initially single operations;
after a selection round, previously selected groups) into a potential
group of twice the size, following Liu et al.'s iterative widening.
Structural requirements: isomorphic kinds, pairwise independence
between all lanes, a supported lane word length for the combined size
(paper eq. (1)), and same-array accesses for memory ops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.block import BasicBlock
from repro.ir.deps import DependenceGraph
from repro.ir.optypes import SIMDIZABLE_KINDS, OpKind
from repro.ir.program import Program
from repro.targets.model import TargetModel

__all__ = ["Candidate", "PackItem", "initial_items", "extract_candidates"]

#: A packing item: an ordered tuple of op ids (size 1 = scalar op).
PackItem = tuple[int, ...]


@dataclass(frozen=True)
class Candidate:
    """A potential SIMD group built from two packing items."""

    left: PackItem
    right: PackItem
    kind: OpKind
    #: Lane word length for the combined size (eq. (1)).
    wl: int

    @property
    def lanes(self) -> tuple[int, ...]:
        return self.left + self.right

    @property
    def size(self) -> int:
        return len(self.left) + len(self.right)

    def shares_op_with(self, other: "Candidate") -> bool:
        return bool(set(self.lanes) & set(other.lanes))

    def __str__(self) -> str:
        return f"{self.kind.value}{list(self.lanes)}@{self.wl}b"


def initial_items(block: BasicBlock) -> list[PackItem]:
    """Singleton packing items: every SIMDizable op of the block."""
    return [
        (op.opid,) for op in block.ops if op.kind in SIMDIZABLE_KINDS
    ]


def _items_isomorphic(
    program: Program, left: PackItem, right: PackItem
) -> OpKind | None:
    """Common op kind when the two items can share an instruction."""
    first = program.op(left[0])
    for opid in left + right:
        op = program.op(opid)
        if not first.isomorphic_to(op):
            return None
        if first.touches_memory and op.array != first.array:
            # Lanes of one vector memory access live in one array.
            return None
    return first.kind


def _items_independent(
    deps: DependenceGraph, left: PackItem, right: PackItem
) -> bool:
    for a in left:
        for b in right:
            if not deps.independent(a, b):
                return False
    return True


def extract_candidates(
    program: Program,
    items: list[PackItem],
    deps: DependenceGraph,
    target: TargetModel,
) -> list[Candidate]:
    """All structurally valid candidates over the current items.

    Items are combined in program (id) order — the natural lane order
    for the generated kernels, where ascending ids follow ascending
    memory addresses.  Only equal-size items combine, so widening
    proceeds 1+1 -> 2, 2+2 -> 4, matching the paper's size-doubling
    extension loop.
    """
    out: list[Candidate] = []
    n = len(items)
    for i in range(n):
        left = items[i]
        for j in range(i + 1, n):
            right = items[j]
            if len(left) != len(right):
                continue
            wl = target.group_wl(len(left) + len(right))
            if wl is None:
                continue
            kind = _items_isomorphic(program, left, right)
            if kind is None:
                continue
            if not _items_independent(deps, left, right):
                continue
            ordered = (left, right) if left[0] < right[0] else (right, left)
            out.append(Candidate(ordered[0], ordered[1], kind, wl))
    return out
