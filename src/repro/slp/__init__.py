"""Superword-level parallelism extraction."""

from repro.slp.accuracy_aware import set_group_wl, slp_round_accuracy_aware
from repro.slp.benefit import BenefitEstimator
from repro.slp.candidates import (
    Candidate,
    PackItem,
    extract_candidates,
    initial_items,
)
from repro.slp.conflicts import (
    conflict_matrix,
    have_common_op,
    have_cyclic_dependency,
    structural_conflict,
)
from repro.slp.extraction import (
    SelectionStats,
    build_group_set,
    extract_groups_decoupled,
    merge_items,
    select_groups,
)
from repro.slp.groups import GroupSet, SIMDGroup, memory_lane_stride

__all__ = [
    "BenefitEstimator",
    "Candidate",
    "GroupSet",
    "PackItem",
    "SIMDGroup",
    "SelectionStats",
    "build_group_set",
    "conflict_matrix",
    "extract_candidates",
    "extract_groups_decoupled",
    "have_common_op",
    "have_cyclic_dependency",
    "initial_items",
    "memory_lane_stride",
    "merge_items",
    "select_groups",
    "set_group_wl",
    "structural_conflict",
    "slp_round_accuracy_aware",
]
