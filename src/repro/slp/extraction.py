"""SLP extraction driver.

Implements Liu et al.'s selection loop over (candidates, conflicts):
iteratively select the highest-benefit candidate, eliminate everything
that conflicts with it, and repeat; then *widen* by collapsing the
selected pairs into items and re-extracting, as long as the target
supports a larger group size (paper Fig. 1a lines 6-14).

Two front ends use this driver:

* :func:`extract_groups_decoupled` — the accuracy-*blind* extraction of
  the WLO-First baseline (paper Fig. 5): grouping is restricted to ops
  whose already-chosen word lengths agree and fit a SIMD width; the
  spec is never modified.
* ``repro.slp.accuracy_aware`` — the paper's contribution, which
  filters candidates and conflicts through the accuracy model and
  narrows word lengths (``SETMAXWL``) as groups are selected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import SLPError
from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.block import BasicBlock
from repro.ir.deps import build_dependence_graph
from repro.ir.optypes import OpKind
from repro.ir.program import Program
from repro.slp.benefit import BenefitEstimator
from repro.slp.candidates import (
    Candidate,
    PackItem,
    extract_candidates,
    initial_items,
)
from repro.slp.conflicts import conflict_matrix
from repro.slp.groups import GroupSet, SIMDGroup
from repro.targets.model import TargetModel

__all__ = [
    "DEFAULT_MIN_BENEFIT",
    "SelectionStats",
    "select_groups",
    "merge_items",
    "build_group_set",
    "extract_groups_decoupled",
]


@dataclass
class SelectionStats:
    """Bookkeeping of one extraction run (exposed in flow reports)."""

    rounds: int = 0
    candidates_seen: int = 0
    candidates_selected: int = 0
    accuracy_rejections: int = 0
    accuracy_conflicts: int = 0
    structural_conflicts: int = 0
    benefit_evaluations: int = 0


#: Candidates scoring below this reuse/cost ratio are never selected:
#: their packing overhead would exceed the issue slots they save.  The
#: value sits between "gather pair" (~0.25) and "vector-loadable pair"
#: (~1.5) scores; see ``tests/test_slp_benefit.py`` for the calibration.
DEFAULT_MIN_BENEFIT = 0.6


def select_groups(
    candidates: list[Candidate],
    conflicts: set[frozenset[int]],
    estimator: BenefitEstimator,
    items: list[PackItem],
    on_select: Callable[[Candidate], None] | None = None,
    stats: SelectionStats | None = None,
    min_benefit: float = DEFAULT_MIN_BENEFIT,
) -> list[Candidate]:
    """Liu-style iterative selection (paper Fig. 1c lines 26-35).

    Repeatedly selects the most beneficial live candidate, invokes
    ``on_select`` (the paper's ``SETMAXWL``) and eliminates candidates
    conflicting with the selection, until no candidate scoring at
    least ``min_benefit`` remains.
    """
    live = list(range(len(candidates)))
    selected: list[Candidate] = []
    while live:
        live_candidates = [candidates[i] for i in live]
        scored = []
        for index in live:
            benefit = estimator.benefit(
                candidates[index], live_candidates, items
            )
            if stats is not None:
                stats.benefit_evaluations += 1
            scored.append((benefit, -index))
        best_pos = max(range(len(live)), key=lambda p: scored[p])
        if scored[best_pos][0] < min_benefit:
            break
        best = live[best_pos]
        chosen = candidates[best]
        selected.append(chosen)
        if on_select is not None:
            on_select(chosen)
        live = [
            index
            for index in live
            if index != best
            and frozenset((index, best)) not in conflicts
            and not candidates[index].shares_op_with(chosen)
        ]
    if stats is not None:
        stats.candidates_selected += len(selected)
    return selected


def merge_items(items: list[PackItem], selected: list[Candidate]) -> list[PackItem]:
    """Collapse selected candidates into combined items (widening)."""
    consumed: set[PackItem] = set()
    for candidate in selected:
        if candidate.left in consumed or candidate.right in consumed:
            raise SLPError(
                f"selection is not conflict-free around {candidate}"
            )
        consumed.add(candidate.left)
        consumed.add(candidate.right)
    merged: list[PackItem] = [candidate.lanes for candidate in selected]
    remaining = [item for item in items if item not in consumed]
    return merged + remaining


def build_group_set(
    block: BasicBlock,
    items: list[PackItem],
    program: Program,
    spec: FixedPointSpec,
) -> GroupSet:
    """Materialize items of size >= 2 into a :class:`GroupSet`.

    Lane word length is read back from the specification, which both
    front ends maintain as the single source of truth.
    """
    groups = GroupSet(block.name)
    gid = 0
    for item in items:
        if len(item) < 2:
            continue
        kind = program.op(item[0]).kind
        groups.add(SIMDGroup(gid, block.name, kind, item, spec.wl(item[0])))
        gid += 1
    return groups


# ----------------------------------------------------------------------
# Decoupled (accuracy-blind) extraction — the WLO-First baseline
# ----------------------------------------------------------------------
def _decoupled_legal(
    candidate: Candidate,
    program: Program,
    spec: FixedPointSpec,
    target: TargetModel,
) -> bool:
    """Legality under fixed, already-optimized word lengths.

    All lanes must share one word length ``w`` that is a SIMD width
    with ``w * size <= datapath``; multiply lanes additionally need
    operand producers no wider than ``w`` (a vector multiply cannot
    consume more operand precision than its lane width, and narrowing
    operands post-WLO would change the accuracy the baseline already
    signed off on).
    """
    wls = {spec.wl(opid) for opid in candidate.lanes}
    if len(wls) != 1:
        return False
    w = wls.pop()
    if w not in target.simd_widths or w * candidate.size > target.scalar_wl:
        return False
    if candidate.kind is OpKind.MUL:
        for opid in candidate.lanes:
            for producer in program.op(opid).operands:
                if spec.wl(producer) > w:
                    return False
    return True


def extract_groups_decoupled(
    program: Program,
    block: BasicBlock,
    spec: FixedPointSpec,
    target: TargetModel,
    stats: SelectionStats | None = None,
) -> GroupSet:
    """SLP extraction that takes the spec as immutable input (Fig. 5)."""
    deps = build_dependence_graph(block)
    estimator = BenefitEstimator(program, block)
    items = initial_items(block)
    while True:
        candidates = [
            candidate
            for candidate in extract_candidates(program, items, deps, target)
            if _decoupled_legal(candidate, program, spec, target)
        ]
        if stats is not None:
            stats.rounds += 1
            stats.candidates_seen += len(candidates)
        if not candidates:
            break
        conflicts = conflict_matrix(candidates, deps)
        if stats is not None:
            stats.structural_conflicts += len(conflicts)
        selected = select_groups(
            candidates, conflicts, estimator, items, stats=stats
        )
        if not selected:
            break
        items = merge_items(items, selected)
    return build_group_set(block, items, program, spec)
