"""Fixed-point formats.

A :class:`QFormat` is the paper's ``<IWL, FWL>`` pair: a signed two's
complement number with ``iwl`` integer bits (including the sign bit)
and ``fwl`` fractional bits, stored in ``wl = iwl + fwl`` bits.  The
represented value of mantissa ``m`` is ``m * 2**-fwl``.

``fwl`` may be negative (very coarse formats whose quantum exceeds 1)
and ``iwl`` may exceed ``wl`` (formats that cannot represent small
magnitudes exactly); both arise naturally during word-length
optimization when a wide dynamic range must fit a narrow word.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FixedPointError

__all__ = ["QFormat"]


@dataclass(frozen=True, order=True)
class QFormat:
    """A signed fixed-point format ``<iwl, fwl>`` with ``wl = iwl + fwl``."""

    iwl: int
    fwl: int

    def __post_init__(self) -> None:
        if self.wl < 1:
            raise FixedPointError(
                f"format <{self.iwl},{self.fwl}> has non-positive word length"
            )

    # ------------------------------------------------------------------
    @property
    def wl(self) -> int:
        """Total word length in bits (sign bit included in ``iwl``)."""
        return self.iwl + self.fwl

    @property
    def quantum(self) -> float:
        """Weight of the least significant bit (2**-fwl)."""
        return 2.0 ** -self.fwl

    @property
    def min_value(self) -> float:
        """Most negative representable value."""
        return -(2.0 ** (self.iwl - 1))

    @property
    def max_value(self) -> float:
        """Most positive representable value."""
        return 2.0 ** (self.iwl - 1) - self.quantum

    @property
    def min_mantissa(self) -> int:
        return -(1 << (self.wl - 1))

    @property
    def max_mantissa(self) -> int:
        return (1 << (self.wl - 1)) - 1

    # ------------------------------------------------------------------
    def with_wl(self, wl: int) -> "QFormat":
        """Same binary-point position class, different word length.

        Keeps ``iwl`` (the dynamic range) and gives the remaining bits
        to the fraction — the operation word-length optimization
        performs when it narrows a node.
        """
        return QFormat(self.iwl, wl - self.iwl)

    def with_fwl(self, fwl: int) -> "QFormat":
        """Same word length, moved binary point (SCALOPTIM's move)."""
        return QFormat(self.wl - fwl, fwl)

    def contains_value(self, value: float) -> bool:
        """True when ``value`` lies in the representable range."""
        return self.min_value <= value <= self.max_value

    def __str__(self) -> str:
        return f"<{self.iwl},{self.fwl}>"
