"""Bit-accurate fixed-point interpreter.

Executes a program over integer mantissas under a
:class:`~repro.fixedpoint.spec.FixedPointSpec`, implementing exactly
the quantization discipline described in DESIGN.md Section 3.1 (the
same discipline the analytical accuracy model and the generated C
follow):

* ``ADD/SUB/MIN/MAX`` align both operands to the node's ``fwl``;
* ``MUL`` consumes operands at their (possibly edge-narrowed) formats
  and requantizes the full-precision product to the node's ``fwl``;
* ``STORE``/array input conversion requantize to the array's format;
* variable reads/writes are exact register moves (their formats are
  tied by construction).

Overflow handling is configurable; the default is saturation, matching
the DSP targets.  The interpreter is the measurement side of every
"does the analytical model tell the truth" test in the suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import InterpreterError
from repro.fixedpoint.quantize import (
    OverflowMode,
    QuantMode,
    apply_overflow,
    float_to_mantissa,
    mantissa_to_float,
    requantize,
)
from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.ops import Operation
from repro.ir.optypes import OpKind
from repro.ir.program import BlockRef, LoopNode, Program
from repro.ir.symbols import SymbolKind

__all__ = [
    "FxpConfig",
    "FixedPointInterpreter",
    "check_spec_compatible",
    "run_fixed_point",
]


def check_spec_compatible(program: Program, spec: FixedPointSpec) -> None:
    """Reject specs built for a structurally different program.

    The spec may come from an analysis twin of the same kernel
    (identical ops and symbols, shorter loops) — see AnalysisContext
    in repro.flows.common.  Shared by the scalar and batch executors.
    """
    twin = spec.slotmap.program
    if twin is not program and (
        twin.n_ops != program.n_ops
        or sorted(twin.arrays) != sorted(program.arrays)
        or sorted(twin.variables) != sorted(program.variables)
    ):
        raise InterpreterError("spec was built for a different program")


@dataclass(frozen=True)
class FxpConfig:
    """Quantization-policy knobs of the fixed-point semantics."""

    #: Disposal of discarded signal bits (paper default: truncation).
    quant_mode: QuantMode = QuantMode.TRUNCATE
    #: Conversion of environment inputs into their array format.
    input_mode: QuantMode = QuantMode.TRUNCATE
    #: Conversion of compile-time constants/coefficients.  Rounding is
    #: the universal choice for constants (a one-time conversion).
    const_mode: QuantMode = QuantMode.ROUND
    #: Overflow disposal on every written word.
    overflow: OverflowMode = OverflowMode.SATURATE


class FixedPointInterpreter:
    """Integer executor for a program under a fixed-point spec."""

    def __init__(
        self,
        program: Program,
        spec: FixedPointSpec,
        config: FxpConfig | None = None,
    ) -> None:
        check_spec_compatible(program, spec)
        self.program = program
        self.spec = spec
        self.config = config or FxpConfig()

    # ------------------------------------------------------------------
    def run(self, inputs: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Execute and return output arrays as *floats* (dequantized)."""
        state = self._init_state(inputs)
        env: dict[str, int] = {}
        self._run_items(self.program.schedule, env, state)
        outputs: dict[str, np.ndarray] = {}
        for decl in self.program.output_arrays():
            fwl = self.spec.fwl(self.spec.slotmap.slot_of_symbol(decl.name))
            flat = np.array(
                [mantissa_to_float(m, fwl) for m in state.arrays[decl.name]],
                dtype=np.float64,
            )
            outputs[decl.name] = flat.reshape(decl.shape)
        return outputs

    # ------------------------------------------------------------------
    def _init_state(self, inputs: Mapping[str, np.ndarray]) -> "_FxpState":
        cfg = self.config
        arrays: dict[str, list[int]] = {}
        for decl in self.program.arrays.values():
            slot = self.spec.slotmap.slot_of_symbol(decl.name)
            fwl = self.spec.fwl(slot)
            wl = self.spec.wl(slot)
            if decl.kind is SymbolKind.INPUT:
                if decl.name not in inputs:
                    raise InterpreterError(f"missing input array {decl.name!r}")
                data = np.asarray(inputs[decl.name], dtype=np.float64)
                if data.shape != decl.shape:
                    raise InterpreterError(
                        f"input {decl.name!r}: shape {data.shape} != "
                        f"declared {decl.shape}"
                    )
                arrays[decl.name] = [
                    apply_overflow(
                        float_to_mantissa(float(v), fwl, cfg.input_mode),
                        wl, cfg.overflow,
                    )
                    for v in data.flat
                ]
            elif decl.kind is SymbolKind.COEFF:
                assert decl.values is not None
                arrays[decl.name] = [
                    apply_overflow(
                        float_to_mantissa(float(v), fwl, cfg.const_mode),
                        wl, cfg.overflow,
                    )
                    for v in decl.values.flat
                ]
            else:
                arrays[decl.name] = [0] * decl.size
        variables: dict[str, int] = {}
        for var in self.program.variables.values():
            slot = self.spec.slotmap.slot_of_symbol(var.name)
            variables[var.name] = float_to_mantissa(
                var.init, self.spec.fwl(slot), cfg.const_mode
            )
        return _FxpState(arrays, variables)

    def _run_items(self, items, env: dict[str, int], state: "_FxpState") -> None:
        for item in items:
            if isinstance(item, BlockRef):
                self._run_block(self.program.blocks[item.name], env, state)
            elif isinstance(item, LoopNode):
                for i in range(item.trip):
                    env[item.var] = i
                    self._run_items(item.body, env, state)
                del env[item.var]

    def _flat_index(self, op: Operation, env: Mapping[str, int]) -> int:
        decl = self.program.arrays[op.array]  # type: ignore[index]
        assert op.index is not None
        coords = [ix.evaluate(env) for ix in op.index]
        for coord, extent in zip(coords, decl.shape):
            if not 0 <= coord < extent:
                raise InterpreterError(
                    f"{op.kind.value} {op.array}[{coords}] out of bounds"
                )
        if decl.rank == 1:
            return coords[0]
        return coords[0] * decl.shape[1] + coords[1]

    # ------------------------------------------------------------------
    def _run_block(self, block, env: Mapping[str, int], state: "_FxpState") -> None:
        cfg = self.config
        spec = self.spec
        values: dict[int, int] = {}
        fwls: dict[int, int] = {}
        for op in block.ops:
            kind = op.kind
            node_fwl = spec.fwl(op.opid)
            node_wl = spec.wl(op.opid)
            if kind is OpKind.CONST:
                m = float_to_mantissa(float(op.value), node_fwl, cfg.const_mode)  # type: ignore[arg-type]
                m = apply_overflow(m, node_wl, cfg.overflow)
            elif kind is OpKind.LOAD:
                m = state.arrays[op.array][self._flat_index(op, env)]  # type: ignore[index]
            elif kind is OpKind.STORE:
                src = op.operands[0]
                m = requantize(values[src], fwls[src], node_fwl, cfg.quant_mode)
                m = apply_overflow(m, node_wl, cfg.overflow)
                state.arrays[op.array][self._flat_index(op, env)] = m  # type: ignore[index]
            elif kind is OpKind.READVAR:
                m = state.variables[op.var]  # type: ignore[index]
            elif kind is OpKind.WRITEVAR:
                # The written value's producer is format-tied to the
                # variable, so this is an exact register move.
                m = values[op.operands[0]]
                state.variables[op.var] = m  # type: ignore[index]
            elif kind is OpKind.MUL:
                m = self._exec_mul(op, values, fwls, node_fwl, node_wl)
            elif op.is_binary:
                a = requantize(values[op.operands[0]], fwls[op.operands[0]],
                               node_fwl, cfg.quant_mode)
                b = requantize(values[op.operands[1]], fwls[op.operands[1]],
                               node_fwl, cfg.quant_mode)
                if kind is OpKind.ADD:
                    m = a + b
                elif kind is OpKind.SUB:
                    m = a - b
                elif kind is OpKind.MIN:
                    m = min(a, b)
                else:  # MAX
                    m = max(a, b)
                m = apply_overflow(m, node_wl, cfg.overflow)
            else:  # unary NEG / ABS
                a = requantize(values[op.operands[0]], fwls[op.operands[0]],
                               node_fwl, cfg.quant_mode)
                m = -a if kind is OpKind.NEG else abs(a)
                m = apply_overflow(m, node_wl, cfg.overflow)
            values[op.opid] = m
            fwls[op.opid] = node_fwl

    def _exec_mul(
        self,
        op: Operation,
        values: dict[int, int],
        fwls: dict[int, int],
        node_fwl: int,
        node_wl: int,
    ) -> int:
        """Multiply with per-edge operand narrowing (SLP lane widths)."""
        cfg = self.config
        spec = self.spec
        factors: list[int] = []
        cons_fwls: list[int] = []
        for pos in (0, 1):
            src = op.operands[pos]
            f_cons = spec.consumption_fwl(op.opid, pos)
            m = requantize(values[src], fwls[src], f_cons, cfg.quant_mode)
            factors.append(m)
            cons_fwls.append(f_cons)
        product = factors[0] * factors[1]
        m = requantize(product, cons_fwls[0] + cons_fwls[1], node_fwl,
                       cfg.quant_mode)
        return apply_overflow(m, node_wl, cfg.overflow)


@dataclass
class _FxpState:
    arrays: dict[str, list[int]]
    variables: dict[str, int]
    clock: int = field(default=0)


def run_fixed_point(
    program: Program,
    spec: FixedPointSpec,
    inputs: Mapping[str, np.ndarray],
    config: FxpConfig | None = None,
) -> dict[str, np.ndarray]:
    """One-shot convenience wrapper."""
    return FixedPointInterpreter(program, spec, config).run(inputs)
