"""Integer word-length determination.

Given value ranges, choose the minimal ``iwl`` whose representable
range covers them (paper Section II-B step (i)).  Exact powers of two
at the positive extreme are allowed to saturate by one quantum — the
universal Q-format convention that lets ``[-1, 1]``-normalized signals
use ``iwl = 1`` (Q1.x) rather than wasting a bit on the single value
``+1.0``.
"""

from __future__ import annotations

import math

from repro.fixedpoint.interval import Interval
from repro.fixedpoint.range_analysis import RangeResult
from repro.fixedpoint.spec import FixedPointSpec

__all__ = ["iwl_for_magnitude", "iwl_for_interval", "assign_iwls"]

#: Relative shrink applied before taking log2, so that magnitudes equal
#: to an exact power of two round *down* (saturating one quantum).
_POW2_TOLERANCE = 1.0 - 2.0 ** -24


def iwl_for_magnitude(magnitude: float, min_iwl: int = 1) -> int:
    """Minimal ``iwl`` representing values of the given magnitude."""
    magnitude = abs(magnitude) * _POW2_TOLERANCE
    if magnitude <= 0.0:
        return min_iwl
    return max(min_iwl, 1 + math.ceil(math.log2(magnitude)))


def iwl_for_interval(interval: Interval, min_iwl: int = 1) -> int:
    """Minimal ``iwl`` covering an interval."""
    return iwl_for_magnitude(interval.magnitude, min_iwl)


def assign_iwls(
    spec: FixedPointSpec, ranges: RangeResult, min_iwl: int = 1
) -> None:
    """Write range-derived ``iwl``s into every tie group of ``spec``.

    Word lengths are left untouched; fractional word lengths follow
    implicitly (``fwl = wl - iwl``).
    """
    for root in spec.slotmap.roots:
        interval = ranges.ranges.get(root)
        if interval is None:
            spec.set_iwl(root, min_iwl)
        else:
            spec.set_iwl(root, iwl_for_interval(interval, min_iwl))
