"""Integer-level quantization primitives.

These are the bit-exact building blocks shared by the fixed-point
interpreters and the generated C semantics: requantization between
fractional precisions, two's complement wrap, and saturation.  All
mantissas are Python ints (arbitrary precision), so intermediate
products never overflow the host.

The ``*_array`` variants apply the same discipline to whole arrays of
mantissas at once (``dtype=object`` ndarrays holding Python ints, so
exactness is preserved); they are the per-op workhorses of the batch
fixed-point interpreter (:mod:`repro.fixedpoint.fxpbatch`) and are
bit-identical to mapping their scalar counterpart over every element.

The ``*_array_i64`` variants run the identical core on native
``int64`` ndarrays.  They are *not* exact on arbitrary inputs — the
caller must hold a width proof (:mod:`repro.fixedpoint.widthproof`)
that every value, rounding offset and wrap constant fits a signed
64-bit word, in which case numpy's int64 shifts, masks and selects
coincide with Python's arbitrary-precision operators and the results
are bit-identical to the object-dtype tier.
"""

from __future__ import annotations

import enum
import math

import numpy as np

from repro.errors import FixedPointError, OverflowPolicyError

__all__ = [
    "I64_SAFE_WL",
    "QuantMode",
    "OverflowMode",
    "requantize",
    "requantize_array",
    "requantize_array_i64",
    "wrap",
    "saturate",
    "apply_overflow",
    "apply_overflow_array",
    "apply_overflow_array_i64",
    "float_to_mantissa",
    "float_to_mantissa_array",
    "mantissa_to_float",
    "mantissa_to_float_array",
    "quantize_value",
    "round_half_even_shift",
]

#: Largest word length whose wrap/saturate constants (``2**wl`` span,
#: ``±2**(wl-1)`` clamps) are themselves guaranteed representable in
#: the transient arithmetic of an int64 lane.
I64_SAFE_WL = 62


class QuantMode(str, enum.Enum):
    """How discarded fractional bits are disposed of.

    ``TRUNCATE`` is two's complement truncation (round toward -inf),
    the paper's default; ``ROUND`` is round-half-up.
    """

    TRUNCATE = "truncate"
    ROUND = "round"


class OverflowMode(str, enum.Enum):
    """What happens when a value exceeds its word length."""

    WRAP = "wrap"
    SATURATE = "saturate"
    ERROR = "error"


def _shift_mantissas(mantissas, f_from: int, f_to: int, mode: QuantMode):
    """The one requantization core, shared by every tier.

    Polymorphic over Python ints, object-dtype ndarrays of Python ints
    and native ``int64`` ndarrays: ``<<``/``>>``/``+`` mean the same
    thing on all three (arithmetic shifts, ``>>`` floors), so a single
    body keeps the scalar, exact-array and native-array primitives
    bit-identical by construction.
    """
    if f_to >= f_from:
        return mantissas << (f_to - f_from)
    shift = f_from - f_to
    if mode is QuantMode.ROUND:
        return (mantissas + (1 << (shift - 1))) >> shift
    return mantissas >> shift  # >> floors: two's complement truncation.


def round_half_even_shift(mantissa: int, shift: int) -> int:
    """``mantissa / 2**shift`` rounded to nearest, ties to even.

    The IEEE-754 rounding primitive on exact Python-int mantissas
    (``shift >= 1``); exact remainders make ties unambiguous, and
    ``divmod``'s floored quotient/positive remainder keep the same body
    correct for negative mantissas.  This is the core of the
    :mod:`repro.formats` binary-float quantizers and of the ``bigfloat``
    oracle's per-op precision clamp — deliberately distinct from
    :class:`QuantMode` ``ROUND`` (round-half-up), which models the
    paper's fixed-point hardware rounding.
    """
    quotient, remainder = divmod(mantissa, 1 << shift)
    half = 1 << (shift - 1)
    if remainder > half or (remainder == half and quotient & 1):
        quotient += 1
    return quotient


def requantize(mantissa: int, f_from: int, f_to: int, mode: QuantMode) -> int:
    """Re-express ``mantissa`` (``f_from`` fractional bits) with ``f_to``.

    Increasing precision is exact (left shift); decreasing precision
    discards bits according to ``mode``.
    """
    return _shift_mantissas(mantissa, f_from, f_to, mode)


def wrap(mantissa: int, wl: int) -> int:
    """Two's complement wrap of ``mantissa`` into ``wl`` bits."""
    if wl < 1:
        raise FixedPointError(f"word length must be >= 1, got {wl}")
    span = 1 << wl
    m = mantissa & (span - 1)
    if m >= (span >> 1):
        m -= span
    return m


def saturate(mantissa: int, wl: int) -> int:
    """Clamp ``mantissa`` into the signed ``wl``-bit range."""
    if wl < 1:
        raise FixedPointError(f"word length must be >= 1, got {wl}")
    lo = -(1 << (wl - 1))
    hi = (1 << (wl - 1)) - 1
    if mantissa < lo:
        return lo
    if mantissa > hi:
        return hi
    return mantissa


def apply_overflow(mantissa: int, wl: int, mode: OverflowMode) -> int:
    """Dispose of overflow according to ``mode``."""
    if mode is OverflowMode.WRAP:
        return wrap(mantissa, wl)
    if mode is OverflowMode.SATURATE:
        return saturate(mantissa, wl)
    if wrap(mantissa, wl) != mantissa:
        raise OverflowPolicyError(
            f"mantissa {mantissa} does not fit {wl} bits"
        )
    return mantissa


def float_to_mantissa(value: float, fwl: int, mode: QuantMode) -> int:
    """Quantize a real ``value`` to an unbounded mantissa at ``fwl``."""
    scaled = value * (2.0 ** fwl)
    if mode is QuantMode.ROUND:
        return math.floor(scaled + 0.5)
    return math.floor(scaled)


def mantissa_to_float(mantissa: int, fwl: int) -> float:
    """The real value represented by ``mantissa`` at ``fwl``."""
    return mantissa * (2.0 ** -fwl)


# ----------------------------------------------------------------------
# Array variants (object-dtype ndarrays of Python ints): the elementwise
# semantics of every operation below are exactly the scalar function's —
# Python's arbitrary-precision operators applied lane by lane.

def requantize_array(mantissas, f_from: int, f_to: int, mode: QuantMode):
    """Vector :func:`requantize`: object ndarray (or scalar int) in/out."""
    return _shift_mantissas(mantissas, f_from, f_to, mode)


def requantize_array_i64(mantissas, f_from: int, f_to: int, mode: QuantMode):
    """:func:`requantize_array` on native ``int64`` lanes.

    Same core; sound only under a width proof guaranteeing the shift
    distance is at most :data:`I64_SAFE_WL` and that the shifted value
    (plus the ``ROUND`` half-ulp offset) stays within int64.
    """
    return _shift_mantissas(mantissas, f_from, f_to, mode)


def _fold_overflow_array(mantissas: np.ndarray, wl: int, mode: OverflowMode):
    """The one array overflow core (object-dtype or ``int64`` lanes).

    Elementwise identical to :func:`apply_overflow`: the mask/compare
    wrap fold and the clamp select mean the same thing under Python's
    arbitrary-precision integers and under int64 two's complement, as
    long as ``2**wl`` fits the transient arithmetic (the ``_i64``
    wrapper enforces that bound).
    """
    span = 1 << wl

    def wrap_fold(values):
        low_bits = values & (span - 1)
        return np.where(low_bits >= (span >> 1), low_bits - span, low_bits)

    if mode is OverflowMode.WRAP:
        return wrap_fold(mantissas)
    if mode is OverflowMode.SATURATE:
        lo = -(span >> 1)
        hi = (span >> 1) - 1
        return np.where(mantissas < lo, lo,
                        np.where(mantissas > hi, hi, mantissas))
    if np.any(wrap_fold(mantissas) != mantissas):
        raise OverflowPolicyError(
            f"mantissa array does not fit {wl} bits"
        )
    return mantissas


def apply_overflow_array(mantissas, wl: int, mode: OverflowMode):
    """Vector :func:`apply_overflow`."""
    if not isinstance(mantissas, np.ndarray):
        # A plain Python int (e.g. a constant chain): keep it exact —
        # np.where would narrow it to a fixed-width numpy integer.
        return apply_overflow(mantissas, wl, mode)
    if wl < 1:
        raise FixedPointError(f"word length must be >= 1, got {wl}")
    return _fold_overflow_array(mantissas, wl, mode)


def apply_overflow_array_i64(mantissas, wl: int, mode: OverflowMode):
    """:func:`apply_overflow_array` on native ``int64`` lanes.

    Same core, plus the native-tier guard: the wrap span and clamp
    constants of ``wl`` must themselves fit int64 transients, so word
    lengths beyond :data:`I64_SAFE_WL` are rejected (the width proof
    never certifies such a program for this tier).
    """
    if not isinstance(mantissas, np.ndarray):
        # Scalar chains (constants, pre-write variables) stay Python
        # ints in the native tier too — exact by definition.
        return apply_overflow(mantissas, wl, mode)
    if not 1 <= wl <= I64_SAFE_WL:
        raise FixedPointError(
            f"int64 lanes cannot fold overflow at wl={wl} "
            f"(need 1 <= wl <= {I64_SAFE_WL})"
        )
    return _fold_overflow_array(mantissas, wl, mode)


def float_to_mantissa_array(values, fwl: int, mode: QuantMode) -> np.ndarray:
    """Vector :func:`float_to_mantissa`: float64 in, object ints out.

    The scaling and the +0.5 rounding offset are elementwise float64
    operations (identical to the scalar path); ``np.floor`` of a float
    is exact, so the int conversion below reproduces ``math.floor``
    bit-for-bit.  Magnitudes beyond int64 fall back to per-element
    ``math.floor`` (arbitrary precision).
    """
    scaled = np.asarray(values, dtype=np.float64) * (2.0 ** fwl)
    if mode is QuantMode.ROUND:
        scaled = scaled + 0.5
    floored = np.floor(scaled)
    if np.all(np.abs(floored) < 2.0 ** 62):
        return floored.astype(np.int64).astype(object)
    flat = np.array([math.floor(v) for v in scaled.flat], dtype=object)
    return flat.reshape(scaled.shape)


def mantissa_to_float_array(mantissas, fwl: int) -> np.ndarray:
    """Vector :func:`mantissa_to_float`: object ints in, float64 out."""
    # Elementwise Python int * float — the identical operation the
    # scalar function performs (``mantissa * 2.0 ** -fwl``).
    return (np.asarray(mantissas, dtype=object) * (2.0 ** -fwl)).astype(
        np.float64
    )


def quantize_value(value: float, fwl: int, mode: QuantMode) -> float:
    """Round-trip a real value through a ``fwl``-bit fraction.

    No word-length clipping is applied; use this to compute the pure
    quantization residue of coefficients.
    """
    return mantissa_to_float(float_to_mantissa(value, fwl, mode), fwl)
