"""Integer-level quantization primitives.

These are the bit-exact building blocks shared by the fixed-point
interpreter and the generated C semantics: requantization between
fractional precisions, two's complement wrap, and saturation.  All
mantissas are Python ints (arbitrary precision), so intermediate
products never overflow the host.
"""

from __future__ import annotations

import enum
import math

from repro.errors import FixedPointError, OverflowPolicyError

__all__ = [
    "QuantMode",
    "OverflowMode",
    "requantize",
    "wrap",
    "saturate",
    "apply_overflow",
    "float_to_mantissa",
    "mantissa_to_float",
    "quantize_value",
]


class QuantMode(str, enum.Enum):
    """How discarded fractional bits are disposed of.

    ``TRUNCATE`` is two's complement truncation (round toward -inf),
    the paper's default; ``ROUND`` is round-half-up.
    """

    TRUNCATE = "truncate"
    ROUND = "round"


class OverflowMode(str, enum.Enum):
    """What happens when a value exceeds its word length."""

    WRAP = "wrap"
    SATURATE = "saturate"
    ERROR = "error"


def requantize(mantissa: int, f_from: int, f_to: int, mode: QuantMode) -> int:
    """Re-express ``mantissa`` (``f_from`` fractional bits) with ``f_to``.

    Increasing precision is exact (left shift); decreasing precision
    discards bits according to ``mode``.
    """
    if f_to >= f_from:
        return mantissa << (f_to - f_from)
    shift = f_from - f_to
    if mode is QuantMode.ROUND:
        return (mantissa + (1 << (shift - 1))) >> shift
    return mantissa >> shift  # Python >> floors: two's complement truncation.


def wrap(mantissa: int, wl: int) -> int:
    """Two's complement wrap of ``mantissa`` into ``wl`` bits."""
    if wl < 1:
        raise FixedPointError(f"word length must be >= 1, got {wl}")
    span = 1 << wl
    m = mantissa & (span - 1)
    if m >= (span >> 1):
        m -= span
    return m


def saturate(mantissa: int, wl: int) -> int:
    """Clamp ``mantissa`` into the signed ``wl``-bit range."""
    if wl < 1:
        raise FixedPointError(f"word length must be >= 1, got {wl}")
    lo = -(1 << (wl - 1))
    hi = (1 << (wl - 1)) - 1
    if mantissa < lo:
        return lo
    if mantissa > hi:
        return hi
    return mantissa


def apply_overflow(mantissa: int, wl: int, mode: OverflowMode) -> int:
    """Dispose of overflow according to ``mode``."""
    if mode is OverflowMode.WRAP:
        return wrap(mantissa, wl)
    if mode is OverflowMode.SATURATE:
        return saturate(mantissa, wl)
    if wrap(mantissa, wl) != mantissa:
        raise OverflowPolicyError(
            f"mantissa {mantissa} does not fit {wl} bits"
        )
    return mantissa


def float_to_mantissa(value: float, fwl: int, mode: QuantMode) -> int:
    """Quantize a real ``value`` to an unbounded mantissa at ``fwl``."""
    scaled = value * (2.0 ** fwl)
    if mode is QuantMode.ROUND:
        return math.floor(scaled + 0.5)
    return math.floor(scaled)


def mantissa_to_float(mantissa: int, fwl: int) -> float:
    """The real value represented by ``mantissa`` at ``fwl``."""
    return mantissa * (2.0 ** -fwl)


def quantize_value(value: float, fwl: int, mode: QuantMode) -> float:
    """Round-trip a real value through a ``fwl``-bit fraction.

    No word-length clipping is applied; use this to compute the pure
    quantization residue of coefficients.
    """
    return mantissa_to_float(float_to_mantissa(value, fwl, mode), fwl)
