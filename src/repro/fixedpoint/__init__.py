"""Fixed-point arithmetic substrate.

Formats, quantization, interval arithmetic, dynamic-range analysis,
IWL determination, the journaled fixed-point specification and the
bit-accurate interpreter.
"""

from repro.fixedpoint.fxpinterp import (
    FixedPointInterpreter,
    FxpConfig,
    run_fixed_point,
)
from repro.fixedpoint.interval import Interval
from repro.fixedpoint.iwl import assign_iwls, iwl_for_interval, iwl_for_magnitude
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import (
    OverflowMode,
    QuantMode,
    apply_overflow,
    float_to_mantissa,
    mantissa_to_float,
    quantize_value,
    requantize,
    saturate,
    wrap,
)
from repro.fixedpoint.range_analysis import (
    RangeResult,
    analyze_ranges,
    interval_ranges,
    simulation_ranges,
)
from repro.fixedpoint.spec import NO_NARROW, FixedPointSpec, SlotMap

__all__ = [
    "FixedPointInterpreter",
    "FixedPointSpec",
    "FxpConfig",
    "Interval",
    "NO_NARROW",
    "OverflowMode",
    "QFormat",
    "QuantMode",
    "RangeResult",
    "SlotMap",
    "analyze_ranges",
    "apply_overflow",
    "assign_iwls",
    "float_to_mantissa",
    "interval_ranges",
    "iwl_for_interval",
    "iwl_for_magnitude",
    "mantissa_to_float",
    "quantize_value",
    "requantize",
    "run_fixed_point",
    "saturate",
    "simulation_ranges",
    "wrap",
]
