"""Fixed-point arithmetic substrate.

Formats, quantization, interval arithmetic, dynamic-range analysis,
IWL determination, the journaled fixed-point specification and the
bit-accurate interpreter.
"""

from repro.fixedpoint.fxpbatch import (
    FORCE_OBJECT_ENV,
    BatchFixedPointInterpreter,
    fixed_point_tier,
    run_fixed_point_batch,
)
from repro.fixedpoint.fxpinterp import (
    FixedPointInterpreter,
    FxpConfig,
    check_spec_compatible,
    run_fixed_point,
)
from repro.fixedpoint.interval import Interval
from repro.fixedpoint.iwl import assign_iwls, iwl_for_interval, iwl_for_magnitude
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import (
    I64_SAFE_WL,
    OverflowMode,
    QuantMode,
    apply_overflow,
    apply_overflow_array,
    apply_overflow_array_i64,
    float_to_mantissa,
    float_to_mantissa_array,
    mantissa_to_float,
    mantissa_to_float_array,
    quantize_value,
    requantize,
    requantize_array,
    requantize_array_i64,
    saturate,
    wrap,
)
from repro.fixedpoint.range_analysis import (
    RangeResult,
    analyze_ranges,
    interval_ranges,
    simulation_ranges,
)
from repro.fixedpoint.spec import NO_NARROW, FixedPointSpec, SlotMap
from repro.fixedpoint.widthproof import WidthProof, prove_int64_safe

__all__ = [
    "BatchFixedPointInterpreter",
    "FORCE_OBJECT_ENV",
    "FixedPointInterpreter",
    "FixedPointSpec",
    "FxpConfig",
    "I64_SAFE_WL",
    "Interval",
    "NO_NARROW",
    "OverflowMode",
    "QFormat",
    "QuantMode",
    "RangeResult",
    "SlotMap",
    "WidthProof",
    "analyze_ranges",
    "apply_overflow",
    "apply_overflow_array",
    "apply_overflow_array_i64",
    "assign_iwls",
    "check_spec_compatible",
    "fixed_point_tier",
    "float_to_mantissa",
    "float_to_mantissa_array",
    "interval_ranges",
    "iwl_for_interval",
    "iwl_for_magnitude",
    "mantissa_to_float",
    "mantissa_to_float_array",
    "prove_int64_safe",
    "quantize_value",
    "requantize",
    "requantize_array",
    "requantize_array_i64",
    "run_fixed_point",
    "run_fixed_point_batch",
    "saturate",
    "simulation_ranges",
    "wrap",
]
