"""Dynamic-range determination.

Two analyzers implement the two classic range-determination approaches
the paper cites (Section II-B): *interval arithmetic* (an abstract
interpreter over :class:`~repro.fixedpoint.interval.Interval` values)
and *simulation statistics* (min/max observation over representative
executions).  ``analyze_ranges`` tries intervals first and falls back
to simulation for programs where interval iteration diverges —
recursive filters, exactly the case ID.Fix handles with its simulation
mode.

The interval interpreter executes loops whose variable appears in a
coefficient subscript *concretely* (so each tap multiplies its actual
coefficient — the accumulated bound is the filter's L1 norm, not the
``trip * max|h|`` blow-up), and other loops *abstractly*, iterating
their body to a fixpoint of the array/variable summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import RangeAnalysisError
from repro.fixedpoint.interval import Interval
from repro.fixedpoint.spec import SlotMap
from repro.ir.backend import DEFAULT_BACKEND, get_backend
from repro.ir.ops import Operation
from repro.ir.optypes import OpKind
from repro.ir.program import BlockRef, LoopNode, Program
from repro.ir.symbols import SymbolKind

__all__ = [
    "RangeResult",
    "interval_ranges",
    "simulation_ranges",
    "analyze_ranges",
]


@dataclass
class RangeResult:
    """Per-tie-group value ranges plus provenance."""

    slotmap: SlotMap
    ranges: dict[int, Interval]
    method: str

    def range_of(self, slot: int) -> Interval:
        """Range of any slot (resolved through its tie-group root)."""
        root = self.slotmap.root_of(slot)
        found = self.ranges.get(root)
        if found is None:
            raise RangeAnalysisError(
                f"no range recorded for {self.slotmap.describe(slot)}"
            )
        return found

    def magnitude_of(self, slot: int) -> float:
        return self.range_of(slot).magnitude


# ----------------------------------------------------------------------
# Simulation-based analysis
# ----------------------------------------------------------------------
def _stimulus_set(
    program: Program, n_random: int, rng: np.random.Generator
) -> list[dict[str, np.ndarray]]:
    """Representative inputs: range extremes, alternation, random draws."""
    stimuli: list[dict[str, np.ndarray]] = []

    def build(maker) -> dict[str, np.ndarray]:
        inputs = {}
        for decl in program.input_arrays():
            lo, hi = decl.value_range  # type: ignore[misc]
            inputs[decl.name] = maker(lo, hi, decl.shape)
        return inputs

    stimuli.append(build(lambda lo, hi, s: np.full(s, hi)))
    stimuli.append(build(lambda lo, hi, s: np.full(s, lo)))

    def alternating(lo: float, hi: float, shape) -> np.ndarray:
        flat = np.empty(int(np.prod(shape)))
        flat[0::2] = hi
        flat[1::2] = lo
        return flat.reshape(shape)

    stimuli.append(build(alternating))
    for _ in range(n_random):
        stimuli.append(build(lambda lo, hi, s: rng.uniform(lo, hi, size=s)))
    return stimuli


def simulation_ranges(
    program: Program,
    slotmap: SlotMap | None = None,
    n_random: int = 6,
    margin: float = 0.5,
    seed: int = 2017,
    backend: str = DEFAULT_BACKEND,
) -> RangeResult:
    """Measure per-slot ranges by executing representative inputs.

    ``margin`` widens every measured interval relatively (0.5 = half
    again), compensating for extremes the stimuli missed; it costs at
    most one integer bit.  ``backend`` names the evaluation backend the
    stimuli run on; min/max observation makes every backend's ranges
    identical, so it is purely a throughput knob.
    """
    slotmap = slotmap or SlotMap(program)
    rng = np.random.default_rng(seed)
    ranges: dict[int, Interval] = {}

    def observe(opid: int, values) -> None:
        # ``values`` is one scalar (scalar backend) or the whole value
        # array of the op (batch backend); only min/max matter.
        vmin = float(np.min(values))
        vmax = float(np.max(values))
        root = slotmap.root_of(opid)
        found = ranges.get(root)
        if found is None:
            ranges[root] = Interval(vmin, vmax)
        elif not (found.contains(vmin) and found.contains(vmax)):
            ranges[root] = found.join(Interval(vmin, vmax))

    get_backend(backend).run_float(
        program, _stimulus_set(program, n_random, rng), range_probe=observe
    )

    _seed_symbol_ranges(program, slotmap, ranges)
    if margin:
        ranges = {r: iv.widen_relative(margin) for r, iv in ranges.items()}
    return RangeResult(slotmap, ranges, "simulation")


def _seed_symbol_ranges(
    program: Program, slotmap: SlotMap, ranges: dict[int, Interval]
) -> None:
    """Fold declared input/coefficient ranges into the result."""
    for decl in program.arrays.values():
        if decl.value_range is None:
            continue
        root = slotmap.root_of(slotmap.slot_of_symbol(decl.name))
        declared = Interval(*decl.value_range)
        found = ranges.get(root)
        ranges[root] = declared if found is None else found.join(declared)
    for var in program.variables.values():
        root = slotmap.root_of(slotmap.slot_of_symbol(var.name))
        init = Interval.point(var.init)
        found = ranges.get(root)
        ranges[root] = init if found is None else found.join(init)


# ----------------------------------------------------------------------
# Interval abstract interpretation
# ----------------------------------------------------------------------
@dataclass
class _AbstractState:
    program: Program
    slotmap: SlotMap
    arrays: dict[str, Interval]
    vars: dict[str, Interval]
    ranges: dict[int, Interval] = field(default_factory=dict)

    def join_slot(self, slot: int, interval: Interval) -> None:
        root = self.slotmap.root_of(slot)
        found = self.ranges.get(root)
        self.ranges[root] = interval if found is None else found.join(interval)

    def snapshot(self) -> tuple:
        return (
            tuple(sorted(self.arrays.items())),
            tuple(sorted(self.vars.items())),
            tuple(sorted(self.ranges.items())),
        )


def _coeff_index_vars(program: Program) -> frozenset[str]:
    """Loop variables appearing in any coefficient-array subscript."""
    coeff_names = {a.name for a in program.coeff_arrays()}
    vars_: set[str] = set()
    for op in program.all_ops():
        if op.kind is OpKind.LOAD and op.array in coeff_names:
            assert op.index is not None
            for ix in op.index:
                vars_.update(ix.variables)
    return frozenset(vars_)


def interval_ranges(
    program: Program,
    slotmap: SlotMap | None = None,
    max_abstract_iters: int = 64,
) -> RangeResult:
    """Bound per-slot ranges by abstract interpretation over intervals.

    Raises :class:`~repro.errors.RangeAnalysisError` when an abstractly
    iterated loop fails to reach a fixpoint within
    ``max_abstract_iters`` iterations (divergent recurrences such as
    IIR feedback); callers should fall back to simulation.
    """
    slotmap = slotmap or SlotMap(program)
    concrete_vars = _coeff_index_vars(program)

    arrays: dict[str, Interval] = {}
    for decl in program.arrays.values():
        if decl.kind is SymbolKind.INPUT:
            arrays[decl.name] = Interval(*decl.value_range)  # type: ignore[misc]
        elif decl.kind is SymbolKind.COEFF:
            assert decl.values is not None
            arrays[decl.name] = Interval(
                float(decl.values.min()), float(decl.values.max())
            )
        else:
            arrays[decl.name] = Interval.point(0.0)
    vars_ = {v.name: Interval.point(v.init) for v in program.variables.values()}

    state = _AbstractState(program, slotmap, arrays, vars_)
    env: dict[str, int | None] = {}
    _abstract_items(program.schedule, env, state, concrete_vars,
                    max_abstract_iters)

    _seed_symbol_ranges(program, slotmap, state.ranges)
    for name, interval in state.arrays.items():
        state.join_slot(slotmap.slot_of_symbol(name), interval)
    for name, interval in state.vars.items():
        state.join_slot(slotmap.slot_of_symbol(name), interval)
    return RangeResult(slotmap, state.ranges, "interval")


def _abstract_items(
    items,
    env: dict[str, int | None],
    state: _AbstractState,
    concrete_vars: frozenset[str],
    max_iters: int,
) -> None:
    for item in items:
        if isinstance(item, BlockRef):
            _abstract_block(
                state.program.blocks[item.name], env, state
            )
        elif isinstance(item, LoopNode):
            if item.var in concrete_vars:
                for i in range(item.trip):
                    env[item.var] = i
                    _abstract_items(item.body, env, state, concrete_vars,
                                    max_iters)
                del env[item.var]
            else:
                env[item.var] = None
                bound = min(item.trip, max_iters)
                stable = False
                for iteration in range(bound):
                    before = state.snapshot()
                    _abstract_items(item.body, env, state, concrete_vars,
                                    max_iters)
                    if state.snapshot() == before:
                        stable = True
                        break
                del env[item.var]
                if not stable and item.trip > bound:
                    raise RangeAnalysisError(
                        f"interval iteration over loop {item.var!r} did not "
                        f"converge within {bound} iterations (recurrence?)"
                    )


def _abstract_block(block, env: Mapping[str, int | None], state: _AbstractState) -> None:
    program = state.program
    values: dict[int, Interval] = {}
    for op in block.ops:
        interval = _abstract_op(op, values, env, state, program)
        values[op.opid] = interval
        state.join_slot(op.opid, interval)


def _abstract_op(
    op: Operation,
    values: dict[int, Interval],
    env: Mapping[str, int | None],
    state: _AbstractState,
    program: Program,
) -> Interval:
    kind = op.kind
    if kind is OpKind.CONST:
        return Interval.point(float(op.value))  # type: ignore[arg-type]
    if kind is OpKind.LOAD:
        decl = program.arrays[op.array]  # type: ignore[index]
        if decl.kind is SymbolKind.COEFF:
            cell = _resolve_coeff_cell(op, env, decl)
            if cell is not None:
                return Interval.point(cell)
        return state.arrays[op.array]  # type: ignore[index]
    if kind is OpKind.STORE:
        interval = values[op.operands[0]]
        current = state.arrays[op.array]  # type: ignore[index]
        state.arrays[op.array] = current.join(interval)  # type: ignore[index]
        return interval
    if kind is OpKind.READVAR:
        return state.vars[op.var]  # type: ignore[index]
    if kind is OpKind.WRITEVAR:
        interval = values[op.operands[0]]
        state.vars[op.var] = interval  # type: ignore[index]
        return interval
    a = values[op.operands[0]]
    if kind is OpKind.NEG:
        return -a
    if kind is OpKind.ABS:
        return a.abs()
    b = values[op.operands[1]]
    if kind is OpKind.ADD:
        return a + b
    if kind is OpKind.SUB:
        return a - b
    if kind is OpKind.MUL:
        return a * b
    if kind is OpKind.MIN:
        return a.min_with(b)
    if kind is OpKind.MAX:
        return a.max_with(b)
    raise RangeAnalysisError(f"unhandled op kind {kind}")  # pragma: no cover


def _resolve_coeff_cell(op: Operation, env: Mapping[str, int | None], decl):
    """Exact coefficient value when the subscript is fully concrete."""
    assert op.index is not None and decl.values is not None
    coords = []
    for ix in op.index:
        for var in ix.variables:
            if env.get(var) is None:
                return None
        coords.append(ix.evaluate({k: v for k, v in env.items() if v is not None}))
    try:
        return float(decl.values[tuple(coords)])
    except IndexError:
        return None


# ----------------------------------------------------------------------
def analyze_ranges(
    program: Program,
    slotmap: SlotMap | None = None,
    method: str = "auto",
    backend: str = DEFAULT_BACKEND,
    **kwargs,
) -> RangeResult:
    """Range analysis entry point.

    ``method`` is ``"interval"``, ``"simulation"`` or ``"auto"``
    (interval with simulation fallback on divergence); ``backend``
    names the evaluation backend of the simulation path.
    """
    slotmap = slotmap or SlotMap(program)
    if method == "interval":
        return interval_ranges(program, slotmap, **kwargs)
    if method == "simulation":
        return simulation_ranges(program, slotmap, backend=backend, **kwargs)
    if method != "auto":
        raise RangeAnalysisError(f"unknown range analysis method {method!r}")
    try:
        return interval_ranges(program, slotmap)
    except RangeAnalysisError:
        return simulation_ranges(program, slotmap, backend=backend, **kwargs)
