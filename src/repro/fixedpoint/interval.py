"""Interval arithmetic.

The dynamic-range analysis of ID.Fix-style flows ("IWL determination
... using interval arithmetic", paper Section III-A) is implemented on
this small interval domain.  Intervals are closed: ``[lo, hi]``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FixedPointError

__all__ = ["Interval"]


@dataclass(frozen=True)
class Interval:
    """A closed real interval ``[lo, hi]``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise FixedPointError(f"empty interval [{self.lo}, {self.hi}]")

    # ------------------------------------------------------------------
    @staticmethod
    def point(value: float) -> "Interval":
        """The degenerate interval containing a single value."""
        return Interval(value, value)

    @staticmethod
    def symmetric(magnitude: float) -> "Interval":
        """The interval [-magnitude, +magnitude]."""
        magnitude = abs(magnitude)
        return Interval(-magnitude, magnitude)

    # ------------------------------------------------------------------
    # Arithmetic (all conservative / exact for these monotone cases)
    # ------------------------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        products = (
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        )
        return Interval(min(products), max(products))

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def abs(self) -> "Interval":
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return -self
        return Interval(0.0, max(-self.lo, self.hi))

    def min_with(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_with(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def join(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (lattice join)."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen_relative(self, factor: float) -> "Interval":
        """Grow both bounds by ``factor`` of the magnitude (margining)."""
        pad = factor * max(abs(self.lo), abs(self.hi))
        return Interval(self.lo - pad, self.hi + pad)

    # ------------------------------------------------------------------
    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def encloses(self, other: "Interval") -> bool:
        return self.lo <= other.lo and other.hi <= self.hi

    @property
    def magnitude(self) -> float:
        """Largest absolute value in the interval."""
        return max(abs(self.lo), abs(self.hi))

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def __str__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"
