"""Static int64 width proof for the fixed-point batch interpreter.

The exact batch tier keeps every mantissa in an object-dtype ndarray
of Python ints, which makes it immune to overflow but roughly an order
of magnitude slower than native numpy lanes.  This module is the
soundness side of the native fast path: a per-program static pass that
bounds every intermediate mantissa the batch interpreter can ever
materialize — including the *transients* the runtime never stores
(full-precision multiply products, pre-overflow sums, the half-ulp
offset of ``ROUND`` requantization) — and certifies when all of them
fit a signed 64-bit word, so the whole program may run on ``int64``
numpy lanes via the ``*_array_i64`` primitives of
:mod:`repro.fixedpoint.quantize`.

How range analysis enters the proof
-----------------------------------
The proof combines two sources of bounds, mirroring how the paper's
pipeline derives formats in the first place:

* **Word-length clamps.**  Every value written through
  ``apply_overflow`` at a slot of word length ``wl`` lands in
  ``[-2**(wl-1), 2**(wl-1) - 1]`` under all three overflow policies.
  This is the unconditional anchor: it holds for arbitrary stimuli,
  so the proof never trusts the float-domain value ranges directly.
* **Range-derived formats.**  The ``iwl``/``fwl`` assignments of the
  spec are themselves products of range analysis
  (:func:`repro.fixedpoint.iwl.assign_iwls` over
  :func:`repro.fixedpoint.range_analysis.analyze_ranges`), so the
  clamp widths the proof propagates already encode the measured or
  interval-derived dynamic range of every node.  Coefficient arrays
  that are never stored into are additionally bounded by their exact
  quantized values, which is where tight compile-time ranges shave
  whole bits off multiply transients.

Interval propagation is exact Python-int arithmetic over the same op
semantics the interpreters implement (``fxpinterp``/``fxpbatch``), so
the proof can never be *tighter* than reality — only equal or wider —
which is the direction soundness needs.  A program that fails the
proof is simply executed on the object tier; the proof result is never
allowed to change numerics, only the lane dtype.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fixedpoint.fxpinterp import FxpConfig
from repro.fixedpoint.quantize import (
    I64_SAFE_WL,
    OverflowMode,
    QuantMode,
    float_to_mantissa,
)
from repro.fixedpoint.spec import FixedPointSpec
from repro.ir.optypes import OpKind
from repro.ir.program import Program
from repro.ir.symbols import SymbolKind

__all__ = ["WidthProof", "prove_int64_safe", "I64_MAX", "I64_MIN", "MAX_SHIFT"]

I64_MAX = (1 << 63) - 1
I64_MIN = -(1 << 63)

#: Largest shift distance the native tier may issue: numpy's int64
#: shifts are undefined at the register width, and the ``ROUND``
#: offset ``1 << (shift - 1)`` must itself stay an int64 transient.
MAX_SHIFT = 62

#: Cap on collected failure reasons (diagnostics, not an exhaustive
#: audit — one reason already forces the object tier).
_MAX_REASONS = 12


@dataclass(frozen=True)
class WidthProof:
    """Outcome of :func:`prove_int64_safe` for one (program, spec, config).

    ``peak_bound`` is the largest absolute mantissa bound encountered
    across every value and transient (meaningful for both outcomes:
    when unsafe it shows by how far the program misses the word).
    """

    safe: bool
    peak_bound: int
    reasons: tuple[str, ...]

    def describe(self) -> str:
        """One-line human rendition, used by CLI surfaces."""
        bits = max(self.peak_bound, 1).bit_length()
        if self.safe:
            return f"int64-safe (peak transient < 2^{bits})"
        return f"object fallback: {'; '.join(self.reasons)}"


class _IntervalChecker:
    """Mutable proof state: peak tracking + failure collection."""

    def __init__(self) -> None:
        self.peak = 0
        self.reasons: list[str] = []

    def note(self, lo: int, hi: int, what: str) -> tuple[int, int]:
        """Record a transient interval; flag it if it escapes int64."""
        self.peak = max(self.peak, -lo, hi)
        if lo < I64_MIN or hi > I64_MAX:
            bits = max(-lo, hi).bit_length()
            self._fail(f"{what}: transient bound reaches 2^{bits - 1}+")
        return (lo, hi)

    def check_shift(self, shift: int, what: str) -> None:
        if shift > MAX_SHIFT:
            self._fail(f"{what}: requantize shift {shift} > {MAX_SHIFT}")

    def check_wl(self, wl: int, what: str) -> None:
        if wl > I64_SAFE_WL:
            self._fail(f"{what}: word length {wl} > {I64_SAFE_WL}")

    def _fail(self, reason: str) -> None:
        if len(self.reasons) < _MAX_REASONS:
            self.reasons.append(reason)

    @property
    def safe(self) -> bool:
        return not self.reasons


def _wl_clamp(wl: int) -> tuple[int, int]:
    """Post-overflow range of a ``wl``-bit slot (any overflow policy)."""
    return (-(1 << (wl - 1)), (1 << (wl - 1)) - 1)


def _join(a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int]:
    return (min(a[0], b[0]), max(a[1], b[1]))


def _post_overflow(
    iv: tuple[int, int], wl: int, mode: OverflowMode
) -> tuple[int, int]:
    """Sound image of ``apply_overflow`` over a pre-overflow interval.

    ``WRAP`` is the identity when the interval already fits, the full
    clamp range otherwise (a wrapped value can land anywhere in it);
    ``SATURATE`` clamps both ends; ``ERROR`` either passes the values
    through (when they provably fit) or raises at runtime — in which
    case the clamp range over-approximates the only non-raising
    outcomes.
    """
    lo, hi = _wl_clamp(wl)
    if mode is OverflowMode.SATURATE:
        return (min(max(iv[0], lo), hi), min(max(iv[1], lo), hi))
    if lo <= iv[0] and iv[1] <= hi:
        return iv
    return (lo, hi)


def _shift_interval(
    iv: tuple[int, int],
    f_from: int,
    f_to: int,
    mode: QuantMode,
    checker: _IntervalChecker,
    what: str,
) -> tuple[int, int]:
    """Image of ``requantize`` over an interval, checking transients.

    Shifts are monotone, so the image of an interval is the interval
    of the images; the ``ROUND`` half-ulp offset is checked as its own
    transient because the runtime materializes ``m + (1 << (s - 1))``
    before shifting it back down.
    """
    if f_to >= f_from:
        shift = f_to - f_from
        checker.check_shift(shift, what)
        return checker.note(iv[0] << shift, iv[1] << shift, what)
    shift = f_from - f_to
    checker.check_shift(shift, what)
    if mode is QuantMode.ROUND:
        offset = 1 << (shift - 1)
        lo, hi = checker.note(iv[0] + offset, iv[1] + offset, what)
        return (lo >> shift, hi >> shift)
    return (iv[0] >> shift, iv[1] >> shift)


def _mul_interval(a: tuple[int, int], b: tuple[int, int]) -> tuple[int, int]:
    products = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    return (min(products), max(products))


def _abs_interval(iv: tuple[int, int]) -> tuple[int, int]:
    lo = 0 if iv[0] <= 0 <= iv[1] else min(abs(iv[0]), abs(iv[1]))
    return (lo, max(abs(iv[0]), abs(iv[1])))


def _array_intervals(
    program: Program,
    spec: FixedPointSpec,
    cfg: FxpConfig,
    checker: _IntervalChecker,
) -> dict[str, tuple[int, int]]:
    """Per-array bound on any element a LOAD can observe.

    Inputs and mutated arrays are bounded by their word-length clamp
    (both the init conversion and every STORE apply overflow at the
    array's format, and that holds for *arbitrary* stimuli).  Constant
    coefficient arrays that no STORE targets are bounded exactly from
    their quantized values — the compile-time range information that
    keeps multiply transients narrow.
    """
    stored_into = {
        op.array for op in program.all_ops() if op.kind is OpKind.STORE
    }
    bounds: dict[str, tuple[int, int]] = {}
    for decl in program.arrays.values():
        slot = spec.slotmap.slot_of_symbol(decl.name)
        wl = spec.wl(slot)
        checker.check_wl(wl, f"array '{decl.name}'")
        clamp = _wl_clamp(wl)
        if decl.kind is SymbolKind.COEFF and decl.name not in stored_into:
            assert decl.values is not None
            fwl = spec.fwl(slot)
            mantissas = [
                float_to_mantissa(float(v), fwl, cfg.const_mode)
                for v in decl.values.flat
            ]
            pre = (min(mantissas), max(mantissas))
            bounds[decl.name] = _post_overflow(pre, wl, cfg.overflow)
        else:
            bounds[decl.name] = clamp
    return bounds


def _variable_intervals(
    program: Program, spec: FixedPointSpec, cfg: FxpConfig
) -> dict[str, tuple[int, int]]:
    """Per-variable bound on any value a READVAR can observe.

    Every WRITEVAR stores a value whose producer is format-tied to the
    variable, and tie chains terminate either at an overflow-applying
    op or at a LOAD of a same-root array — both within the root's
    word-length clamp.  The only unclamped values are the initial
    mantissas (variable init skips overflow), so the clamp is joined
    with the exact init of every variable sharing the tie root.
    """
    slotmap = spec.slotmap
    init_by_root: dict[int, tuple[int, int]] = {}
    for var in program.variables.values():
        slot = slotmap.slot_of_symbol(var.name)
        init = float_to_mantissa(var.init, spec.fwl(slot), cfg.const_mode)
        root = slotmap.root_of(slot)
        point = (init, init)
        prior = init_by_root.get(root)
        init_by_root[root] = point if prior is None else _join(prior, point)
    bounds: dict[str, tuple[int, int]] = {}
    for var in program.variables.values():
        slot = slotmap.slot_of_symbol(var.name)
        clamp = _wl_clamp(spec.wl(slot))
        bounds[var.name] = _join(clamp, init_by_root[slotmap.root_of(slot)])
    return bounds


def prove_int64_safe(
    program: Program,
    spec: FixedPointSpec,
    config: FxpConfig | None = None,
) -> WidthProof:
    """Bound every batch-interpreter mantissa; certify int64 safety.

    Walks each basic block once (bounds are loop-iteration independent
    because cross-iteration flow only happens through overflow-clamped
    arrays and variables), applying the interpreters' op semantics to
    exact integer intervals.  Cost is linear in the static op count —
    negligible next to a single program execution.
    """
    cfg = config or FxpConfig()
    checker = _IntervalChecker()
    arrays = _array_intervals(program, spec, cfg, checker)
    variables = _variable_intervals(program, spec, cfg)

    for block in program.blocks.values():
        values: dict[int, tuple[int, int]] = {}
        for op in block.ops:
            kind = op.kind
            node_fwl = spec.fwl(op.opid)
            node_wl = spec.wl(op.opid)
            what = f"op %{op.opid} ({kind.value})"

            def operand(pos: int, f_to: int) -> tuple[int, int]:
                src = op.operands[pos]
                return _shift_interval(
                    values[src], spec.fwl(src), f_to, cfg.quant_mode,
                    checker, what,
                )

            if kind is OpKind.CONST:
                m = float_to_mantissa(
                    float(op.value),  # type: ignore[arg-type]
                    node_fwl, cfg.const_mode,
                )
                # Constants stay Python-int scalars until they meet an
                # array lane, so the raw point needs no int64 check;
                # the meeting op's operand transient is checked there.
                iv = _post_overflow((m, m), node_wl, cfg.overflow)
            elif kind is OpKind.LOAD:
                iv = arrays[op.array]  # type: ignore[index]
            elif kind is OpKind.STORE:
                pre = operand(0, node_fwl)
                checker.check_wl(node_wl, what)
                iv = _post_overflow(pre, node_wl, cfg.overflow)
            elif kind is OpKind.READVAR:
                iv = variables[op.var]  # type: ignore[index]
            elif kind is OpKind.WRITEVAR:
                iv = values[op.operands[0]]
            elif kind is OpKind.MUL:
                factors = []
                for pos in (0, 1):
                    f_cons = spec.consumption_fwl(op.opid, pos)
                    factors.append(operand(pos, f_cons))
                product = checker.note(
                    *_mul_interval(factors[0], factors[1]),
                    f"{what} product",
                )
                cons_sum = (
                    spec.consumption_fwl(op.opid, 0)
                    + spec.consumption_fwl(op.opid, 1)
                )
                narrowed = _shift_interval(
                    product, cons_sum, node_fwl, cfg.quant_mode, checker, what
                )
                checker.check_wl(node_wl, what)
                iv = _post_overflow(narrowed, node_wl, cfg.overflow)
            elif op.is_binary:
                a = operand(0, node_fwl)
                b = operand(1, node_fwl)
                if kind is OpKind.ADD:
                    raw = (a[0] + b[0], a[1] + b[1])
                elif kind is OpKind.SUB:
                    raw = (a[0] - b[1], a[1] - b[0])
                elif kind is OpKind.MIN:
                    raw = (min(a[0], b[0]), min(a[1], b[1]))
                else:  # MAX
                    raw = (max(a[0], b[0]), max(a[1], b[1]))
                raw = checker.note(*raw, what)
                checker.check_wl(node_wl, what)
                iv = _post_overflow(raw, node_wl, cfg.overflow)
            else:  # unary NEG / ABS
                a = operand(0, node_fwl)
                raw = (-a[1], -a[0]) if kind is OpKind.NEG else _abs_interval(a)
                raw = checker.note(*raw, what)
                checker.check_wl(node_wl, what)
                iv = _post_overflow(raw, node_wl, cfg.overflow)

            values[op.opid] = checker.note(*iv, what)

    return WidthProof(
        safe=checker.safe,
        peak_bound=checker.peak,
        reasons=tuple(checker.reasons),
    )
