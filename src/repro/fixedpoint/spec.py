"""The fixed-point specification.

The paper's ``SPEC`` maps every *node* — operation, array, scalar
variable — to a fixed-point format.  Here each node owns a *slot*;
slots that must share a format are *tied* together (union-find) and the
authoritative values live at the tie-group root:

* a ``LOAD``/``STORE`` shares its array's format (memory has one
  layout);
* ``READVAR``/``WRITEVAR`` and the op *producing* the written value
  share the variable's format (register moves are free, so they cannot
  implement a format change — the accumulator chain of an unrolled
  kernel is physically one register);

In addition, MUL operand edges carry an optional *consumption word
length*: when SLP narrows a multiply to a 16-bit lane, its operands are
narrowed at the pack boundary even if their producers stay wide.  This
is the paper's eq. (1) acting on operands, and it is what makes the
accuracy-aware candidate checks of Fig. 1c meaningful.

All mutations are journaled; ``save()``/``revert()`` give the
checkpoint semantics used throughout Fig. 1 (``SPEC.save g1`` /
``SPEC.revert g1``, "revert WL of c", ...).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FixedPointError
from repro.ir.optypes import OpKind
from repro.ir.program import Program
from repro.fixedpoint.qformat import QFormat

__all__ = ["SlotMap", "FixedPointSpec", "NO_NARROW"]

#: Edge consumption word length meaning "no narrowing at this edge".
NO_NARROW = 127


class SlotMap:
    """Slot numbering and tie groups for a program.

    Slots ``0 .. n_ops-1`` are operations (slot == opid); the following
    slots are symbols (arrays then variables, sorted by name).
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self.n_ops = program.n_ops
        names = sorted(program.arrays) + sorted(program.variables)
        self.symbol_slot: dict[str, int] = {
            name: self.n_ops + i for i, name in enumerate(names)
        }
        self.n_slots = self.n_ops + len(names)
        self._slot_symbol = {slot: name for name, slot in self.symbol_slot.items()}

        parent = list(range(self.n_slots))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[max(ra, rb)] = min(ra, rb)

        for op in program.all_ops():
            if op.kind in (OpKind.LOAD, OpKind.STORE):
                union(op.opid, self.symbol_slot[op.array])  # type: ignore[index]
            elif op.kind in (OpKind.READVAR, OpKind.WRITEVAR):
                union(op.opid, self.symbol_slot[op.var])  # type: ignore[index]
                if op.kind is OpKind.WRITEVAR:
                    union(op.operands[0], self.symbol_slot[op.var])  # type: ignore[index]

        self.root = np.array([find(i) for i in range(self.n_slots)], dtype=np.int32)
        members: dict[int, list[int]] = {}
        for slot in range(self.n_slots):
            members.setdefault(int(self.root[slot]), []).append(slot)
        self.group_members: dict[int, tuple[int, ...]] = {
            r: tuple(m) for r, m in members.items()
        }

    # ------------------------------------------------------------------
    def root_of(self, slot: int) -> int:
        """Tie-group root of ``slot``."""
        return int(self.root[slot])

    def slot_of_symbol(self, name: str) -> int:
        try:
            return self.symbol_slot[name]
        except KeyError:
            raise FixedPointError(f"unknown symbol {name!r}") from None

    def describe(self, slot: int) -> str:
        """Readable description of a slot, for diagnostics."""
        if slot < self.n_ops:
            return f"op%{slot}({self.program.op(slot).kind.value})"
        return f"sym:{self._slot_symbol[slot]}"

    @property
    def roots(self) -> list[int]:
        """All tie-group roots in ascending order."""
        return sorted(self.group_members)


@dataclass
class _JournalEntry:
    kind: int  # 0 = wl, 1 = iwl, 2 = edge_wl
    i: int
    j: int
    old: int


class FixedPointSpec:
    """Journaled per-slot fixed-point formats plus MUL edge narrowing."""

    def __init__(self, slotmap: SlotMap, max_wl: int = 32) -> None:
        self.slotmap = slotmap
        self.max_wl = max_wl
        n = slotmap.n_slots
        self._wl = np.full(n, max_wl, dtype=np.int16)
        self._iwl = np.ones(n, dtype=np.int16)
        self._edge_wl = np.full((slotmap.n_ops, 2), NO_NARROW, dtype=np.int16)
        self._journal: list[_JournalEntry] = []

    # ------------------------------------------------------------------
    # Scalar accessors (always resolved through the tie-group root)
    # ------------------------------------------------------------------
    def wl(self, slot: int) -> int:
        return int(self._wl[self.slotmap.root_of(slot)])

    def iwl(self, slot: int) -> int:
        return int(self._iwl[self.slotmap.root_of(slot)])

    def fwl(self, slot: int) -> int:
        root = self.slotmap.root_of(slot)
        return int(self._wl[root]) - int(self._iwl[root])

    def qformat(self, slot: int) -> QFormat:
        return QFormat(self.iwl(slot), self.fwl(slot))

    def set_wl(self, slot: int, value: int) -> None:
        if value < 1:
            raise FixedPointError(f"word length must be >= 1, got {value}")
        root = self.slotmap.root_of(slot)
        old = int(self._wl[root])
        if old != value:
            self._journal.append(_JournalEntry(0, root, 0, old))
            self._wl[root] = value

    def set_iwl(self, slot: int, value: int) -> None:
        root = self.slotmap.root_of(slot)
        old = int(self._iwl[root])
        if old != value:
            self._journal.append(_JournalEntry(1, root, 0, old))
            self._iwl[root] = value

    def set_fwl(self, slot: int, value: int) -> None:
        """Move the binary point, keeping the word length constant.

        This is SCALOPTIM's move: reducing ``fwl`` by k increases
        ``iwl`` by k (paper Section III-C).
        """
        root = self.slotmap.root_of(slot)
        wl = int(self._wl[root])
        self.set_iwl(slot, wl - value)

    # ------------------------------------------------------------------
    # MUL operand-edge consumption word lengths
    # ------------------------------------------------------------------
    def edge_wl(self, opid: int, pos: int) -> int:
        return int(self._edge_wl[opid, pos])

    def set_edge_wl(self, opid: int, pos: int, value: int) -> None:
        old = int(self._edge_wl[opid, pos])
        if old != value:
            self._journal.append(_JournalEntry(2, opid, pos, old))
            self._edge_wl[opid, pos] = value

    def consumption_fwl(self, opid: int, pos: int) -> int:
        """Fractional bits at which op ``opid`` consumes operand ``pos``.

        The producer's carried format, narrowed to the edge word length
        when one was set (keeping the producer's ``iwl`` so no range is
        lost, only precision).
        """
        producer = self.slotmap.program.op(opid).operands[pos]
        f_carried = self.fwl(producer)
        budget = self.edge_wl(opid, pos)
        if budget >= NO_NARROW:
            return f_carried
        return min(f_carried, budget - self.iwl(producer))

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------
    def save(self) -> int:
        """Checkpoint; pass the token to :meth:`revert` to roll back."""
        return len(self._journal)

    def revert(self, token: int) -> None:
        """Undo all mutations recorded after ``token``."""
        if token < 0 or token > len(self._journal):
            raise FixedPointError(f"bad journal token {token}")
        while len(self._journal) > token:
            entry = self._journal.pop()
            if entry.kind == 0:
                self._wl[entry.i] = entry.old
            elif entry.kind == 1:
                self._iwl[entry.i] = entry.old
            else:
                self._edge_wl[entry.i, entry.j] = entry.old

    # ------------------------------------------------------------------
    # Vectorized views (used by the analytical accuracy evaluator)
    # ------------------------------------------------------------------
    def fwl_vector(self) -> np.ndarray:
        """Per-slot fractional word lengths, root-resolved (int32)."""
        root = self.slotmap.root
        return (self._wl[root] - self._iwl[root]).astype(np.int32)

    def iwl_vector(self) -> np.ndarray:
        """Per-slot integer word lengths, root-resolved (int32)."""
        return self._iwl[self.slotmap.root].astype(np.int32)

    def wl_vector(self) -> np.ndarray:
        """Per-slot word lengths, root-resolved (int32)."""
        return self._wl[self.slotmap.root].astype(np.int32)

    def edge_wl_matrix(self) -> np.ndarray:
        """(n_ops, 2) consumption word lengths (``NO_NARROW`` = none)."""
        return self._edge_wl.astype(np.int32)

    # ------------------------------------------------------------------
    def clone(self) -> "FixedPointSpec":
        """Independent deep copy (journal not carried over)."""
        twin = FixedPointSpec(self.slotmap, self.max_wl)
        twin._wl = self._wl.copy()
        twin._iwl = self._iwl.copy()
        twin._edge_wl = self._edge_wl.copy()
        return twin

    def describe(self) -> str:
        """Readable dump of every tie group's format."""
        lines = []
        for root in self.slotmap.roots:
            members = self.slotmap.group_members[root]
            names = ", ".join(self.slotmap.describe(s) for s in members[:4])
            if len(members) > 4:
                names += f", ... ({len(members)} slots)"
            lines.append(f"  {self.qformat(root)} wl={self.wl(root):>2}  [{names}]")
        return "\n".join(lines)
