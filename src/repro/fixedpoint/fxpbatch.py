"""Batched bit-accurate fixed-point interpreter.

The array counterpart of
:class:`~repro.fixedpoint.fxpinterp.FixedPointInterpreter`: runtime
mantissas are ndarray columns with the stimulus set as the trailing
axis, and loops proven independent by :mod:`repro.ir.vectorize` run as
array lanes.  Each operation quantizes, computes and applies overflow
on the whole array at once through the ``*_array`` primitives of
:mod:`repro.fixedpoint.quantize`, whose elementwise semantics are the
scalar primitives' — which makes this executor bit-identical to the
scalar one on every program (the golden contract of
``tests/test_backend.py``).

Execution tiers
---------------
The interpreter picks one of two lane representations per program at
construction time:

* ``int64`` — native numpy lanes, used when the width proof of
  :mod:`repro.fixedpoint.widthproof` certifies that every mantissa and
  every transient (multiply products, pre-overflow sums, rounding
  offsets) fits a signed 64-bit word.  Same per-op code, same
  primitives' core, ~an order of magnitude faster.
* ``object`` — ndarrays of Python ints (arbitrary precision), the
  universal fallback for programs the proof cannot bound.

The choice is transparent: both tiers are bit-identical by
construction, so nothing downstream (accuracy numbers, caches, golden
tests) may depend on it.  ``force_object=True`` or the
``REPRO_FXP_FORCE_OBJECT=1`` environment knob pin the object tier, so
the fallback path stays reachable on machines where every kernel
proves int64-safe.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import InterpreterError
from repro.fixedpoint.fxpinterp import FxpConfig, check_spec_compatible
from repro.fixedpoint.quantize import (
    apply_overflow,
    apply_overflow_array,
    apply_overflow_array_i64,
    float_to_mantissa,
    float_to_mantissa_array,
    mantissa_to_float_array,
    requantize_array,
    requantize_array_i64,
)
from repro.fixedpoint.spec import FixedPointSpec
from repro.fixedpoint.widthproof import prove_int64_safe
from repro.ir.batch import BatchExecutorBase, stack_input_columns
from repro.ir.block import BasicBlock
from repro.ir.ops import Operation
from repro.ir.optypes import OpKind
from repro.ir.program import Program
from repro.ir.symbols import SymbolKind
from repro.ir.vectorize import VectorPlan

__all__ = [
    "FORCE_OBJECT_ENV",
    "BatchFixedPointInterpreter",
    "fixed_point_tier",
    "run_fixed_point_batch",
]

#: Environment knob pinning the object tier (any value but ``0``/empty).
FORCE_OBJECT_ENV = "REPRO_FXP_FORCE_OBJECT"


def _force_object_env() -> bool:
    return os.environ.get(FORCE_OBJECT_ENV, "").strip() not in ("", "0")


def fixed_point_tier(
    program: Program,
    spec: FixedPointSpec,
    config: FxpConfig | None = None,
    force_object: bool = False,
) -> str:
    """The lane tier (``"int64"``/``"object"``) the batch interpreter
    would pick, without building one (no vectorization plan needed)."""
    if force_object or _force_object_env():
        return "object"
    proof = prove_int64_safe(program, spec, config)
    return "int64" if proof.safe else "object"


class BatchFixedPointInterpreter(BatchExecutorBase):
    """Integer executor evaluating every stimulus in one pass."""

    def __init__(
        self,
        program: Program,
        spec: FixedPointSpec,
        config: FxpConfig | None = None,
        plan: VectorPlan | None = None,
        force_object: bool = False,
    ) -> None:
        check_spec_compatible(program, spec)
        super().__init__(program, plan)
        self.spec = spec
        self.config = config or FxpConfig()
        self.proof = prove_int64_safe(program, spec, self.config)
        self.native = bool(
            self.proof.safe and not force_object and not _force_object_env()
        )
        if self.native:
            self._requantize = requantize_array_i64
            self._apply_overflow = apply_overflow_array_i64
        else:
            self._requantize = requantize_array
            self._apply_overflow = apply_overflow_array

    @property
    def tier(self) -> str:
        """Lane representation this instance runs on."""
        return "int64" if self.native else "object"

    # ------------------------------------------------------------------
    def run(
        self, stimuli: Sequence[Mapping[str, np.ndarray]]
    ) -> list[dict[str, np.ndarray]]:
        """Execute over ``stimuli``; one dequantized dict per stimulus."""
        if not stimuli:
            raise InterpreterError("batch run needs at least one stimulus")
        state = self._init_state(stimuli)
        self._run_items(self.program.schedule, {}, state)
        outputs: list[dict[str, np.ndarray]] = []
        floats = {
            decl.name: mantissa_to_float_array(
                state.arrays[decl.name],
                self.spec.fwl(self.spec.slotmap.slot_of_symbol(decl.name)),
            )
            for decl in self.program.output_arrays()
        }
        for s in range(len(stimuli)):
            outputs.append({
                name: column[:, s].copy().reshape(
                    self.program.arrays[name].shape
                )
                for name, column in floats.items()
            })
        return outputs

    # ------------------------------------------------------------------
    def _init_state(
        self, stimuli: Sequence[Mapping[str, np.ndarray]]
    ) -> "_BatchFxpState":
        cfg = self.config
        n_stimuli = len(stimuli)
        # The initial float -> mantissa conversion always runs on the
        # exact object path (stimuli are unbounded until overflow is
        # applied); in the native tier the post-overflow columns are
        # then cast to int64 lanes — lossless, because the width proof
        # guarantees every array word length fits the lane.
        lane_dtype = np.int64 if self.native else object
        arrays: dict[str, np.ndarray] = {}
        for decl in self.program.arrays.values():
            slot = self.spec.slotmap.slot_of_symbol(decl.name)
            fwl = self.spec.fwl(slot)
            wl = self.spec.wl(slot)
            if decl.kind is SymbolKind.INPUT:
                stacked = stack_input_columns(decl, stimuli)
                arrays[decl.name] = apply_overflow_array(
                    float_to_mantissa_array(stacked, fwl, cfg.input_mode),
                    wl, cfg.overflow,
                ).astype(lane_dtype)
            elif decl.kind is SymbolKind.COEFF:
                assert decl.values is not None
                column = apply_overflow_array(
                    float_to_mantissa_array(
                        decl.values.reshape(-1), fwl, cfg.const_mode
                    ),
                    wl, cfg.overflow,
                ).astype(lane_dtype)
                arrays[decl.name] = np.repeat(
                    column[:, None], n_stimuli, axis=1
                )
            else:
                arrays[decl.name] = np.zeros(
                    (decl.size, n_stimuli), dtype=lane_dtype
                )
        variables: dict[str, object] = {}
        for var in self.program.variables.values():
            slot = self.spec.slotmap.slot_of_symbol(var.name)
            variables[var.name] = float_to_mantissa(
                var.init, self.spec.fwl(slot), cfg.const_mode
            )
        return _BatchFxpState(arrays, variables)

    # ------------------------------------------------------------------
    def _run_block(
        self, block: BasicBlock, env: Mapping, state: "_BatchFxpState"
    ) -> None:
        cfg = self.config
        spec = self.spec
        values: dict[int, object] = {}
        fwls: dict[int, int] = {}
        for op in block.ops:
            kind = op.kind
            node_fwl = spec.fwl(op.opid)
            node_wl = spec.wl(op.opid)
            if kind is OpKind.CONST:
                m = float_to_mantissa(float(op.value), node_fwl, cfg.const_mode)  # type: ignore[arg-type]
                m = apply_overflow(m, node_wl, cfg.overflow)
            elif kind is OpKind.LOAD:
                flat = self._flat_index(op, env)
                m = state.arrays[op.array][flat]
                if np.isscalar(flat) or np.ndim(flat) == 0:
                    m = m.copy()  # detach from later stores into the row
            elif kind is OpKind.STORE:
                src = op.operands[0]
                m = self._requantize(values[src], fwls[src], node_fwl,
                                     cfg.quant_mode)
                m = self._apply_overflow(m, node_wl, cfg.overflow)
                state.arrays[op.array][self._flat_index(op, env)] = m
            elif kind is OpKind.READVAR:
                m = state.variables[op.var]  # type: ignore[index]
            elif kind is OpKind.WRITEVAR:
                # Exact register move (formats tied by construction).
                m = values[op.operands[0]]
                state.variables[op.var] = m  # type: ignore[index]
            elif kind is OpKind.MUL:
                m = self._exec_mul(op, values, fwls, node_fwl, node_wl)
            elif op.is_binary:
                a = self._requantize(values[op.operands[0]],
                                     fwls[op.operands[0]],
                                     node_fwl, cfg.quant_mode)
                b = self._requantize(values[op.operands[1]],
                                     fwls[op.operands[1]],
                                     node_fwl, cfg.quant_mode)
                if kind is OpKind.ADD:
                    m = a + b
                elif kind is OpKind.SUB:
                    m = a - b
                elif kind is OpKind.MIN:
                    m = _minimum(a, b)
                else:  # MAX
                    m = _maximum(a, b)
                m = self._apply_overflow(m, node_wl, cfg.overflow)
            else:  # unary NEG / ABS
                a = self._requantize(values[op.operands[0]],
                                     fwls[op.operands[0]],
                                     node_fwl, cfg.quant_mode)
                m = -a if kind is OpKind.NEG else abs(a)
                m = self._apply_overflow(m, node_wl, cfg.overflow)
            values[op.opid] = m
            fwls[op.opid] = node_fwl

    def _exec_mul(
        self,
        op: Operation,
        values: dict[int, object],
        fwls: dict[int, int],
        node_fwl: int,
        node_wl: int,
    ) -> object:
        """Multiply with per-edge operand narrowing (SLP lane widths)."""
        cfg = self.config
        spec = self.spec
        factors = []
        cons_fwls = []
        for pos in (0, 1):
            src = op.operands[pos]
            f_cons = spec.consumption_fwl(op.opid, pos)
            factors.append(self._requantize(values[src], fwls[src], f_cons,
                                            cfg.quant_mode))
            cons_fwls.append(f_cons)
        product = factors[0] * factors[1]
        m = self._requantize(product, cons_fwls[0] + cons_fwls[1], node_fwl,
                             cfg.quant_mode)
        return self._apply_overflow(m, node_wl, cfg.overflow)


def _minimum(a, b):
    """Elementwise ``min`` in Python's exact form (b only if b < a)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.where(b < a, b, a)
    return min(a, b)


def _maximum(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.where(b > a, b, a)
    return max(a, b)


@dataclass
class _BatchFxpState:
    arrays: dict[str, np.ndarray]
    variables: dict[str, object]


def run_fixed_point_batch(
    program: Program,
    spec: FixedPointSpec,
    stimuli: Sequence[Mapping[str, np.ndarray]],
    config: FxpConfig | None = None,
    force_object: bool = False,
) -> list[dict[str, np.ndarray]]:
    """One-shot convenience wrapper."""
    return BatchFixedPointInterpreter(
        program, spec, config, force_object=force_object
    ).run(stimuli)
