"""Floating-point reference flow.

Lowers the program as single-precision float (hardware FPU where the
target has one, serialized soft-float emulation elsewhere) and counts
cycles — the reference of the paper's Fig. 6.
"""

from __future__ import annotations

from repro.flows.common import FlowResult
from repro.codegen.floatgen import lower_float_program
from repro.ir.program import Program
from repro.scheduler.cycles import program_cycles
from repro.targets.model import TargetModel

__all__ = ["run_float"]


def run_float(program: Program, target: TargetModel) -> FlowResult:
    """Cycle count of the original floating-point version."""
    lowered = lower_float_program(program, target)
    cycles = program_cycles(program, lowered, target)
    return FlowResult(
        flow="float",
        program_name=program.name,
        target_name=target.name,
        constraint_db=float("nan"),
        spec=None,
        cycles=cycles,
        noise_db=None,
    )
