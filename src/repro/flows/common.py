"""Shared flow plumbing: analysis context and result containers."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any

from repro.accuracy.analytical import AccuracyModel
from repro.accuracy.adjoint import extract_gains
from repro.errors import FlowError
from repro.fixedpoint.iwl import assign_iwls
from repro.fixedpoint.range_analysis import RangeResult, analyze_ranges
from repro.fixedpoint.spec import FixedPointSpec, SlotMap
from repro.ir.program import Program
from repro.scheduler.cycles import CycleReport
from repro.slp.groups import GroupSet

__all__ = ["AnalysisContext", "FlowResult", "flow_code_version", "speedup"]

def _is_semantic(relative: str) -> bool:
    """Whether a package-relative source path can change cell numbers.

    Pure presentation (``report/``), the CLI front end and the
    experiment orchestration layer are excluded — with one exception:
    ``experiments/engine.py`` holds the kernel builders and flow
    wiring of :func:`evaluate_cell`, so it is semantic.  Everything
    else — IR, kernels, flows, WLO, SLP, fixed-point, accuracy,
    scheduler, codegen, targets — participates.
    """
    top = relative.split("/", 1)[0]
    if top in ("report", "cli.py"):
        return False
    if top == "experiments":
        return relative == "experiments/engine.py"
    return True


@lru_cache(maxsize=1)
def flow_code_version() -> str:
    """Content hash of every source file that can change flow numbers.

    The on-disk sweep cache (:mod:`repro.experiments.cache`) keys each
    cell on this hash, so editing any semantic module (flows, WLO, SLP,
    accuracy, scheduler, codegen, kernels, targets, IR, fixed-point)
    invalidates stale results, while edits to tests, docs, the report
    renderers, the CLI, or the experiment harness leave the cache warm.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root).as_posix()
        if not _is_semantic(relative):
            continue
        digest.update(relative.encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@dataclass
class AnalysisContext:
    """Reusable per-kernel analysis: ranges, noise gains, slot map.

    Building this is the expensive part of a flow (trace + adjoints);
    sweeps over accuracy constraints and targets share one context.

    The *analysis twin* trick: gains and ranges are extracted from a
    structurally identical program with reduced trip counts (same ops,
    same ids, shorter loops), because steady-state noise gains converge
    long before the benchmark-sized iteration counts needed for
    realistic cycle numbers.  ``AnalysisContext.build`` verifies the
    twin matches op-for-op.
    """

    program: Program
    analysis_program: Program
    slotmap: SlotMap
    ranges: RangeResult
    model: AccuracyModel

    @staticmethod
    def build(
        program: Program,
        analysis_program: Program | None = None,
        range_method: str = "auto",
        n_ref_outputs: int = 4,
        seed: int = 90210,
        **model_kwargs: Any,
    ) -> "AnalysisContext":
        """Run range analysis and gain extraction for ``program``."""
        twin = analysis_program or program
        _check_twin(program, twin)
        slotmap = SlotMap(program)
        twin_slotmap = slotmap if twin is program else SlotMap(twin)
        ranges = analyze_ranges(twin, twin_slotmap, method=range_method)
        # Re-key the ranges onto the main slotmap (identical numbering).
        ranges = RangeResult(slotmap, ranges.ranges, ranges.method)
        gains = extract_gains(
            twin, twin_slotmap, n_ref_outputs=n_ref_outputs, seed=seed
        )
        model = AccuracyModel(program, slotmap, gains, **model_kwargs)
        return AnalysisContext(program, twin, slotmap, ranges, model)

    def fresh_spec(self, max_wl: int = 32) -> FixedPointSpec:
        """A new spec with range-derived IWLs and maximum WLs."""
        spec = FixedPointSpec(self.slotmap, max_wl=max_wl)
        assign_iwls(spec, self.ranges)
        return spec


def _check_twin(program: Program, twin: Program) -> None:
    if twin is program:
        return
    if twin.n_ops != program.n_ops:
        raise FlowError(
            f"analysis twin has {twin.n_ops} ops, program has {program.n_ops}"
        )
    for op, twin_op in zip(program.all_ops(), twin.all_ops()):
        if op.opid != twin_op.opid or op.kind is not twin_op.kind:
            raise FlowError(
                f"analysis twin diverges at op {op.opid} "
                f"({op.kind} vs {twin_op.kind})"
            )
    if sorted(program.arrays) != sorted(twin.arrays) or sorted(
        program.variables
    ) != sorted(twin.variables):
        raise FlowError("analysis twin symbol tables differ")


@dataclass
class FlowResult:
    """Outcome of one compilation flow on one (target, constraint)."""

    flow: str
    program_name: str
    target_name: str
    constraint_db: float
    spec: FixedPointSpec | None
    cycles: CycleReport
    #: SIMD groups per block (empty/None for scalar and float flows).
    groups: dict[str, GroupSet] | None = None
    #: Analytical output noise power of the final spec (dB).
    noise_db: float | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return self.cycles.total_cycles

    @property
    def n_groups(self) -> int:
        if not self.groups:
            return 0
        return sum(len(gs) for gs in self.groups.values())

    def summary(self) -> str:
        noise = (
            f", noise {self.noise_db:.1f} dB" if self.noise_db is not None else ""
        )
        return (
            f"[{self.flow}] {self.program_name} on {self.target_name} @ "
            f"{self.constraint_db:g} dB: {self.total_cycles} cycles, "
            f"{self.n_groups} SIMD groups{noise}"
        )


def speedup(baseline: FlowResult | CycleReport, other: FlowResult | CycleReport) -> float:
    """Paper eq. (2): baseline cycles / other cycles."""
    base = baseline.total_cycles
    new = other.total_cycles
    if new <= 0:
        raise FlowError("cannot compute speedup over zero cycles")
    return base / new
