"""The baseline flow (paper Fig. 5): WLO first, SLP afterwards.

float IR -> range analysis / IWL determination -> Tabu WLO under the
optimistic WL-relative cost model -> (a) scalar fixed-point lowering
(the baseline of every speedup in the paper) and (b) decoupled,
accuracy-blind SLP extraction + SIMD lowering.
"""

from __future__ import annotations

from repro.flows.common import AnalysisContext, FlowResult
from repro.codegen.scalar import lower_scalar_program
from repro.codegen.simd import lower_simd_program
from repro.ir.program import Program
from repro.scheduler.cycles import program_cycles
from repro.slp.extraction import SelectionStats, extract_groups_decoupled
from repro.targets.model import TargetModel
from repro.wlo.registry import get_wlo_engine
from repro.wlo.tabu import TabuConfig, tabu_wlo

__all__ = ["WloFirstResult", "run_wlo_first"]


class WloFirstResult:
    """Scalar and SIMD results of one WLO-First run.

    The *scalar* cycles are the denominator of every speedup in the
    paper's Fig. 4 and Fig. 6; the *SIMD* cycles are WLO-First's own
    best effort after decoupled SLP extraction.
    """

    def __init__(self, scalar: FlowResult, simd: FlowResult) -> None:
        self.scalar = scalar
        self.simd = simd

    @property
    def spec(self):
        return self.scalar.spec

    def summary(self) -> str:
        return f"{self.scalar.summary()}\n{self.simd.summary()}"


def run_wlo_first(
    program: Program,
    target: TargetModel,
    accuracy_db: float,
    context: AnalysisContext | None = None,
    wlo: str = "tabu",
    tabu_config: TabuConfig | None = None,
) -> WloFirstResult:
    """Run the decoupled baseline flow.

    ``wlo`` names the word-length engine, resolved through
    :mod:`repro.wlo.registry`: ``"tabu"`` (the paper's baseline), the
    ``"max-1"`` / ``"min+1"`` greedy ablations, or anything registered
    with :func:`repro.wlo.registry.register_wlo_engine`.
    """
    engine = get_wlo_engine(wlo)
    ctx = context or AnalysisContext.build(program)
    spec = ctx.fresh_spec(max_wl=target.max_wl)

    if tabu_config is not None and wlo.lower() == "tabu":
        wlo_stats = tabu_wlo(
            program, spec, ctx.model, target, accuracy_db, tabu_config
        )
    else:
        wlo_stats = engine(program, spec, ctx.model, target, accuracy_db)

    noise_db = ctx.model.noise_db(spec)

    scalar_lowered = lower_scalar_program(program, spec, target)
    scalar_cycles = program_cycles(program, scalar_lowered, target)
    scalar = FlowResult(
        flow=f"wlo-first/{wlo}/scalar",
        program_name=program.name,
        target_name=target.name,
        constraint_db=accuracy_db,
        spec=spec,
        cycles=scalar_cycles,
        noise_db=noise_db,
        extra={"wlo_stats": wlo_stats},
    )

    stats = SelectionStats()
    groups = {
        name: extract_groups_decoupled(program, block, spec, target, stats)
        for name, block in program.blocks.items()
    }
    simd_lowered = lower_simd_program(program, spec, target, groups)
    simd_cycles = program_cycles(program, simd_lowered, target)
    simd = FlowResult(
        flow=f"wlo-first/{wlo}/simd",
        program_name=program.name,
        target_name=target.name,
        constraint_db=accuracy_db,
        spec=spec,
        cycles=simd_cycles,
        groups=groups,
        noise_db=noise_db,
        extra={"wlo_stats": wlo_stats, "selection_stats": stats},
    )
    return WloFirstResult(scalar, simd)
