"""End-to-end compilation flows (paper Figs. 3 and 5, plus float)."""

from repro.flows.common import AnalysisContext, FlowResult, speedup
from repro.flows.floatflow import run_float
from repro.flows.wlo_first import WloFirstResult, run_wlo_first
from repro.flows.wlo_slp import run_wlo_slp

__all__ = [
    "AnalysisContext",
    "FlowResult",
    "WloFirstResult",
    "run_float",
    "run_wlo_first",
    "run_wlo_slp",
    "speedup",
]
