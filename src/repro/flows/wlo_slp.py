"""The paper's flow (Fig. 3): joint SLP-aware WLO.

float IR -> range analysis / IWL determination -> accuracy model ->
SLP-aware WLO (Fig. 1) -> SIMD fixed-point lowering -> cycle count.
"""

from __future__ import annotations

from repro.flows.common import AnalysisContext, FlowResult
from repro.codegen.simd import lower_simd_program
from repro.ir.program import Program
from repro.scheduler.cycles import program_cycles
from repro.targets.model import TargetModel
from repro.wlo.slp_aware import wlo_slp_optimize

__all__ = ["run_wlo_slp"]


def run_wlo_slp(
    program: Program,
    target: TargetModel,
    accuracy_db: float,
    context: AnalysisContext | None = None,
    **optimizer_kwargs,
) -> FlowResult:
    """Run the WLO-SLP flow; returns spec, groups and SIMD cycles.

    ``optimizer_kwargs`` are forwarded to
    :func:`repro.wlo.slp_aware.wlo_slp_optimize` (``harmonize``,
    ``scaloptim``, ``accuracy_conflicts`` — the ablation switches).
    """
    ctx = context or AnalysisContext.build(program)
    spec = ctx.fresh_spec(max_wl=target.max_wl)
    outcome = wlo_slp_optimize(
        program, spec, ctx.model, target, accuracy_db, **optimizer_kwargs
    )
    lowered = lower_simd_program(program, spec, target, outcome.groups)
    cycles = program_cycles(program, lowered, target)
    return FlowResult(
        flow="wlo-slp",
        program_name=program.name,
        target_name=target.name,
        constraint_db=accuracy_db,
        spec=spec,
        cycles=cycles,
        groups=outcome.groups,
        noise_db=ctx.model.noise_db(spec),
        extra={
            "selection_stats": outcome.selection,
            "scaling_stats": outcome.scaling,
        },
    )
