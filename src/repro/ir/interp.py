"""Reference floating-point interpreter.

Executes a :class:`~repro.ir.Program` over numpy float64 storage.  This
is the semantic ground truth: the fixed-point interpreter, the
analytical accuracy model and the generated C all measure themselves
against it.

Two optional hooks support the analyses built on top:

* ``range_observer`` — called with every produced value; used by
  simulation-based dynamic-range analysis.
* ``trace`` — when a :class:`ExecutionTrace` is supplied, every
  executed operation becomes an *instance* with links to the instances
  that produced its operands and the local partial derivatives.  The
  accuracy package back-propagates adjoints over this trace to obtain
  per-site noise gains (see ``repro.accuracy.adjoint``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.errors import InterpreterError
from repro.ir.block import BasicBlock
from repro.ir.ops import Operation
from repro.ir.optypes import OpKind
from repro.ir.program import BlockRef, LoopNode, Program
from repro.ir.symbols import SymbolKind

__all__ = ["ExecutionTrace", "Interpreter", "run_program"]

#: Sentinel static id for noise-free pseudo sources (zero initialization).
SILENT_SOURCE = -1


@dataclass
class ExecutionTrace:
    """Flat record of every executed operation instance.

    Instances are numbered densely in execution order.  For instance
    ``i``, ``static[i]`` is the static op id (or a pseudo-source id for
    array cells / variable initial values), ``operands[i]`` the
    producing instance ids and ``partials[i]`` the local derivatives of
    the instance value with respect to each operand value.
    """

    static: list[int] = field(default_factory=list)
    operands: list[tuple[int, ...]] = field(default_factory=list)
    partials: list[tuple[float, ...]] = field(default_factory=list)
    #: instance id -> flat cell index, for STORE instances only.
    store_cell: dict[int, int] = field(default_factory=dict)
    #: pseudo-source registry: (symbol, flat index) -> static pseudo id.
    cell_sources: dict[tuple[str, int], int] = field(default_factory=dict)
    #: instance ids of stores into OUTPUT arrays, execution order.
    output_instances: list[int] = field(default_factory=list)
    #: first pseudo id (== program.n_ops at build time).
    first_pseudo_id: int = 0

    def add(
        self,
        static_id: int,
        operands: tuple[int, ...] = (),
        partials: tuple[float, ...] = (),
    ) -> int:
        """Append an instance, returning its id."""
        inst = len(self.static)
        self.static.append(static_id)
        self.operands.append(operands)
        self.partials.append(partials)
        return inst

    def pseudo_source(self, symbol: str, flat_index: int) -> int:
        """Static pseudo id for an externally-produced cell value."""
        key = (symbol, flat_index)
        found = self.cell_sources.get(key)
        if found is None:
            found = self.first_pseudo_id + len(self.cell_sources)
            self.cell_sources[key] = found
        return found

    @property
    def n_instances(self) -> int:
        return len(self.static)


class Interpreter:
    """Float64 executor for IR programs."""

    def __init__(self, program: Program) -> None:
        self.program = program

    # ------------------------------------------------------------------
    def run(
        self,
        inputs: Mapping[str, np.ndarray],
        range_observer: Callable[[int, float], None] | None = None,
        trace: ExecutionTrace | None = None,
    ) -> dict[str, np.ndarray]:
        """Execute the program and return its output arrays.

        Parameters
        ----------
        inputs:
            One float array per INPUT array symbol, matching shapes.
        range_observer:
            Optional ``(static_id, value)`` callback invoked for every
            value produced (op results and variable initial values).
        trace:
            Optional :class:`ExecutionTrace` to fill during execution.
        """
        storage = self._init_storage(inputs)
        owners = self._init_owners(storage, trace) if trace is not None else None
        var_values: dict[str, float] = {}
        var_owner: dict[str, int] = {}
        for name, decl in self.program.variables.items():
            var_values[name] = decl.init
            if trace is not None:
                assert owners is not None
                if decl.init == 0.0:
                    var_owner[name] = trace.add(SILENT_SOURCE)
                else:
                    var_owner[name] = trace.add(
                        trace.pseudo_source("$" + name, 0)
                    )
            if range_observer is not None:
                pass  # variable initial values are covered by writes

        state = _ExecState(storage, owners, var_values, var_owner,
                           range_observer, trace)
        env: dict[str, int] = {}
        self._run_items(self.program.schedule, env, state)

        return {
            a.name: storage[a.name]
            for a in self.program.output_arrays()
        }

    # ------------------------------------------------------------------
    def _init_storage(
        self, inputs: Mapping[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        storage: dict[str, np.ndarray] = {}
        for decl in self.program.arrays.values():
            if decl.kind is SymbolKind.INPUT:
                if decl.name not in inputs:
                    raise InterpreterError(f"missing input array {decl.name!r}")
                data = np.asarray(inputs[decl.name], dtype=np.float64)
                if data.shape != decl.shape:
                    raise InterpreterError(
                        f"input {decl.name!r}: shape {data.shape} != "
                        f"declared {decl.shape}"
                    )
                storage[decl.name] = data.copy()
            elif decl.kind is SymbolKind.COEFF:
                assert decl.values is not None
                storage[decl.name] = decl.values.copy()
            else:
                storage[decl.name] = np.zeros(decl.shape, dtype=np.float64)
        return storage

    def _init_owners(
        self, storage: dict[str, np.ndarray], trace: ExecutionTrace
    ) -> dict[str, np.ndarray]:
        """Create pseudo-source instances for every pre-existing cell."""
        trace.first_pseudo_id = max(trace.first_pseudo_id, self.program.n_ops)
        owners: dict[str, np.ndarray] = {}
        for decl in self.program.arrays.values():
            cells = np.empty(decl.size, dtype=np.int64)
            if decl.kind in (SymbolKind.INPUT, SymbolKind.COEFF):
                for flat in range(decl.size):
                    pseudo = trace.pseudo_source(decl.name, flat)
                    cells[flat] = trace.add(pseudo)
            else:
                silent = trace.add(SILENT_SOURCE)
                cells[:] = silent
            owners[decl.name] = cells
        return owners

    # ------------------------------------------------------------------
    def _run_items(self, items, env: dict[str, int], state: "_ExecState") -> None:
        for item in items:
            if isinstance(item, BlockRef):
                self._run_block(self.program.blocks[item.name], env, state)
            elif isinstance(item, LoopNode):
                for i in range(item.trip):
                    env[item.var] = i
                    self._run_items(item.body, env, state)
                del env[item.var]
            else:  # pragma: no cover - defensive
                raise InterpreterError(f"bad schedule item {item!r}")

    def _flat_index(self, op: Operation, env: Mapping[str, int]) -> int:
        decl = self.program.arrays[op.array]  # type: ignore[index]
        assert op.index is not None
        coords = [ix.evaluate(env) for ix in op.index]
        for coord, extent in zip(coords, decl.shape):
            if not 0 <= coord < extent:
                raise InterpreterError(
                    f"{op.kind.value} {op.array}[{coords}] out of bounds "
                    f"{decl.shape} (op {op.opid}, env {dict(env)})"
                )
        if decl.rank == 1:
            return coords[0]
        return coords[0] * decl.shape[1] + coords[1]

    def _run_block(
        self, block: BasicBlock, env: Mapping[str, int], state: "_ExecState"
    ) -> None:
        values: dict[int, float] = {}
        insts: dict[int, int] = {}
        trace = state.trace
        for op in block.ops:
            kind = op.kind
            if kind is OpKind.CONST:
                result = float(op.value)  # type: ignore[arg-type]
                if trace is not None:
                    insts[op.opid] = trace.add(op.opid)
            elif kind is OpKind.LOAD:
                flat = self._flat_index(op, env)
                result = float(state.storage[op.array].flat[flat])
                if trace is not None:
                    owner = int(state.owners[op.array][flat])  # type: ignore[index]
                    insts[op.opid] = trace.add(op.opid, (owner,), (1.0,))
            elif kind is OpKind.STORE:
                src = op.operands[0]
                result = values[src]
                flat = self._flat_index(op, env)
                state.storage[op.array].flat[flat] = result
                if trace is not None:
                    inst = trace.add(op.opid, (insts[src],), (1.0,))
                    insts[op.opid] = inst
                    state.owners[op.array][flat] = inst  # type: ignore[index]
                    trace.store_cell[inst] = flat
                    decl = self.program.arrays[op.array]  # type: ignore[index]
                    if decl.kind is SymbolKind.OUTPUT:
                        trace.output_instances.append(inst)
            elif kind is OpKind.READVAR:
                result = state.var_values[op.var]  # type: ignore[index]
                if trace is not None:
                    insts[op.opid] = trace.add(
                        op.opid, (state.var_owner[op.var],), (1.0,)
                    )
            elif kind is OpKind.WRITEVAR:
                src = op.operands[0]
                result = values[src]
                state.var_values[op.var] = result  # type: ignore[index]
                if trace is not None:
                    inst = trace.add(op.opid, (insts[src],), (1.0,))
                    insts[op.opid] = inst
                    state.var_owner[op.var] = inst  # type: ignore[index]
            else:
                result = self._arith(op, values, insts, trace)
            values[op.opid] = result
            if state.range_observer is not None:
                # Stores/var-writes are observed too: their slot aliases
                # the symbol's, so range analysis sees symbol contents
                # without separate bookkeeping.
                state.range_observer(op.opid, result)

    def _arith(
        self,
        op: Operation,
        values: dict[int, float],
        insts: dict[int, int],
        trace: ExecutionTrace | None,
    ) -> float:
        kind = op.kind
        if op.is_binary:
            a = values[op.operands[0]]
            b = values[op.operands[1]]
            if kind is OpKind.ADD:
                result, pa, pb = a + b, 1.0, 1.0
            elif kind is OpKind.SUB:
                result, pa, pb = a - b, 1.0, -1.0
            elif kind is OpKind.MUL:
                result, pa, pb = a * b, b, a
            elif kind is OpKind.MIN:
                result = min(a, b)
                pa, pb = (1.0, 0.0) if a <= b else (0.0, 1.0)
            elif kind is OpKind.MAX:
                result = max(a, b)
                pa, pb = (1.0, 0.0) if a >= b else (0.0, 1.0)
            else:  # pragma: no cover - enum is closed
                raise InterpreterError(f"unhandled binary op {kind}")
            if trace is not None:
                insts[op.opid] = trace.add(
                    op.opid,
                    (insts[op.operands[0]], insts[op.operands[1]]),
                    (pa, pb),
                )
            return result
        a = values[op.operands[0]]
        if kind is OpKind.NEG:
            result, pa = -a, -1.0
        elif kind is OpKind.ABS:
            result = abs(a)
            pa = 1.0 if a >= 0 else -1.0
        else:  # pragma: no cover - enum is closed
            raise InterpreterError(f"unhandled unary op {kind}")
        if trace is not None:
            insts[op.opid] = trace.add(op.opid, (insts[op.operands[0]],), (pa,))
        return result


@dataclass
class _ExecState:
    storage: dict[str, np.ndarray]
    owners: dict[str, np.ndarray] | None
    var_values: dict[str, float]
    var_owner: dict[str, int]
    range_observer: Callable[[int, float], None] | None
    trace: ExecutionTrace | None


def run_program(
    program: Program, inputs: Mapping[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    return Interpreter(program).run(inputs)
