"""Basic blocks.

A block is an ordered list of operations executed once per iteration of
its enclosing loop nest.  The order is program order; def-before-use is
enforced by validation.  Blocks know their loop context (variables and
trip counts of enclosing loops), from which the execution-count
*priority* of the paper's Fig. 1a is derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IRError
from repro.ir.ops import Operation
from repro.ir.optypes import OpKind

__all__ = ["BasicBlock"]


@dataclass
class BasicBlock:
    """An ordered sequence of operations plus loop context.

    Attributes
    ----------
    name:
        Unique block name within the program.
    ops:
        Operations in program order.
    loop_vars:
        Names of enclosing loop variables, outermost first.
    trip_counts:
        Trip counts of the enclosing loops, aligned with ``loop_vars``.
    """

    name: str
    ops: list[Operation] = field(default_factory=list)
    loop_vars: tuple[str, ...] = ()
    trip_counts: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(self.loop_vars) != len(self.trip_counts):
            raise IRError(
                f"block {self.name!r}: loop_vars/trip_counts length mismatch"
            )

    # ------------------------------------------------------------------
    @property
    def executions(self) -> int:
        """Number of times the block runs per program execution.

        This is the product of enclosing trip counts and is the
        priority key used to order blocks for SLP extraction (paper
        Section III-A: most performance-impacting blocks first).
        """
        total = 1
        for trips in self.trip_counts:
            total *= trips
        return total

    @property
    def innermost_var(self) -> str | None:
        """Innermost enclosing loop variable, if any."""
        return self.loop_vars[-1] if self.loop_vars else None

    def op_by_id(self, opid: int) -> Operation:
        """Look up an operation of this block by id."""
        for op in self.ops:
            if op.opid == opid:
                return op
        raise IRError(f"block {self.name!r} has no op {opid}")

    def position(self, opid: int) -> int:
        """Program-order position of ``opid`` within the block."""
        for pos, op in enumerate(self.ops):
            if op.opid == opid:
                return pos
        raise IRError(f"block {self.name!r} has no op {opid}")

    def arithmetic_ops(self) -> list[Operation]:
        """Operations that cost machine instructions (non moves)."""
        return [
            op for op in self.ops
            if op.kind not in (OpKind.READVAR, OpKind.WRITEVAR, OpKind.CONST)
        ]

    def stores(self) -> list[Operation]:
        return [op for op in self.ops if op.kind is OpKind.STORE]

    def loads(self) -> list[Operation]:
        return [op for op in self.ops if op.kind is OpKind.LOAD]

    def __iter__(self):
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)
