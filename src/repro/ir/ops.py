"""IR operations.

An :class:`Operation` is an SSA-like node inside a basic block.  Value
operands reference other operations *of the same block* by id; all
communication across blocks or loop iterations goes through arrays or
scalar variables.  This keeps every basic block a DAG, which is the
precondition for both SLP extraction and list scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IRError
from repro.ir.index import AffineIndex
from repro.ir.optypes import (
    BINARY_KINDS,
    UNARY_KINDS,
    OpKind,
    operand_count,
)

__all__ = ["Operation"]


@dataclass(eq=False)
class Operation:
    """A single IR operation.

    Attributes
    ----------
    opid:
        Program-global integer id; also the operation's format slot in
        the fixed-point specification.
    kind:
        The operation kind.
    block:
        Name of the owning basic block.
    operands:
        Ids of the operations producing the value operands, in order.
    array / index:
        For ``LOAD``/``STORE``: the accessed array and its affine
        subscript (one :class:`AffineIndex` per dimension).
    var:
        For ``READVAR``/``WRITEVAR``: the scalar variable name.
    value:
        For ``CONST``: the literal value.
    """

    opid: int
    kind: OpKind
    block: str
    operands: tuple[int, ...] = ()
    array: str | None = None
    index: tuple[AffineIndex, ...] | None = None
    var: str | None = None
    value: float | None = None
    #: Free-form label used by printers and debugging (e.g. "acc0 +=").
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        expected = operand_count(self.kind)
        if len(self.operands) != expected:
            raise IRError(
                f"op {self.opid} ({self.kind.value}): expected {expected} "
                f"operands, got {len(self.operands)}"
            )
        if self.kind in (OpKind.LOAD, OpKind.STORE):
            if self.array is None or self.index is None:
                raise IRError(
                    f"op {self.opid} ({self.kind.value}) needs array and index"
                )
        elif self.kind in (OpKind.READVAR, OpKind.WRITEVAR):
            if self.var is None:
                raise IRError(
                    f"op {self.opid} ({self.kind.value}) needs a variable name"
                )
        elif self.kind is OpKind.CONST:
            if self.value is None:
                raise IRError(f"const op {self.opid} needs a value")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_binary(self) -> bool:
        return self.kind in BINARY_KINDS

    @property
    def is_unary(self) -> bool:
        return self.kind in UNARY_KINDS

    @property
    def produces_value(self) -> bool:
        """True unless the op is a pure side effect (store/var write)."""
        return self.kind not in (OpKind.STORE, OpKind.WRITEVAR)

    @property
    def touches_memory(self) -> bool:
        return self.kind in (OpKind.LOAD, OpKind.STORE)

    def isomorphic_to(self, other: "Operation") -> bool:
        """True when the two ops perform the same kind of computation.

        Isomorphism is the SLP pairing precondition: same kind, and for
        memory ops the same array rank (so a single vector instruction
        can implement both lanes).  Operand formats are checked
        separately by the word-length machinery.
        """
        if self.kind is not other.kind:
            return False
        if self.touches_memory:
            assert other.index is not None and self.index is not None
            return len(self.index) == len(other.index)
        return True

    def __repr__(self) -> str:
        detail = ""
        if self.array is not None and self.index is not None:
            subs = ", ".join(str(ix) for ix in self.index)
            detail = f" {self.array}[{subs}]"
        elif self.var is not None:
            detail = f" ${self.var}"
        elif self.value is not None:
            detail = f" {self.value}"
        args = "" if not self.operands else " " + str(list(self.operands))
        return f"<%{self.opid} = {self.kind.value}{detail}{args}>"
