"""Fluent construction API for IR programs.

The builder provides the ergonomics of writing a kernel "like C": loop
context managers, operator-overloaded value handles and affine index
expressions.  All the paper's benchmarks (``repro.kernels``) are built
through this API, and so are user kernels in the examples.

Example
-------
>>> from repro.ir import ProgramBuilder, loop_index
>>> b = ProgramBuilder("scale")
>>> x = b.input_array("x", (8,), value_range=(-1.0, 1.0))
>>> y = b.output_array("y", (8,))
>>> with b.loop("i", 8):
...     with b.block("body"):
...         v = b.load(x, loop_index("i"))
...         b.store(y, loop_index("i"), v * b.const(0.5))
>>> prog = b.build()
>>> prog.n_ops
4
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import IRError
from repro.ir.block import BasicBlock
from repro.ir.index import AffineIndex, loop_index
from repro.ir.ops import Operation
from repro.ir.optypes import OpKind
from repro.ir.program import BlockRef, LoopNode, Program
from repro.ir.symbols import ArrayDecl, SymbolKind, VarDecl

__all__ = ["ProgramBuilder", "Val", "loop_index"]


@dataclass(frozen=True)
class Val:
    """Handle to the value produced by an operation.

    Supports arithmetic operators so kernels read naturally:
    ``acc = acc + x * h``.
    """

    opid: int
    _builder: "ProgramBuilder"

    def __add__(self, other: "Val") -> "Val":
        return self._builder.add(self, other)

    def __sub__(self, other: "Val") -> "Val":
        return self._builder.sub(self, other)

    def __mul__(self, other: "Val") -> "Val":
        return self._builder.mul(self, other)

    def __neg__(self) -> "Val":
        return self._builder.neg(self)


class ProgramBuilder:
    """Incrementally builds a :class:`~repro.ir.Program`."""

    def __init__(self, name: str) -> None:
        self._program = Program(name)
        self._next_opid = 0
        self._loop_stack: list[LoopNode] = []
        self._current_block: BasicBlock | None = None
        self._block_counter = 0

    # ------------------------------------------------------------------
    # Symbols
    # ------------------------------------------------------------------
    def input_array(
        self,
        name: str,
        shape: tuple[int, ...],
        value_range: tuple[float, float],
    ) -> ArrayDecl:
        """Declare an environment-supplied input array."""
        return self._declare_array(
            ArrayDecl(name, shape, SymbolKind.INPUT, value_range=value_range)
        )

    def output_array(self, name: str, shape: tuple[int, ...]) -> ArrayDecl:
        """Declare an output array (accuracy is measured on its stores)."""
        return self._declare_array(ArrayDecl(name, shape, SymbolKind.OUTPUT))

    def state_array(self, name: str, shape: tuple[int, ...]) -> ArrayDecl:
        """Declare a zero-initialized loop-carried state array."""
        return self._declare_array(ArrayDecl(name, shape, SymbolKind.STATE))

    def coeff_array(self, name: str, values: Sequence[float] | np.ndarray) -> ArrayDecl:
        """Declare a compile-time constant coefficient array."""
        arr = np.asarray(values, dtype=np.float64)
        return self._declare_array(
            ArrayDecl(name, arr.shape, SymbolKind.COEFF, values=arr)
        )

    def scalar(self, name: str, init: float = 0.0) -> VarDecl:
        """Declare a scalar variable (loop-carried register)."""
        if name in self._program.variables or name in self._program.arrays:
            raise IRError(f"symbol {name!r} already declared")
        decl = VarDecl(name, init=init)
        self._program.variables[name] = decl
        return decl

    def _declare_array(self, decl: ArrayDecl) -> ArrayDecl:
        if decl.name in self._program.arrays or decl.name in self._program.variables:
            raise IRError(f"symbol {decl.name!r} already declared")
        self._program.arrays[decl.name] = decl
        return decl

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def loop(self, var: str, trip: int) -> Iterator[None]:
        """Open a counted loop ``for var in range(trip)``."""
        if self._current_block is not None:
            raise IRError("cannot open a loop inside a block")
        node = LoopNode(var, trip)
        self._schedule_items().append(node)
        self._loop_stack.append(node)
        try:
            yield
        finally:
            popped = self._loop_stack.pop()
            assert popped is node

    @contextlib.contextmanager
    def block(self, name: str | None = None) -> Iterator[BasicBlock]:
        """Open a basic block at the current loop nesting level."""
        if self._current_block is not None:
            raise IRError("blocks cannot nest")
        if name is None:
            name = f"bb{self._block_counter}"
        self._block_counter += 1
        if name in self._program.blocks:
            raise IRError(f"block {name!r} already exists")
        block = BasicBlock(name)
        self._program.blocks[name] = block
        self._schedule_items().append(BlockRef(name))
        self._current_block = block
        try:
            yield block
        finally:
            self._current_block = None

    def _schedule_items(self) -> list:
        if self._loop_stack:
            return self._loop_stack[-1].body
        return self._program.schedule

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _emit(self, kind: OpKind, **kwargs) -> Val:
        if self._current_block is None:
            raise IRError("operations must be emitted inside a block")
        op = Operation(
            opid=self._next_opid,
            kind=kind,
            block=self._current_block.name,
            **kwargs,
        )
        self._next_opid += 1
        self._current_block.ops.append(op)
        return Val(op.opid, self)

    @staticmethod
    def _as_index(ix: AffineIndex | int | str) -> AffineIndex:
        if isinstance(ix, AffineIndex):
            return ix
        if isinstance(ix, int):
            return AffineIndex.constant(ix)
        if isinstance(ix, str):
            return loop_index(ix)
        raise IRError(f"cannot interpret {ix!r} as an array index")

    def const(self, value: float, label: str = "") -> Val:
        """Emit a literal constant."""
        return self._emit(OpKind.CONST, value=float(value), label=label)

    def load(
        self,
        array: ArrayDecl | str,
        *index: AffineIndex | int | str,
        label: str = "",
    ) -> Val:
        """Emit a load from ``array`` at the given affine subscript."""
        name = array if isinstance(array, str) else array.name
        decl = self._program.arrays.get(name)
        if decl is None:
            raise IRError(f"load from undeclared array {name!r}")
        if len(index) != decl.rank:
            raise IRError(
                f"load {name!r}: got {len(index)} subscripts, rank {decl.rank}"
            )
        subs = tuple(self._as_index(ix) for ix in index)
        return self._emit(OpKind.LOAD, array=name, index=subs, label=label)

    def store(
        self,
        array: ArrayDecl | str,
        index: AffineIndex | int | str | tuple,
        value: Val,
        label: str = "",
    ) -> Val:
        """Emit a store of ``value`` into ``array`` at ``index``."""
        name = array if isinstance(array, str) else array.name
        decl = self._program.arrays.get(name)
        if decl is None:
            raise IRError(f"store to undeclared array {name!r}")
        if decl.kind is SymbolKind.COEFF:
            raise IRError(f"cannot store to coefficient array {name!r}")
        raw = index if isinstance(index, tuple) else (index,)
        if len(raw) != decl.rank:
            raise IRError(
                f"store {name!r}: got {len(raw)} subscripts, rank {decl.rank}"
            )
        subs = tuple(self._as_index(ix) for ix in raw)
        return self._emit(
            OpKind.STORE,
            operands=(value.opid,),
            array=name,
            index=subs,
            label=label,
        )

    def getvar(self, var: VarDecl | str, label: str = "") -> Val:
        """Emit a read of a scalar variable."""
        name = var if isinstance(var, str) else var.name
        if name not in self._program.variables:
            raise IRError(f"read of undeclared variable {name!r}")
        return self._emit(OpKind.READVAR, var=name, label=label)

    def setvar(self, var: VarDecl | str, value: Val, label: str = "") -> Val:
        """Emit a write of a scalar variable."""
        name = var if isinstance(var, str) else var.name
        if name not in self._program.variables:
            raise IRError(f"write of undeclared variable {name!r}")
        return self._emit(
            OpKind.WRITEVAR, operands=(value.opid,), var=name, label=label
        )

    def _binary(self, kind: OpKind, a: Val, b: Val, label: str) -> Val:
        self._check_same_builder(a, b)
        return self._emit(kind, operands=(a.opid, b.opid), label=label)

    def add(self, a: Val, b: Val, label: str = "") -> Val:
        return self._binary(OpKind.ADD, a, b, label)

    def sub(self, a: Val, b: Val, label: str = "") -> Val:
        return self._binary(OpKind.SUB, a, b, label)

    def mul(self, a: Val, b: Val, label: str = "") -> Val:
        return self._binary(OpKind.MUL, a, b, label)

    def min_(self, a: Val, b: Val, label: str = "") -> Val:
        return self._binary(OpKind.MIN, a, b, label)

    def max_(self, a: Val, b: Val, label: str = "") -> Val:
        return self._binary(OpKind.MAX, a, b, label)

    def neg(self, a: Val, label: str = "") -> Val:
        return self._emit(OpKind.NEG, operands=(a.opid,), label=label)

    def abs_(self, a: Val, label: str = "") -> Val:
        return self._emit(OpKind.ABS, operands=(a.opid,), label=label)

    def _check_same_builder(self, *vals: Val) -> None:
        for val in vals:
            if val._builder is not self:
                raise IRError("mixing values from different builders")

    # ------------------------------------------------------------------
    def build(self) -> Program:
        """Finalize and validate the program."""
        if self._loop_stack or self._current_block is not None:
            raise IRError("build() called with open loop or block")
        program = self._program.finalize()
        from repro.ir.validate import validate_program

        validate_program(program)
        return program
