"""Program symbols: arrays and scalar variables.

Arrays are the only inter-block / inter-iteration storage besides
scalar variables.  Their *kind* drives both semantics and the accuracy
model:

* ``INPUT`` arrays are supplied by the environment, are annotated with
  a value range (the paper's pragma annotations) and carry an input
  quantization noise source once a finite format is chosen.
* ``OUTPUT`` arrays define where accuracy is measured.
* ``STATE`` arrays hold loop-carried history (e.g. the IIR feedback
  taps) and are zero-initialized.
* ``COEFF`` arrays hold compile-time constants (filter coefficients);
  their values are known to the optimizer, which is what makes the
  kernels linear time-invariant systems.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import IRError

__all__ = ["SymbolKind", "ArrayDecl", "VarDecl"]


class SymbolKind(str, enum.Enum):
    """Storage class of an array symbol."""

    INPUT = "input"
    OUTPUT = "output"
    STATE = "state"
    COEFF = "coeff"


@dataclass
class ArrayDecl:
    """Declaration of an array symbol.

    Parameters
    ----------
    name:
        Unique symbol name.
    shape:
        Array extents; one or two dimensions are supported.
    kind:
        Storage class, see :class:`SymbolKind`.
    values:
        Compile-time contents, required for ``COEFF`` arrays.
    value_range:
        ``(lo, hi)`` bound on the values held by the array.  Mandatory
        for ``INPUT`` arrays (it seeds range analysis); derived for the
        other kinds.
    """

    name: str
    shape: tuple[int, ...]
    kind: SymbolKind
    values: np.ndarray | None = None
    value_range: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise IRError("array name must be non-empty")
        if len(self.shape) not in (1, 2):
            raise IRError(
                f"array {self.name!r}: only 1-D/2-D arrays supported, "
                f"got shape {self.shape}"
            )
        if any(extent <= 0 for extent in self.shape):
            raise IRError(f"array {self.name!r}: non-positive extent in {self.shape}")
        if self.kind is SymbolKind.COEFF:
            if self.values is None:
                raise IRError(f"coefficient array {self.name!r} needs values")
            self.values = np.asarray(self.values, dtype=np.float64)
            if self.values.shape != self.shape:
                raise IRError(
                    f"coefficient array {self.name!r}: values shape "
                    f"{self.values.shape} != declared {self.shape}"
                )
            if self.value_range is None:
                lo = float(self.values.min())
                hi = float(self.values.max())
                self.value_range = (lo, hi)
        if self.kind is SymbolKind.INPUT and self.value_range is None:
            raise IRError(
                f"input array {self.name!r} needs a value_range annotation"
            )
        if self.value_range is not None:
            lo, hi = self.value_range
            if lo > hi:
                raise IRError(
                    f"array {self.name!r}: empty value range ({lo}, {hi})"
                )

    @property
    def rank(self) -> int:
        """Number of dimensions (1 or 2)."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of elements."""
        size = 1
        for extent in self.shape:
            size *= extent
        return size

    def row_stride(self) -> int:
        """Linear stride between consecutive rows (row-major layout)."""
        return self.shape[1] if self.rank == 2 else 1


@dataclass
class VarDecl:
    """Declaration of a scalar variable (a loop-carried register).

    Scalar variables are the accumulator registers of the kernels.  In
    generated code they live in machine registers, so reading/writing
    them costs nothing; they exist in the IR to express loop-carried
    dataflow explicitly.
    """

    name: str
    init: float = 0.0
    value_range: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise IRError("variable name must be non-empty")
        if self.value_range is not None:
            lo, hi = self.value_range
            if lo > hi:
                raise IRError(
                    f"variable {self.name!r}: empty value range ({lo}, {hi})"
                )
