"""Pluggable evaluation backends for simulation-based analyses.

Everything that *executes* programs over stimuli — the simulation
accuracy evaluator, simulation-based range analysis, the validation
experiment — goes through an :class:`EvaluationBackend` resolved by
name from this registry, mirroring how flows, WLO engines and targets
are resolved.  The evaluation *semantics* are fixed; only the executor
is swappable:

* ``scalar`` — the reference executors
  (:class:`~repro.ir.interp.Interpreter`,
  :class:`~repro.fixedpoint.fxpinterp.FixedPointInterpreter`), one
  stimulus at a time, one Python step per operation instance.
* ``batch`` — the vectorized executors (:mod:`repro.ir.batch`,
  :mod:`repro.fixedpoint.fxpbatch`): all stimuli at once, independent
  loops as array lanes.  Bit-identical to ``scalar`` by construction
  and pinned by golden tests; the default everywhere.  Its fixed-point
  path is itself two-tiered (``batch[int64]``/``batch[object]``, see
  :mod:`repro.fixedpoint.widthproof`); :meth:`~EvaluationBackend.fixed_tier`
  reports which tier a given spec runs on.
* ``bigfloat`` — the arbitrary-precision oracle
  (:class:`~repro.ir.batch.OracleBatchInterpreter` over
  :class:`~repro.formats.BigFloat` values): float evaluation at ~200
  mantissa bits, fixed-point evaluation pinned to the exact object
  tier.  The reference for ``repro validate --oracle`` and for
  reduced-precision format noise.

Both entry points take a *sequence* of stimuli and return one output
dict per stimulus, so callers are backend-agnostic.  ``range_probe``
(for simulation range analysis) receives ``(static op id, values)``
where ``values`` is a scalar under ``scalar`` and an array under
``batch`` — min/max observation handles either.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence, TYPE_CHECKING

import numpy as np

from repro.errors import BackendError, unknown_name_error

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fixedpoint.fxpinterp import FxpConfig
    from repro.fixedpoint.spec import FixedPointSpec
    from repro.ir.program import Program

__all__ = [
    "DEFAULT_BACKEND",
    "BatchBackend",
    "BigFloatBackend",
    "EvaluationBackend",
    "ScalarBackend",
    "available_backends",
    "get_backend",
    "register_backend",
]

#: The backend simulation-based analyses use unless told otherwise.
DEFAULT_BACKEND = "batch"

Stimuli = Sequence[Mapping[str, np.ndarray]]
RangeProbe = Callable[[int, object], None]


class EvaluationBackend:
    """One way of executing programs over a set of stimuli."""

    name: str = "backend"
    description: str = ""
    #: Execution tiers ``run_fixed`` may pick between, documented for
    #: the registry listing (``repro flows --json`` / ``GET
    #: /registries``).  Empty for single-tier backends.  Tiers are
    #: bit-identical by contract — the choice affects wall time only,
    #: never results, so per-pass and per-cell cache keys do not (and
    #: must not) depend on it.
    tiers: tuple[dict[str, str], ...] = ()

    def run_float(
        self,
        program: "Program",
        stimuli: Stimuli,
        range_probe: RangeProbe | None = None,
    ) -> list[dict[str, np.ndarray]]:
        """Float64 reference execution; one output dict per stimulus."""
        raise NotImplementedError

    def run_fixed(
        self,
        program: "Program",
        spec: "FixedPointSpec",
        stimuli: Stimuli,
        config: "FxpConfig | None" = None,
        force_object: bool = False,
    ) -> list[dict[str, np.ndarray]]:
        """Bit-accurate fixed-point execution (dequantized outputs).

        ``force_object`` pins multi-tier backends to their exact
        arbitrary-precision tier; single-tier backends ignore it.
        """
        raise NotImplementedError

    def fixed_tier(
        self,
        program: "Program",
        spec: "FixedPointSpec",
        config: "FxpConfig | None" = None,
    ) -> str:
        """Label of the execution tier ``run_fixed`` would use for this
        (program, spec, config) — e.g. ``batch[int64]``."""
        return self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class ScalarBackend(EvaluationBackend):
    """The reference executors, one stimulus and one value at a time."""

    name = "scalar"
    description = "per-op scalar reference interpreters (ground truth)"

    def run_float(self, program, stimuli, range_probe=None):
        from repro.ir.interp import Interpreter

        interpreter = Interpreter(program)
        return [
            interpreter.run(stimulus, range_observer=range_probe)
            for stimulus in stimuli
        ]

    def run_fixed(self, program, spec, stimuli, config=None,
                  force_object=False):
        # ``force_object`` is vacuous here: the scalar reference *is*
        # the exact Python-int semantics every tier must reproduce.
        from repro.fixedpoint.fxpinterp import FixedPointInterpreter

        interpreter = FixedPointInterpreter(program, spec, config)
        return [interpreter.run(stimulus) for stimulus in stimuli]


class BatchBackend(EvaluationBackend):
    """Vectorized executors: all stimuli (and independent loops) at once."""

    name = "batch"
    description = "vectorized array evaluation, bit-identical to scalar"
    tiers = (
        {
            "name": "int64",
            "description": (
                "native int64 numpy lanes; engaged when the static "
                "width proof bounds every mantissa transient within "
                "signed 64-bit"
            ),
        },
        {
            "name": "object",
            "description": (
                "exact arbitrary-precision Python-int lanes; the "
                "universal fallback (and the REPRO_FXP_FORCE_OBJECT=1 "
                "pin)"
            ),
        },
    )

    def run_float(self, program, stimuli, range_probe=None):
        from repro.ir.batch import BatchInterpreter

        return BatchInterpreter(program).run(stimuli, range_probe=range_probe)

    def run_fixed(self, program, spec, stimuli, config=None,
                  force_object=False):
        from repro.fixedpoint.fxpbatch import BatchFixedPointInterpreter

        return BatchFixedPointInterpreter(
            program, spec, config, force_object=force_object
        ).run(stimuli)

    def fixed_tier(self, program, spec, config=None):
        from repro.fixedpoint.fxpbatch import fixed_point_tier

        return f"batch[{fixed_point_tier(program, spec, config)}]"


class BigFloatBackend(EvaluationBackend):
    """The arbitrary-precision oracle (see :mod:`repro.formats`).

    ``run_float`` evaluates with exact Python-int mantissas rounded to
    ~200 bits per operation — the reference that *bounds* the float64
    reference's own rounding noise (``repro validate --oracle``) and
    the baseline every reduced-precision format's noise is measured
    against.  ``run_fixed`` is bit-exact by construction (fixed-point
    arithmetic is integer arithmetic): it pins the batch executor's
    exact object tier, so oracle-backed runs agree with ``scalar`` /
    ``batch`` to the bit — pinned by the formats golden tests.
    """

    name = "bigfloat"
    description = (
        "arbitrary-precision binary-float oracle (exact Python-int "
        "mantissas, 200-bit rounding); float references far below "
        "float64 rounding noise"
    )

    def run_float(self, program, stimuli, range_probe=None):
        from repro.ir.batch import OracleBatchInterpreter

        return OracleBatchInterpreter(program).run(
            stimuli, range_probe=range_probe
        )

    def run_fixed(self, program, spec, stimuli, config=None,
                  force_object=False):
        # Fixed-point evaluation is already exact integer arithmetic;
        # the oracle simply pins the arbitrary-precision tier.
        from repro.fixedpoint.fxpbatch import BatchFixedPointInterpreter

        return BatchFixedPointInterpreter(
            program, spec, config, force_object=True
        ).run(stimuli)

    def fixed_tier(self, program, spec, config=None):
        return "bigfloat[object]"


_BACKENDS: dict[str, EvaluationBackend] = {}


def register_backend(
    backend: EvaluationBackend, *, overwrite: bool = False
) -> EvaluationBackend:
    """Register a backend instance; returns it (decorator-friendly)."""
    key = backend.name.lower()
    if key in _BACKENDS and not overwrite:
        raise BackendError(
            f"backend {backend.name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    _BACKENDS[key] = backend
    return backend


def get_backend(name: str) -> EvaluationBackend:
    """Look a backend up by name (case-insensitive)."""
    found = _BACKENDS.get(name.lower())
    if found is None:
        raise unknown_name_error(
            BackendError, "evaluation backend", name, available_backends()
        )
    return found


def available_backends() -> list[str]:
    """Names accepted by :func:`get_backend`."""
    return sorted(_BACKENDS)


register_backend(ScalarBackend())
register_backend(BatchBackend())
register_backend(BigFloatBackend())
