"""Loop-nest IR for DSP kernels.

The IR models the programs the paper operates on: counted loop nests
over basic blocks of scalar operations with affine array subscripts.
See :mod:`repro.ir.builder` for the construction API.
"""

from repro.ir.backend import (
    DEFAULT_BACKEND,
    BatchBackend,
    BigFloatBackend,
    EvaluationBackend,
    ScalarBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.ir.batch import (
    BatchInterpreter,
    FormatBatchInterpreter,
    OracleBatchInterpreter,
    run_program_batch,
)
from repro.ir.block import BasicBlock
from repro.ir.builder import ProgramBuilder, Val
from repro.ir.deps import DependenceGraph, build_dependence_graph, may_alias
from repro.ir.index import AffineIndex, loop_index
from repro.ir.interp import ExecutionTrace, Interpreter, run_program
from repro.ir.ops import Operation
from repro.ir.optypes import (
    ARITHMETIC_KINDS,
    BINARY_KINDS,
    COMMUTATIVE_KINDS,
    MEMORY_KINDS,
    SIMDIZABLE_KINDS,
    UNARY_KINDS,
    OpKind,
)
from repro.ir.printer import format_block, format_op, format_program
from repro.ir.program import BlockRef, LoopNode, Program
from repro.ir.symbols import ArrayDecl, SymbolKind, VarDecl
from repro.ir.validate import validate_program
from repro.ir.vectorize import VectorPlan, build_vector_plan, vector_plan

__all__ = [
    "AffineIndex",
    "ArrayDecl",
    "BasicBlock",
    "BatchBackend",
    "BatchInterpreter",
    "BigFloatBackend",
    "BlockRef",
    "DEFAULT_BACKEND",
    "EvaluationBackend",
    "FormatBatchInterpreter",
    "OracleBatchInterpreter",
    "ScalarBackend",
    "VectorPlan",
    "DependenceGraph",
    "ExecutionTrace",
    "Interpreter",
    "LoopNode",
    "Operation",
    "OpKind",
    "Program",
    "ProgramBuilder",
    "SymbolKind",
    "Val",
    "VarDecl",
    "ARITHMETIC_KINDS",
    "BINARY_KINDS",
    "COMMUTATIVE_KINDS",
    "MEMORY_KINDS",
    "SIMDIZABLE_KINDS",
    "UNARY_KINDS",
    "available_backends",
    "build_dependence_graph",
    "build_vector_plan",
    "format_block",
    "get_backend",
    "register_backend",
    "run_program_batch",
    "vector_plan",
    "format_op",
    "format_program",
    "loop_index",
    "may_alias",
    "run_program",
    "validate_program",
]
