"""Intra-block dependence analysis.

SLP legality ("two ops are independent") and list scheduling both need
the dependence DAG of a basic block.  Three dependence classes exist:

* **data** — operand edges (RAW through SSA values);
* **memory** — loads/stores on the same array whose affine subscripts
  may refer to the same cell within one block execution;
* **scalar** — reads/writes of the same scalar variable, ordered by
  program order (RAW/WAR/WAW).

Affine disambiguation: two subscripts with identical linear parts alias
iff their constant parts are equal; with different linear parts we
conservatively assume aliasing.  This is exact for the paper's kernels
(all accesses in a block share the loop-variable part).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.ir.block import BasicBlock
from repro.ir.ops import Operation
from repro.ir.optypes import OpKind

__all__ = [
    "DependenceGraph",
    "may_alias",
    "build_dependence_graph",
    "is_loop_invariant_load",
]


def is_loop_invariant_load(program, op: Operation) -> bool:
    """True for loads whose address is fixed across block executions.

    Such loads are hoisted out of the loop nest by any optimizing
    compiler (classic LICM): they execute once, so per-iteration cost
    models treat them — and vectors packed purely from them — as free.
    The 3x3 convolution's kernel coefficients are the canonical case.
    """
    if op.kind is not OpKind.LOAD:
        return False
    block = program.blocks[op.block]
    loop_vars = set(block.loop_vars)
    assert op.index is not None
    return not any(
        var in loop_vars for ix in op.index for var in ix.variables
    )


def may_alias(a: Operation, b: Operation) -> bool:
    """Conservatively decide whether two memory ops can touch one cell."""
    if a.array != b.array:
        return False
    assert a.index is not None and b.index is not None
    for ia, ib in zip(a.index, b.index):
        diff = ia.constant_offset_from(ib)
        if diff is None:
            # Different linear parts: cannot disambiguate, assume alias.
            continue
        if diff != 0:
            return False
    return True


@dataclass
class DependenceGraph:
    """Dependence DAG of one basic block with reachability queries."""

    block: BasicBlock
    graph: nx.DiGraph
    _descendants: dict[int, frozenset[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        order = list(nx.topological_sort(self.graph))
        desc: dict[int, set[int]] = {n: set() for n in order}
        for node in reversed(order):
            for succ in self.graph.successors(node):
                desc[node].add(succ)
                desc[node] |= desc[succ]
        self._descendants = {n: frozenset(s) for n, s in desc.items()}

    def depends(self, later: int, earlier: int) -> bool:
        """True when op ``later`` transitively depends on ``earlier``."""
        return later in self._descendants.get(earlier, frozenset())

    def independent(self, a: int, b: int) -> bool:
        """True when neither op depends on the other (SLP precondition)."""
        return not self.depends(a, b) and not self.depends(b, a)

    def descendants(self, opid: int) -> frozenset[int]:
        """All ops transitively dependent on ``opid``."""
        return self._descendants.get(opid, frozenset())

    def predecessors(self, opid: int) -> list[int]:
        return list(self.graph.predecessors(opid))

    def topological_order(self) -> list[int]:
        """A topological order respecting all dependences."""
        return list(nx.lexicographical_topological_sort(self.graph))


def build_dependence_graph(block: BasicBlock) -> DependenceGraph:
    """Build the dependence DAG of ``block``.

    Nodes are opids; edges point from the earlier op to the op that
    must follow it.  Edge attribute ``dep`` records the class
    (``data``/``memory``/``scalar``).
    """
    graph = nx.DiGraph()
    for op in block.ops:
        graph.add_node(op.opid)

    # Data dependences (operand edges).
    for op in block.ops:
        for producer in op.operands:
            graph.add_edge(producer, op.opid, dep="data")

    # Memory dependences: pairwise over ops touching the same array,
    # ordering any may-aliasing pair that involves a store.
    mem_ops = [op for op in block.ops if op.touches_memory]
    for i, first in enumerate(mem_ops):
        for second in mem_ops[i + 1:]:
            if first.kind is OpKind.LOAD and second.kind is OpKind.LOAD:
                continue
            if may_alias(first, second):
                graph.add_edge(first.opid, second.opid, dep="memory")

    # Scalar-variable dependences in program order.
    var_ops = [op for op in block.ops if op.kind in (OpKind.READVAR, OpKind.WRITEVAR)]
    by_var: dict[str, list[Operation]] = {}
    for op in var_ops:
        assert op.var is not None
        by_var.setdefault(op.var, []).append(op)
    for ops in by_var.values():
        for i, first in enumerate(ops):
            for second in ops[i + 1:]:
                if first.kind is OpKind.READVAR and second.kind is OpKind.READVAR:
                    continue
                graph.add_edge(first.opid, second.opid, dep="scalar")

    return DependenceGraph(block, graph)
