"""Operation kinds of the repro IR.

The IR is deliberately small: it models the straight-line, affine-index
DSP kernels that word-length optimization papers operate on.  Every
value-producing operation is one of the kinds below; control flow is
expressed structurally by the loop tree of :class:`repro.ir.Program`.
"""

from __future__ import annotations

from enum import Enum

__all__ = [
    "OpKind",
    "ARITHMETIC_KINDS",
    "BINARY_KINDS",
    "UNARY_KINDS",
    "COMMUTATIVE_KINDS",
    "MEMORY_KINDS",
    "VAR_KINDS",
    "VALUE_PRODUCING_KINDS",
    "SIMDIZABLE_KINDS",
]


class OpKind(str, Enum):
    """Kind of an IR operation."""

    #: Floating-point literal (coefficients embedded in code).
    CONST = "const"
    #: Read an array element at an affine index.
    LOAD = "load"
    #: Write an array element at an affine index.
    STORE = "store"
    #: Read a scalar variable (loop-carried register).
    READVAR = "readvar"
    #: Write a scalar variable (loop-carried register).
    WRITEVAR = "writevar"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    NEG = "neg"
    ABS = "abs"
    MIN = "min"
    MAX = "max"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpKind.{self.name}"


#: Kinds computing an arithmetic function of their operands.
ARITHMETIC_KINDS = frozenset(
    {OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.NEG, OpKind.ABS,
     OpKind.MIN, OpKind.MAX}
)

#: Arithmetic kinds taking exactly two operands.
BINARY_KINDS = frozenset(
    {OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.MIN, OpKind.MAX}
)

#: Arithmetic kinds taking exactly one operand.
UNARY_KINDS = frozenset({OpKind.NEG, OpKind.ABS})

#: Binary kinds whose operands may be swapped freely.
COMMUTATIVE_KINDS = frozenset(
    {OpKind.ADD, OpKind.MUL, OpKind.MIN, OpKind.MAX}
)

#: Kinds that touch memory.
MEMORY_KINDS = frozenset({OpKind.LOAD, OpKind.STORE})

#: Kinds that touch scalar variables.
VAR_KINDS = frozenset({OpKind.READVAR, OpKind.WRITEVAR})

#: Kinds that produce a value usable as an operand.
VALUE_PRODUCING_KINDS = frozenset(
    {OpKind.CONST, OpKind.LOAD, OpKind.READVAR} | ARITHMETIC_KINDS
)

#: Kinds eligible for SLP grouping.  Variable accesses are register
#: moves that vanish during code generation, and constants are
#: immediates, so neither is grouped.
SIMDIZABLE_KINDS = frozenset(
    ARITHMETIC_KINDS | {OpKind.LOAD, OpKind.STORE}
)


def operand_count(kind: OpKind) -> int:
    """Number of *value* operands expected by ``kind``.

    Loads, constants and variable reads take none; stores and variable
    writes take the single value being written.
    """
    if kind in BINARY_KINDS:
        return 2
    if kind in UNARY_KINDS:
        return 1
    if kind in (OpKind.STORE, OpKind.WRITEVAR):
        return 1
    return 0
