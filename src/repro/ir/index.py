"""Affine index expressions.

Array subscripts in the IR are affine functions of the enclosing loop
variables, e.g. ``x[n + 4*k + 3]`` is ``AffineIndex({"n": 1, "k": 4}, 3)``.
Affine form is what makes dependence testing and SIMD contiguity checks
decidable: two accesses with identical linear parts differ by a compile
time constant, which is exactly the question SLP packing asks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import IRError

__all__ = ["AffineIndex", "loop_index"]


@dataclass(frozen=True)
class AffineIndex:
    """An affine function ``sum(coeff_i * var_i) + const`` of loop vars.

    Instances are immutable and hashable; ``terms`` is stored as a
    sorted tuple of ``(var, coeff)`` pairs with zero coefficients
    dropped, so structurally equal indices compare equal.
    """

    terms: tuple[tuple[str, int], ...] = field(default=())
    const: int = 0

    def __post_init__(self) -> None:
        cleaned = tuple(sorted((v, c) for v, c in self.terms if c != 0))
        object.__setattr__(self, "terms", cleaned)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def constant(value: int) -> "AffineIndex":
        """An index that does not depend on any loop variable."""
        return AffineIndex((), value)

    @staticmethod
    def of(mapping: Mapping[str, int], const: int = 0) -> "AffineIndex":
        """Build an index from a ``{var: coeff}`` mapping."""
        return AffineIndex(tuple(mapping.items()), const)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def _term_map(self) -> dict[str, int]:
        return dict(self.terms)

    def __add__(self, other: "AffineIndex | int") -> "AffineIndex":
        if isinstance(other, int):
            return AffineIndex(self.terms, self.const + other)
        merged = self._term_map()
        for var, coeff in other.terms:
            merged[var] = merged.get(var, 0) + coeff
        return AffineIndex(tuple(merged.items()), self.const + other.const)

    __radd__ = __add__

    def __sub__(self, other: "AffineIndex | int") -> "AffineIndex":
        if isinstance(other, int):
            return AffineIndex(self.terms, self.const - other)
        return self + other.scaled(-1)

    def __mul__(self, factor: int) -> "AffineIndex":
        return self.scaled(factor)

    __rmul__ = __mul__

    def scaled(self, factor: int) -> "AffineIndex":
        """Multiply every coefficient and the constant by ``factor``."""
        return AffineIndex(
            tuple((v, c * factor) for v, c in self.terms),
            self.const * factor,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def variables(self) -> tuple[str, ...]:
        """Loop variables appearing with non-zero coefficient."""
        return tuple(v for v, _ in self.terms)

    def is_constant(self) -> bool:
        """True when the index does not reference any loop variable."""
        return not self.terms

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under concrete loop-variable values.

        Raises :class:`~repro.errors.IRError` if a referenced variable
        is missing from ``env``.
        """
        total = self.const
        for var, coeff in self.terms:
            if var not in env:
                raise IRError(f"loop variable {var!r} unbound in index {self}")
            total += coeff * env[var]
        return total

    def constant_offset_from(self, other: "AffineIndex") -> int | None:
        """Distance to ``other`` when both share the same linear part.

        Returns ``self - other`` as an integer when the two indices have
        identical variable terms (so their difference is a compile-time
        constant), and ``None`` otherwise.  This is the primitive used
        both for dependence disambiguation and for contiguity checks.
        """
        if self.terms != other.terms:
            return None
        return self.const - other.const

    def bounds(self, extents: Mapping[str, tuple[int, int]]) -> tuple[int, int]:
        """Min/max value over loop ranges ``{var: (lo, hi)}`` (inclusive)."""
        lo = hi = self.const
        for var, coeff in self.terms:
            if var not in extents:
                raise IRError(f"loop variable {var!r} has no extent")
            vlo, vhi = extents[var]
            if coeff >= 0:
                lo += coeff * vlo
                hi += coeff * vhi
            else:
                lo += coeff * vhi
                hi += coeff * vlo
        return lo, hi

    def __str__(self) -> str:
        parts: list[str] = []
        for var, coeff in self.terms:
            if coeff == 1:
                parts.append(var)
            elif coeff == -1:
                parts.append(f"-{var}")
            else:
                parts.append(f"{coeff}*{var}")
        if self.const or not parts:
            parts.append(str(self.const))
        text = " + ".join(parts)
        return text.replace("+ -", "- ")


def loop_index(var: str) -> AffineIndex:
    """The index expression consisting of a single loop variable."""
    return AffineIndex(((var, 1),), 0)
