"""Structural validation of IR programs.

``validate_program`` is run automatically by the builder; it enforces
the invariants the rest of the library assumes (def-before-use, opid
uniqueness, in-range constant indices, acyclic blocks, every block
scheduled exactly once).
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ValidationError
from repro.ir.deps import build_dependence_graph
from repro.ir.optypes import OpKind
from repro.ir.program import BlockRef, LoopNode, Program

__all__ = ["validate_program"]


def validate_program(program: Program) -> None:
    """Raise :class:`ValidationError` on any structural violation."""
    _check_schedule(program)
    _check_blocks(program)
    _check_indices(program)
    _check_acyclic(program)


def _check_schedule(program: Program) -> None:
    seen: set[str] = set()

    def visit(items) -> None:
        for item in items:
            if isinstance(item, BlockRef):
                if item.name in seen:
                    raise ValidationError(
                        f"block {item.name!r} scheduled more than once"
                    )
                seen.add(item.name)
            elif isinstance(item, LoopNode):
                visit(item.body)

    visit(program.schedule)
    missing = set(program.blocks) - seen
    if missing:
        raise ValidationError(f"blocks never scheduled: {sorted(missing)}")


def _check_blocks(program: Program) -> None:
    for block in program.blocks.values():
        defined: set[int] = set()
        for op in block.ops:
            for operand in op.operands:
                if operand not in defined:
                    raise ValidationError(
                        f"block {block.name!r}: op {op.opid} uses %{operand} "
                        "before definition (or from another block)"
                    )
            if op.opid in defined:
                raise ValidationError(f"duplicate opid {op.opid}")
            defined.add(op.opid)
            if op.kind in (OpKind.LOAD, OpKind.STORE):
                if op.array not in program.arrays:
                    raise ValidationError(
                        f"op {op.opid}: unknown array {op.array!r}"
                    )
            if op.kind in (OpKind.READVAR, OpKind.WRITEVAR):
                if op.var not in program.variables:
                    raise ValidationError(
                        f"op {op.opid}: unknown variable {op.var!r}"
                    )


def _check_indices(program: Program) -> None:
    extents = program.loop_extents()
    for op in program.all_ops():
        if not op.touches_memory:
            continue
        decl = program.arrays[op.array]  # type: ignore[index]
        block = program.blocks[op.block]
        visible = set(block.loop_vars)
        assert op.index is not None
        for dim, ix in enumerate(op.index):
            for var in ix.variables:
                if var not in visible:
                    raise ValidationError(
                        f"op {op.opid}: index uses loop var {var!r} not "
                        f"enclosing block {block.name!r}"
                    )
            lo, hi = ix.bounds(extents)
            if lo < 0 or hi >= decl.shape[dim]:
                raise ValidationError(
                    f"op {op.opid}: {op.array}[dim {dim}] subscript range "
                    f"[{lo}, {hi}] exceeds extent {decl.shape[dim]}"
                )


def _check_acyclic(program: Program) -> None:
    for block in program.blocks.values():
        dg = build_dependence_graph(block)
        if not nx.is_directed_acyclic_graph(dg.graph):
            raise ValidationError(f"block {block.name!r} has a dependence cycle")
