"""Batched floating-point interpreter.

Evaluates a :class:`~repro.ir.Program` over *all* stimuli of a
simulation at once: every runtime value is a float64 array with the
stimulus set as its trailing axis, and loops the
:mod:`~repro.ir.vectorize` analysis proves independent additionally
run as array *lanes* (leading axis) instead of Python iterations.

Because every operation remains elementwise float64 and program order
is preserved per lane, results are bit-identical to
:class:`~repro.ir.interp.Interpreter` — the golden contract pinned by
``tests/test_backend.py``.  The scalar interpreter stays the semantic
reference (and the only executor supporting tracing); this one exists
to make simulation-backed evaluation fast.

``range_probe`` is the batched counterpart of the scalar
``range_observer`` hook: it receives every produced value *array*
(instead of one call per scalar), which is all min/max range
observation needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import InterpreterError
from repro.ir.block import BasicBlock
from repro.ir.ops import Operation
from repro.ir.optypes import OpKind
from repro.ir.program import BlockRef, LoopNode, Program
from repro.ir.symbols import SymbolKind
from repro.ir.vectorize import VectorPlan, vector_plan

__all__ = [
    "BatchExecutorBase",
    "BatchInterpreter",
    "run_program_batch",
    "stack_input_columns",
]

#: Batched range-observation hook: ``(static op id, value array)``.
RangeProbe = Callable[[int, np.ndarray], None]


def stack_input_columns(decl, stimuli: Sequence[Mapping[str, np.ndarray]]):
    """One input array across all stimuli as flat (cells, stimuli) columns.

    Validates presence and shape per stimulus exactly like the scalar
    interpreters do; shared by the float and fixed-point batch
    executors (the latter quantizes the result afterwards).
    """
    columns = []
    for stimulus in stimuli:
        if decl.name not in stimulus:
            raise InterpreterError(f"missing input array {decl.name!r}")
        data = np.asarray(stimulus[decl.name], dtype=np.float64)
        if data.shape != decl.shape:
            raise InterpreterError(
                f"input {decl.name!r}: shape {data.shape} != "
                f"declared {decl.shape}"
            )
        columns.append(data.reshape(-1))
    return np.stack(columns, axis=1)


class BatchExecutorBase:
    """Shared structure walk of the batch executors.

    Subclasses implement ``_run_block`` (the per-op semantics over
    whichever value domain they execute in); the schedule walk — with
    plan-selected loops running as ``arange`` lanes instead of Python
    iterations — and the (possibly lane-valued) flat indexing are
    identical for every domain and live here.
    """

    def __init__(self, program: Program, plan: VectorPlan | None = None) -> None:
        self.program = program
        self.plan = plan if plan is not None else vector_plan(program)

    def _run_items(self, items, env: dict, state) -> None:
        for item in items:
            if isinstance(item, BlockRef):
                self._run_block(self.program.blocks[item.name], env, state)
            elif isinstance(item, LoopNode):
                if self.plan.is_vectorized(item):
                    env[item.var] = np.arange(item.trip)
                    self._run_items(item.body, env, state)
                    del env[item.var]
                else:
                    for i in range(item.trip):
                        env[item.var] = i
                        self._run_items(item.body, env, state)
                    del env[item.var]
            else:  # pragma: no cover - defensive
                raise InterpreterError(f"bad schedule item {item!r}")

    def _flat_index(self, op: Operation, env: Mapping):
        """Flat cell index: an int, or an int array over vector lanes."""
        decl = self.program.arrays[op.array]  # type: ignore[index]
        assert op.index is not None
        coords = [ix.evaluate(env) for ix in op.index]
        for coord, extent in zip(coords, decl.shape):
            if np.any((np.asarray(coord) < 0) | (np.asarray(coord) >= extent)):
                raise InterpreterError(
                    f"{op.kind.value} {op.array} out of bounds {decl.shape} "
                    f"(op {op.opid})"
                )
        if decl.rank == 1:
            return coords[0]
        return coords[0] * decl.shape[1] + coords[1]

    def _run_block(self, block: BasicBlock, env: Mapping, state) -> None:
        raise NotImplementedError  # pragma: no cover


class BatchInterpreter(BatchExecutorBase):
    """Float64 executor evaluating every stimulus in one pass."""

    # ------------------------------------------------------------------
    def run(
        self,
        stimuli: Sequence[Mapping[str, np.ndarray]],
        range_probe: RangeProbe | None = None,
    ) -> list[dict[str, np.ndarray]]:
        """Execute over ``stimuli``; returns one output dict per stimulus."""
        if not stimuli:
            raise InterpreterError("batch run needs at least one stimulus")
        storage = self._init_storage(stimuli)
        var_values: dict[str, np.ndarray | float] = {
            name: decl.init for name, decl in self.program.variables.items()
        }
        state = _BatchState(storage, var_values, range_probe)
        self._run_items(self.program.schedule, {}, state)
        return [
            {
                decl.name: storage[decl.name][:, s].copy().reshape(decl.shape)
                for decl in self.program.output_arrays()
            }
            for s in range(len(stimuli))
        ]

    # ------------------------------------------------------------------
    def _init_storage(
        self, stimuli: Sequence[Mapping[str, np.ndarray]]
    ) -> dict[str, np.ndarray]:
        """Flat (cells, stimuli) float64 columns per array symbol."""
        n_stimuli = len(stimuli)
        storage: dict[str, np.ndarray] = {}
        for decl in self.program.arrays.values():
            if decl.kind is SymbolKind.INPUT:
                storage[decl.name] = stack_input_columns(decl, stimuli)
            elif decl.kind is SymbolKind.COEFF:
                assert decl.values is not None
                flat = decl.values.reshape(-1).astype(np.float64)
                storage[decl.name] = np.repeat(flat[:, None], n_stimuli, axis=1)
            else:
                storage[decl.name] = np.zeros(
                    (decl.size, n_stimuli), dtype=np.float64
                )
        return storage

    # ------------------------------------------------------------------
    def _run_block(
        self, block: BasicBlock, env: Mapping, state: "_BatchState"
    ) -> None:
        values: dict[int, np.ndarray | float] = {}
        for op in block.ops:
            kind = op.kind
            if kind is OpKind.CONST:
                result = float(op.value)  # type: ignore[arg-type]
            elif kind is OpKind.LOAD:
                flat = self._flat_index(op, env)
                result = state.storage[op.array][flat]
                if np.isscalar(flat) or np.ndim(flat) == 0:
                    # Basic indexing views the storage row; copy so the
                    # value is immune to later stores into the cell.
                    result = result.copy()
            elif kind is OpKind.STORE:
                result = values[op.operands[0]]
                flat = self._flat_index(op, env)
                state.storage[op.array][flat] = result
            elif kind is OpKind.READVAR:
                result = state.var_values[op.var]  # type: ignore[index]
            elif kind is OpKind.WRITEVAR:
                result = values[op.operands[0]]
                state.var_values[op.var] = result  # type: ignore[index]
            else:
                result = _arith(op, values)
            values[op.opid] = result
            if state.range_probe is not None:
                state.range_probe(op.opid, result)


def _arith(op: Operation, values: dict):
    kind = op.kind
    if op.is_binary:
        a = values[op.operands[0]]
        b = values[op.operands[1]]
        if kind is OpKind.ADD:
            return a + b
        if kind is OpKind.SUB:
            return a - b
        if kind is OpKind.MUL:
            return a * b
        # MIN/MAX mirror Python's min/max exactly — "b only if it
        # strictly improves on a" — so ties, signed zeros and NaN
        # operands all resolve to the same bits as the scalar
        # interpreter's min(a, b) / max(a, b).
        if kind is OpKind.MIN:
            return np.where(b < a, b, a)
        if kind is OpKind.MAX:
            return np.where(b > a, b, a)
        raise InterpreterError(f"unhandled binary op {kind}")  # pragma: no cover
    a = values[op.operands[0]]
    if kind is OpKind.NEG:
        return -a
    if kind is OpKind.ABS:
        return np.abs(a)
    raise InterpreterError(f"unhandled unary op {kind}")  # pragma: no cover


@dataclass
class _BatchState:
    storage: dict[str, np.ndarray]
    var_values: dict[str, np.ndarray | float]
    range_probe: RangeProbe | None


def run_program_batch(
    program: Program, stimuli: Sequence[Mapping[str, np.ndarray]]
) -> list[dict[str, np.ndarray]]:
    """One-shot convenience wrapper around :class:`BatchInterpreter`."""
    return BatchInterpreter(program).run(stimuli)
